"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so the PEP 517
editable path is unavailable; this shim lets ``pip install -e .`` use the
legacy ``setup.py develop`` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
