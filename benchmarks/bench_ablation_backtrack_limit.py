"""Ablation: the baseline's backtrack-limit sweep (the c6288 rows).

Table 6 sweeps the commercial tool's backtrack limit from 1000 to 25000
on c6288 (the array multiplier): raising the limit converts "backtrack
limited" paths into decided ones at a steep CPU cost, while the
developed tool needs no such knob.  This bench reproduces the sweep on
the multiplier stand-in."""

import pytest

from repro.baseline.sta2step import TwoStepSTA
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit

LIMITS = [50, 500, 5000]
STRUCTURAL = 300


@pytest.fixture(scope="module")
def multiplier():
    return build_circuit("c6288", scale=0.375)  # a 6x6 array multiplier


@pytest.fixture(scope="module")
def sweep(multiplier, lut90):
    results = {}
    for limit in LIMITS:
        tool = TwoStepSTA(multiplier, lut90, backtrack_limit=limit)
        results[limit] = tool.run(max_structural_paths=STRUCTURAL)
    return results


def test_sweep_cost(benchmark, multiplier, lut90):
    def run_smallest():
        tool = TwoStepSTA(multiplier, lut90, backtrack_limit=LIMITS[0])
        return tool.run(max_structural_paths=STRUCTURAL)

    report = benchmark.pedantic(run_smallest, rounds=1, iterations=1)
    assert report.paths_explored == STRUCTURAL


def test_aborts_decrease_with_limit(benchmark, sweep):
    aborted = benchmark(lambda: [sweep[l].backtrack_limited for l in LIMITS])
    assert aborted[0] >= aborted[-1]


def test_true_paths_increase_with_limit(benchmark, sweep):
    true_counts = benchmark(lambda: [sweep[l].true_paths for l in LIMITS])
    assert true_counts[-1] >= true_counts[0]


def test_decided_paths_monotone(benchmark, sweep):
    decided = benchmark(lambda: [
        sweep[l].true_paths + sweep[l].declared_false for l in LIMITS
    ])
    assert decided == sorted(decided)


def test_developed_tool_needs_no_limit(benchmark, multiplier, poly90):
    """The single-pass tool decides every explored path without a
    backtrack-limit knob (no aborts)."""
    sta = TruePathSTA(multiplier, poly90)

    def enumerate_capped():
        return sta.enumerate_paths(max_paths=3000)

    paths = benchmark.pedantic(enumerate_capped, rounds=1, iterations=1)
    assert paths
    assert sta.last_stats.justification_aborts == 0
