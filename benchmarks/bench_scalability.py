"""Scalability of the single-pass search (the title's "scalable").

Runs the exhaustive enumeration on growing instances of the same
circuit family and checks that the cost *per reported sensitization*
stays bounded -- i.e. the search scales with its useful output, not
explosively with circuit size.  Also times the one-time preprocessing
(indexing + bounds) separately, which is linear in gates."""

import time

import pytest

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.pathfinder import PathFinder
from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap

SIZES = [60, 150, 350]


@pytest.fixture(scope="module")
def scaling(poly90):
    rows = []
    for gates in SIZES:
        circuit = techmap(random_dag(f"scal{gates}", 24, gates, seed=99,
                                     n_outputs=10))
        sta = TruePathSTA(circuit, poly90)
        start = time.perf_counter()
        paths = sta.enumerate_paths(max_paths=50000)
        elapsed = time.perf_counter() - start
        stats = sta.last_stats
        work = stats.extensions_tried + stats.justification_backtracks
        rows.append({
            "gates": circuit.num_gates,
            "paths": len(paths),
            "seconds": elapsed,
            "work": work,
            "per_step": elapsed / max(work, 1),
        })
    return rows


def test_enumeration_scaling(benchmark, scaling, bench_snapshot):
    """The engine's per-step cost stays bounded as circuits grow.

    Total runtime grows with the explored search space (deep cones cost
    more, exactly as the paper's own CPU column grows superlinearly);
    the *scalable* part is that each search step -- extension attempt or
    justification backtrack -- costs roughly the same regardless of
    circuit size, because state updates are trail-local.
    """
    rows = benchmark(lambda: scaling)
    assert all(r["paths"] > 0 for r in rows)
    per = [r["per_step"] for r in rows]
    assert max(per) < 12 * max(min(per), 1e-9)
    bench_snapshot("scalability", {"rows": rows})


def test_preprocessing_linear(benchmark, poly90):
    """Indexing + delay bounds are a one-time, roughly linear cost."""
    def preprocess():
        out = []
        for gates in SIZES:
            circuit = techmap(random_dag(f"pp{gates}", 24, gates, seed=5,
                                         n_outputs=10))
            start = time.perf_counter()
            ec = EngineCircuit(circuit)
            calc = DelayCalculator(ec, poly90)
            calc.remaining_bounds()
            out.append((circuit.num_gates, time.perf_counter() - start))
        return out

    rows = benchmark.pedantic(preprocess, rounds=1, iterations=1)
    small_gates, small_time = rows[0]
    large_gates, large_time = rows[-1]
    ratio = (large_time / max(small_time, 1e-9))
    size_ratio = large_gates / small_gates
    assert ratio < size_ratio * 8  # near-linear with generous slack


def test_hotpath_cache_effectiveness(benchmark, poly90, bench_snapshot):
    """Arc cache + justify skip leave the path set unchanged while
    eliding most of the hot-path work.

    The before/after counters land in ``extra_info`` so the benchmark
    trajectory records the cache hit rate and the number of skipped
    justification solves next to the wall-clock numbers.
    """
    circuit = techmap(random_dag("scal150", 24, 150, seed=99, n_outputs=10))
    ec = EngineCircuit(circuit)

    def run(arc_cache, justify_skip):
        calc = DelayCalculator(ec, poly90, arc_cache=arc_cache)
        finder = PathFinder(ec, calc, justify_skip=justify_skip)
        start = time.perf_counter()
        with finder.find_paths() as stream:
            paths = [p.key for p in stream]
        return {
            "paths": paths,
            "seconds": time.perf_counter() - start,
            "arc_evaluations": calc.arc_evaluations,
            "arc_cache_hits": calc.arc_cache_hits,
            "arc_cache_misses": calc.arc_cache_misses,
            "justify_skipped": finder.stats.justify_skipped,
            "justification_cubes": finder.stats.justification_cubes,
        }

    def run_both():
        return run(False, False), run(True, True)

    before, after = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert after["paths"] == before["paths"]
    hit_rate = after["arc_cache_hits"] / max(after["arc_evaluations"], 1)
    assert hit_rate >= 0.90
    assert after["justify_skipped"] > 0
    assert after["justification_cubes"] <= before["justification_cubes"]
    for stage, row in (("before", before), ("after", after)):
        benchmark.extra_info[f"hotpath_{stage}"] = {
            k: v for k, v in row.items() if k != "paths"
        }
    benchmark.extra_info["hotpath_hit_rate"] = hit_rate
    bench_snapshot("hotpath_cache", {
        "hit_rate": hit_rate,
        "before": {k: v for k, v in before.items() if k != "paths"},
        "after": {k: v for k, v in after.items() if k != "paths"},
    })


def test_n_worst_prunes_work(benchmark, poly90):
    """N-worst mode with bound pruning does not exceed exhaustive work."""
    circuit = techmap(random_dag("prn", 24, 250, seed=31, n_outputs=10))
    sta = TruePathSTA(circuit, poly90)

    def run_both():
        sta.enumerate_paths()
        exhaustive = sta.last_stats.extensions_tried
        sta.enumerate_paths(n_worst=5)
        pruned = sta.last_stats.extensions_tried
        return exhaustive, pruned

    exhaustive, pruned = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert pruned <= exhaustive
