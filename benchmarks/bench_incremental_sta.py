"""Incremental dirty-cone re-analysis vs from-scratch rebuilds.

Applies a sequence of small-cone edits (pin-compatible swaps on
endpoint drivers) to c7552 through two ``IncrementalSTA`` sessions: one
repairing only the dirty cone, one forced into scratch mode
(``full_rebuild=True``), and checks byte identity of the full timing
state after every edit.  The speedup claim is proven on work metrics,
not wall-clock alone: scalar twin sessions count
``DelayCalculator.arc_evaluations`` per edit (cone vs whole circuit),
and the ``incremental.levels_reswept`` report field is compared against
the full forward+backward sweep (``2 x incremental.graph_levels``).
The snapshot lands in ``BENCH_incremental.json`` for the
``repro obs diff`` trajectory and the PERFORMANCE.md table.
"""

import time

import pytest

from repro import obs
from repro.core.incremental import IncrementalSTA
from repro.eval.iscas import build_circuit

CIRCUIT = "c7552"
EDITS = 3


def _swap_targets(circuit, count):
    """Deep endpoint drivers with a pin-compatible alternative cell.

    An edit dirties the gate *and* its input-net drivers (their loads
    change), so the repaired cone spans everything downstream of those
    drivers.  Picking endpoint gates whose fanin sits deepest in the
    level order keeps the cone a thin slice -- the small-cone edit class
    the acceptance criterion is about.
    """
    from repro.core.tgraph import net_levels

    pools = {}
    for cell in circuit.library:
        pools.setdefault(cell.inputs, []).append(cell)
    outputs = set(circuit.outputs)
    levels = net_levels(circuit)
    candidates = []
    for name in sorted(circuit.instances):
        inst = circuit.instances[name]
        if inst.output_net not in outputs:
            continue
        alts = [c for c in pools.get(inst.cell.inputs, ())
                if c.name != inst.cell.name]
        if not alts:
            continue
        fanin_depth = min(
            (levels.get(net, 0) for net in inst.pins.values()), default=0
        )
        candidates.append((fanin_depth, name, inst.cell.name, alts[0].name))
    candidates.sort(reverse=True)
    return [(name, base, alt) for _, name, base, alt in candidates[:count]]


def _timed_edit(session, name, cell):
    start = time.perf_counter()
    report = session.replace_cell(name, cell)
    return report, time.perf_counter() - start


def test_incremental_edits_beat_scratch_rebuilds(
        benchmark, poly90, bench_snapshot):
    circuit_inc = build_circuit(CIRCUIT)
    circuit_scr = build_circuit(CIRCUIT)
    targets = _swap_targets(circuit_inc, EDITS)
    assert len(targets) == EDITS

    inc = IncrementalSTA(circuit_inc, poly90)
    inc.refresh()
    scratch = IncrementalSTA(circuit_scr, poly90, full_rebuild=True)
    scratch.refresh()

    total_gates = len(circuit_inc.instances)
    rows = []
    for name, _, alt in targets:
        report, inc_seconds = _timed_edit(inc, name, alt)
        _, scratch_seconds = _timed_edit(scratch, name, alt)
        # Byte identity after every edit: the dirty-cone repair must be
        # indistinguishable from the rebuild it replaces.
        assert inc.arrivals() == scratch.arrivals()
        assert inc.slews() == scratch.slews()
        assert inc.required_bounds() == scratch.required_bounds()
        assert inc.suffix_bounds() == scratch.suffix_bounds()
        assert not report.full_rebuild
        rows.append({
            "gate": name,
            "to_cell": alt,
            "cone_gates": report.cone_gates,
            "total_gates": total_gates,
            "levels_reswept": report.levels_reswept,
            "incremental_ms": inc_seconds * 1e3,
            "scratch_ms": scratch_seconds * 1e3,
            "wall_speedup": scratch_seconds / max(inc_seconds, 1e-9),
        })

    # Work metrics on scalar twins: every arc model evaluation goes
    # through DelayCalculator.arc_timing, so the counter is an exact,
    # machine-independent measure of re-analysis effort.
    circuit_a = build_circuit(CIRCUIT)
    circuit_b = build_circuit(CIRCUIT)
    inc_scalar = IncrementalSTA(circuit_a, poly90, vectorize=False)
    inc_scalar.refresh()
    scr_scalar = IncrementalSTA(
        circuit_b, poly90, vectorize=False, full_rebuild=True)
    scr_scalar.refresh()
    for (name, _, alt), row in zip(targets, rows):
        before = inc_scalar.calc.arc_evaluations
        inc_scalar.replace_cell(name, alt)
        row["incremental_arc_evaluations"] = (
            inc_scalar.calc.arc_evaluations - before)
        before = scr_scalar.calc.arc_evaluations
        scr_scalar.replace_cell(name, alt)
        row["scratch_arc_evaluations"] = (
            scr_scalar.calc.arc_evaluations - before)
        row["arc_evaluation_ratio"] = (
            row["scratch_arc_evaluations"]
            / max(row["incremental_arc_evaluations"], 1))
    assert inc_scalar.arrivals() == scr_scalar.arrivals()

    graph_levels = int(obs.snapshot()["incremental.graph_levels"])
    for row in rows:
        # Locality: a small-cone edit resweeps a sliver of the circuit
        # and strictly fewer level passes than one full round trip.
        assert row["cone_gates"] < total_gates / 4
        assert row["levels_reswept"] < 2 * graph_levels
        # The issue's acceptance floor: >= 10x less re-analysis work
        # per small-cone edit than a from-scratch pass.
        assert row["arc_evaluation_ratio"] >= 10.0
    # Wall-clock floor is kept conservative (2x, not 10x) so shared CI
    # runners cannot flake the gate; the measured numbers ship in the
    # snapshot either way.
    mean_wall = sum(r["wall_speedup"] for r in rows) / len(rows)
    assert mean_wall >= 2.0

    def rerun_one_edit():
        name, base, alt = targets[0]
        inc.replace_cell(name, base)
        return inc.replace_cell(name, alt)

    benchmark.pedantic(rerun_one_edit, rounds=1, iterations=1)
    payload = {
        "circuit": CIRCUIT,
        "graph_levels": graph_levels,
        "mean_wall_speedup": mean_wall,
        "rows": rows,
    }
    benchmark.extra_info["rows"] = rows
    bench_snapshot("incremental", payload)
