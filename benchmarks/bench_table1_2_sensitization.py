"""Table 1 & 2: sensitization-vector enumeration (propagation tables).

Regenerates the paper's propagation tables for AO22 and OA12 and checks
they match row for row; the benchmark measures the enumeration itself
(it is part of the one-time library preprocessing)."""

from repro.eval import exp_tables12
from repro.gates.library import Library, default_library


def _fresh_cell(name):
    """Rebuild the cell so enumeration is not memoised across rounds."""
    lib = default_library()
    template = lib[name]
    from repro.gates.cell import Cell

    return Cell(name, template.inputs, template.func, pdn=template.pdn,
                output_inverter=template.output_inverter)


def test_table1_ao22_rows(benchmark):
    result = benchmark(exp_tables12.run)
    ao22 = result["tables"]["AO22"]
    # Paper Table 1: three vectors per input, twelve in total, and the
    # exact side assignments for input A.
    assert ao22["total_vectors"] == 12
    rows_a = [r for r in ao22["rows"] if r["A"] == "T"]
    assert [(r["B"], r["C"], r["D"]) for r in rows_a] == [
        ("1", "0", "0"), ("1", "1", "0"), ("1", "0", "1")
    ]


def test_table2_oa12_rows(benchmark):
    result = benchmark(exp_tables12.run)
    oa12 = result["tables"]["OA12"]
    # Paper Table 2: inputs A and B have one vector, input C has three.
    assert oa12["vectors_per_pin"] == {"A": 1, "B": 1, "C": 3}
    rows_c = [r for r in oa12["rows"] if r["C"] == "T"]
    assert [(r["A"], r["B"]) for r in rows_c] == [
        ("1", "0"), ("0", "1"), ("1", "1")
    ]


def test_enumeration_speed_ao22(benchmark):
    """Per-cell enumeration cost (runs on a fresh cell every round)."""

    def enumerate_fresh():
        cell = _fresh_cell("AO22")
        return cell.sensitization_vectors()

    vectors = benchmark(enumerate_fresh)
    assert sum(len(v) for v in vectors.values()) == 12


def test_whole_library_enumeration(benchmark):
    """Enumerating every pin of every cell (library preprocessing)."""

    def enumerate_library():
        total = 0
        for name in default_library().cell_names:
            cell = _fresh_cell(name)
            total += sum(len(v) for v in cell.sensitization_vectors().values())
        return total

    total = benchmark(enumerate_library)
    assert total > 50
