"""Serial vs sharded search: equivalence and effort bookkeeping.

Runs the same exhaustive enumeration serially and through the
process-pool driver (one shard per primary input) and records both
wall-clock numbers plus the per-run search counters in
``extra_info`` -- the trajectory of interest is that the merged
parallel counters equal the serial ones (the shards do exactly the
serial work, only partitioned) while wall-clock scales with available
cores.  On single-core runners the pool adds fork/IPC overhead, so no
speedup is asserted; equivalence is.
"""

import os
import time

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.perf import parallel_find_paths

JOBS = 2


@pytest.fixture(scope="module")
def circuit():
    return techmap(random_dag("par240", 16, 240, seed=7, n_outputs=8))


def test_parallel_matches_serial_effort(benchmark, poly90, circuit,
                                        bench_snapshot):
    def run_both():
        sta = TruePathSTA(circuit, poly90)
        start = time.perf_counter()
        serial_paths = sta.enumerate_paths()
        serial_seconds = time.perf_counter() - start
        serial_stats = sta.last_stats.as_dict()

        start = time.perf_counter()
        parallel_paths, merged = parallel_find_paths(
            circuit, poly90, jobs=JOBS
        )
        parallel_seconds = time.perf_counter() - start
        return (
            serial_paths,
            parallel_paths,
            serial_stats,
            merged.as_dict(),
            serial_seconds,
            parallel_seconds,
        )

    (serial_paths, parallel_paths, serial_stats, merged_stats,
     serial_seconds, parallel_seconds) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    assert [p.key for p in parallel_paths] == [p.key for p in serial_paths]
    for counter in ("paths_found", "extensions_tried", "conflicts",
                    "justification_backtracks", "justify_skipped"):
        assert merged_stats[counter] == serial_stats[counter], counter

    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = serial_seconds / max(
        parallel_seconds, 1e-9
    )
    benchmark.extra_info["serial_stats"] = serial_stats
    benchmark.extra_info["parallel_stats"] = merged_stats
    bench_snapshot("parallel_speedup", {
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "serial_stats": serial_stats,
        "parallel_stats": merged_stats,
    })
