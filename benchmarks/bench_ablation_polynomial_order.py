"""Ablation: polynomial order vs accuracy and evaluation speed.

DESIGN.md design decision 2: the paper claims the analytical polynomial
beats the LUT "even using a first order model", and that analytical
evaluation is faster than LUT interpolation.  This bench fits the same
characterization data at first order, adaptive order, and as a LUT, and
compares fit accuracy and evaluation throughput."""

import numpy as np
import pytest

from repro.charlib.characterize import CharacterizationGrid, characterize_cell
from repro.charlib.lut import LutModel
from repro.charlib.regression import fit_adaptive, fit_fixed
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES

GRID = CharacterizationGrid(
    fo=(0.5, 1.0, 2.0, 4.0, 8.0), t_in=(1e-11, 4e-11, 1.2e-10, 3e-10)
)


@pytest.fixture(scope="module")
def ao22_samples():
    lib = default_library()
    sweeps = characterize_cell(
        lib["AO22"], TECHNOLOGIES["90nm"], GRID, steps_per_window=250
    )
    samples = sweeps[("A", "A:110", False)]  # case 2, falling input
    points = np.array([[s["fo"], s["t_in"], s["temp"], s["vdd"]] for s in samples])
    delays = np.array([s["delay"] for s in samples])
    return samples, points, delays


def test_characterization_sweep_cost(benchmark):
    """Cost of characterizing one (pin, vector, edge): 20 transients."""
    lib = default_library()

    def sweep():
        sweeps = characterize_cell(
            lib["OA12"], TECHNOLOGIES["90nm"],
            CharacterizationGrid(fo=(1.0, 4.0), t_in=(2e-11, 1.2e-10)),
            steps_per_window=250,
        )
        return sweeps

    sweeps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(sweeps) == 10  # (1+1+3 vectors) x 2 edges


def test_first_order_already_decent(benchmark, ao22_samples):
    _samples, points, delays = ao22_samples
    model, report = benchmark(fit_fixed, points, delays, (1, 1, 0, 0))
    # Paper: "even using a first order model" stays useful.
    assert report.max_rel_error < 0.25
    assert report.rms_rel_error < 0.10


def test_adaptive_order_tightens_fit(benchmark, ao22_samples):
    _samples, points, delays = ao22_samples
    model, report = benchmark(fit_adaptive, points, delays, 0.02)
    first, first_report = fit_fixed(points, delays, (1, 1, 0, 0))
    assert report.max_rel_error <= first_report.max_rel_error
    assert report.max_rel_error < 0.06


def test_polynomial_eval_faster_than_lut(benchmark, ao22_samples):
    """The paper's speed claim: analytical evaluation avoids the LUT's
    interpolation machinery.  We benchmark the polynomial and check it
    is at least not slower than bilinear interpolation."""
    samples, points, delays = ao22_samples
    model, _ = fit_adaptive(points, delays, 0.02)
    lut = LutModel.from_samples(samples, GRID.t_in, GRID.fo, "delay",
                                ref_temp=25.0, ref_vdd=TECHNOLOGIES["90nm"].vdd)
    queries = [(1.7, 6.3e-11), (3.3, 2.2e-11), (0.8, 1.9e-10)] * 30

    def eval_poly():
        return [model.evaluate(fo, t, 25.0, 1.1) for fo, t in queries]

    import time

    poly_times = benchmark(eval_poly)
    start = time.perf_counter()
    for _ in range(10):
        for fo, t in queries:
            lut.evaluate(fo, t, 25.0, 1.1)
    lut_per_call = (time.perf_counter() - start) / (10 * len(queries))
    start = time.perf_counter()
    for _ in range(10):
        for fo, t in queries:
            model.evaluate(fo, t, 25.0, 1.1)
    poly_per_call = (time.perf_counter() - start) / (10 * len(queries))
    assert poly_per_call < lut_per_call * 3  # same order; not pathological


def test_polynomial_tracks_lut_grid_points(benchmark, ao22_samples):
    """On the characterization grid itself the adaptive polynomial is as
    faithful as the LUT (which is exact there)."""
    samples, points, delays = ao22_samples
    model, _ = benchmark(fit_adaptive, points, delays, 0.02)
    predicted = model.evaluate_many(points)
    rel = np.abs(predicted - delays) / delays
    assert rel.max() < 0.06
