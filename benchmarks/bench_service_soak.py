"""Sustained mixed load against the hardened daemon (soak + restart).

The fleet/admission/persistence stack exists so the daemon survives
abuse: bursts beyond its width, worker deaths, and hard restarts.  This
benchmark drives a supervised ``fleet=2`` server with several client
threads for ``$REPRO_SOAK_SECONDS`` (default 8; CI runs 60) and holds
it to the robustness acceptance criteria:

* **zero dropped-without-error requests** -- every issued request ends
  in a ``result`` frame or a structured :class:`ServiceError`; nothing
  hangs and nothing vanishes (shedding is cured by the client's
  jittered backoff retry);
* **bounded memory** -- the acceptor's RSS growth over the soak stays
  within a fixed budget (the fleet keeps per-request state in worker
  processes, so the parent must not accumulate);
* **warm restart** -- after a simulated crash (``kill``: no exit
  snapshot) and a reboot from the last periodic snapshot, a memo-hit
  repeat answers ``cached`` and its latency stays within 2x of the
  pre-crash warm latency (plus a small absolute floor, since memo hits
  are sub-millisecond and noisy).

Emits ``BENCH_service_soak.json`` under ``$REPRO_BENCH_DIR`` with the
request tally, latencies, RSS, and the full ``service.*`` counter
snapshot for the CI ``repro obs diff`` gate.
"""

from __future__ import annotations

import os
import random
import statistics
import tempfile
import threading
import time

CIRCUIT = "iscas:c432@0.1"
#: The canonical request every soak thread occasionally repeats, so the
#: memo entry the restart check relies on is guaranteed hot.
BASE_PARAMS = {"netlist": CIRCUIT, "max_paths": 5, "top": 3, "jobs": 1}
SOAK_SECONDS_ENV = "REPRO_SOAK_SECONDS"
CLIENT_THREADS = 3
#: Acceptor RSS growth budget over the soak (bytes); generous, the
#: assertion is about leaks, not allocator noise.
RSS_BUDGET_BYTES = 300 * 1024 * 1024
#: Restart criterion: post-restart memo latency <= max(2x pre, +50ms).
RESTART_FACTOR = 2.0
RESTART_FLOOR_S = 0.05


def _rss_bytes() -> int:
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0  # pragma: no cover - non-Linux


def _soak_worker(host, port, deadline, seed, outcomes, errors):
    """One client loop: mixed workload via the retrying client until
    the deadline.  Every request's ending is recorded -- the assertion
    that nothing was dropped without an error is a simple tally."""
    from repro.service import ServiceClient, ServiceError

    rng = random.Random(seed)
    client = ServiceClient(host, port, timeout=120.0)
    try:
        while time.monotonic() < deadline:
            top = rng.choice((1, 2, 3, 4, 5))
            params = dict(BASE_PARAMS, top=top)
            try:
                result = client.call_with_retry(
                    "analyze", params, retries=6, backoff_s=0.2,
                    rng=rng)
                outcomes.append(("result", result["paths"]))
            except ServiceError as exc:
                # A structured ending still counts as *answered*; the
                # soak assertion only forbids silent drops/hangs.
                errors.append(exc.code)
    finally:
        client.close()


def _memo_latency_s(client, samples: int = 5) -> float:
    """Median latency of a memo-hit repeat (asserts it *is* a hit)."""
    times = []
    for _ in range(samples):
        started = time.perf_counter()
        result = client.call("analyze", dict(BASE_PARAMS))
        times.append(time.perf_counter() - started)
        assert result.get("cached") is True, \
            "canonical repeat was not served from the memo"
    return statistics.median(times)


def test_soak_survives_sustained_load_and_restart(poly90, bench_snapshot):
    from repro.service import ServiceClient, ServiceConfig
    from repro.service.server import start_in_thread

    soak_s = float(os.environ.get(SOAK_SECONDS_ENV, "8"))
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        snapshot_path = os.path.join(tmp, "warm.json")
        config = dict(fleet=2, max_queue=8, heartbeat_interval=1.0,
                      snapshot_path=snapshot_path,
                      snapshot_interval_s=2.0)
        handle = start_in_thread(ServiceConfig(**config))
        outcomes, errors = [], []
        try:
            # Prime the memo entry the restart check replays, and pin
            # the byte-identity anchor for the whole soak.
            with ServiceClient(handle.host, handle.port,
                               timeout=120.0) as client:
                reference = client.call("analyze", dict(BASE_PARAMS))

            rss_before = _rss_bytes()
            deadline = time.monotonic() + soak_s
            threads = [
                threading.Thread(
                    target=_soak_worker,
                    args=(handle.host, handle.port, deadline, 1000 + i,
                          outcomes, errors),
                    daemon=True)
                for i in range(CLIENT_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(soak_s + 120.0)
            assert not any(t.is_alive() for t in threads), \
                "a soak client hung past the deadline"
            rss_after = _rss_bytes()

            with ServiceClient(handle.host, handle.port,
                               timeout=120.0) as client:
                pre_kill_memo_s = _memo_latency_s(client)
                stats = client.call("stats")
            handle.server.snapshot_now()
        finally:
            handle.kill()  # simulated crash: no exit snapshot

        restarted = start_in_thread(ServiceConfig(**config))
        try:
            with ServiceClient(restarted.host, restarted.port,
                               timeout=120.0) as client:
                first = client.call("analyze", dict(BASE_PARAMS))
                post_restart_memo_s = _memo_latency_s(client)
        finally:
            restarted.stop()

    # -- zero dropped-without-error ------------------------------------
    assert outcomes, "soak produced no completed requests"
    assert not errors, (
        f"{len(errors)} requests ended in errors despite retries: "
        f"{sorted(set(errors))}")
    assert all(kind == "result" for kind, _ in outcomes)
    total = stats["requests"]["total"]
    assert stats["requests"]["failed"] == 0
    assert stats["executor"]["mode"] == "fleet"

    # -- byte identity held under load ---------------------------------
    assert first["cached"] is True, \
        "restart did not re-warm the memo from the snapshot"
    assert first["report"] == reference["report"]

    # -- bounded memory ------------------------------------------------
    rss_growth = rss_after - rss_before
    assert rss_growth <= RSS_BUDGET_BYTES, (
        f"acceptor RSS grew {rss_growth / 1e6:.1f} MB over a "
        f"{soak_s:g}s soak (budget {RSS_BUDGET_BYTES / 1e6:.0f} MB)")

    # -- warm restart within 2x ----------------------------------------
    restart_ceiling = max(RESTART_FACTOR * pre_kill_memo_s,
                          pre_kill_memo_s + RESTART_FLOOR_S)
    assert post_restart_memo_s <= restart_ceiling, (
        f"post-restart memo hit {post_restart_memo_s * 1e3:.2f} ms vs "
        f"{pre_kill_memo_s * 1e3:.2f} ms pre-kill (ceiling "
        f"{restart_ceiling * 1e3:.2f} ms)")

    bench_snapshot("service_soak", {
        "circuit": CIRCUIT,
        "soak_seconds": soak_s,
        "client_threads": CLIENT_THREADS,
        "requests_completed": len(outcomes),
        "requests_errored": len(errors),
        "server_requests_total": total,
        "server_requests_failed": stats["requests"]["failed"],
        "admission": stats["admission"],
        "executor": stats["executor"],
        "rss_before_bytes": rss_before,
        "rss_after_bytes": rss_after,
        "rss_growth_bytes": rss_growth,
        "pre_kill_memo_s": round(pre_kill_memo_s, 6),
        "post_restart_memo_s": round(post_restart_memo_s, 6),
        "restart_ceiling_s": round(restart_ceiling, 6),
    })
