"""Tables 3 & 4: sensitization-vector-dependent gate delay.

Electrically measures AO22 (input A) and OA12 (input C) under every
vector, both edges, all three technologies -- the exact setup of the
paper's Tables 3 and 4 -- and asserts the shape: case orderings, the
sign and rough magnitude of the percentage differences, and the
per-node trends (90nm fastest, 65nm LP slower with smaller spread).

Every test takes the ``benchmark`` fixture so the whole module runs
under ``--benchmark-only``; the electrical sweeps are cached per module
so the heavy measurement happens once.
"""

import pytest

from repro.eval.exp_tables34 import vector_delay_rows
from repro.tech.presets import TECHNOLOGIES

STEPS = 250


@pytest.fixture(scope="module")
def table3():
    return vector_delay_rows("AO22", "A", steps_per_window=STEPS)


@pytest.fixture(scope="module")
def table4():
    return vector_delay_rows("OA12", "C", steps_per_window=STEPS)


def _rows(table, tech, edge):
    return next(r for r in table if r["tech"] == tech and r["edge"] == edge)


def test_table3_single_node_measurement(benchmark):
    """Cost of one node's Table 3 measurement (12 transients)."""
    rows = benchmark.pedantic(
        vector_delay_rows, args=("AO22", "A"),
        kwargs={"technologies": {"130nm": TECHNOLOGIES["130nm"]},
                "steps_per_window": STEPS},
        rounds=1, iterations=1,
    )
    d = _rows(rows, "130nm", "In Fall")["delays"]
    assert d[1] < d[3] < d[2]


def test_table3_fall_ordering_every_node(benchmark, table3):
    """In Fall: case 1 < case 3 < case 2 at every node (paper Table 3)."""
    rows = benchmark(lambda: [
        _rows(table3, tech, "In Fall") for tech in ("130nm", "90nm", "65nm")
    ])
    for row in rows:
        d = row["delays"]
        assert d[1] < d[3] < d[2], row["tech"]


def test_table3_fall_spread_magnitudes(benchmark, table3):
    """Case-2 spreads: double digits at 130/90nm, smaller at 65nm."""
    spreads = benchmark(lambda: {
        tech: _rows(table3, tech, "In Fall")["diffs"][2]
        for tech in ("130nm", "90nm", "65nm")
    })
    assert spreads["130nm"] > 0.10
    assert spreads["90nm"] > 0.10
    assert 0.05 < spreads["65nm"] < spreads["130nm"]


def test_table3_rise_insensitive(benchmark, table3):
    """In Rise variations stay within a few percent (paper: |diff|<6%)."""
    diffs = benchmark(lambda: [
        _rows(table3, tech, "In Rise")["diffs"]
        for tech in ("130nm", "90nm", "65nm")
    ])
    for d in diffs:
        assert all(abs(v) < 0.08 for v in d.values())


def test_table3_node_speed_trend(benchmark, table3):
    """90nm is the fastest node; the LP-flavoured 65nm is slower."""
    c1 = benchmark(lambda: {
        tech: _rows(table3, tech, "In Rise")["delays"][1]
        for tech in ("130nm", "90nm", "65nm")
    })
    assert c1["90nm"] < c1["130nm"]
    assert c1["90nm"] < c1["65nm"]


def test_table4_rise_ordering(benchmark, table4):
    """In Rise: case 1 slowest, case 3 fastest at every node (Table 4)."""
    rows = benchmark(lambda: [
        _rows(table4, tech, "In Rise") for tech in ("130nm", "90nm", "65nm")
    ])
    for row in rows:
        d = row["delays"]
        assert d[3] < d[2] < d[1], row["tech"]


def test_table4_diffs_negative(benchmark, table4):
    """Cases 2/3 faster than case 1: negative diffs, case 3 larger in
    magnitude (paper: -12% / -17% at 130nm)."""
    diffs = benchmark(lambda: {
        tech: _rows(table4, tech, "In Rise")["diffs"]
        for tech in ("130nm", "90nm", "65nm")
    })
    for tech, d in diffs.items():
        assert d[2] < -0.03, tech
        assert d[3] < d[2], tech


def test_table4_single_node_measurement(benchmark):
    rows = benchmark.pedantic(
        vector_delay_rows, args=("OA12", "C"),
        kwargs={"technologies": {"90nm": TECHNOLOGIES["90nm"]},
                "steps_per_window": STEPS},
        rounds=1, iterations=1,
    )
    assert len(rows) == 2  # both edges
