"""Cross-validation: reported paths must materialize dynamically.

For the top reported true paths of a suite circuit, replay each path's
justifying input vector through the event-driven timing simulator (an
independent mechanism: event propagation with inertial filtering, not
path search).  Every path must produce an endpoint event, and the
settle time must track the reported arrival.  This is the repository's
strongest end-to-end consistency check at circuit scale."""

import pytest

from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit
from repro.netlist.timingsim import TimingSimulator, measure_path_delay

TOP_N = 10


@pytest.fixture(scope="module")
def validation(poly90):
    circuit = build_circuit("c880a", scale=0.25)
    sta = TruePathSTA(circuit, poly90)
    paths = sta.n_worst_paths(TOP_N, prune=False)
    simulator = TimingSimulator(circuit, poly90)
    rows = []
    for path in paths:
        polarity = max(path.polarities(), key=lambda p: p.arrival)
        measured = measure_path_delay(
            simulator, polarity.input_vector, path.nets[0],
            polarity.input_rising, path.nets[-1],
        )
        rows.append({
            "path": path,
            "reported": polarity.arrival,
            "dynamic": measured,
        })
    return rows


def test_validation_run(benchmark, poly90):
    circuit = build_circuit("c880a", scale=0.25)
    simulator = TimingSimulator(circuit, poly90)
    sta = TruePathSTA(circuit, poly90)
    path = sta.n_worst_paths(1, prune=False)[0]
    polarity = max(path.polarities(), key=lambda p: p.arrival)

    def replay():
        return measure_path_delay(
            simulator, polarity.input_vector, path.nets[0],
            polarity.input_rising, path.nets[-1],
        )

    measured = benchmark(replay)
    assert measured is not None


def test_every_top_path_materializes(benchmark, validation):
    rows = benchmark(lambda: validation)
    for row in rows:
        assert row["dynamic"] is not None, row["path"].describe()


def test_dynamic_settle_tracks_reported_arrival(benchmark, validation):
    rows = benchmark(lambda: validation)
    for row in rows:
        if row["dynamic"] is None:
            continue
        ratio = row["dynamic"] / row["reported"]
        # Same arcs, different mechanism; reconvergent slew handling
        # differs slightly, and the dynamic settle may come via another
        # (even longer-activating) route.
        assert 0.5 < ratio < 1.3, row["path"].describe()


def test_worst_reported_at_least_dynamic_worst(benchmark, validation):
    rows = benchmark(lambda: validation)
    worst_reported = max(r["reported"] for r in rows)
    worst_dynamic = max(r["dynamic"] for r in rows if r["dynamic"])
    assert worst_reported >= worst_dynamic * 0.85