"""Ablation: the dual-value logic system (DESIGN.md decision 1).

The paper's dual value system computes both transition polarities of a
path in a single pass, "avoiding passing twice through the same path".
This bench runs the path finder in dual mode and in two single-polarity
passes and checks:

* identical path sets per polarity;
* traversal work (extensions tried, states saved) is exactly halved;
* wall-clock time is lower for the dual pass on a justification-heavy
  circuit (the ECC/XOR-tree stand-in, where the shared traversal and
  single justification per step pay off).
"""

import time

import pytest

from repro.core.engine import FALLING, RISING
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit


@pytest.fixture(scope="module")
def sta(poly90):
    return TruePathSTA(build_circuit("c499", scale=0.3), poly90)


@pytest.fixture(scope="module")
def measured(sta):
    # Wall-clock measured as best-of-two to damp interpreter noise (the
    # structural work comparison below is exact and noise-free).
    dual_times = []
    for _ in range(2):
        start = time.perf_counter()
        dual = sta.enumerate_paths(max_paths=20000)
        dual_times.append(time.perf_counter() - start)
    dual_stats = sta.last_stats

    two_times = []
    for _ in range(2):
        start = time.perf_counter()
        rise = sta.enumerate_paths(max_paths=20000, single_polarity=RISING)
        rise_stats = sta.last_stats
        fall = sta.enumerate_paths(max_paths=20000, single_polarity=FALLING)
        fall_stats = sta.last_stats
        two_times.append(time.perf_counter() - start)
    return {
        "dual": dual, "rise": rise, "fall": fall,
        "dual_time": min(dual_times), "two_time": min(two_times),
        "dual_ext": dual_stats.extensions_tried,
        "two_ext": rise_stats.extensions_tried + fall_stats.extensions_tried,
        "dual_saves": dual_stats.states_saved,
        "two_saves": rise_stats.states_saved + fall_stats.states_saved,
    }


def test_dual_pass_speed(benchmark, sta):
    """Wall-clock of the dual single-pass enumeration (the paper mode)."""
    paths = benchmark.pedantic(
        lambda: sta.enumerate_paths(max_paths=20000), rounds=1, iterations=1
    )
    assert paths


def test_two_single_passes_equal_dual(benchmark, measured):
    data = benchmark(lambda: measured)
    dual_rise = {p.key for p in data["dual"] if p.rise}
    dual_fall = {p.key for p in data["dual"] if p.fall}
    assert dual_rise == {p.key for p in data["rise"]}
    assert dual_fall == {p.key for p in data["fall"]}


def test_dual_halves_traversal_work(benchmark, measured):
    """'avoids passing twice through the same path' -- literally."""
    data = benchmark(lambda: measured)
    assert data["dual_ext"] * 2 == data["two_ext"]
    assert data["dual_saves"] < data["two_saves"]


def test_dual_not_slower_than_two_passes(benchmark, measured):
    """The dual pass does half the traversal work (asserted exactly
    above); in wall clock it is at worst on par with two passes --
    Python constant factors (two evaluations per gate in dual mode)
    eat part of the structural saving, so the assertion allows a small
    noise band rather than demanding a strict win."""
    data = benchmark(lambda: measured)
    assert data["dual_time"] <= data["two_time"] * 1.10
