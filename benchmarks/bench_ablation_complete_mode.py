"""Ablation: paper-mode vs complete-mode path finding.

The paper's control flow commits to the first justification found at
each step ("jumps to the last saved point"); our ``complete=True``
extension re-solves the whole requirement set per polarity with
dynamic nine-valued cubes, which the tests prove exact against brute
force.  This bench quantifies the trade: complete mode finds at least
as many sensitizations at a higher (but bounded) cost."""

import time

import pytest

from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit


@pytest.fixture(scope="module")
def measured(poly90):
    rows = {}
    for name, scale in [("c432", 0.3), ("c499", 0.25), ("c880a", 0.25)]:
        sta = TruePathSTA(build_circuit(name, scale=scale), poly90)
        start = time.perf_counter()
        paper = sta.enumerate_paths(max_paths=10000)
        paper_time = time.perf_counter() - start
        start = time.perf_counter()
        complete = sta.enumerate_paths(max_paths=10000, complete=True)
        complete_time = time.perf_counter() - start
        rows[name] = {
            "paper": {(p.key, pol.input_rising)
                      for p in paper for pol in p.polarities()},
            "complete": {(p.key, pol.input_rising)
                         for p in complete for pol in p.polarities()},
            "paper_time": paper_time,
            "complete_time": complete_time,
        }
    return rows


def test_run_both_modes(benchmark, poly90):
    sta = TruePathSTA(build_circuit("c432", scale=0.3), poly90)
    paths = benchmark.pedantic(
        lambda: sta.enumerate_paths(max_paths=10000, complete=True),
        rounds=1, iterations=1,
    )
    assert paths


def test_complete_superset(benchmark, measured):
    rows = benchmark(lambda: measured)
    for name, row in rows.items():
        assert row["paper"] <= row["complete"], name


def test_complete_cost_bounded(benchmark, measured):
    """Complete mode costs more but stays within a small multiple."""
    rows = benchmark(lambda: measured)
    for name, row in rows.items():
        assert row["complete_time"] < 40 * max(row["paper_time"], 0.01), name


def test_paper_mode_recall_depends_on_xor_density(benchmark, measured):
    """Measured recalls (paper mode vs exact): c432 ~95%, c880a ~75%,
    c499 ~54%.  The misses concentrate where steady requirements land
    inside the transition cone of XOR/parity trees -- justifiable only
    dynamically (XNOR of opposite transitions), which paper-mode static
    cubes cannot express.  The assertion pins the measured band:
    soundness always, recall >= 50% aggregate and >= 90% on the
    AND/OR-dominated circuit."""
    rows = benchmark(lambda: measured)
    total = found = 0
    for name, row in rows.items():
        assert row["paper"] <= row["complete"], name  # soundness
        total += len(row["complete"])
        found += len(row["paper"] & row["complete"])
    assert total == 0 or found >= 0.5 * total
    c432 = rows["c432"]
    assert len(c432["paper"]) >= 0.9 * len(c432["complete"])
