"""Vectorized SoA timing core vs the scalar traversal it replaces.

Times the forward worst-arrival pass and the backward required-bound
construction (``prune_bounds``) with ``vectorize`` off and on, on a
mid-size and the largest ISCAS circuit.  The vectorized sweeps promise
byte identity, so the equivalence asserts here are exact -- the only
thing allowed to change is the clock.  The snapshot carries the
``tgraph.forward_pass_ms``/``tgraph.backward_pass_ms`` histograms next
to the measured speedups for the ``repro obs diff`` trajectory.
"""

import time

import pytest

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.eval.iscas import build_circuit

CIRCUITS = ["c1355", "c7552"]


def _run(circuit, charlib, vectorize):
    calc = DelayCalculator(
        EngineCircuit(circuit), charlib, vectorize=vectorize)
    start = time.perf_counter()
    forward = calc.ec.tgraph.forward_arrivals(calc)
    forward_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bounds = calc.prune_bounds()
    backward_seconds = time.perf_counter() - start
    return forward, bounds, forward_seconds, backward_seconds


@pytest.fixture(scope="module")
def sweep(poly90):
    rows = []
    for name in CIRCUITS:
        circuit = build_circuit(name)
        ft_s, pb_s, fwd_s, bwd_s = _run(circuit, poly90, vectorize=False)
        ft_v, pb_v, fwd_v, bwd_v = _run(circuit, poly90, vectorize=True)
        # Byte identity, not tolerance: the SoA sweeps replay the same
        # IEEE operations the scalar loops perform.
        assert ft_s.arrivals == ft_v.arrivals
        assert ft_s.slews == ft_v.slews
        assert pb_s.required == pb_v.required
        assert pb_s.suffix == pb_v.suffix
        rows.append({
            "circuit": name,
            "gates": len(circuit.instances),
            "forward_scalar_ms": fwd_s * 1e3,
            "forward_vectorized_ms": fwd_v * 1e3,
            "forward_speedup": fwd_s / max(fwd_v, 1e-9),
            "backward_scalar_ms": bwd_s * 1e3,
            "backward_vectorized_ms": bwd_v * 1e3,
            "backward_speedup": bwd_s / max(bwd_v, 1e-9),
        })
    return rows


def test_vectorized_passes_byte_identical_and_faster(
        benchmark, poly90, sweep, bench_snapshot):
    def rerun_vectorized():
        circuit = build_circuit(CIRCUITS[0])
        return _run(circuit, poly90, vectorize=True)

    benchmark.pedantic(rerun_vectorized, rounds=1, iterations=1)

    by_name = {row["circuit"]: row for row in sweep}
    # The issue's acceptance floor is 10x on c7552's backward pass;
    # assert a conservative 2x here so shared CI runners cannot flake
    # the gate while still catching a de-vectorization regression.
    assert by_name["c7552"]["backward_speedup"] >= 2.0

    benchmark.extra_info["rows"] = sweep
    bench_snapshot("vectorized", {"rows": sweep})


def test_compiled_tables_ship_once(benchmark, poly90, bench_snapshot):
    """Exporting the compiled tables costs one sweep; seeding a second
    calculator from them costs effectively nothing."""
    circuit = build_circuit("c1355")

    def export_and_seed():
        parent = DelayCalculator(
            EngineCircuit(circuit), poly90, vectorize=True)
        tables = parent.export_tables()
        start = time.perf_counter()
        child = DelayCalculator(
            EngineCircuit(circuit), poly90, compiled=tables)
        bounds = child.prune_bounds()
        seed_seconds = time.perf_counter() - start
        assert bounds.required == tables.required
        return seed_seconds

    seed_seconds = benchmark.pedantic(
        export_and_seed, rounds=1, iterations=1)
    benchmark.extra_info["seed_seconds"] = seed_seconds
    bench_snapshot("vectorized_seed", {"seed_seconds": seed_seconds})
