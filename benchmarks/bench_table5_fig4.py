"""Table 5 / Figure 4: the example-circuit case study.

Asserts the paper's narrative end to end at 90 nm: the developed tool
reports every sensitization vector of the critical path (including the
slow ``N6=1, N7=0`` one), the two-step baseline reports only the easy
``N6=0`` vector, and golden electrical simulation confirms the missed
vector is the slowest by a solid margin (the paper measures +7.3%)."""

import pytest

from repro.baseline.sta2step import TwoStepSTA
from repro.core.sta import TruePathSTA
from repro.eval import exp_table5
from repro.eval.fig4 import CRITICAL_NETS, fig4_circuit


@pytest.fixture(scope="module")
def table5(tech90, poly90, lut90):
    return exp_table5.run(tech90, poly90, lut90, steps_per_window=250)


def test_table5_full_run(benchmark, tech90, poly90, lut90):
    result = benchmark.pedantic(
        exp_table5.run, args=(tech90, poly90, lut90),
        kwargs={"steps_per_window": 250}, rounds=1, iterations=1,
    )
    assert len(result["rows"]) == 3


def test_developed_finds_all_vectors(benchmark, table5):
    variants = benchmark(lambda: table5["developed_variants"])
    assert len(variants) == 3
    cases = {p.steps[2].case for p in variants}
    assert cases == {1, 2, 3}


def test_baseline_reports_easy_vector_only(benchmark, table5):
    base = benchmark(lambda: table5["baseline_variants"])
    assert len(base) == 1
    assert base[0].steps[2].case == 1  # the N6=0 easy justification


def test_baseline_missed_worst(benchmark, table5):
    missed = benchmark(lambda: table5["baseline_missed_worst"])
    assert missed is True


def test_golden_gap_significant(benchmark, table5):
    """Paper: 387.6 vs 361.1 ps = +7.3%; we require a >3% gap."""
    gap = benchmark(lambda: table5["golden_gap"])
    assert gap > 0.03


def test_model_ranks_vectors_like_golden(benchmark, table5):
    rows = benchmark(lambda: sorted(
        table5["rows"], key=lambda r: -r["model_delay"]
    ))
    goldens = [r["golden_delay"] for r in rows]
    assert goldens == sorted(goldens, reverse=True)


def test_worst_vector_is_paper_slow_vector(benchmark, table5):
    worst = benchmark(lambda: table5["rows"][0])
    vec = worst["input_vector"]
    assert vec["N6"] == 1 and vec["N7"] == 0  # the paper's slow vector


def test_easy_vector_leaves_n7_free(benchmark, table5):
    easiest = benchmark(lambda: min(
        table5["rows"], key=lambda r: r["model_delay"]
    ))
    vec = easiest["input_vector"]
    assert vec["N6"] == 0
    assert vec["N7"] is None  # don't-care, as in the paper's vector
