"""Warm served requests vs cold one-shot CLI invocations (c7552).

The service exists to amortize startup: a cold ``repro analyze`` pays
interpreter boot, imports, charlib load, circuit indexing, and SoA
compilation before the first arc is evaluated, every single time.  A
warm server pays them once.  This benchmark measures both sides on the
largest bundled circuit, scaled (``@0.2``) with a deliberately tiny
search (``--max-paths 5``) so that the per-request search is small
relative to startup -- the comparison isolates the overhead the server
amortizes, not search throughput (at full scale the exhaustive search
itself runs for minutes and would dominate both sides equally):

* **cold** -- a fresh ``python -m repro.cli analyze`` subprocess
  (charlib *disk* cache warm, so no characterization cost pollutes it);
* **warm compute** -- the same config against a hot server context,
  varied ``top`` so the result memo cannot short-circuit the search;
* **warm memo** -- the exact repeat, served from the result memo.

Asserts the acceptance criterion (warm compute >= 10x cold) plus served
/CLI byte identity, and emits ``BENCH_service.json`` under
``$REPRO_BENCH_DIR``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

CIRCUIT = "iscas:c7552@0.2"
BASE_ARGS = ["--max-paths", "5", "--top", "3"]
BASE_PARAMS = {"netlist": CIRCUIT, "max_paths": 5, "top": 3}
TARGET_SPEEDUP = 10.0


def _cold_cli_run() -> "tuple[float, str]":
    """Wall time and stdout of one cold one-shot CLI invocation."""
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze", CIRCUIT, *BASE_ARGS],
        capture_output=True, text=True, env=env, check=True)
    return time.perf_counter() - started, proc.stdout


def test_warm_service_amortizes_startup(poly90, bench_snapshot):
    # poly90 guarantees the charlib *disk* cache is populated, so the
    # cold runs below measure startup, not one-time characterization.
    from repro.service import ServiceClient, ServiceConfig
    from repro.service.server import start_in_thread

    cold_runs = [_cold_cli_run() for _ in range(2)]
    cold_s = min(t for t, _ in cold_runs)  # best case for the CLI
    cold_stdout = cold_runs[0][1]

    handle = start_in_thread(ServiceConfig(heartbeat_interval=5.0))
    try:
        with ServiceClient(handle.host, handle.port, timeout=600.0) as c:
            first = c.call("analyze", dict(BASE_PARAMS))

            # Warm compute: hot context, fresh fingerprint (top varies),
            # so the search actually runs.  Median of 5.
            compute_times = []
            for top in (1, 2, 4, 6, 7):
                started = time.perf_counter()
                c.call("analyze", dict(BASE_PARAMS, top=top))
                compute_times.append(time.perf_counter() - started)
            warm_compute_s = sorted(compute_times)[len(compute_times) // 2]

            started = time.perf_counter()
            repeat = c.call("analyze", dict(BASE_PARAMS))
            warm_memo_s = time.perf_counter() - started

            cache_stats = c.call("stats")["contexts"]
    finally:
        handle.stop()

    # Correctness before speed: the served report is the CLI's stdout.
    assert first["report"] + "\n" == cold_stdout
    assert repeat["cached"] is True

    speedup_compute = cold_s / warm_compute_s
    speedup_memo = cold_s / warm_memo_s
    bench_snapshot("service", {
        "circuit": CIRCUIT,
        "cold_cli_s": round(cold_s, 4),
        "warm_compute_s": round(warm_compute_s, 6),
        "warm_memo_s": round(warm_memo_s, 6),
        "speedup_compute": round(speedup_compute, 1),
        "speedup_memo": round(speedup_memo, 1),
        "target_speedup": TARGET_SPEEDUP,
        "context_cache": cache_stats,
    })
    assert speedup_compute >= TARGET_SPEEDUP, (
        f"warm served request only {speedup_compute:.1f}x faster than "
        f"cold CLI ({warm_compute_s * 1e3:.1f} ms vs {cold_s:.2f} s); "
        f"acceptance floor is {TARGET_SPEEDUP}x")
    assert speedup_memo >= speedup_compute
