"""Figures 2 & 3: transistor-level current-path analysis.

The figures' content -- which devices are ON/OFF/switching under each
sensitization vector and why that orders the delays -- is regenerated
and its causal claims asserted."""

from repro.eval import exp_fig23
from repro.eval.transistor_report import ON
from repro.tech.presets import TECHNOLOGIES


def test_fig2_3_analysis(benchmark):
    result = benchmark(exp_fig23.run, TECHNOLOGIES["130nm"])
    summary = result["summary"]

    # Fig 2 (AO22, falling A): case 1 charges through BOTH parallel
    # PMOS devices; cases 2 and 3 have only one.
    assert summary["fig2_pmos_on_per_case"] == {1: 2, 2: 1, 3: 1}
    # Cases 2/3 both have one extra ON NMOS; the *position* of that
    # device (checked below) is what separates their delays.
    assert summary["fig2_nmos_on_per_case"][2] == summary["fig2_nmos_on_per_case"][3]

    # Fig 3 (OA12, rising C): case 3 discharges through both parallel
    # NMOS devices -- it is the fastest case of Table 4.
    nmos = summary["fig3_nmos_on_per_case"]
    assert nmos[3] == 2 and nmos[1] == 1 and nmos[2] == 1


def test_fig2_charge_stealer_position(benchmark):
    """Case 2's extra ON NMOS touches the switching core node Y (it
    steals charging current); case 3's does not -- the paper's stated
    reason why case 2 is slower than case 3."""

    def analyze():
        return exp_fig23.run(TECHNOLOGIES["130nm"])

    result = benchmark(analyze)
    fig2 = {a.case: a for a in result["fig2"]}

    def on_nmos_touching_y(analysis):
        return [
            d for d in analysis.devices
            if d.kind == "n" and d.state == ON and "Y" in (d.a, d.b)
        ]

    assert len(on_nmos_touching_y(fig2[2])) == 1
    assert len(on_nmos_touching_y(fig2[3])) == 0
