"""Shared fixtures for the benchmark harness.

Characterized libraries are disk-cached; the first cold run spends a few
minutes per technology in the transistor-level characterizer, subsequent
runs load JSON.

Every benchmark runs against a freshly reset observability registry and
attaches the resulting metrics snapshot to ``benchmark.extra_info``, so
``--benchmark-json`` outputs (the ``BENCH_*.json`` trajectory) carry
search-effort counters -- extensions, conflicts, justification
backtracks, arc evaluations -- next to the wall-clock numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import obs
from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES

#: Directory for standalone ``BENCH_<name>.json`` snapshots.  Unset
#: (the default) disables emission, so plain test runs stay read-only.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


@pytest.fixture(autouse=True)
def _metrics_snapshot(request):
    """Reset the metrics registry per benchmark and attach the snapshot.

    The benchmark fixture must be resolved *before* the yield: this
    autouse fixture is set up first and therefore torn down last, when
    explicitly requested fixtures are no longer available.
    """
    obs.reset()
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is not None:
        obs.aggregate.record_resource_usage()
        benchmark.extra_info["metrics"] = obs.snapshot()


@pytest.fixture
def bench_snapshot(request):
    """Writer for standalone ``BENCH_<name>.json`` metric snapshots.

    Returns a callable ``(name, payload) -> Optional[Path]`` that dumps
    the payload plus the current metrics snapshot (with resource-usage
    gauges stamped) under ``$REPRO_BENCH_DIR`` -- so benchmark runs
    leave diffable artifacts for ``repro obs diff`` without needing the
    pytest-benchmark JSON machinery.  No-op unless the env var is set.
    """
    def write(name: str, payload: dict):
        out_dir = os.environ.get(BENCH_DIR_ENV)
        if not out_dir:
            return None
        obs.aggregate.record_resource_usage()
        document = {
            "bench": name,
            "test": request.node.name,
            **payload,
            "metrics": obs.snapshot(),
        }
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        path = target / f"BENCH_{name}.json"
        path.write_text(json.dumps(document, indent=2, default=str))
        return path

    return write


def _poly(tech):
    return characterize_library(default_library(), tech, grid=FAST_GRID)


def _lut(tech):
    return characterize_library(
        default_library(), tech, grid=FAST_GRID, model="lut",
        vector_mode="default",
    )


@pytest.fixture(scope="session")
def tech90():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="session")
def tech130():
    return TECHNOLOGIES["130nm"]


@pytest.fixture(scope="session")
def tech65():
    return TECHNOLOGIES["65nm"]


@pytest.fixture(scope="session")
def poly90(tech90):
    return _poly(tech90)


@pytest.fixture(scope="session")
def lut90(tech90):
    return _lut(tech90)


@pytest.fixture(scope="session")
def poly130(tech130):
    return _poly(tech130)


@pytest.fixture(scope="session")
def lut130(tech130):
    return _lut(tech130)


@pytest.fixture(scope="session")
def poly65(tech65):
    return _poly(tech65)


@pytest.fixture(scope="session")
def lut65(tech65):
    return _lut(tech65)
