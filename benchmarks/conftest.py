"""Shared fixtures for the benchmark harness.

Characterized libraries are disk-cached; the first cold run spends a few
minutes per technology in the transistor-level characterizer, subsequent
runs load JSON.

Every benchmark runs against a freshly reset observability registry and
attaches the resulting metrics snapshot to ``benchmark.extra_info``, so
``--benchmark-json`` outputs (the ``BENCH_*.json`` trajectory) carry
search-effort counters -- extensions, conflicts, justification
backtracks, arc evaluations -- next to the wall-clock numbers.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(autouse=True)
def _metrics_snapshot(request):
    """Reset the metrics registry per benchmark and attach the snapshot.

    The benchmark fixture must be resolved *before* the yield: this
    autouse fixture is set up first and therefore torn down last, when
    explicitly requested fixtures are no longer available.
    """
    obs.reset()
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is not None:
        benchmark.extra_info["metrics"] = obs.snapshot()


def _poly(tech):
    return characterize_library(default_library(), tech, grid=FAST_GRID)


def _lut(tech):
    return characterize_library(
        default_library(), tech, grid=FAST_GRID, model="lut",
        vector_mode="default",
    )


@pytest.fixture(scope="session")
def tech90():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="session")
def tech130():
    return TECHNOLOGIES["130nm"]


@pytest.fixture(scope="session")
def tech65():
    return TECHNOLOGIES["65nm"]


@pytest.fixture(scope="session")
def poly90(tech90):
    return _poly(tech90)


@pytest.fixture(scope="session")
def lut90(tech90):
    return _lut(tech90)


@pytest.fixture(scope="session")
def poly130(tech130):
    return _poly(tech130)


@pytest.fixture(scope="session")
def lut130(tech130):
    return _lut(tech130)


@pytest.fixture(scope="session")
def poly65(tech65):
    return _poly(tech65)


@pytest.fixture(scope="session")
def lut65(tech65):
    return _lut(tech65)
