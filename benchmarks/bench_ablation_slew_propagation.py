"""Ablation: slew propagation along the path.

The paper's model computes each gate's delay from the *previous gate's
output transition time*.  This bench disables that (every stage sees
the nominal input slew) and scores both variants against the golden
electrical chain simulation on the Fig. 4 critical path plus suite
samples: the slew-propagated estimate must be strictly closer to
golden."""

import pytest

from repro.core.sta import TruePathSTA
from repro.eval.fig4 import CRITICAL_NETS, fig4_circuit
from repro.eval.golden import estimate_path_with, simulate_timed_path


@pytest.fixture(scope="module")
def fig4_measured(tech90, poly90):
    circuit = fig4_circuit()
    sta = TruePathSTA(circuit, poly90)
    paths = [p for p in sta.enumerate_paths() if p.nets == CRITICAL_NETS]
    rows = []
    for path in paths:
        polarity = max(path.polarities(), key=lambda q: q.arrival)
        golden = simulate_timed_path(
            circuit, poly90, tech90, path, polarity, steps_per_window=250,
        )
        with_slew, _ = estimate_path_with(sta.calc, sta.ec, path, polarity)
        without, _ = estimate_path_with(
            sta.calc, sta.ec, path, polarity, propagate_slew=False
        )
        rows.append({
            "golden": golden.path_delay,
            "with_slew": with_slew,
            "without_slew": without,
        })
    return rows


def test_measurement(benchmark, fig4_measured):
    rows = benchmark(lambda: fig4_measured)
    assert len(rows) == 3


def test_propagated_slew_tracks_golden(benchmark, fig4_measured):
    rows = benchmark(lambda: fig4_measured)
    for row in rows:
        err = abs(row["with_slew"] - row["golden"]) / row["golden"]
        assert err < 0.05


def test_disabling_slew_hurts(benchmark, fig4_measured):
    """Aggregate error without slew propagation is strictly larger."""
    rows = benchmark(lambda: fig4_measured)
    err_with = sum(
        abs(r["with_slew"] - r["golden"]) / r["golden"] for r in rows
    )
    err_without = sum(
        abs(r["without_slew"] - r["golden"]) / r["golden"] for r in rows
    )
    assert err_with < err_without
