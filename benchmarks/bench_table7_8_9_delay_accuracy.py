"""Tables 7, 8, 9: delay accuracy vs electrical simulation.

One test per technology node (Table 7 = 130nm, Table 8 = 90nm,
Table 9 = 65nm).  Each samples multi-vector true paths from suite
circuits, replays them through the transistor-level chain simulator and
scores both tools.  The asserted shape, per the paper:

* the developed tool's mean path error is a few percent;
* the vector-blind LUT baseline's error is larger on every circuit;
* the gap is systematic across technologies (the paper's baseline
  degrades toward 65nm where it reaches ~20-33% mean path error).
"""

import pytest

from repro.eval import exp_accuracy

CIRCUITS = ["c17", "c432", "c499"]
SCALE = 0.25
PATHS = 4
STEPS = 250


def _run(tech, poly, lut, label):
    return exp_accuracy.run(
        tech, poly, lut,
        circuits=CIRCUITS, scale=SCALE,
        paths_per_circuit=PATHS, steps_per_window=STEPS,
        table_label=label,
    )


def _assert_shape(result):
    rows = result["rows"]
    for row in rows:
        assert row.developed.mean_path_error < 0.12, row.circuit
    # Aggregate claim: the vector-resolved tool is more accurate overall
    # (per-circuit sampling noise can flip an individual NAND-dominated
    # row, as in the paper's own c499@130nm outlier).
    dev_mean = sum(r.developed.mean_path_error for r in rows) / len(rows)
    base_mean = sum(r.baseline.mean_path_error for r in rows) / len(rows)
    assert dev_mean <= base_mean
    # And on at least one multi-vector-rich circuit the gap is large.
    assert any(
        r.baseline.mean_path_error > 1.5 * r.developed.mean_path_error
        for r in rows
    )


def test_table7_130nm(benchmark, tech130, poly130, lut130):
    result = benchmark.pedantic(
        _run, args=(tech130, poly130, lut130, "Table 7"),
        rounds=1, iterations=1,
    )
    _assert_shape(result)


def test_table8_90nm(benchmark, tech90, poly90, lut90):
    result = benchmark.pedantic(
        _run, args=(tech90, poly90, lut90, "Table 8"),
        rounds=1, iterations=1,
    )
    _assert_shape(result)


def test_table9_65nm(benchmark, tech65, poly65, lut65):
    result = benchmark.pedantic(
        _run, args=(tech65, poly65, lut65, "Table 9"),
        rounds=1, iterations=1,
    )
    _assert_shape(result)
    # The baseline's penalty for ignoring vectors exists at the finer
    # node too (paper: its 65nm mean path errors are the largest).
    worst_base = max(r.baseline.mean_path_error for r in result["rows"])
    worst_dev = max(r.developed.mean_path_error for r in result["rows"])
    assert worst_base > worst_dev
