"""Table 6: path identification across the benchmark suite.

Runs both tools over a down-scaled suite (the generators are calibrated
stand-ins; see DESIGN.md section 4) and asserts the paper's relative
claims rather than its absolute per-circuit counts:

* the single-pass tool enumerates *every* sensitization (vector-resolved
  true paths) and is not slower than the baseline's limited check;
* the baseline leaves a substantial fraction of explored structural
  paths without any input vector (paper: 32-88%);
* every course the baseline proves true is also found by the developed
  tool (soundness cross-check);
* on multi-vector paths the baseline's single easy vector frequently is
  not the worst one (paper: mean only ~40% correct).
"""

import pytest

from repro.baseline.sta2step import TwoStepSTA
from repro.core.sta import TruePathSTA
from repro.eval import exp_table6
from repro.eval.iscas import build_circuit

CIRCUITS = ["c17", "c432", "c499", "c880a", "c1355"]
SCALE = 0.3


@pytest.fixture(scope="module")
def table6(poly90, lut90):
    return exp_table6.run(
        poly90, lut90,
        circuits=CIRCUITS,
        scale=SCALE,
        backtrack_limit=1000,
        max_dev_paths=20000,
        max_structural_paths=1000,
    )


def test_table6_full_run(benchmark, poly90, lut90):
    result = benchmark.pedantic(
        exp_table6.run, args=(poly90, lut90),
        kwargs=dict(circuits=["c17", "c432"], scale=0.2,
                    max_dev_paths=5000, max_structural_paths=500),
        rounds=1, iterations=1,
    )
    assert len(result["rows"]) == 2


def test_c17_exact_counts(benchmark, table6):
    row = benchmark(lambda: table6["rows"][0])
    assert row.circuit == "c17"
    # 11 true paths x 2 polarities; no complex gates in c17.
    assert row.dev_input_vectors == 22
    assert row.base_true == 11
    assert row.base_false_misidentified == 0


def test_multi_vector_paths_found(benchmark, table6):
    rows = benchmark(lambda: table6["rows"])
    assert any(r.dev_multi_vector_paths > 0 for r in rows[1:])


def test_no_vector_ratio_substantial(benchmark, table6):
    """Paper Table 6: 32-88% of explored structural paths end with no
    vector; our random/functional stand-ins land in a similar band."""
    ratios = benchmark(lambda: [
        r.no_vector_ratio for r in table6["rows"] if r.circuit != "c17"
    ])
    assert any(r > 0.25 for r in ratios)


def test_developed_cpu_competitive(benchmark, table6):
    """The exhaustive single-pass tool should not be dramatically slower
    than the baseline's limited two-step loop (the paper reports it is
    typically much faster)."""
    rows = benchmark(lambda: table6["rows"])
    dev = sum(r.dev_cpu for r in rows)
    base = sum(r.base_cpu for r in rows)
    assert dev < 10 * max(base, 0.05)


def test_worst_delay_prediction_imperfect(benchmark, table6):
    """Wherever multi-vector paths exist, the baseline's easy vector
    must not always be the worst one (paper mean: ~40%)."""
    ratios = benchmark(lambda: [
        r.worst_delay_ratio for r in table6["rows"]
        if r.worst_delay_ratio is not None
    ])
    if ratios:  # scale-dependent; when defined, it must be imperfect
        assert min(ratios) < 1.0


def test_baseline_true_subset_of_developed(benchmark, poly90, lut90):
    def check():
        circuit = build_circuit("c432", scale=SCALE)
        dev = TruePathSTA(circuit, poly90)
        dev_courses = {p.course for p in dev.enumerate_paths(max_paths=20000)}
        base = TwoStepSTA(circuit, lut90, backtrack_limit=1000)
        report = base.run(max_structural_paths=1000)
        base_courses = {p.course for p in base.true_paths(report)}
        return dev_courses, base_courses

    dev_courses, base_courses = benchmark.pedantic(check, rounds=1, iterations=1)
    assert base_courses <= dev_courses


def test_single_pass_enumeration_speed(benchmark, poly90):
    """Timing of the core contribution: exhaustive single-pass true-path
    enumeration on the c432 stand-in."""
    circuit = build_circuit("c432", scale=SCALE)
    sta = TruePathSTA(circuit, poly90)

    def enumerate_all():
        return sta.enumerate_paths(max_paths=20000)

    paths = benchmark(enumerate_all)
    assert paths
