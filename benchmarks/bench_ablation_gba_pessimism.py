"""Ablation: graph-based analysis pessimism vs true-path enumeration.

The cost of NOT doing the paper's path-based analysis: a one-pass
block-based timer (worst arc per gate, no joint sensitizability check)
overestimates endpoint arrivals wherever the structurally-worst arcs
cannot be exercised together.  This bench measures that pessimism on
the suite stand-ins -- it is the flip side of Table 6's false-path
columns, expressed in picoseconds instead of path counts."""

import pytest

from repro.core.graphsta import GraphSTA, gba_pessimism
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit


@pytest.fixture(scope="module")
def measurements(poly90):
    rows = {}
    for name, scale in [("c432", 0.3), ("c880a", 0.25), ("c2670", 0.15)]:
        circuit = build_circuit(name, scale=scale)
        gba = GraphSTA(circuit, poly90).run()
        paths = TruePathSTA(circuit, poly90).enumerate_paths(max_paths=20000)
        rows[name] = gba_pessimism(gba, paths)
    return rows


def test_gba_run_cost(benchmark, poly90):
    """GBA itself is the cheap mode: one topological pass."""
    circuit = build_circuit("c2670", scale=0.15)
    sta = GraphSTA(circuit, poly90)
    result = benchmark(sta.run)
    assert result.arrivals


def test_never_optimistic(benchmark, measurements):
    rows = benchmark(lambda: measurements)
    for name, comparison in rows.items():
        for endpoint, row in comparison.items():
            assert row["pessimism"] >= -0.02, (name, endpoint)


def test_pessimism_exists(benchmark, measurements):
    """Reconvergent circuits show real GBA over-estimation -- the delay
    headroom that true-path analysis recovers."""
    rows = benchmark(lambda: measurements)
    worst = max(
        row["pessimism"]
        for comparison in rows.values()
        for row in comparison.values()
    )
    assert worst > 0.02


def test_mean_pessimism_reported(benchmark, measurements):
    rows = benchmark(lambda: measurements)
    for name, comparison in rows.items():
        values = [row["pessimism"] for row in comparison.values()]
        assert values
        mean = sum(values) / len(values)
        assert mean >= -0.01
