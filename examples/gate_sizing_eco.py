#!/usr/bin/env python
"""Gate-sizing ECO driven by vector-resolved timing.

Builds a small design that misses timing, then runs the greedy sizing
loop: at every step the *true* worst path -- worst sensitization vector
included -- picks which gate to upsize.  The closing argument for
vector-aware analysis: a vector-blind tool can declare timing met while
a harder sensitization vector still violates.

::

    python examples/gate_sizing_eco.py
"""

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sizing import upsize_critical_path
from repro.core.sta import TruePathSTA
from repro.gates.library import sized_library
from repro.netlist.circuit import Circuit
from repro.tech.presets import technology

CELLS = ["INV", "INV_X2", "NAND2", "NAND2_X2", "AO22", "AO22_X2",
         "AND2", "AND2_X2", "OR2", "OR2_X2", "BUF", "BUF_X2"]


def build_design(library) -> Circuit:
    c = Circuit("eco_demo", library)
    for n in ("a", "b", "c", "d", "e", "f"):
        c.add_input(n)
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "n2", {"A": "n1"}, name="U2")
    c.add_gate("AND2", "n5", {"A": "e", "B": "f"}, name="U5")
    c.add_gate("AO22", "n3", {"A": "n2", "B": "b", "C": "c", "D": "n5"},
               name="U3")
    c.add_gate("NAND2", "n4", {"A": "n3", "B": "d"}, name="U4")
    c.add_gate("INV", "out", {"A": "n4"}, name="U6")
    for k in range(6):  # heavy output fanout: the timing problem
        c.add_gate("BUF", f"z{k}", {"A": "out"}, name=f"UL{k}")
        c.add_output(f"z{k}")
    c.check()
    return c


def main() -> None:
    tech = technology("90nm")
    library = sized_library()
    print(f"Characterizing {len(CELLS)} cells (incl. X2 variants) ...")
    charlib = characterize_library(library, tech, grid=FAST_GRID, cells=CELLS)

    circuit = build_design(library)
    sta = TruePathSTA(circuit, charlib)
    paths = sta.enumerate_paths()
    worst = max(p.worst_arrival for p in paths)
    required = worst * 0.85
    print(f"\nworst true-path arrival : {worst * 1e12:.1f} ps")
    print(f"required time           : {required * 1e12:.1f} ps  (15% too slow)\n")

    result = upsize_critical_path(circuit, charlib, required, max_iterations=10)
    print(result.describe())
    print(f"\ncell histogram after ECO: {circuit.cell_histogram()}")


if __name__ == "__main__":
    main()
