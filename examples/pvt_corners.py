#!/usr/bin/env python
"""PVT corner analysis (the paper's future-work extension).

The delay model f(Fo, t_in, T, VDD) already carries temperature and
supply terms, so corner analysis is just characterization over a
(T, VDD) grid plus re-running the same single-pass engine at each
corner -- "given that the tool is designed to rely on analytical delay
descriptions only the delay model needs to be included".

::

    python examples/pvt_corners.py
"""

from repro.eval.exp_pvt import characterize_pvt, corner_analysis
from repro.netlist.circuit import Circuit
from repro.tech.presets import technology


def demo_circuit() -> Circuit:
    """A chain with a complex gate in the middle (subset-friendly)."""
    c = Circuit("pvt_demo")
    for n in ("a", "b", "c", "d", "e", "f"):
        c.add_input(n)
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "n2", {"A": "n1"}, name="U2")
    c.add_gate("AO22", "n3", {"A": "n2", "B": "c", "C": "d", "D": "e"},
               name="U3")
    c.add_gate("NAND2", "n4", {"A": "n3", "B": "f"}, name="U4")
    c.add_gate("INV", "z", {"A": "n4"}, name="U5")
    c.add_output("z")
    c.check()
    return c


def main() -> None:
    tech = technology("90nm")
    cells = ["INV", "NAND2", "AO22"]
    print(f"Characterizing {cells} over the PVT grid for {tech.name} ...")
    charlib = characterize_pvt(tech, cells)
    print(f"  -> {len(charlib.arcs())} arcs with T/VDD-aware models\n")

    result = corner_analysis(demo_circuit(), charlib, tech)
    print(result["text"])
    rows = {r["corner"]: r for r in result["rows"]}
    typical = rows["typical"]["worst_arrival"]
    worst = rows["worst"]["worst_arrival"]
    print(f"\nworst-corner penalty vs typical: "
          f"{(worst / typical - 1) * 100:.1f}%")


if __name__ == "__main__":
    main()
