#!/usr/bin/env python
"""Reproduce the paper's gate-level study (Tables 1-4, Figures 2-3).

For AO22 and OA12:

* enumerate every sensitization vector of every pin (Tables 1-2),
* annotate the transistor network per vector (Figures 2-3),
* measure the vector-dependent delay electrically across the three
  technology nodes (Tables 3-4).

::

    python examples/complex_gate_delay_analysis.py [--steps 300]
"""

import argparse

from repro.eval import exp_fig23, exp_tables12, exp_tables34


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=300,
                        help="transient steps per simulation window")
    args = parser.parse_args()

    print("=" * 72)
    print("Tables 1-2: propagation tables (sensitization vectors)")
    print("=" * 72)
    print(exp_tables12.run()["text"])

    print()
    print("=" * 72)
    print("Figures 2-3: transistor-level current-path analysis")
    print("=" * 72)
    fig23 = exp_fig23.run()
    print(fig23["text"])
    summary = fig23["summary"]
    print()
    print("Causal summary (paper section III):")
    print(f"  AO22 falling A, ON PMOS per case : {summary['fig2_pmos_on_per_case']}"
          "  <- case 1 has both pC and pD on (fastest)")
    print(f"  AO22 falling A, ON NMOS per case : {summary['fig2_nmos_on_per_case']}"
          "  <- case 2's extra ON nC steals charge (slowest)")
    print(f"  OA12 rising C,  ON NMOS per case : {summary['fig3_nmos_on_per_case']}"
          "  <- case 3 has both nA and nB on (fastest)")

    print()
    print("=" * 72)
    print("Tables 3-4: vector-dependent delay, electrical, 3 technologies")
    print("(this runs ~36 transistor-level transients; ~1 minute)")
    print("=" * 72)
    print(exp_tables34.run(steps_per_window=args.steps)["text"])


if __name__ == "__main__":
    main()
