#!/usr/bin/env python
"""Quickstart: characterize a library, analyze a circuit, print paths.

Runs in a couple of minutes cold (library characterization is cached in
``~/.cache/repro-charlib``; subsequent runs take seconds)::

    python examples/quickstart.py
"""

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sta import TruePathSTA
from repro.gates.library import default_library
from repro.netlist.generate import c17
from repro.tech.presets import technology


def main() -> None:
    # 1. Pick a technology and characterize the cell library against the
    #    built-in transistor-level simulator.  This is the paper's
    #    "one-time library parameter extraction process".
    tech = technology("90nm")
    library = default_library()
    print(f"Characterizing {len(library)} cells for {tech.name} ...")
    charlib = characterize_library(library, tech, grid=FAST_GRID)
    print(f"  -> {len(charlib.arcs())} vector-resolved timing arcs\n")

    # 2. Load a circuit. c17 is the genuine ISCAS-85 netlist; parsers
    #    for .bench and structural Verilog live in repro.netlist.
    circuit = c17()
    print(f"Circuit: {circuit}\n")

    # 3. Single-pass true-path analysis: sensitization happens *while*
    #    traversing, so every reported path is true by construction and
    #    every sensitization vector of every complex gate is explored.
    sta = TruePathSTA(circuit, charlib)
    paths = sta.enumerate_paths()
    print(sta.report(paths, limit=5))
    print()

    # 4. Each path carries both transition polarities (the dual-value
    #    logic system traces rising and falling in the same pass) and
    #    the justifying primary-input vector.
    worst = max(paths, key=lambda p: p.worst_arrival)
    polarity = max(worst.polarities(), key=lambda p: p.arrival)
    direction = "rising" if polarity.input_rising else "falling"
    print(f"Worst path starts with a {direction} edge at {worst.nets[0]}:")
    print(f"  arrival {polarity.arrival * 1e12:.1f} ps, "
          f"output slew {polarity.slew * 1e12:.1f} ps")
    vector = ", ".join(
        f"{k}={'X' if v is None else v}"
        for k, v in sorted(polarity.input_vector.items())
    )
    print(f"  input vector: {vector}")


if __name__ == "__main__":
    main()
