#!/usr/bin/env python
"""Statistical timing on top of vector-resolved paths (extension).

Samples process variation (global + per-gate local lognormal factors)
over the true-path set of a circuit and reports arrival quantiles,
per-course criticality probabilities and timing yield -- the statistical
questions the paper's conclusion points at.

::

    python examples/statistical_timing.py
"""

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sta import TruePathSTA
from repro.core.variation import (
    VariationSpec,
    criticality,
    path_statistics,
    timing_yield,
)
from repro.eval.iscas import build_circuit
from repro.gates.library import default_library
from repro.tech.presets import technology


def main() -> None:
    tech = technology("90nm")
    charlib = characterize_library(default_library(), tech, grid=FAST_GRID)
    circuit = build_circuit("c432", scale=0.3)
    print(f"Circuit: {circuit}")

    sta = TruePathSTA(circuit, charlib)
    paths = sta.n_worst_paths(8, prune=False)
    print(f"Analyzing the {len(paths)} worst true paths\n")

    spec = VariationSpec(sigma_local=0.06, sigma_global=0.04, seed=42)
    stats = path_statistics(paths, spec, n_samples=4000)
    print("path (endpoint)        nominal    mean     std    q99.7")
    for path, s in zip(paths, stats):
        print(
            f"{path.nets[0]:>6s} -> {path.nets[-1]:<8s} "
            f"{s.nominal * 1e12:8.1f} {s.mean * 1e12:8.1f} "
            f"{s.std * 1e12:7.2f} {s.q997 * 1e12:8.1f}  (ps)"
        )

    crit = criticality(paths, spec, n_samples=4000)
    print("\ncriticality probability per course:")
    for course, probability in sorted(crit.items(), key=lambda kv: -kv[1]):
        if probability > 0.01:
            print(f"  {course[0]} -> {course[-1]}: {probability * 100:.1f}%")

    worst_nominal = max(s.nominal for s in stats)
    for margin in (1.0, 1.05, 1.15):
        y = timing_yield(paths, spec, worst_nominal * margin, n_samples=4000)
        print(f"\ntiming yield at {margin:.2f}x nominal worst: {y * 100:.1f}%",
              end="")
    print()


if __name__ == "__main__":
    main()
