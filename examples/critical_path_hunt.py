#!/usr/bin/env python
"""The Figure 4 case study: find the vector a commercial tool misses.

Builds the paper's example circuit, runs the developed single-pass tool
and the two-step baseline, and verifies electrically that the baseline's
reported critical-path delay is optimistic because it only justifies the
*easiest* sensitization vector of the AO22 on the path.

::

    python examples/critical_path_hunt.py [--tech 130nm]
"""

import argparse

from repro.baseline.sta2step import TwoStepSTA
from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sta import TruePathSTA
from repro.eval.exp_table5 import run as run_table5
from repro.eval.fig4 import CRITICAL_NETS, fig4_circuit
from repro.gates.library import default_library
from repro.tech.presets import technology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tech", default="130nm",
                        choices=["130nm", "90nm", "65nm"])
    parser.add_argument("--steps", type=int, default=300)
    args = parser.parse_args()

    tech = technology(args.tech)
    library = default_library()
    print(f"Characterizing for {tech.name} (cached after first run) ...")
    poly = characterize_library(library, tech, grid=FAST_GRID)
    lut = characterize_library(library, tech, grid=FAST_GRID,
                               model="lut", vector_mode="default")

    circuit = fig4_circuit()
    print(f"\nCircuit: {circuit}")
    print(f"Critical path: {' -> '.join(CRITICAL_NETS)} "
          "(through pin A of the AO22)\n")

    result = run_table5(tech, poly, lut, steps_per_window=args.steps)
    print(result["text"])
    print()

    baseline_sigs = result["baseline_signatures"]
    print(f"Two-step baseline reported {len(baseline_sigs)} vector(s) "
          "for this path (the easiest justification).")
    if result["baseline_missed_worst"]:
        gap = result.get("golden_gap")
        print("It MISSED the worst vector -- electrically the worst vector "
              f"is {gap * 100:.1f}% slower than the fastest one."
              if gap is not None else
              "It MISSED the worst vector.")
    print("\nThe single-pass tool keeps one path record per sensitization "
          "vector, so the worst case is reported by construction.")


if __name__ == "__main__":
    main()
