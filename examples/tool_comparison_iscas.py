#!/usr/bin/env python
"""Tool-vs-tool comparison on the benchmark suite (Table 6 in small).

Runs the developed single-pass tool and the two-step baseline over a
few suite circuits and prints the Table 6 counters: input vectors and
multi-vector paths found, CPU times, true/false/backtrack-limited path
counts and the worst-delay prediction ratio.

::

    python examples/tool_comparison_iscas.py --circuits c17 c432 c499 --scale 0.3
"""

import argparse

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.eval.exp_table6 import run as run_table6
from repro.gates.library import default_library
from repro.tech.presets import technology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tech", default="90nm",
                        choices=["130nm", "90nm", "65nm"])
    parser.add_argument("--circuits", nargs="+",
                        default=["c17", "c432", "c499", "c880a"])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="suite down-scaling factor (1.0 = full size)")
    parser.add_argument("--backtrack-limit", type=int, default=1000)
    parser.add_argument("--max-dev-paths", type=int, default=20000)
    parser.add_argument("--max-structural", type=int, default=1000)
    args = parser.parse_args()

    tech = technology(args.tech)
    library = default_library()
    print(f"Characterizing for {tech.name} (cached after first run) ...")
    poly = characterize_library(library, tech, grid=FAST_GRID)
    lut = characterize_library(library, tech, grid=FAST_GRID,
                               model="lut", vector_mode="default")

    result = run_table6(
        poly,
        lut,
        circuits=args.circuits,
        scale=args.scale,
        backtrack_limit=args.backtrack_limit,
        max_dev_paths=args.max_dev_paths,
        max_structural_paths=args.max_structural,
    )
    print()
    print(result["text"])
    print()
    print("Reading guide (matches the paper's Table 6 columns):")
    print("  input vectors   - sensitizations found by the single-pass tool")
    print("  #false(mis)     - paths the baseline wrongly declared false")
    print("  no-vector %     - baseline paths left without any input vector")
    print("  worst-delay %   - how often the baseline's single vector is the")
    print("                    true worst vector of its path")


if __name__ == "__main__":
    main()
