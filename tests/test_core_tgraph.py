"""Tests for the shared timing-graph substrate and its backward bound.

The load-bearing properties:

* **Admissibility** -- the backward required-time bound at a net never
  undercuts the true remaining path delay from that net, on any
  polarity of any enumerated true path (this is what makes N-worst
  pruning exact).
* **Dominance** -- the backward bound never exceeds the legacy per-gate
  suffix sum it replaced, and is strictly tighter somewhere on real
  circuits (this is what makes the swap worthwhile).
* A pinned regression seed where the tighter bound prunes extensions
  the suffix sum would have kept (``bound_prunes > 0``) while the
  pruned top-N still equals exhaustive enumeration.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.sta import TruePathSTA
from repro.core.tgraph import PruneBounds, net_levels
from repro.netlist.generate import c17, random_dag
from repro.netlist.levelize import levelize
from repro.netlist.techmap import techmap

#: Tolerance for float-accumulation noise when comparing a bound
#: against a sum of per-arc delays (delays are ~1e-10 s).
EPS = 1e-15


def _sta(circuit, charlib):
    return TruePathSTA(circuit, charlib)


class TestGraphStructure:
    def test_arcs_cover_every_gate_pin(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        tg = ec.tgraph
        expected = {
            (g.index, pin, net, g.output_net)
            for g in ec.gates
            for pin, net in zip(g.cell.inputs, g.input_nets)
        }
        got = {(a.gate_index, a.pin, a.src_net, a.dst_net) for a in tg.arcs}
        assert got == expected
        assert len(tg.arcs) == len(expected)

    def test_fanout_fanin_are_views_of_arcs(self):
        ec = EngineCircuit(techmap(random_dag("tg0", 8, 30, seed=7)))
        tg = ec.tgraph
        for arc in tg.arcs:
            assert arc in tg.fanout[arc.src_net]
            assert arc in tg.fanin[arc.dst_net]
        assert sum(len(f) for f in tg.fanout) == len(tg.arcs)
        assert sum(len(f) for f in tg.fanin) == len(tg.arcs)

    def test_sinks_match_arc_fanout(self):
        ec = EngineCircuit(techmap(random_dag("tg1", 8, 30, seed=11)))
        tg = ec.tgraph
        for net in range(ec.num_nets):
            assert tg.sinks[net] == [
                (a.gate_index, a.pin) for a in tg.fanout[net]
            ]
        # The engine's sinks property is the same table.
        assert ec.sinks is tg.sinks

    def test_levels_match_levelize(self):
        circuit = techmap(random_dag("tg2", 8, 30, seed=13))
        ec = EngineCircuit(circuit)
        tg = ec.tgraph
        by_name = levelize(circuit)
        assert by_name == net_levels(circuit)
        for net, name in enumerate(ec.net_names):
            assert tg.levels[net] == by_name.get(name, 0)
        assert tg.depth == max(by_name.values())

    def test_arcs_respect_levelization(self):
        ec = EngineCircuit(techmap(random_dag("tg3", 8, 30, seed=17)))
        tg = ec.tgraph
        for arc in tg.arcs:
            assert tg.levels[arc.src_net] < tg.levels[arc.dst_net]


class TestBoundProperties:
    @given(seed=st.integers(0, 3000))
    @settings(max_examples=8, deadline=None)
    def test_backward_bound_admissible(self, charlib_poly_90, seed):
        """required[net] upper-bounds the true remaining delay to the
        endpoint at every net of every enumerated true path."""
        circuit = techmap(random_dag(f"adm{seed}", 10, 45, seed=seed))
        sta = _sta(circuit, charlib_poly_90)
        required = sta.calc.required_bounds()
        net_id = sta.ec.net_id
        for path in sta.enumerate_paths(max_paths=300):
            for pol in path.polarities():
                delays = pol.gate_delays
                remaining = 0.0
                # Walk the path backwards: remaining delay after
                # reaching nets[i] is the sum of delays[i:].
                for i in range(len(delays) - 1, -1, -1):
                    remaining += delays[i]
                    net = net_id[path.nets[i]]
                    assert required[net] >= remaining - EPS

    @given(seed=st.integers(0, 3000))
    @settings(max_examples=8, deadline=None)
    def test_backward_bound_dominates_suffix_sum(self, charlib_poly_90, seed):
        """required <= suffix everywhere (the new bound never loosens)."""
        circuit = techmap(random_dag(f"dom{seed}", 10, 45, seed=seed))
        calc = _sta(circuit, charlib_poly_90).calc
        required = calc.required_bounds()
        suffix = calc.remaining_bounds()
        assert len(required) == len(suffix)
        for net in range(len(required)):
            assert required[net] <= suffix[net] + EPS

    def test_bound_strictly_tighter_somewhere(self, charlib_poly_90):
        """On a real multi-pin circuit the per-arc bound beats the
        per-gate suffix sum on at least one net."""
        calc = _sta(techmap(random_dag("strict4", 10, 45, seed=4)),
                    charlib_poly_90).calc
        required = calc.required_bounds()
        suffix = calc.remaining_bounds()
        assert any(required[n] < suffix[n] - EPS for n in range(len(required)))

    def test_prune_bounds_bundle(self, charlib_poly_90):
        calc = _sta(c17(), charlib_poly_90).calc
        bounds = calc.prune_bounds()
        assert isinstance(bounds, PruneBounds)
        assert bounds.required == tuple(calc.required_bounds())
        assert bounds.suffix == tuple(calc.remaining_bounds())
        # Shipped to pool workers by value: must round-trip pickle.
        assert pickle.loads(pickle.dumps(bounds)) == bounds


class TestBoundPruningRegression:
    #: Pinned seed where the backward bound prunes extensions the
    #: legacy suffix sum keeps (found by scanning seeds 0..120; nearly
    #: all qualify, this one has several distinct wins).
    SEED = 4

    def test_tighter_bound_prunes_where_suffix_would_not(
        self, charlib_poly_90
    ):
        circuit = techmap(random_dag(f"nw{self.SEED}", 10, 45, seed=self.SEED))
        sta = _sta(circuit, charlib_poly_90)
        pruned = sta.n_worst_paths(3)
        stats = sta.last_stats
        assert stats.bound_prunes > 0
        assert stats.pruned >= stats.bound_prunes
        # ... and the pruned result is still exactly the exhaustive top-3.
        exhaustive = sorted(
            (p.worst_arrival for p in sta.enumerate_paths()), reverse=True
        )[:3]
        assert [p.worst_arrival for p in pruned] == pytest.approx(exhaustive)

    def test_explicit_bounds_reproduce_default_search(self, charlib_poly_90):
        """Passing precomputed PruneBounds (the parallel driver's path)
        gives the same paths and the same prune counters."""
        from repro.core.pathfinder import PathFinder

        circuit = techmap(random_dag(f"nw{self.SEED}", 10, 45, seed=self.SEED))
        ec = EngineCircuit(circuit)
        calc = DelayCalculator(ec, charlib_poly_90)

        def run(**kwargs):
            finder = PathFinder(ec, calc, n_worst=3, **kwargs)
            with finder.find_paths() as stream:
                paths = list(stream)
            return paths, finder.stats

        default_paths, default_stats = run()
        shipped = pickle.loads(pickle.dumps(calc.prune_bounds()))
        explicit_paths, explicit_stats = run(bounds=shipped)
        assert [p.key for p in explicit_paths] == [p.key for p in default_paths]
        assert explicit_stats.pruned == default_stats.pruned
        assert explicit_stats.bound_prunes == default_stats.bound_prunes
