"""The exhaustive differential oracle (repro.verify.oracle)."""

from __future__ import annotations

import copy

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap
from repro.netlist.timingsim import TimingSimulator
from repro.verify import run_oracle
from repro.verify.oracle import clean_course


def _chain(library):
    """a,b -> NAND2 -> INV -> out, plus a side input kept silent."""
    c = Circuit("chain", library)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("NAND2", "m", {"A": "a", "B": "b"})
    c.add_gate("INV", "out", {"A": "m"})
    c.add_output("out")
    c.check()
    return c


class TestRunOracle:
    def test_c17_certifies(self, charlib_poly_90, clean_obs):
        report = run_oracle(c17(), charlib_poly_90)
        assert report.ok, [m.describe() for m in report.mismatches]
        assert report.inputs == 5
        assert report.transitions == 5 * 2**5
        assert report.paths > 0
        # Both c17 outputs are reachable, settle dynamically, and their
        # worst clean course was cross-checked against the pathfinder.
        assert set(report.truths) == {"G22", "G23"}
        assert report.courses_checked > 0
        assert "OK" in report.summary()
        snapshot = clean_obs.snapshot()
        assert snapshot["verify.circuits_checked"] == 1
        assert snapshot["verify.mismatches"] == 0

    def test_mapped_random_dag(self, charlib_poly_90):
        circuit = techmap(random_dag("orc", 6, 25, seed=11))
        report = run_oracle(circuit, charlib_poly_90)
        assert report.ok, [m.describe() for m in report.mismatches]

    def test_truth_fields_consistent(self, charlib_poly_90):
        report = run_oracle(c17(), charlib_poly_90)
        for truth in report.truths.values():
            assert truth.delay > 0
            assert truth.origin in c17().inputs
            assert truth.sensitizing_transitions > 0
            if truth.clean_delay is not None:
                assert truth.clean_delay <= truth.delay
                assert truth.course is not None
                assert truth.course[-1] == truth.endpoint

    def test_input_limit_enforced(self, charlib_poly_90):
        with pytest.raises(ValueError, match="exceeds the oracle sweep"):
            run_oracle(c17(), charlib_poly_90, max_inputs=3)

    def test_finder_worst_matches_truth_delay(self, charlib_poly_90):
        """On c17 the pathfinder worst arrival per endpoint must agree
        with the exhaustive worst clean settle time within tolerance."""
        report = run_oracle(c17(), charlib_poly_90)
        for endpoint, truth in report.truths.items():
            if truth.clean_delay is None:
                continue
            path = report.finder_worst[endpoint]
            assert path.worst_arrival == pytest.approx(
                truth.clean_delay, rel=0.15
            )


class TestCleanCourse:
    def test_clean_chain(self, charlib_small_90, library):
        circuit = _chain(library)
        sim = TimingSimulator(circuit, charlib_small_90)
        result = sim.simulate_transition({"a": 0, "b": 1}, "a", rising=True)
        assert clean_course(circuit, result, "out") == ("a", "m", "out")

    def test_side_input_event_disqualifies(self, charlib_small_90, library):
        """Both NAND2 pins switching means neither hop is a clean
        single-pin traversal."""
        c = Circuit("recon", library)
        c.add_input("a")
        c.add_gate("INV", "an", {"A": "a"})
        c.add_gate("NAND2", "out", {"A": "a", "B": "an"})
        c.add_output("out")
        c.check()
        sim = TimingSimulator(c, charlib_small_90)
        result = sim.simulate_transition({"a": 0}, "a", rising=True)
        assert clean_course(c, result, "out") is None

    def test_multipin_same_net_disqualifies(self, charlib_small_90, library):
        """One net tied to both pins of a gate is multi-pin switching,
        not static sensitization (the pinned fuzz counterexample)."""
        c = Circuit("multipin", library)
        c.add_input("x")
        c.add_gate("NAND2", "out", {"A": "x", "B": "x"})
        c.add_output("out")
        c.check()
        sim = TimingSimulator(c, charlib_small_90)
        result = sim.simulate_transition({"x": 0}, "x", rising=True)
        # The output genuinely toggles...
        assert result.toggled("out")
        # ...but no clean single-pin course exists.
        assert clean_course(c, result, "out") is None

    def test_untoggled_endpoint(self, charlib_small_90, library):
        circuit = _chain(library)
        sim = TimingSimulator(circuit, charlib_small_90)
        # b=0 blocks the NAND: output stays at 1.
        result = sim.simulate_transition({"a": 0, "b": 0}, "a", rising=True)
        assert clean_course(circuit, result, "out") is None


class TestCausalChain:
    def test_chain_runs_stimulus_to_endpoint(self, charlib_small_90, library):
        circuit = _chain(library)
        sim = TimingSimulator(circuit, charlib_small_90)
        result = sim.simulate_transition({"a": 0, "b": 1}, "a", rising=True)
        chain = result.causal_chain("out")
        assert [net for net, _ in chain] == ["a", "m", "out"]
        assert chain[0][1].cause is None  # stimulus event
        times = [event.time for _, event in chain]
        assert times == sorted(times)

    def test_empty_for_silent_net(self, charlib_small_90, library):
        circuit = _chain(library)
        sim = TimingSimulator(circuit, charlib_small_90)
        result = sim.simulate_transition({"a": 0, "b": 0}, "a", rising=True)
        assert result.causal_chain("out") == []
