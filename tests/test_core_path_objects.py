"""Coverage for the path record API."""

import pytest

from repro.core.path import PathStep, PolarityTiming, TimedPath


def make_polarity(arrival=1e-10, rising=True):
    return PolarityTiming(
        input_rising=rising,
        output_rising=not rising,
        arrival=arrival,
        slew=3e-11,
        gate_delays=[4e-11, 6e-11],
        gate_slews=[2e-11, 3e-11],
        input_vector={"a": "T", "b": 1, "c": None},
    )


def make_path(rise=None, fall=None, multi=False):
    steps = (
        PathStep("U1", "NAND2", "A", "A:1", 1, 2.0),
        PathStep("U2", "AO22", "A", "A:110", 2, 1.5),
    )
    return TimedPath(
        circuit_name="t",
        nets=("a", "n1", "z"),
        steps=steps,
        rise=rise,
        fall=fall,
        multi_vector=multi,
    )


class TestTimedPath:
    def test_course_and_key(self):
        p = make_path(rise=make_polarity())
        assert p.course == ("a", "n1", "z")
        assert p.vector_signature == ("A:1", "A:110")
        assert p.key == (("a", "n1", "z"), ("A:1", "A:110"))
        assert p.length == 2

    def test_polarities(self):
        rise = make_polarity(rising=True)
        fall = make_polarity(arrival=2e-10, rising=False)
        both = make_path(rise=rise, fall=fall)
        assert both.polarities() == [rise, fall]
        assert both.worst_arrival == pytest.approx(2e-10)
        only_rise = make_path(rise=rise)
        assert only_rise.polarities() == [rise]

    def test_no_polarity_raises(self):
        empty = make_path()
        with pytest.raises(ValueError, match="no surviving polarity"):
            empty.worst_arrival

    def test_describe(self):
        p = make_path(rise=make_polarity(), fall=make_polarity(2e-10, False))
        text = p.describe()
        assert "a -> z" in text
        assert "AO22.A A:110" in text
        assert "rise=" in text and "fall=" in text

    def test_step_fields(self):
        step = make_path(rise=make_polarity()).steps[1]
        assert step.case == 2
        assert step.fo == pytest.approx(1.5)

    def test_steps_immutable(self):
        step = make_path(rise=make_polarity()).steps[0]
        with pytest.raises(Exception):
            step.pin = "B"
