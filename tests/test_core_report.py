"""Tests for slack reporting and JSON path export."""

import json

import pytest

from repro.core.report import (
    format_slack_report,
    hold_report,
    path_to_dict,
    paths_to_json,
    slack_report,
)
from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17


@pytest.fixture(scope="module")
def paths(charlib_poly_90):
    sta = TruePathSTA(c17(), charlib_poly_90)
    return sta.enumerate_paths()


class TestJsonExport:
    def test_path_to_dict(self, paths):
        d = path_to_dict(paths[0])
        assert d["circuit"] == "c17"
        assert d["nets"][0] in ("G1", "G2", "G3", "G6", "G7")
        assert len(d["steps"]) == len(paths[0].steps)
        assert d["rise"]["arrival"] > 0
        assert d["rise"]["input_rising"] is True

    def test_json_roundtrip(self, paths):
        text = paths_to_json(paths, indent=2)
        loaded = json.loads(text)
        assert len(loaded) == len(paths)
        assert all("steps" in p for p in loaded)

    def test_single_polarity_path(self, charlib_poly_90):
        from repro.core.engine import RISING

        sta = TruePathSTA(c17(), charlib_poly_90)
        rise_only = sta.enumerate_paths(single_polarity=RISING)
        d = path_to_dict(rise_only[0])
        assert d["fall"] is None


class TestSlack:
    def test_one_entry_per_endpoint(self, paths):
        entries = slack_report(paths, required_time=200e-12)
        endpoints = [e.endpoint for e in entries]
        assert sorted(endpoints) == ["G22", "G23"]

    def test_slack_arithmetic(self, paths):
        required = 150e-12
        entries = slack_report(paths, required)
        for e in entries:
            assert e.slack == pytest.approx(required - e.arrival)

    def test_sorted_most_critical_first(self, paths):
        entries = slack_report(paths, 200e-12)
        slacks = [e.slack for e in entries]
        assert slacks == sorted(slacks)

    def test_violations_flagged(self, paths):
        tight = slack_report(paths, 1e-12)
        assert all(e.violated for e in tight)
        loose = slack_report(paths, 1e-9)
        assert not any(e.violated for e in loose)

    def test_worst_path_per_endpoint(self, paths):
        entries = slack_report(paths, 200e-12)
        for e in entries:
            same_endpoint = [p for p in paths if p.nets[-1] == e.endpoint]
            assert e.arrival == pytest.approx(
                max(p.worst_arrival for p in same_endpoint)
            )

    def test_format(self, paths):
        text = format_slack_report(slack_report(paths, 1e-12))
        assert "VIOLATED" in text
        assert "endpoint" in text.splitlines()[0]


class TestHoldReport:
    def test_fastest_path_per_endpoint(self, paths):
        entries = hold_report(paths, hold_time=0.0)
        for e in entries:
            same = [
                min(p.arrival for p in q.polarities())
                for q in paths
                if q.nets[-1] == e.endpoint
            ]
            assert e.arrival == pytest.approx(min(same))

    def test_hold_slack_sign(self, paths):
        fastest = min(
            min(p.arrival for p in q.polarities()) for q in paths
        )
        tight = hold_report(paths, hold_time=fastest * 2)
        assert tight[0].violated  # fastest path misses a huge hold time
        loose = hold_report(paths, hold_time=0.0)
        assert not any(e.violated for e in loose)

    def test_sorted_most_critical_first(self, paths):
        entries = hold_report(paths, hold_time=50e-12)
        slacks = [e.slack for e in entries]
        assert slacks == sorted(slacks)
