"""Metrics-snapshot diffing and the regression gate (repro.obs.diff +
the ``repro obs diff`` CLI subcommand)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    DiffEntry,
    EXIT_REGRESSION,
    diff_snapshots,
    flatten,
    parse_fail_rule,
    violations,
)
from repro.resilience.errors import EXIT_CANTCREAT, EXIT_CONFIG


class TestFlatten:
    def test_scalars_pass_through(self):
        assert flatten({"pathfinder.conflicts": 3}) == \
            {"pathfinder.conflicts": 3.0}

    def test_histograms_expand_per_field(self):
        flat = flatten({"delaycalc.arc_s": {"count": 2, "p95": 0.5}})
        assert flat == {"delaycalc.arc_s.count": 2.0,
                        "delaycalc.arc_s.p95": 0.5}

    def test_spans_get_their_prefix(self):
        flat = flatten({"spans": {"pathfinder.justify":
                                  {"count": 4, "total_s": 0.25}}})
        assert flat == {"spans.pathfinder.justify.count": 4.0,
                        "spans.pathfinder.justify.total_s": 0.25}

    def test_non_numeric_fields_dropped(self):
        assert flatten({"run.host": "ci-box", "ok": True}) == {}


class TestDiffEntries:
    def test_pct_of_plain_growth(self):
        entry = DiffEntry("k", 100.0, 110.0)
        assert entry.pct == pytest.approx(10.0)
        assert entry.delta == pytest.approx(10.0)

    def test_zero_baseline_growth_has_no_pct(self):
        assert DiffEntry("k", 0.0, 5.0).pct is None
        assert DiffEntry("k", 0.0, 0.0).pct == 0.0

    def test_new_and_gone_keys(self):
        new = DiffEntry("k", None, 5.0)
        gone = DiffEntry("k", 5.0, None)
        assert "new" in new.describe()
        assert "gone" in gone.describe()

    def test_diff_snapshots_union_of_keys(self):
        entries = diff_snapshots({"a": 1, "b": 2}, {"b": 3, "c": 4})
        assert [e.key for e in entries] == ["a", "b", "c"]


class TestFailRules:
    def test_parse_and_threshold(self):
        rule = parse_fail_rule("pathfinder\\.:10")
        assert rule.threshold_pct == 10.0
        assert rule.violated_by(DiffEntry("pathfinder.conflicts", 100, 111))
        assert not rule.violated_by(DiffEntry("pathfinder.conflicts",
                                              100, 110))
        assert not rule.violated_by(DiffEntry("delaycalc.evals", 100, 200))

    def test_regex_may_contain_colons(self):
        rule = parse_fail_rule("a:b:5")
        assert rule.pattern.pattern == "a:b"

    def test_unbounded_growth_trips(self):
        rule = parse_fail_rule(".*:50")
        assert rule.violated_by(DiffEntry("k", 0.0, 1.0))
        assert rule.violated_by(DiffEntry("k", None, 1.0))
        assert not rule.violated_by(DiffEntry("k", 1.0, None))

    def test_decrease_never_trips(self):
        rule = parse_fail_rule(".*:0")
        assert not rule.violated_by(DiffEntry("k", 100, 50))

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            parse_fail_rule("no-threshold")
        with pytest.raises(ValueError):
            parse_fail_rule("key:notanumber")

    def test_violations_pairs_entry_with_rule(self):
        rules = [parse_fail_rule("a:0"), parse_fail_rule("b:0")]
        entries = [DiffEntry("a.x", 1, 2), DiffEntry("b.y", 1, 1)]
        out = violations(entries, rules)
        assert [(e.key, r.pattern.pattern) for e, r in out] == [("a.x", "a")]


@pytest.fixture
def snapshots(tmp_path):
    before = tmp_path / "before.json"
    after = tmp_path / "after.json"
    before.write_text(json.dumps({
        "pathfinder.extensions_tried": 1000,
        "delaycalc.arc_s": {"count": 10, "p95": 1.0},
    }))
    after.write_text(json.dumps({
        "pathfinder.extensions_tried": 1500,
        "delaycalc.arc_s": {"count": 10, "p95": 1.0},
    }))
    return str(before), str(after)


class TestCliObsDiff:
    def test_clean_diff_exits_zero(self, snapshots, capsys):
        before, _after = snapshots
        assert main(["obs", "diff", before, before]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_diff_prints_percent_deltas(self, snapshots, capsys):
        rc = main(["obs", "diff", *snapshots])
        assert rc == 0  # no --fail-on: informational only
        out = capsys.readouterr().out
        assert "pathfinder.extensions_tried" in out
        assert "+50.0%" in out

    def test_fail_on_trips_with_exit_4(self, snapshots, capsys):
        rc = main(["obs", "diff", *snapshots,
                   "--fail-on", "pathfinder\\.:10"])
        assert rc == EXIT_REGRESSION == 4
        err = capsys.readouterr().err
        assert "regression" in err
        assert "pathfinder.extensions_tried" in err

    def test_fail_on_within_threshold_passes(self, snapshots, capsys):
        rc = main(["obs", "diff", *snapshots,
                   "--fail-on", "pathfinder\\.:60"])
        assert rc == 0
        assert "all --fail-on rules passed" in capsys.readouterr().out

    def test_unmatched_rule_passes(self, snapshots):
        assert main(["obs", "diff", *snapshots,
                     "--fail-on", "spans\\.:0"]) == 0

    def test_bad_rule_is_config_error(self, snapshots, capsys):
        rc = main(["obs", "diff", *snapshots, "--fail-on", "nope"])
        assert rc == EXIT_CONFIG
        assert "error:" in capsys.readouterr().err

    def test_missing_snapshot_maps_into_taxonomy(self, snapshots, capsys):
        before, _after = snapshots
        rc = main(["obs", "diff", before, "/no/such/snapshot.json"])
        assert rc != 0
        assert "error:" in capsys.readouterr().err

    def test_filter_limits_output(self, snapshots, capsys):
        main(["obs", "diff", *snapshots, "--filter", "delaycalc\\."])
        out = capsys.readouterr().out
        assert "pathfinder.extensions_tried" not in out


class TestMetricsJsonWriteFailure:
    def test_unwritable_metrics_json_exits_cantcreat(self, capsys,
                                                     charlib_poly_90,
                                                     clean_obs):
        rc = main(["analyze", "iscas:c17",
                   "--metrics-json", "/no/such/dir/metrics.json"])
        assert rc == EXIT_CANTCREAT == 73
        err = capsys.readouterr().err
        assert "error:" in err
        assert "metrics" in err

    def test_unwritable_trace_json_exits_cantcreat(self, capsys,
                                                   charlib_poly_90,
                                                   clean_obs):
        rc = main(["analyze", "iscas:c17",
                   "--trace-json", "/no/such/dir/trace.json"])
        assert rc == EXIT_CANTCREAT
