"""Direct tests of the Tables 3-4 measurement runner (single tech)."""

import pytest

from repro.eval.exp_tables34 import run, vector_delay_rows
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def rows90():
    return vector_delay_rows(
        "AO22", "A", technologies={"90nm": TECHNOLOGIES["90nm"]},
        steps_per_window=250,
    )


class TestVectorDelayRows:
    def test_row_structure(self, rows90):
        assert len(rows90) == 2  # one per input edge
        for row in rows90:
            assert row["tech"] == "90nm"
            assert set(row["delays"]) == {1, 2, 3}
            assert set(row["diffs"]) == {2, 3}

    def test_reference_is_case1(self, rows90):
        for row in rows90:
            for case, diff in row["diffs"].items():
                expected = row["delays"][case] / row["delays"][1] - 1.0
                assert diff == pytest.approx(expected)

    def test_fall_row_matches_table3_shape(self, rows90):
        fall = next(r for r in rows90 if r["edge"] == "In Fall")
        assert fall["delays"][1] < fall["delays"][3] < fall["delays"][2]

    def test_run_renders_both_tables(self):
        result = run(
            technologies={"90nm": TECHNOLOGIES["90nm"]},
            steps_per_window=250,
        )
        assert "Table 3" in result["text"]
        assert "Table 4" in result["text"]
        assert "AO22" in result["text"] and "OA12" in result["text"]
