"""Unit tests for technology mapping and unmapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_dag
from repro.netlist.techmap import equivalent, techmap, unmap


def build(text):
    return parse_bench(text)


class TestPatterns:
    def test_and_or_to_ao22(self):
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n"
            "x = AND(a, b)\ny = AND(c, d)\nz = OR(x, y)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {"AO22": 1}
        assert equivalent(c, m)

    def test_or_and_to_oa22(self):
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n"
            "x = OR(a, b)\ny = OR(c, d)\nz = AND(x, y)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {"OA22": 1}
        assert equivalent(c, m)

    def test_partial_cluster_to_ao21(self):
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n"
            "x = AND(a, b)\nz = OR(x, c)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {"AO21": 1}

    def test_or_and_single_to_oa12(self):
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n"
            "x = OR(a, b)\nz = AND(x, c)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {"OA12": 1}

    def test_inverting_outer_to_aoi(self):
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n"
            "x = AND(a, b)\ny = AND(c, d)\nz = NOR(x, y)\n"
        )
        assert techmap(c).cell_histogram() == {"AOI22": 1}

    def test_inv_absorption(self):
        c = build("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = AND(a, b)\nz = NOT(x)\n")
        assert techmap(c).cell_histogram() == {"NAND2": 1}

    def test_double_inverter_to_buf(self):
        c = build("INPUT(a)\nOUTPUT(z)\nx = NOT(a)\nz = NOT(x)\n")
        assert techmap(c).cell_histogram() == {"BUF": 1}

    def test_fanout_blocks_absorption(self):
        """An inner gate with fanout > 1 must survive."""
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nOUTPUT(w)\n"
            "x = AND(a, b)\nz = OR(x, c)\nw = BUFF(x)\n"
        )
        m = techmap(c)
        assert "AND2" in m.cell_histogram()
        assert equivalent(c, m)

    def test_output_net_not_absorbed(self):
        """An inner gate driving a primary output must survive."""
        c = build(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nOUTPUT(x)\n"
            "x = AND(a, b)\nz = OR(x, c)\n"
        )
        m = techmap(c)
        assert "AND2" in m.cell_histogram()
        assert equivalent(c, m)


class TestUnmap:
    def test_ao22_decomposition(self):
        c = Circuit("u")
        for n in "abcd":
            c.add_input(n)
        c.add_gate("AO22", "z", {"A": "a", "B": "b", "C": "c", "D": "d"})
        c.add_output("z")
        u = unmap(c)
        assert equivalent(c, u)
        assert all(
            not inst.cell.is_complex or inst.cell.name.startswith("X")
            for inst in u.instances.values()
        )

    def test_xor_passthrough(self):
        c = Circuit("u")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("XOR2", "z", {"A": "a", "B": "b"})
        c.add_output("z")
        u = unmap(c)
        assert equivalent(c, u)

    def test_mux_decomposition(self):
        c = Circuit("u")
        for n in ("a", "b", "s"):
            c.add_input(n)
        c.add_gate("MUX2", "z", {"A": "a", "B": "b", "S": "s"})
        c.add_output("z")
        assert equivalent(c, unmap(c))

    def test_inverting_complex_cell(self):
        c = Circuit("u")
        for n in "abcd":
            c.add_input(n)
        c.add_gate("OAI22", "z", {"A": "a", "B": "b", "C": "c", "D": "d"})
        c.add_output("z")
        assert equivalent(c, unmap(c))


class TestExpandXor:
    def test_equivalence(self):
        from repro.netlist.generate import ecc_corrector
        from repro.netlist.techmap import expand_xor

        c = ecc_corrector(8)
        x = expand_xor(c)
        assert equivalent(c, x, vectors=256)

    def test_no_xor_left(self):
        from repro.netlist.techmap import expand_xor

        c = Circuit("x")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("XOR2", "p", {"A": "a", "B": "b"})
        c.add_gate("XNOR2", "q", {"A": "a", "B": "p"})
        c.add_output("q")
        x = expand_xor(c)
        assert equivalent(c, x)
        assert all("X" not in inst.cell.name for inst in x.instances.values())

    def test_xor_count_grows_by_three_per_gate(self):
        from repro.netlist.techmap import expand_xor

        c = Circuit("x")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("XOR2", "z", {"A": "a", "B": "b"})
        c.add_output("z")
        assert expand_xor(c).num_gates == 4


class TestEquivalenceChecker:
    def test_detects_difference(self):
        a = build("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
        b = build("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = OR(a, b)\n")
        assert not equivalent(a, b)

    def test_different_interfaces(self):
        a = build("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
        b = build("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
        assert not equivalent(a, b)


class TestRandomizedEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_techmap_preserves_function(self, seed):
        c = random_dag(f"tm{seed}", 10, 40, seed=seed)
        m = techmap(c)
        assert equivalent(c, m, vectors=128, seed=seed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_unmap_inverts_techmap(self, seed):
        c = random_dag(f"um{seed}", 10, 40, seed=seed)
        m = techmap(c)
        u = unmap(m)
        assert equivalent(m, u, vectors=128, seed=seed)

    def test_mapping_reduces_gate_count(self):
        c = random_dag("shrink", 20, 150, seed=11)
        m = techmap(c)
        assert m.num_gates <= c.num_gates
