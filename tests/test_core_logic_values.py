"""Unit tests for the nine-valued dual logic system."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logic_values import CellEvaluator, Value9, covers, merge9
from repro.gates.library import default_library
from repro.gates.logic import X

V = Value9
values9 = st.sampled_from(V.ALL)


class TestEncoding:
    def test_pack_unpack_roundtrip(self):
        for value in V.ALL:
            assert V.pack(*V.unpack(value)) == value

    def test_named_constants(self):
        assert V.unpack(V.S0) == (0, 0)
        assert V.unpack(V.RISE) == (0, 1)
        assert V.unpack(V.FALL) == (1, 0)
        assert V.unpack(V.X0) == (X, 0)
        assert V.unpack(V.ZX) == (0, X)
        assert V.unpack(V.XX) == (X, X)

    def test_steady_and_transition(self):
        assert V.steady(0) == V.S0 and V.steady(1) == V.S1
        assert V.transition(True) == V.RISE
        assert V.transition(False) == V.FALL

    def test_predicates(self):
        assert V.is_steady(V.S1) and not V.is_steady(V.RISE)
        assert V.is_transition(V.FALL) and not V.is_transition(V.X0)

    def test_components(self):
        assert V.final_of(V.X1) == 1
        assert V.init_of(V.X1) is X
        assert V.final_of(V.ZX) is X

    def test_names_cover_all(self):
        assert len(V.NAMES) == 9
        assert V.name(V.X0) == "X0"


class TestMerge:
    def test_xx_is_identity(self):
        for value in V.ALL:
            assert merge9(V.XX, value) == value
            assert merge9(value, V.XX) == value

    def test_conflicts(self):
        assert merge9(V.S0, V.S1) == -1
        assert merge9(V.RISE, V.FALL) == -1
        assert merge9(V.S1, V.X0) == -1  # required steady 1 vs settles-to-0
        assert merge9(V.S1, V.RISE) == -1  # init 1 vs init 0

    def test_refinement(self):
        assert merge9(V.X1, V.S1) == V.S1
        assert merge9(V.ZX, V.RISE) == V.RISE
        assert merge9(V.X0, V.ZX) == V.S0  # init 0 + final 0

    @given(values9, values9)
    @settings(max_examples=81, deadline=None)
    def test_commutative(self, a, b):
        assert merge9(a, b) == merge9(b, a)

    @given(values9)
    @settings(max_examples=9, deadline=None)
    def test_idempotent(self, a):
        assert merge9(a, a) == a

    @given(values9, values9, values9)
    @settings(max_examples=200, deadline=None)
    def test_associative_when_defined(self, a, b, c):
        ab = merge9(a, b)
        bc = merge9(b, c)
        left = merge9(ab, c) if ab >= 0 else -1
        right = merge9(a, bc) if bc >= 0 else -1
        assert left == right

    def test_covers(self):
        assert covers(V.XX, V.S1)
        assert covers(V.X1, V.S1)
        assert not covers(V.S0, V.S1)


class TestCellEvaluator:
    def setup_method(self):
        self.lib = default_library()

    def test_paper_and2_example(self):
        """The paper's example: a falling transition on one AND2 input
        with the other input undetermined yields X0."""
        and2 = CellEvaluator(self.lib["AND2"])
        assert and2.evaluate([V.FALL, V.XX]) == V.X0

    def test_and2_transition_propagation(self):
        and2 = CellEvaluator(self.lib["AND2"])
        assert and2.evaluate([V.RISE, V.S1]) == V.RISE
        assert and2.evaluate([V.RISE, V.S0]) == V.S0

    def test_nand2_inverts(self):
        nand2 = CellEvaluator(self.lib["NAND2"])
        assert nand2.evaluate([V.RISE, V.S1]) == V.FALL
        assert nand2.evaluate([V.FALL, V.S1]) == V.RISE

    def test_xor_polarity_follows_side(self):
        xor = CellEvaluator(self.lib["XOR2"])
        assert xor.evaluate([V.RISE, V.S0]) == V.RISE
        assert xor.evaluate([V.RISE, V.S1]) == V.FALL

    def test_two_transitions(self):
        """Simultaneous same-polarity transitions on AND2 still rise."""
        and2 = CellEvaluator(self.lib["AND2"])
        assert and2.evaluate([V.RISE, V.RISE]) == V.RISE
        # Opposite transitions: starts at 0 ends at 0 (statically).
        assert and2.evaluate([V.RISE, V.FALL]) == V.S0

    def test_semi_undetermined_or(self):
        or2 = CellEvaluator(self.lib["OR2"])
        assert or2.evaluate([V.RISE, V.XX]) == V.X1

    def test_memoization(self):
        and2 = CellEvaluator(self.lib["AND2"])
        first = and2.evaluate([V.RISE, V.S1])
        assert and2.evaluate([V.RISE, V.S1]) == first
        assert (V.RISE, V.S1) in and2._memo

    def test_consistency_with_truth_table(self):
        """Pair evaluation agrees with evaluating init/final separately
        through the plain 3-valued function for every input combo."""
        ao22 = self.lib["AO22"]
        evaluator = CellEvaluator(ao22)
        pool = [V.S0, V.S1, V.RISE, V.FALL, V.XX]
        for combo in itertools.product(pool, repeat=2):
            values = list(combo) + [V.S0, V.S1]
            result = evaluator.evaluate(values)
            inits = [V.init_of(v) for v in values]
            finals = [V.final_of(v) for v in values]
            assert V.unpack(result) == (
                ao22.func.eval3(inits), ao22.func.eval3(finals)
            )
