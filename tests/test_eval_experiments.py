"""Tests for the per-table experiment runners (small configurations)."""

import pytest

from repro.eval import exp_table5, exp_table6, exp_tables12
from repro.eval.exp_table6 import (
    count_input_vectors,
    multi_vector_path_count,
    worst_delay_prediction_ratio,
)
from repro.eval.iscas import build_circuit
from repro.tech.presets import TECHNOLOGIES


class TestTables12:
    def test_counts_match_paper(self):
        result = exp_tables12.run()
        ao22 = result["tables"]["AO22"]
        assert ao22["total_vectors"] == 12
        assert all(v == 3 for v in ao22["vectors_per_pin"].values())
        oa12 = result["tables"]["OA12"]
        assert oa12["vectors_per_pin"] == {"A": 1, "B": 1, "C": 3}
        assert "Case 2" in result["text"]

    def test_text_row_count(self):
        result = exp_tables12.run()
        # 12 AO22 rows + 5 OA12 rows + headers/rules/titles
        assert result["text"].count("| T |") + result["text"].count("| T\n") >= 0
        assert len(result["tables"]["AO22"]["rows"]) == 12
        assert len(result["tables"]["OA12"]["rows"]) == 5


class TestTable5:
    def test_full_story(self, tech90, charlib_poly_90, charlib_lut_90):
        result = exp_table5.run(
            tech90, charlib_poly_90, charlib_lut_90,
            steps_per_window=250,
        )
        assert len(result["developed_variants"]) == 3
        assert len(result["baseline_variants"]) == 1
        assert result["baseline_missed_worst"] is True
        assert result["golden_gap"] > 0.03  # paper: 7.3%
        # Model ranking agrees with golden ranking for the worst vector.
        rows = result["rows"]
        golden_worst = max(rows, key=lambda r: r["golden_delay"])
        assert golden_worst is rows[0]

    def test_without_simulation(self, tech90, charlib_poly_90, charlib_lut_90):
        result = exp_table5.run(
            tech90, charlib_poly_90, charlib_lut_90, simulate=False
        )
        assert "golden_gap" not in result
        assert result["rows"][0]["model_delay"] > 0


class TestTable6Helpers:
    def test_count_input_vectors(self, charlib_poly_90):
        from repro.core.sta import TruePathSTA
        from repro.netlist.generate import c17

        sta = TruePathSTA(c17(), charlib_poly_90)
        paths = sta.enumerate_paths()
        assert count_input_vectors(paths) == 22  # 11 paths x 2 polarities
        assert multi_vector_path_count(paths) == 0  # NAND-only circuit

    def test_worst_delay_ratio_none_without_multi(self, charlib_poly_90):
        from repro.core.sta import TruePathSTA
        from repro.netlist.generate import c17

        sta = TruePathSTA(c17(), charlib_poly_90)
        paths = sta.enumerate_paths()
        assert worst_delay_prediction_ratio(paths, paths) is None

    def test_fig4_ratio_zero(self, charlib_poly_90, charlib_lut_90):
        """On Fig. 4 the baseline picks case 1 but the worst is case 2,
        so its worst-delay prediction ratio is 0."""
        from repro.baseline.sta2step import TwoStepSTA
        from repro.core.sta import TruePathSTA
        from repro.eval.fig4 import fig4_circuit

        circuit = fig4_circuit()
        dev = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        base = TwoStepSTA(circuit, charlib_lut_90)
        report = base.run(max_structural_paths=100)
        ratio = worst_delay_prediction_ratio(dev, base.true_paths(report))
        assert ratio == 0.0


class TestTable6:
    def test_small_run(self, charlib_poly_90, charlib_lut_90):
        result = exp_table6.run(
            charlib_poly_90,
            charlib_lut_90,
            circuits=["c17", "c432"],
            scale=0.15,
            max_dev_paths=2000,
            max_structural_paths=400,
        )
        rows = result["rows"]
        assert [r.circuit for r in rows] == ["c17", "c432"]
        c17_row = rows[0]
        assert c17_row.dev_input_vectors == 22
        assert c17_row.base_paths == 11
        assert c17_row.base_false_misidentified == 0
        c432_row = rows[1]
        assert c432_row.dev_input_vectors > 0
        assert 0.0 <= c432_row.no_vector_ratio <= 1.0
        assert "Table 6" in result["text"]

    def test_developed_faster_than_baseline_far_more_thorough(
        self, charlib_poly_90, charlib_lut_90
    ):
        """The headline CPU claim, checked loosely: the single-pass tool
        enumerates all sensitizations in time comparable to the baseline
        checking a limited structural list."""
        result = exp_table6.run(
            charlib_poly_90,
            charlib_lut_90,
            circuits=["c432"],
            scale=0.2,
            max_dev_paths=5000,
            max_structural_paths=500,
        )
        row = result["rows"][0]
        # Developed tool explores *every* vector combination; baseline
        # only 500 structural candidates. Allow generous slack but make
        # sure the developed tool is not orders of magnitude slower.
        assert row.dev_cpu < max(10 * row.base_cpu, 5.0)
