"""Unit tests for waveform measurements."""

import numpy as np
import pytest

from repro.spice.measure import (
    MeasurementError,
    cross_time,
    propagation_delay,
    settled,
    transition_time,
)


def linear_edge(rising=True, start=1.0, span=2.0, vdd=1.0, n=201, total=5.0):
    times = np.linspace(0.0, total, n)
    if rising:
        wave = np.clip((times - start) / span, 0.0, 1.0) * vdd
    else:
        wave = (1.0 - np.clip((times - start) / span, 0.0, 1.0)) * vdd
    return times, wave


class TestCrossTime:
    def test_rising_interpolated(self):
        t, v = linear_edge(rising=True)
        assert cross_time(t, v, 0.5, rising=True) == pytest.approx(2.0, rel=1e-6)

    def test_falling(self):
        t, v = linear_edge(rising=False)
        assert cross_time(t, v, 0.5, rising=False) == pytest.approx(2.0, rel=1e-6)

    def test_after_skips_early_crossings(self):
        t = np.linspace(0, 10, 1001)
        v = np.sin(t)  # rises through 0.5 near 0.52 and again near 6.8
        first = cross_time(t, v, 0.5, rising=True)
        second = cross_time(t, v, 0.5, rising=True, after=first + 1.0)
        assert second > first + 3.0

    def test_no_crossing_raises(self):
        t, v = linear_edge(rising=True)
        with pytest.raises(MeasurementError, match="falling"):
            cross_time(t, v, 0.5, rising=False)


class TestTransitionTime:
    def test_linear_ramp_10_90(self):
        t, v = linear_edge(rising=True, span=2.0)
        assert transition_time(t, v, rising=True, vdd=1.0) == pytest.approx(
            1.6, rel=1e-6
        )

    def test_falling(self):
        t, v = linear_edge(rising=False, span=1.0)
        assert transition_time(t, v, rising=False, vdd=1.0) == pytest.approx(
            0.8, rel=1e-6
        )


class TestPropagationDelay:
    def test_shifted_edges(self):
        t, vin = linear_edge(rising=True, start=1.0, span=1.0)
        _t, vout = linear_edge(rising=False, start=2.0, span=1.0)
        d = propagation_delay(t, vin, vout, in_rising=True, out_rising=False,
                              vdd=1.0)
        assert d == pytest.approx(1.0, rel=1e-6)


class TestSettled:
    def test_settled_true(self):
        wave = np.concatenate([np.linspace(0, 1, 50), np.ones(20)])
        assert settled(wave, 1.0, 0.01)

    def test_settled_false(self):
        wave = np.linspace(0, 1, 50)
        assert not settled(wave, 1.0, 0.01)
