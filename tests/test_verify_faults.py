"""Fault-injection harness: plans, corruption, and the scenario driver."""

import pytest

from repro.verify.faults import (
    FAULT_SCENARIOS,
    FaultPlan,
    corrupt_charlib,
    run_faults,
)
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def _circuit(seed=41, gates=30):
    return techmap(random_dag(f"flt{seed}", 6, gates, seed=seed,
                              n_outputs=3))


class TestFaultPlan:
    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan(crash_origins=("I0",), hang_origins=("I1",),
                         interrupt_after=3)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_faults_never_fire_in_process(self):
        # The in-process paths (serial mode, serial fallback) must be
        # fault-free by construction -- a crash here would kill pytest.
        plan = FaultPlan(crash_origins=("I0",), hang_origins=("I0",),
                         hang_seconds=60.0)
        plan.before_shard("I0", 0, in_worker=False)

    def test_off_schedule_attempts_pass_through(self):
        plan = FaultPlan(hang_origins=("I0",), hang_attempts=(0,),
                         hang_seconds=60.0)
        # Attempt 1 (the retry) is not scheduled: returns immediately.
        plan.before_shard("I0", 1, in_worker=True)
        plan.before_shard("I9", 0, in_worker=True)


class TestCorruptCharlib:
    def test_deterministic_for_a_seed(self, charlib_poly_90):
        circuit = _circuit()
        _, dropped_a = corrupt_charlib(charlib_poly_90, circuit, seed=5)
        _, dropped_b = corrupt_charlib(charlib_poly_90, circuit, seed=5)
        _, dropped_c = corrupt_charlib(charlib_poly_90, circuit, seed=6)
        assert dropped_a == dropped_b
        assert dropped_a != dropped_c

    def test_original_library_untouched(self, charlib_poly_90):
        circuit = _circuit()
        before = len(charlib_poly_90.arcs())
        corrupted, dropped = corrupt_charlib(charlib_poly_90, circuit)
        assert dropped
        assert len(charlib_poly_90.arcs()) == before
        assert len(corrupted.arcs()) == before - len(dropped)

    def test_only_used_cells_lose_arcs(self, charlib_poly_90):
        circuit = _circuit()
        used = {inst.cell.name for inst in circuit.instances.values()}
        _, dropped = corrupt_charlib(charlib_poly_90, circuit)
        assert all(key.split("|")[0] in used for key in dropped)

    def test_every_corrupted_cell_keeps_a_donor_arc(self, charlib_poly_90):
        """warn-substitute needs at least one surviving arc per cell."""
        circuit = _circuit()
        corrupted, dropped = corrupt_charlib(
            charlib_poly_90, circuit, drop_fraction=1.0, max_drops=10_000)
        survivors = {}
        for arc in corrupted.arcs():
            survivors[arc.cell] = survivors.get(arc.cell, 0) + 1
        for key in dropped:
            assert survivors.get(key.split("|")[0], 0) >= 1


class TestRunFaults:
    def test_unknown_scenario_rejected(self, charlib_poly_90):
        with pytest.raises(ValueError):
            run_faults(_circuit(), charlib_poly_90,
                       scenarios=["no_such_fault"])

    def test_full_catalog_recovers(self, charlib_poly_90, clean_obs):
        circuit = _circuit()
        report = run_faults(circuit, charlib_poly_90, seed=11, jobs=2)
        assert [s.name for s in report.scenarios] == list(FAULT_SCENARIOS)
        assert report.ok, report.describe()
        # Every scenario actually exercised its recovery machinery.
        by_name = {s.name: s for s in report.scenarios}
        assert by_name["worker_crash"].recovery[
            "resilience.worker_crashes"] >= 1
        assert by_name["shard_timeout"].recovery[
            "resilience.shard_timeouts"] >= 1
        assert by_name["corrupt_charlib"].recovery[
            "delaycalc.arc_substitutions"] >= 1
        assert by_name["interrupt_resume"].recovery[
            "resilience.resumed_shards"] >= 1
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("verify.fault_scenarios").value \
            == len(FAULT_SCENARIOS)
        assert registry.counter("verify.fault_failures").value == 0
        text = report.describe()
        assert "all scenarios recovered" in text
