"""Tests for the experiment CLI driver (cheap experiments only)."""

import pytest

from repro.eval.run import main


class TestCheapExperiments:
    def test_tables12(self, capsys):
        assert main(["--experiment", "tables12"]) == 0
        out = capsys.readouterr().out
        assert "Propagation table AO22" in out
        assert out.count("Case 1") >= 6

    def test_fig23(self, capsys):
        assert main(["--experiment", "fig23", "--tech", "130nm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 3" in out
        assert "turns_on" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["--experiment", "bogus"])

    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_simultaneous(self, capsys):
        assert main(["--experiment", "simultaneous", "--tech", "90nm",
                     "--steps", "200"]) == 0
        out = capsys.readouterr().out
        assert "push-out" in out
