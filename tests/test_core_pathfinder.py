"""Tests for the single-pass true-path finder.

The heavyweight property here is *soundness*: every reported
(path, vector, polarity) must actually propagate a transition in plain
two-valued simulation of the circuit under the reported input vector.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import FALLING, RISING
from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17, random_dag, ripple_adder
from repro.netlist.techmap import techmap


def verify_sensitization(circuit, path, polarity):
    """The reported input vector must make the output toggle with the
    path's origin input."""
    vector = polarity.input_vector
    base = {k: (v if v in (0, 1) else 0) for k, v in vector.items()}
    origin = path.nets[0]
    before, after = dict(base), dict(base)
    before[origin] = 0 if polarity.input_rising else 1
    after[origin] = 1 - before[origin]
    v_before = circuit.simulate(before)
    v_after = circuit.simulate(after)
    terminal = path.nets[-1]
    if v_before[terminal] == v_after[terminal]:
        return False
    # The final values must match the reported output polarity.
    return v_after[terminal] == (1 if polarity.output_rising else 0)


@pytest.fixture(scope="module")
def c17_paths(charlib_poly_90):
    circuit = c17()
    sta = TruePathSTA(circuit, charlib_poly_90)
    return circuit, sta, sta.enumerate_paths()


class TestC17:
    def test_finds_all_eleven_paths(self, c17_paths):
        _c, _sta, paths = c17_paths
        assert len(paths) == 11  # c17 has 11 structural paths, all true

    def test_both_polarities_alive(self, c17_paths):
        _c, _sta, paths = c17_paths
        assert all(p.rise is not None and p.fall is not None for p in paths)

    def test_all_sensitizations_sound(self, c17_paths):
        circuit, _sta, paths = c17_paths
        for path in paths:
            for polarity in path.polarities():
                assert verify_sensitization(circuit, path, polarity), path.describe()

    def test_nand_chain_polarity_bookkeeping(self, c17_paths):
        _c, _sta, paths = c17_paths
        for path in paths:
            # Odd number of inverting stages flips the polarity.
            inversions = len(path.steps)  # every c17 gate is a NAND2
            if path.rise:
                assert path.rise.output_rising == ((inversions % 2) == 0)

    def test_delays_positive_and_ordered(self, c17_paths):
        _c, _sta, paths = c17_paths
        for path in paths:
            for pol in path.polarities():
                assert pol.arrival > 0
                assert len(pol.gate_delays) == len(path.steps)
                assert abs(sum(pol.gate_delays) - pol.arrival) < 1e-15

    def test_gate_delays_realistic(self, c17_paths):
        _c, _sta, paths = c17_paths
        for path in paths:
            for pol in path.polarities():
                for d in pol.gate_delays:
                    assert 1e-12 < d < 1e-9


class TestSearchControls:
    def test_max_paths(self, charlib_poly_90):
        circuit = techmap(random_dag("pfc", 14, 70, seed=2))
        sta = TruePathSTA(circuit, charlib_poly_90)
        capped = sta.enumerate_paths(max_paths=5)
        assert len(capped) == 5

    def test_inputs_filter(self, charlib_poly_90):
        circuit = c17()
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths(inputs=["G1"])
        assert paths and all(p.nets[0] == "G1" for p in paths)

    def test_single_polarity_mode(self, charlib_poly_90):
        circuit = c17()
        sta = TruePathSTA(circuit, charlib_poly_90)
        rise_only = sta.enumerate_paths(single_polarity=RISING)
        assert all(p.rise is not None and p.fall is None for p in rise_only)
        fall_only = sta.enumerate_paths(single_polarity=FALLING)
        assert all(p.fall is not None and p.rise is None for p in fall_only)

    def test_dual_pass_equals_two_single_passes(self, charlib_poly_90):
        circuit = techmap(random_dag("dual", 12, 60, seed=9))
        sta = TruePathSTA(circuit, charlib_poly_90)
        dual = sta.enumerate_paths()
        rise = sta.enumerate_paths(single_polarity=RISING)
        fall = sta.enumerate_paths(single_polarity=FALLING)
        dual_rise = {(p.key) for p in dual if p.rise}
        dual_fall = {(p.key) for p in dual if p.fall}
        assert dual_rise == {p.key for p in rise}
        assert dual_fall == {p.key for p in fall}

    def test_n_worst_pruning_keeps_true_top(self, charlib_poly_90):
        circuit = techmap(random_dag("prune", 14, 90, seed=4))
        sta = TruePathSTA(circuit, charlib_poly_90)
        exhaustive = sta.enumerate_paths()
        top3 = sorted(
            (p.worst_arrival for p in exhaustive), reverse=True
        )[:3]
        pruned = sta.n_worst_paths(3)
        assert [p.worst_arrival for p in pruned] == pytest.approx(top3)

    def test_stats_populated(self, charlib_poly_90):
        circuit = c17()
        sta = TruePathSTA(circuit, charlib_poly_90)
        sta.enumerate_paths()
        stats = sta.last_stats
        assert stats.paths_found == 11
        assert stats.states_saved > 0
        assert stats.cpu_seconds > 0


class TestVectorExploration:
    def test_vector_variants_recorded_distinctly(self, charlib_poly_90):
        """Paths through an AO22 keep one record per vector combo."""
        from repro.eval.fig4 import fig4_circuit

        circuit = fig4_circuit()
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths()
        by_course = sta.group_by_course(paths)
        critical = by_course[("N1", "n10", "n11", "n12", "N20")]
        assert len(critical) == 3  # cases 1, 2, 3 of the AO22
        signatures = {p.vector_signature for p in critical}
        assert len(signatures) == 3

    def test_multi_vector_flag(self, charlib_poly_90):
        from repro.eval.fig4 import fig4_circuit

        sta = TruePathSTA(fig4_circuit(), charlib_poly_90)
        paths = sta.enumerate_paths()
        for p in paths:
            traverses_ao22 = any(s.cell_name == "AO22" for s in p.steps)
            xorish = any(s.cell_name in ("XOR2", "XNOR2") for s in p.steps)
            assert p.multi_vector == (traverses_ao22 or xorish)

    def test_worst_vector_per_course(self, charlib_poly_90):
        from repro.eval.fig4 import fig4_circuit

        sta = TruePathSTA(fig4_circuit(), charlib_poly_90)
        paths = sta.enumerate_paths()
        worst = sta.worst_vector_per_course(paths)
        course = ("N1", "n10", "n11", "n12", "N20")
        # The worst vector is AO22 case 2 (C=1, D=0 side values).
        assert worst[course].steps[2].case == 2


class TestSoundnessProperty:
    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_circuits_sound(self, seed):
        # hypothesis doesn't inject fixtures; load the cached lib inline.
        from repro.charlib.characterize import FAST_GRID, characterize_library
        from repro.gates.library import default_library
        from repro.tech.presets import TECHNOLOGIES

        charlib = characterize_library(
            default_library(), TECHNOLOGIES["90nm"], grid=FAST_GRID
        )
        circuit = techmap(random_dag(f"snd{seed}", 10, 45, seed=seed))
        sta = TruePathSTA(circuit, charlib)
        paths = sta.enumerate_paths(max_paths=200)
        sample = paths if len(paths) <= 40 else random.Random(seed).sample(paths, 40)
        for path in sample:
            for polarity in path.polarities():
                assert verify_sensitization(circuit, path, polarity), (
                    seed, path.describe()
                )

    def test_adder_exhaustive_soundness(self, charlib_poly_90):
        circuit = techmap(ripple_adder(4))
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths()
        assert paths
        for path in paths:
            for polarity in path.polarities():
                assert verify_sensitization(circuit, path, polarity)
