"""Coverage for waveform plumbing in the electrical testbench."""

import numpy as np
import pytest

from repro.gates.library import default_library
from repro.spice.cellsim import CellSimulator
from repro.spice.pathsim import PathSimulator, PathStage
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def setup():
    lib = default_library()
    tech = TECHNOLOGIES["90nm"]
    inv = lib["INV"]
    sim = CellSimulator(inv, tech, steps_per_window=250)
    vec = inv.sensitization_vectors("A")[0]
    result = sim.propagation("A", vec, True, t_in=40e-12, c_load=4e-15)
    return lib, tech, inv, vec, result


class TestPropagationResult:
    def test_waveform_accessor(self, setup):
        *_, result = setup
        wf = result.output_waveform()
        assert set(wf) == {"times", "values"}
        assert len(wf["times"]) == len(wf["values"])

    def test_waveform_monotone_time(self, setup):
        *_, result = setup
        times = result.output_waveform()["times"]
        assert np.all(np.diff(times) > 0)

    def test_output_settles_at_rail(self, setup):
        _lib, tech, *_ , result = setup
        assert result.out_wave[-1] == pytest.approx(0.0, abs=0.03 * tech.vdd)

    def test_input_trace_recorded(self, setup):
        _lib, tech, *_, result = setup
        assert result.in_wave[0] == pytest.approx(0.0, abs=1e-3)
        assert result.in_wave[-1] == pytest.approx(tech.vdd, rel=1e-3)


class TestChainedWaveforms:
    def test_second_stage_sees_real_edge(self, setup):
        """Chained simulation feeds the measured waveform, so the second
        stage's delay differs from a fresh-ramp measurement when the
        first stage's slew differs from the nominal ramp."""
        lib, tech, inv, vec, _result = setup
        heavy = 20e-15  # slow first stage -> degraded slew into stage 2
        ps = PathSimulator(tech, steps_per_window=250)
        chain = ps.run(
            [PathStage(inv, "A", vec, heavy), PathStage(inv, "A", vec, 4e-15)],
            input_rising=True, t_in_first=20e-12,
        )
        fresh = CellSimulator(inv, tech, steps_per_window=250).propagation(
            "A", vec, True, t_in=20e-12, c_load=4e-15
        )
        assert chain.gate_delays[1] > fresh.delay  # slew degradation

    def test_polarity_chain(self, setup):
        lib, tech, inv, vec, _result = setup
        ps = PathSimulator(tech, steps_per_window=250)
        for stages, expected in [(1, False), (2, True), (3, False)]:
            result = ps.run([PathStage(inv, "A", vec, 4e-15)] * stages,
                            input_rising=True, t_in_first=30e-12)
            assert result.output_rising is expected
