"""Tests for the event-driven timing simulator.

The headline property: STA-reported true paths *materialize* in dynamic
simulation -- replaying a path's input vector produces an endpoint event
at (close to) the reported arrival time, via a completely independent
mechanism.
"""

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap
from repro.netlist.timingsim import TimingSimulator, measure_path_delay


@pytest.fixture(scope="module")
def c17_setup(charlib_poly_90):
    circuit = c17()
    sim = TimingSimulator(circuit, charlib_poly_90)
    sta = TruePathSTA(circuit, charlib_poly_90)
    return circuit, sim, sta.enumerate_paths()


class TestBasicSimulation:
    def test_inverting_chain(self, c17_setup):
        circuit, sim, _paths = c17_setup
        # G1 rise with G3=1, G2=0, G6=0, G7=0: G10 = NAND(G1,G3) falls.
        result = sim.simulate_transition(
            {"G1": 0, "G2": 0, "G3": 1, "G6": 0, "G7": 0}, "G1", rising=True
        )
        g10 = result.last_event("G10")
        assert g10 is not None and g10.value == 0
        assert g10.time > 0

    def test_no_propagation_when_blocked(self, c17_setup):
        circuit, sim, _paths = c17_setup
        # G3=0 blocks G1 at the first NAND (controlling side value).
        result = sim.simulate_transition(
            {"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0}, "G1", rising=True
        )
        assert not result.toggled("G10")
        assert not result.toggled("G22")

    def test_final_values_match_static_simulation(self, c17_setup):
        circuit, sim, _paths = c17_setup
        before = {"G1": 0, "G2": 1, "G3": 1, "G6": 1, "G7": 0}
        result = sim.simulate_transition(before, "G1", rising=True)
        after = dict(before, G1=1)
        static = circuit.simulate(after)
        for net, value in static.items():
            assert result.final_values[net] == value, net

    def test_activity_counted(self, c17_setup):
        _c, sim, _p = c17_setup
        result = sim.simulate_transition(
            {"G1": 0, "G2": 1, "G3": 1, "G6": 1, "G7": 0}, "G1", True
        )
        assert result.evaluations > 0


class TestStaCrossValidation:
    def test_every_c17_path_materializes(self, c17_setup):
        circuit, sim, paths = c17_setup
        for path in paths:
            for pol in path.polarities():
                measured = measure_path_delay(
                    sim, pol.input_vector, path.nets[0],
                    pol.input_rising, path.nets[-1],
                )
                assert measured is not None, path.describe()
                # Event simulation uses the same arcs, so the settle
                # time matches the arrival closely (slew handling at
                # reconvergence differs slightly).
                assert measured == pytest.approx(pol.arrival, rel=0.15)

    def test_random_circuit_paths_materialize(self, charlib_poly_90):
        circuit = techmap(random_dag("evs", 12, 60, seed=77))
        sim = TimingSimulator(circuit, charlib_poly_90)
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths(max_paths=150)
        checked = 0
        for path in paths[:40]:
            for pol in path.polarities():
                measured = measure_path_delay(
                    sim, pol.input_vector, path.nets[0],
                    pol.input_rising, path.nets[-1],
                )
                assert measured is not None, path.describe()
                checked += 1
        assert checked > 0

    def test_worst_path_dominates_dynamics(self, c17_setup):
        """No dynamic settle time exceeds the STA worst arrival by more
        than the cross-mechanism tolerance (STA is an upper bound)."""
        circuit, sim, paths = c17_setup
        worst = max(p.worst_arrival for p in paths)
        for path in paths:
            for pol in path.polarities():
                measured = measure_path_delay(
                    sim, pol.input_vector, path.nets[0],
                    pol.input_rising, path.nets[-1],
                )
                assert measured <= worst * 1.15
