"""Cross-layer consistency: transistor networks vs boolean functions.

Because every cell's function is *derived from* its declared pull-down
network, the electrical DC solution must agree with the truth table for
every cell and every input combination.  This is the contract that
makes the electrical golden reference and the logic engines comparable
at all.
"""

import itertools

import pytest

from repro.gates.library import default_library
from repro.spice.simulator import TransientSolver, constant
from repro.spice.topology import build_topology
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.mark.parametrize(
    "cell_name",
    [
        "INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3", "AND2", "OR2",
        "XOR2", "XNOR2", "AOI21", "AOI22", "OAI12", "OAI22",
        "AO21", "AO22", "OA12", "OA22", "MUX2",
        "NAND2B", "NOR2B", "AND2B", "OR2B",
    ],
)
def test_dc_matches_truth_table(cell_name, lib, tech):
    cell = lib[cell_name]
    topo = build_topology(cell, tech)
    for bits in itertools.product((0, 1), repeat=cell.num_inputs):
        forced = {
            pin: constant(b * tech.vdd) for pin, b in zip(cell.inputs, bits)
        }
        solver = TransientSolver(topo, tech, forced, c_load=1e-15)
        v = solver.solve_dc()
        z = v[solver.unknown_nodes.index("Z")]
        expected = cell.func.eval(bits) * tech.vdd
        assert z == pytest.approx(expected, abs=0.1), (cell_name, bits)


def test_wide_gates_dc(lib, tech):
    """4-input cells solve cleanly too (deep stacks)."""
    for cell_name in ("NAND4", "NOR4", "AND4", "OR4"):
        cell = lib[cell_name]
        topo = build_topology(cell, tech)
        for bits in [(0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 1, 0)]:
            forced = {
                pin: constant(b * tech.vdd)
                for pin, b in zip(cell.inputs, bits)
            }
            solver = TransientSolver(topo, tech, forced, c_load=1e-15)
            v = solver.solve_dc()
            z = v[solver.unknown_nodes.index("Z")]
            assert z == pytest.approx(cell.func.eval(bits) * tech.vdd,
                                      abs=0.1), (cell_name, bits)
