"""Unit and property tests for the circuit generators."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.generate import (
    alu_slice,
    array_multiplier,
    c17,
    ecc_corrector,
    parity_tree,
    random_dag,
    ripple_adder,
)


def bits_of(value, width, prefix):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


class TestC17:
    def test_structure(self):
        c = c17()
        assert c.name == "c17"
        assert c.stats()["gates"] == 6


class TestRippleAdder:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_adds(self, x, y, cin):
        width = 8
        c = TestRippleAdder._adder(width)
        iv = {**bits_of(x, width, "A"), **bits_of(y, width, "B"), "CIN": cin}
        v = c.simulate(iv)
        total = sum(v[f"S{i}"] << i for i in range(width)) + (v[f"C{width}"] << width)
        assert total == x + y + cin

    _cache = {}

    @staticmethod
    def _adder(width):
        if width not in TestRippleAdder._cache:
            TestRippleAdder._cache[width] = ripple_adder(width)
        return TestRippleAdder._cache[width]


class TestArrayMultiplier:
    def test_exhaustive_3x3(self):
        c = array_multiplier(3)
        for x, y in itertools.product(range(8), repeat=2):
            iv = {**bits_of(x, 3, "A"), **bits_of(y, 3, "B")}
            v = c.simulate(iv)
            product = sum(v[f"P{k}"] << k for k in range(6) if f"P{k}" in v)
            assert product == x * y, (x, y)

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_random_6x6(self, x, y):
        c = TestArrayMultiplier._mul6()
        iv = {**bits_of(x, 6, "A"), **bits_of(y, 6, "B")}
        v = c.simulate(iv)
        product = sum(v[f"P{k}"] << k for k in range(12) if f"P{k}" in v)
        assert product == x * y

    _m6 = None

    @staticmethod
    def _mul6():
        if TestArrayMultiplier._m6 is None:
            TestArrayMultiplier._m6 = array_multiplier(6)
        return TestArrayMultiplier._m6

    def test_c6288_scale(self):
        c = array_multiplier(16)
        stats = c.stats()
        assert stats["inputs"] == 32
        assert stats["gates"] > 1000
        assert stats["depth"] > 30  # the famous deep carry chains


class TestParityTree:
    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=30, deadline=None)
    def test_parity(self, value):
        c = TestParityTree._tree()
        v = c.simulate(bits_of(value, 16, "D"))
        assert v["PARITY"] == bin(value).count("1") % 2

    _t = None

    @staticmethod
    def _tree():
        if TestParityTree._t is None:
            TestParityTree._t = parity_tree(16)
        return TestParityTree._t


class TestEccCorrector:
    @staticmethod
    def _encode(data_bits, width):
        """Hamming check bits for the generator's position layout."""
        r = 1
        while (1 << r) < width + r + 1:
            r += 1
        positions = {}
        index, pos = 0, 1
        while index < width:
            if pos & (pos - 1):
                positions[pos] = index
                index += 1
            pos += 1
        checks = []
        for j in range(r):
            parity = 0
            for p, di in positions.items():
                if p & (1 << j):
                    parity ^= (data_bits >> di) & 1
            checks.append(parity)
        return positions, checks

    @given(st.integers(0, 2**16 - 1), st.integers(-1, 15))
    @settings(max_examples=40, deadline=None)
    def test_corrects_single_error(self, data, flip):
        width = 16
        c = TestEccCorrector._circ()
        positions, checks = self._encode(data, width)
        iv = bits_of(data, width, "D")
        iv.update({f"P{j}": v for j, v in enumerate(checks)})
        if flip >= 0:
            iv[f"D{flip}"] ^= 1  # inject a single-bit error
        v = c.simulate(iv)
        for i in range(width):
            assert v[f"Q{i}"] == (data >> i) & 1, f"bit {i} (flip={flip})"

    _c = None

    @staticmethod
    def _circ():
        if TestEccCorrector._c is None:
            TestEccCorrector._c = ecc_corrector(16)
        return TestEccCorrector._c


class TestAluSlice:
    @given(st.integers(0, 255), st.integers(0, 255),
           st.integers(0, 1), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_operations(self, x, y, cin, op):
        width = 8
        c = TestAluSlice._alu()
        s0, s1 = op & 1, op >> 1
        iv = {**bits_of(x, width, "A"), **bits_of(y, width, "B"),
              "CIN": cin, "S0": s0, "S1": s1}
        v = c.simulate(iv)
        f = sum(v[f"F{i}"] << i for i in range(width))
        expected = {
            (0, 0): (x + y + cin) & (2**width - 1),
            (1, 0): x & y,
            (0, 1): x | y,
            (1, 1): x ^ y,
        }[(s0, s1)]
        assert f == expected

    _a = None

    @staticmethod
    def _alu():
        if TestAluSlice._a is None:
            TestAluSlice._a = alu_slice(8)
        return TestAluSlice._a


class TestRandomDag:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_invariants(self, seed):
        c = random_dag(f"inv{seed}", 12, 60, seed=seed)
        c.check()
        # no dead logic: every non-output net is read somewhere
        for name, net in c.nets.items():
            assert net.fanout > 0 or net.is_output, name

    def test_deterministic(self):
        a = random_dag("d", 10, 50, seed=5)
        b = random_dag("d", 10, 50, seed=5)
        assert a.cell_histogram() == b.cell_histogram()
        assert [i.output_net for i in a.topological()] == [
            i.output_net for i in b.topological()
        ]

    def test_gate_count(self):
        c = random_dag("n", 20, 300, seed=1)
        assert c.num_gates == 300

    def test_output_target_roughly_met(self):
        c = random_dag("o", 30, 400, seed=2, n_outputs=15)
        assert 5 <= len(c.outputs) <= 60
