"""Fleet-mode compute: byte identity and crash supervision.

The worker fleet must be *invisible* in the answers: for any request,
a ``fleet=N`` server serves the same bytes as the threaded server and
the one-shot CLI (both run :func:`repro.service.fleet.run_work` on the
same spec).  What the fleet adds is blast-radius control, exercised
here via the ``fleet_fault`` chaos param: a worker hard-killed
mid-request costs one attempt (supervised retry onto a respawned
worker), retries are bounded (exhaustion maps to a structured
``internal`` error, the daemon survives), and a hung worker is killed
at its hard wall deadline.
"""

from __future__ import annotations

import contextlib
import io

import pytest

from repro import cli
from repro.service import ServiceClient, ServiceConfig, ServiceError
from repro.service.server import start_in_thread

#: (label, one-shot CLI argv, service op, service params) -- one entry
#: per served op, so the byte-identity contract is pinned for all of
#: analyze/verify/size in fleet mode.
WORKLOAD = [
    ("analyze-c17",
     ["analyze", "iscas:c17"],
     "analyze", {"netlist": "iscas:c17"}),
    ("analyze-c432-nworst",
     ["analyze", "iscas:c432@0.1", "--n-worst", "5", "--top", "5"],
     "analyze", {"netlist": "iscas:c432@0.1", "n_worst": 5, "top": 5}),
    ("verify-c17",
     ["verify", "--oracle", "--circuit", "iscas:c17"],
     "verify", {"circuits": ["iscas:c17"], "oracle": True}),
    ("size-c17",
     ["size", "iscas:c17", "--required", "150"],
     "size", {"netlist": "iscas:c17", "required_ps": 150.0}),
]


def cli_stdout(argv) -> str:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        rc = cli.main(argv)
    assert rc == 0, f"cli {argv} exited {rc}"
    return buffer.getvalue()


@pytest.fixture(scope="module")
def fleet_server():
    handle = start_in_thread(ServiceConfig(
        heartbeat_interval=0.1, fleet=2, request_retries=2,
        retry_backoff=0.05, allow_fault_injection=True))
    yield handle
    handle.stop()


@pytest.fixture
def client(fleet_server):
    with ServiceClient(fleet_server.host, fleet_server.port,
                       timeout=300.0) as c:
        yield c


# ---------------------------------------------------------------------------
# Byte identity


@pytest.mark.parametrize("label,argv,op,params", WORKLOAD,
                         ids=[w[0] for w in WORKLOAD])
def test_fleet_served_byte_identical_to_cli(client, label, argv, op,
                                            params):
    served = client.call(op, params)
    assert served["report"] + "\n" == cli_stdout(argv), \
        f"fleet-served {label} diverged from one-shot CLI"


def test_fleet_and_threaded_servers_serve_identical_bytes():
    params = {"netlist": "iscas:c432@0.1", "n_worst": 4, "top": 4}
    threaded = start_in_thread(ServiceConfig(heartbeat_interval=0.1))
    try:
        with ServiceClient(threaded.host, threaded.port,
                           timeout=300.0) as c:
            reference = c.call("analyze", dict(params))
    finally:
        threaded.stop()
    fleet = start_in_thread(ServiceConfig(heartbeat_interval=0.1,
                                          fleet=1))
    try:
        with ServiceClient(fleet.host, fleet.port, timeout=300.0) as c:
            served = c.call("analyze", dict(params))
    finally:
        fleet.stop()
    assert served["report"] == reference["report"]
    assert served["paths"] == reference["paths"]


# ---------------------------------------------------------------------------
# Crash supervision


def test_worker_crash_retried_to_identical_report(client):
    plain = client.call("analyze", {"netlist": "iscas:c17", "top": 6})
    crashed = client.call("analyze", {
        "netlist": "iscas:c17", "top": 6,
        "fleet_fault": {"crash_attempts": [0]}})
    assert crashed["cached"] is False  # fault-injected: never memoized
    assert crashed["report"] == plain["report"]
    stats = client.call("stats")["executor"]
    assert stats["mode"] == "fleet"
    assert stats["crashes"] >= 1
    assert stats["retries"] >= 1


def test_retries_exhausted_maps_to_internal_error(client):
    with pytest.raises(ServiceError) as err:
        client.call("analyze", {
            "netlist": "iscas:c17",
            "fleet_fault": {"crash_attempts": [0, 1, 2, 3, 4]}})
    assert err.value.code == "internal"
    assert "attempts" in err.value.message
    # One poisoned request never takes the daemon down: the next
    # request on the same connection answers fine.
    follow_up = client.call("analyze", {"netlist": "iscas:c17"})
    assert follow_up["kind"] == "result"


def test_hung_worker_killed_at_hard_deadline(client):
    # The hang fires before any compute, so only the supervisor's hard
    # wall deadline (derived from the request deadline) can end it.
    with pytest.raises(ServiceError) as err:
        client.call(
            "analyze",
            {"netlist": "iscas:c17",
             "fleet_fault": {"hang_attempts": [0], "hang_s": 60.0}},
            deadline_s=1.0)
    assert err.value.code == "deadline-exceeded"
    assert "worker killed" in err.value.message
    follow_up = client.call("analyze", {"netlist": "iscas:c17"})
    assert follow_up["kind"] == "result"


# ---------------------------------------------------------------------------
# Fault-injection gating


def test_fleet_fault_rejected_without_fleet():
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.1,
                                           allow_fault_injection=True))
    try:
        with ServiceClient(handle.host, handle.port, timeout=60.0) as c:
            with pytest.raises(ServiceError) as err:
                c.call("analyze", {
                    "netlist": "iscas:c17",
                    "fleet_fault": {"crash_attempts": [0]}})
    finally:
        handle.stop()
    assert err.value.code == "bad-request"
    assert "--fleet" in err.value.message


def test_fleet_fault_refused_on_production_server():
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.1,
                                           fleet=1))
    try:
        with ServiceClient(handle.host, handle.port, timeout=60.0) as c:
            with pytest.raises(ServiceError) as err:
                c.call("analyze", {
                    "netlist": "iscas:c17",
                    "fleet_fault": {"crash_attempts": [0]}})
    finally:
        handle.stop()
    assert err.value.code == "bad-request"
    assert "disabled" in err.value.message
