"""Equivalence of the process-pool parallel driver with the serial search.

Property-style: on generated circuits, ``parallel_find_paths`` must
yield exactly the same path stream (nets, vectors, arrivals) and the
same merged search-effort totals as the serial single-pass search --
the shards are per-origin and origins never share state, so any
divergence is a merge bug.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.perf import parallel_find_paths

#: Counters that must merge to exactly the serial totals on an
#: unrestricted search (cpu_seconds is wall-clock, pruned depends on
#: heap state, so neither is listed).
EXACT_COUNTERS = (
    "paths_found",
    "extensions_tried",
    "conflicts",
    "justification_backtracks",
    "justification_cubes",
    "justification_aborts",
    "justify_skipped",
    "states_saved",
)


def _circuit(seed: int, gates: int = 60):
    return techmap(random_dag(f"pp{seed}", 8, gates, seed=seed, n_outputs=4))


def _key(path):
    return (
        path.nets,
        tuple((s.gate_name, s.pin, s.vector_id) for s in path.steps),
    )


def _arrivals(paths):
    return [pytest.approx(p.worst_arrival) for p in paths]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", [3, 11, 27])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_same_paths_and_counters(self, charlib_poly_90, seed, jobs):
        circuit = _circuit(seed)
        sta = TruePathSTA(circuit, charlib_poly_90)
        serial = sta.enumerate_paths()
        serial_stats = sta.last_stats.as_dict()

        paths, merged = parallel_find_paths(circuit, charlib_poly_90, jobs=jobs)
        assert [_key(p) for p in paths] == [_key(p) for p in serial]
        assert _arrivals(serial) == [p.worst_arrival for p in paths]
        merged_dict = merged.as_dict()
        for counter in EXACT_COUNTERS:
            assert merged_dict[counter] == serial_stats[counter], counter

    @pytest.mark.parametrize("seed", [3, 27])
    def test_max_paths_prefix(self, charlib_poly_90, seed):
        """Per-shard caps + in-order truncation reproduce the serial
        early stop exactly."""
        circuit = _circuit(seed)
        sta = TruePathSTA(circuit, charlib_poly_90)
        serial = sta.enumerate_paths(max_paths=5)
        paths, _ = parallel_find_paths(
            circuit, charlib_poly_90, jobs=2, max_paths=5
        )
        assert [_key(p) for p in paths] == [_key(p) for p in serial]

    @pytest.mark.parametrize("seed,n", [(3, 2), (11, 4)])
    def test_n_worst_top_set(self, charlib_poly_90, seed, n):
        """Per-shard pruning keeps a superset whose top-N equals the
        serial (and the exhaustive) top-N arrivals."""
        circuit = _circuit(seed)
        sta = TruePathSTA(circuit, charlib_poly_90)
        exhaustive = sorted(
            (p.worst_arrival for p in sta.enumerate_paths()), reverse=True
        )[:n]
        paths, _ = parallel_find_paths(
            circuit, charlib_poly_90, jobs=2, n_worst=n
        )
        top = sorted((p.worst_arrival for p in paths), reverse=True)[:n]
        assert top == pytest.approx(exhaustive)

    def test_jobs_one_matches_pool(self, charlib_poly_90):
        """The in-process shard/merge pipeline (jobs=1) is the reference
        the pooled path must match."""
        circuit = _circuit(5)
        lone, lone_stats = parallel_find_paths(circuit, charlib_poly_90, jobs=1)
        pooled, pooled_stats = parallel_find_paths(
            circuit, charlib_poly_90, jobs=2
        )
        assert [_key(p) for p in pooled] == [_key(p) for p in lone]
        for counter in EXACT_COUNTERS:
            assert pooled_stats.as_dict()[counter] == lone_stats.as_dict()[counter]

    def test_rejects_bad_jobs(self, charlib_poly_90):
        with pytest.raises(ValueError):
            parallel_find_paths(_circuit(5), charlib_poly_90, jobs=0)


class TestParallelMetrics:
    def test_parent_registry_receives_merged_totals(
        self, charlib_poly_90, clean_obs
    ):
        circuit = _circuit(9)
        paths, merged = parallel_find_paths(circuit, charlib_poly_90, jobs=2)
        snap = obs.metrics.snapshot()
        assert snap["pathfinder.paths_found"] == len(paths)
        assert snap["pathfinder.extensions_tried"] == merged.extensions_tried
        assert snap["pathfinder.justify_skipped"] == merged.justify_skipped
        evals = snap["delaycalc.arc_evaluations"]
        assert evals > 0
        assert (
            snap["delaycalc.arc_cache_hits"]
            + snap["delaycalc.arc_cache_misses"]
            == evals
        )
        assert snap["perf.parallel_shards"] == len(circuit.inputs)

    def test_facade_jobs_kwarg(self, charlib_poly_90):
        circuit = _circuit(9)
        sta = TruePathSTA(circuit, charlib_poly_90)
        serial = sta.enumerate_paths()
        parallel = sta.enumerate_paths(jobs=2)
        assert [_key(p) for p in parallel] == [_key(p) for p in serial]
        assert sta.last_stats.paths_found == len(serial)
