"""Tests for bubbled-input (B-variant) mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.bench import parse_bench
from repro.netlist.generate import random_dag
from repro.netlist.techmap import equivalent, techmap, unmap


class TestBubblePatterns:
    @pytest.mark.parametrize(
        "keyword,expected",
        [
            ("AND", "AND2B"),
            ("OR", "OR2B"),
            ("NAND", "NAND2B"),
            ("NOR", "NOR2B"),
        ],
    )
    def test_inverter_on_first_input(self, keyword, expected):
        c = parse_bench(
            f"INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = NOT(a)\nz = {keyword}(x, b)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {expected: 1}
        assert equivalent(c, m)

    def test_inverter_on_second_input_swaps_pins(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = NOT(b)\nz = AND(a, x)\n"
        )
        m = techmap(c)
        assert m.cell_histogram() == {"AND2B": 1}
        inst = next(iter(m.instances.values()))
        assert inst.pins["A"] == "b"  # the inverted operand lands on A
        assert equivalent(c, m)

    def test_shared_inverter_not_absorbed(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nOUTPUT(w)\n"
            "x = NOT(a)\nz = AND(x, b)\nw = BUFF(x)\n"
        )
        m = techmap(c)
        assert "INV" in m.cell_histogram()
        assert equivalent(c, m)

    def test_cluster_patterns_win_over_bubble(self):
        """AO22 extraction is preferred over absorbing inverters."""
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\n"
            "x = AND(a, b)\ny = AND(c, d)\nz = OR(x, y)\n"
        )
        assert techmap(c).cell_histogram() == {"AO22": 1}

    def test_unmap_decomposes_b_cells(self):
        c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = NOT(a)\nz = NOR(x, b)\n"
        )
        m = techmap(c)
        assert "NOR2B" in m.cell_histogram()
        u = unmap(m)
        assert equivalent(m, u)

    @given(st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_random_equivalence_with_bubbles(self, seed):
        c = random_dag(f"bb{seed}", 10, 50, seed=seed)
        m = techmap(c)
        assert equivalent(c, m, vectors=128, seed=seed)
