"""The tentpole acceptance: serial and --jobs N metric snapshots agree.

A ``--jobs N`` run must report the *same* work counters as a serial
run of the same search -- including when the supervisor recovers
shards through retries or the in-process serial fallback.  Timing and
per-process cache fields are excluded by design: wall-clock differs by
construction, and each worker process pays its own arc-cache cold
misses.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import load_circuit
from repro.core.sta import TruePathSTA
from repro.perf.parallel import supervised_find_paths
from repro.verify.faults import FaultPlan

#: Counters that must match a serial run byte-for-byte (both the bare
#: and the circuit-labeled copies).
EXACT_KEYS = (
    "pathfinder.extensions_tried",
    "pathfinder.paths_found",
    "pathfinder.conflicts",
    "pathfinder.justification_backtracks",
    "delaycalc.arc_evaluations",
)


def exact_counters(snapshot):
    return {key: value for key, value in snapshot.items()
            if key.split("{")[0] in EXACT_KEYS}


@pytest.fixture(scope="module")
def c432():
    return load_circuit("iscas:c432@0.1")


@pytest.fixture()
def serial_baseline(c432, charlib_poly_90, clean_obs):
    """Counters of a plain (unsupervised) serial enumeration."""
    TruePathSTA(c432, charlib_poly_90).enumerate_paths()
    baseline = exact_counters(obs.snapshot())
    assert baseline["pathfinder.extensions_tried"] > 0
    obs.reset()
    return baseline


class TestSerialParallelEquivalence:
    def test_jobs4_counters_byte_identical_to_serial(
            self, c432, charlib_poly_90, serial_baseline):
        supervised_find_paths(c432, charlib_poly_90, jobs=4)
        assert exact_counters(obs.snapshot()) == serial_baseline

    def test_supervised_jobs1_matches_plain_serial(
            self, c432, charlib_poly_90, serial_baseline):
        """Regression: the supervised in-process path used to publish
        shard stats twice (at stream close and again in the merge),
        doubling every counter of a ``--wall-budget``-style serial run."""
        supervised_find_paths(c432, charlib_poly_90, jobs=1)
        assert exact_counters(obs.snapshot()) == serial_baseline

    def test_worker_retry_path_ships_each_shard_once(
            self, c432, charlib_poly_90, serial_baseline):
        """A crashed worker's partial work is absorbed, and only the
        successful retry's telemetry lands in the parent registry."""
        victims = tuple(c432.inputs)[1:3]
        supervised_find_paths(
            c432, charlib_poly_90, jobs=2, shard_retries=2,
            fault_plan=FaultPlan(crash_origins=victims),
        )
        snap = obs.snapshot()
        assert exact_counters(snap) == serial_baseline
        assert snap["resilience.worker_crashes"] >= 1
        assert snap["resilience.shard_retries"] >= len(victims)

    def test_serial_fallback_path_publishes_exactly_once(
            self, c432, charlib_poly_90, serial_baseline):
        """Retries exhausted -> the shard completes in-process; its
        stats must be published exactly once (in-process publication,
        not the merge's checkpoint path)."""
        victim = tuple(c432.inputs)[0]
        supervised_find_paths(
            c432, charlib_poly_90, jobs=2, shard_retries=1,
            serial_fallback=True,
            fault_plan=FaultPlan(crash_origins=(victim,),
                                 crash_attempts=(0, 1)),
        )
        snap = obs.snapshot()
        assert exact_counters(snap) == serial_baseline
        assert snap["resilience.serial_fallbacks"] == 1

    def test_heartbeat_stall_recovery_keeps_equivalence(
            self, c432, charlib_poly_90, serial_baseline):
        """A silently hung shard is detected by heartbeat gap, killed,
        retried -- and the merged counters still equal serial."""
        victim = tuple(c432.inputs)[2]
        supervised_find_paths(
            c432, charlib_poly_90, jobs=2, heartbeat_timeout=1.5,
            shard_retries=2, fault_plan=FaultPlan(hang_origins=(victim,)),
        )
        snap = obs.snapshot()
        assert exact_counters(snap) == serial_baseline
        assert snap["resilience.heartbeat_stalls"] >= 1

    def test_span_aggregates_ship_from_workers(
            self, c432, charlib_poly_90, clean_obs):
        """Worker span trees merge into the parent's aggregates: the
        search spans report one count per shard, not zero."""
        obs.tracing.enable()
        supervised_find_paths(c432, charlib_poly_90, jobs=2)
        aggregates = obs.tracing.aggregates()
        search_spans = {name: entry for name, entry in aggregates.items()
                        if "pathfinder" in name or "search" in name}
        assert search_spans, f"no search spans shipped: {aggregates.keys()}"
        assert all(entry["count"] > 0 for entry in search_spans.values())


class TestPerShardGauges:
    def test_resource_gauges_labeled_per_shard(
            self, c432, charlib_poly_90, clean_obs):
        supervised_find_paths(c432, charlib_poly_90, jobs=2)
        snap = obs.snapshot()
        rss = {key for key in snap
               if key.startswith("run.peak_rss_bytes{shard=")}
        cpu = {key for key in snap
               if key.startswith("run.cpu_seconds{shard=")}
        origins = set(c432.inputs)
        assert {key.split("shard=")[1].rstrip("}") for key in rss} == origins
        assert {key.split("shard=")[1].rstrip("}") for key in cpu} == origins
        assert all(snap[key] > 0 for key in rss | cpu)
