"""Unit tests for the boolean-function kernel."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.logic import BoolFunc, X, and3, merge3, not3, or3


class TestConstruction:
    def test_from_callable_and2(self):
        f = BoolFunc.from_callable(2, lambda a, b: a and b)
        assert f.table == 0b1000

    def test_constant(self):
        assert BoolFunc.constant(2, 0).table == 0
        assert BoolFunc.constant(2, 1).table == 0b1111

    def test_projection(self):
        f = BoolFunc.projection(3, 1)
        for bits in itertools.product((0, 1), repeat=3):
            assert f.eval(bits) == bits[1]

    def test_projection_bad_index(self):
        with pytest.raises(ValueError):
            BoolFunc.projection(2, 2)

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            BoolFunc(7, 0)

    def test_bad_table(self):
        with pytest.raises(ValueError):
            BoolFunc(1, 0b100)


class TestEval:
    def setup_method(self):
        self.xor = BoolFunc.from_callable(2, lambda a, b: a ^ b)

    def test_eval_all_minterms(self):
        assert [self.xor.eval((a, b)) for a in (0, 1) for b in (0, 1)] == [0, 1, 1, 0]

    def test_eval_wrong_arity(self):
        with pytest.raises(ValueError):
            self.xor.eval((1,))

    def test_eval_rejects_x(self):
        with pytest.raises(ValueError):
            self.xor.eval((1, X))

    def test_eval3_known(self):
        assert self.xor.eval3((1, 0)) == 1

    def test_eval3_unknown(self):
        assert self.xor.eval3((1, X)) is X

    def test_eval3_controlling(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        assert and2.eval3((0, X)) == 0
        assert and2.eval3((X, 0)) == 0
        assert and2.eval3((1, X)) is X

    def test_eval3_or_controlling(self):
        or2 = BoolFunc.from_callable(2, lambda a, b: a or b)
        assert or2.eval3((1, X)) == 1
        assert or2.eval3((X, X)) is X


class TestStructure:
    def test_cofactor(self):
        mux = BoolFunc.from_callable(3, lambda a, b, s: b if s else a)
        assert mux.cofactor(2, 0) == BoolFunc.projection(2, 0)
        assert mux.cofactor(2, 1) == BoolFunc.projection(2, 1)

    def test_boolean_difference_xor(self):
        xor = BoolFunc.from_callable(2, lambda a, b: a ^ b)
        diff = xor.boolean_difference(0)
        assert diff == BoolFunc.constant(1, 1)

    def test_boolean_difference_and(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        assert and2.boolean_difference(0) == BoolFunc.projection(1, 0)

    def test_depends_on(self):
        f = BoolFunc.from_callable(3, lambda a, b, c: a and b)
        assert f.depends_on(0) and f.depends_on(1)
        assert not f.depends_on(2)
        assert f.support() == [0, 1]

    def test_compose_not(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        nand = and2.compose_not()
        assert nand.eval((1, 1)) == 0
        assert nand.eval((0, 1)) == 1
        assert nand.compose_not() == and2

    def test_equality_and_hash(self):
        a = BoolFunc.from_callable(2, lambda x, y: x and y)
        b = BoolFunc(2, 0b1000)
        assert a == b and hash(a) == hash(b)
        assert a != BoolFunc(2, 0b1110)


class TestSensitization:
    def test_and2(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        assert and2.sensitizing_assignments(0) == [{1: 1}]

    def test_or2(self):
        or2 = BoolFunc.from_callable(2, lambda a, b: a or b)
        assert or2.sensitizing_assignments(0) == [{1: 0}]

    def test_xor_both_values(self):
        xor = BoolFunc.from_callable(2, lambda a, b: a ^ b)
        assert xor.sensitizing_assignments(0) == [{1: 0}, {1: 1}]

    def test_ao22_counts(self):
        ao22 = BoolFunc.from_callable(
            4, lambda a, b, c, d: (a and b) or (c and d)
        )
        for pin in range(4):
            assert len(ao22.sensitizing_assignments(pin)) == 3

    def test_is_inverting_nand(self):
        nand = BoolFunc.from_callable(2, lambda a, b: not (a and b))
        assert nand.is_inverting_at(0, {1: 1}) is True

    def test_is_inverting_and(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        assert and2.is_inverting_at(0, {1: 1}) is False

    def test_is_inverting_xor_depends_on_side(self):
        xor = BoolFunc.from_callable(2, lambda a, b: a ^ b)
        assert xor.is_inverting_at(0, {1: 0}) is False
        assert xor.is_inverting_at(0, {1: 1}) is True

    def test_is_inverting_rejects_nonsensitizing(self):
        and2 = BoolFunc.from_callable(2, lambda a, b: a and b)
        with pytest.raises(ValueError):
            and2.is_inverting_at(0, {1: 0})

    def test_is_inverting_rejects_ambiguous(self):
        xor = BoolFunc.from_callable(2, lambda a, b: a ^ b)
        with pytest.raises(ValueError):
            xor.is_inverting_at(0, {})


class TestJustificationCubes:
    def test_nand_one(self):
        nand = BoolFunc.from_callable(2, lambda a, b: not (a and b))
        cubes = nand.justification_cubes(1)
        assert {frozenset(c.items()) for c in cubes} == {
            frozenset({(0, 0)}), frozenset({(1, 0)})
        }

    def test_nand_zero(self):
        nand = BoolFunc.from_callable(2, lambda a, b: not (a and b))
        assert nand.justification_cubes(0) == [{0: 1, 1: 1}]

    def test_smallest_first(self):
        ao22 = BoolFunc.from_callable(4, lambda a, b, c, d: (a and b) or (c and d))
        cubes = ao22.justification_cubes(1)
        sizes = [len(c) for c in cubes]
        assert sizes == sorted(sizes)
        assert sizes[0] == 2  # {A=1,B=1} or {C=1,D=1}

    def test_cubes_force_value(self):
        ao22 = BoolFunc.from_callable(4, lambda a, b, c, d: (a and b) or (c and d))
        for value in (0, 1):
            for cube in ao22.justification_cubes(value):
                inputs = [cube.get(k, X) for k in range(4)]
                assert ao22.eval3(inputs) == value

    def test_cubes_minimal(self):
        f = BoolFunc.from_callable(3, lambda a, b, c: (a and b) or c)
        for value in (0, 1):
            cubes = f.justification_cubes(value)
            for cube in cubes:
                for drop in cube:
                    reduced = {k: v for k, v in cube.items() if k != drop}
                    inputs = [reduced.get(k, X) for k in range(3)]
                    assert f.eval3(inputs) != value


class TestThreeValuedHelpers:
    def test_and3(self):
        assert and3((1, 1)) == 1
        assert and3((1, 0, X)) == 0
        assert and3((1, X)) is X

    def test_or3(self):
        assert or3((0, 0)) == 0
        assert or3((X, 1)) == 1
        assert or3((0, X)) is X

    def test_not3(self):
        assert not3(0) == 1 and not3(1) == 0 and not3(X) is X

    def test_merge3(self):
        assert merge3(X, 1) == (True, 1)
        assert merge3(0, X) == (True, 0)
        assert merge3(1, 1) == (True, 1)
        assert merge3(0, 1)[0] is False


@st.composite
def bool_funcs(draw, max_inputs=4):
    n = draw(st.integers(min_value=1, max_value=max_inputs))
    table = draw(st.integers(min_value=0, max_value=(1 << (1 << n)) - 1))
    return BoolFunc(n, table)


class TestProperties:
    @given(bool_funcs())
    @settings(max_examples=60, deadline=None)
    def test_eval3_agrees_with_completions(self, f):
        """eval3 returns a definite value iff all completions agree."""
        n = f.num_inputs
        for pattern in itertools.product((0, 1, X), repeat=min(n, 3)):
            inputs = list(pattern) + [0] * (n - len(pattern))
            unknown = [k for k, v in enumerate(inputs) if v is X]
            outcomes = set()
            for combo in itertools.product((0, 1), repeat=len(unknown)):
                full = list(inputs)
                for k, v in zip(unknown, combo):
                    full[k] = v
                outcomes.add(f.eval(full))
            expected = outcomes.pop() if len(outcomes) == 1 else X
            assert f.eval3(inputs) == expected or (
                expected is X and f.eval3(inputs) is X
            )

    @given(bool_funcs())
    @settings(max_examples=60, deadline=None)
    def test_sensitizing_assignments_toggle_output(self, f):
        for pin in range(f.num_inputs):
            for assignment in f.sensitizing_assignments(pin):
                lo = [0] * f.num_inputs
                hi = [0] * f.num_inputs
                for k, v in assignment.items():
                    lo[k] = hi[k] = v
                lo[pin], hi[pin] = 0, 1
                assert f.eval(lo) != f.eval(hi)

    @given(bool_funcs(max_inputs=3))
    @settings(max_examples=40, deadline=None)
    def test_cofactor_shannon_expansion(self, f):
        for pin in range(f.num_inputs):
            f0, f1 = f.cofactor(pin, 0), f.cofactor(pin, 1)
            for bits in itertools.product((0, 1), repeat=f.num_inputs):
                reduced = tuple(b for k, b in enumerate(bits) if k != pin)
                expected = f1.eval(reduced) if bits[pin] else f0.eval(reduced)
                assert f.eval(bits) == expected
