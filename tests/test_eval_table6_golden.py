"""Golden-arbitrated worst-delay prediction ratio (Table 6 fidelity)."""

import pytest

from repro.baseline.sta2step import TwoStepSTA
from repro.core.sta import TruePathSTA
from repro.eval.exp_table6 import (
    run_circuit,
    worst_delay_prediction_ratio,
    worst_delay_prediction_ratio_golden,
)
from repro.eval.fig4 import fig4_circuit


class TestGoldenArbitration:
    def test_fig4_golden_ratio_zero(self, tech90, charlib_poly_90,
                                    charlib_lut_90):
        """Electrical arbitration agrees with the model on Fig. 4: the
        baseline's easy vector is NOT the worst (ratio 0)."""
        circuit = fig4_circuit()
        dev = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        base = TwoStepSTA(circuit, charlib_lut_90)
        report = base.run(max_structural_paths=100)
        base_true = base.true_paths(report)
        golden = worst_delay_prediction_ratio_golden(
            circuit, tech90, charlib_poly_90, dev, base_true,
            sample=2, steps_per_window=250,
        )
        model = worst_delay_prediction_ratio(dev, base_true)
        assert golden == 0.0
        assert model == 0.0  # arbiters agree here

    def test_run_circuit_with_golden_sample(self, tech90, charlib_poly_90,
                                            charlib_lut_90):
        circuit = fig4_circuit()
        row = run_circuit(
            "fig4", circuit, charlib_poly_90, charlib_lut_90,
            max_dev_paths=500, max_structural_paths=100,
            tech=tech90, golden_sample=2,
        )
        assert row.worst_delay_ratio == 0.0

    def test_none_without_candidates(self, tech90, charlib_poly_90,
                                     charlib_lut_90):
        from repro.netlist.generate import c17

        circuit = c17()
        dev = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        base = TwoStepSTA(circuit, charlib_lut_90)
        report = base.run()
        assert worst_delay_prediction_ratio_golden(
            circuit, tech90, charlib_poly_90, dev,
            base.true_paths(report), sample=2,
        ) is None
