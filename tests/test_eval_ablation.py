"""Tests for the ablation runners."""

import pytest

from repro.eval.exp_ablation import (
    backtrack_limit_sweep,
    dual_logic_ablation,
    model_order_ablation,
)
from repro.eval.iscas import build_circuit
from repro.netlist.generate import c17


class TestDualLogic:
    def test_c17(self, charlib_poly_90):
        result = dual_logic_ablation(c17(), charlib_poly_90)
        assert result["consistent"]
        assert result["paths"] == 11
        assert result["dual_extensions"] * 2 == result["two_pass_extensions"]

    def test_speedup_reported(self, charlib_poly_90):
        result = dual_logic_ablation(c17(), charlib_poly_90)
        assert result["speedup"] > 0


class TestModelOrder:
    def test_adaptive_beats_first_order(self, tech90):
        result = model_order_ablation(tech90, steps_per_window=250)
        assert result["adaptive_max_err"] <= result["first_order_max_err"]
        assert result["adaptive_max_err"] < 0.06
        assert result["adaptive_orders"][0] >= 1

    def test_probe_rows(self, tech90):
        result = model_order_ablation(tech90, steps_per_window=250)
        for row in result["probes"]:
            assert row["adaptive"] > 0 and row["lut"] > 0
            # Models agree within ~15% off-grid.
            assert abs(row["adaptive"] - row["lut"]) / row["lut"] < 0.15


class TestBacktrackSweep:
    def test_sweep_rows(self, charlib_lut_90):
        circuit = build_circuit("c6288", scale=0.25)
        result = backtrack_limit_sweep(
            circuit, charlib_lut_90, limits=(10, 1000),
            max_structural_paths=60,
        )
        rows = result["rows"]
        assert [r["limit"] for r in rows] == [10, 1000]
        for r in rows:
            assert r["true"] + r["false"] + r["aborted"] == r["paths"]
        assert rows[0]["aborted"] >= rows[1]["aborted"]
        assert "Backtrack-limit sweep" in result["text"]
