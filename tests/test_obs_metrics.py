"""Counter/gauge/histogram semantics of the metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_key,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("search.steps")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_float_increments(self, registry):
        c = registry.counter("search.seconds")
        c.inc(0.25)
        c.inc(0.5)
        assert c.value == pytest.approx(0.75)

    def test_rejects_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.counter("steps").inc(-1)

    def test_memoized_identity(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_labels_distinguish(self, registry):
        c432 = registry.counter("conflicts", circuit="c432")
        c880 = registry.counter("conflicts", circuit="c880")
        c432.inc(3)
        assert c432 is registry.counter("conflicts", circuit="c432")
        assert c880.value == 0 and c432.value == 3


class TestGauge:
    def test_set_and_move(self, registry):
        g = registry.gauge("queue.depth")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5

    def test_type_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestHistogram:
    def test_summary_statistics(self, registry):
        h = registry.histogram("fit.seconds")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        value = h.as_value()
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(10.0)
        assert value["min"] == 1.0 and value["max"] == 4.0
        assert value["mean"] == pytest.approx(2.5)

    def test_percentiles_bounded_by_extremes(self, registry):
        h = registry.histogram("lat")
        for v in (0.001, 0.002, 0.004, 0.1, 0.2):
            h.observe(v)
        assert h.vmin <= h.percentile(50) <= h.vmax
        assert h.percentile(99) <= h.vmax
        assert h.percentile(50) <= h.percentile(99)

    def test_percentile_bucket_accuracy(self, registry):
        # All mass in one power-of-two bucket: p50 within 2x of truth.
        h = registry.histogram("tight")
        for _ in range(100):
            h.observe(3.0)
        assert 3.0 <= h.percentile(50) <= 3.0  # capped at observed max

    def test_percentile_edges_clamped_to_observed_range(self, registry):
        # Regression: with every observation in one power-of-two bucket
        # ([2, 4) here), interpolating across the raw bucket edges put
        # estimates outside the observed values (p99 above the true
        # max).  The edges must clamp to [vmin, vmax] *before* the
        # in-bucket interpolation, not only in a final clamp.
        h = registry.histogram("edges")
        for v in (3.0, 3.5, 3.9):
            h.observe(v)
        # rank(50) = 2 of 3 -> fraction 2/3 across the clamped span.
        assert h.percentile(50) == pytest.approx(3.0 + (2.0 / 3.0) * 0.9)
        for q in (1, 25, 50, 75, 90, 95, 99, 100):
            assert 3.0 <= h.percentile(q) <= 3.9

    def test_percentile_never_exceeds_observed_max(self, registry):
        h = registry.histogram("clamp")
        for _ in range(100):
            h.observe(3.9)
        for q in (50, 90, 99, 100):
            assert h.percentile(q) == 3.9

    def test_nonpositive_values_counted(self, registry):
        h = registry.histogram("signed")
        h.observe(0.0)
        h.observe(-1.5)
        value = h.as_value()
        assert value["count"] == 2 and value["min"] == -1.5

    def test_empty_summary(self, registry):
        assert registry.histogram("empty").as_value()["count"] == 0


class TestRegistry:
    def test_snapshot_keys_and_sorting(self, registry):
        registry.counter("b.second").inc(2)
        registry.counter("a.first", circuit="c17").inc(1)
        registry.gauge("c.gauge").set(9)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.first{circuit=c17}"] == 1
        assert snap["b.second"] == 2
        assert snap["c.gauge"] == 9

    def test_snapshot_histogram_is_dict(self, registry):
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap["h"]["count"] == 1

    def test_snapshot_json_serializable(self, registry):
        import json

        registry.counter("n", k="v").inc()
        registry.histogram("h").observe(math.pi)
        json.dumps(registry.snapshot())

    def test_reset_clears(self, registry):
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}
        assert registry.counter("x").value == 0

    def test_format_key(self):
        assert format_key("n", {}) == "n"
        assert format_key("n", {"b": "2", "a": "1"}) == "n{a=1,b=2}"


class TestDefaultRegistry:
    def test_module_helpers_share_default(self, clean_obs):
        from repro.obs import metrics

        metrics.counter("helper.test").inc(5)
        assert metrics.REGISTRY.counter("helper.test").value == 5
        assert metrics.snapshot()["helper.test"] == 5
