"""CLI hardening: error taxonomy exit codes and resilience flags."""

import json

import pytest

from repro.cli import main
from repro.netlist.bench import C17_BENCH
from repro.resilience.errors import (
    EXIT_CONFIG,
    EXIT_DATAERR,
    EXIT_NOINPUT,
)


@pytest.fixture
def bench_file(tmp_path):
    path = tmp_path / "c17.bench"
    path.write_text(C17_BENCH)
    return str(path)


class TestExitCodes:
    def test_missing_netlist_is_noinput(self, capsys):
        rc = main(["analyze", "/no/such/netlist.bench"])
        assert rc == EXIT_NOINPUT
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_suite_circuit_is_dataerr(self, capsys):
        rc = main(["analyze", "iscas:nonexistent"])
        assert rc == EXIT_DATAERR
        assert "error:" in capsys.readouterr().err

    def test_malformed_netlist_is_dataerr(self, tmp_path, capsys):
        bad = tmp_path / "bad.bench"
        bad.write_text("OUTPUT(y)\ny = FROB(a, b)\n")
        rc = main(["analyze", str(bad)])
        assert rc == EXIT_DATAERR
        assert "error:" in capsys.readouterr().err

    def test_checkpoint_mismatch_is_config_error(
            self, bench_file, tmp_path, capsys, charlib_poly_90):
        checkpoint = tmp_path / "run.json"
        assert main(["analyze", bench_file, "--no-map",
                     "--checkpoint", str(checkpoint)]) == 0
        rc = main(["analyze", bench_file, "--no-map", "--max-paths", "3",
                   "--resume", str(checkpoint)])
        assert rc == EXIT_CONFIG
        assert "fingerprint" in capsys.readouterr().err

    def test_bad_missing_arc_policy_is_config_error(
            self, bench_file, capsys, charlib_poly_90):
        """Satellite: an invalid policy must exit through the taxonomy
        (EX_CONFIG), not argparse's generic exit 2."""
        rc = main(["analyze", bench_file, "--no-map",
                   "--missing-arc-policy", "bogus"])
        assert rc == EXIT_CONFIG
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_jobs_zero_is_config_error(self, bench_file, capsys,
                                       charlib_poly_90):
        rc = main(["analyze", bench_file, "--no-map", "--jobs", "0"])
        assert rc == EXIT_CONFIG
        assert "jobs" in capsys.readouterr().err

    def test_config_error_is_both_taxonomized_and_a_value_error(self):
        from repro.resilience.errors import ConfigError, ResilienceError

        exc = ConfigError("boom")
        assert isinstance(exc, ResilienceError)
        assert isinstance(exc, ValueError)  # legacy callers catch this
        assert exc.exit_code == EXIT_CONFIG

    def test_debug_log_level_keeps_the_stack(self, clean_obs):
        with pytest.raises(FileNotFoundError):
            main(["analyze", "/no/such/netlist.bench",
                  "--log-level", "debug"])


class TestResilienceFlags:
    def test_budget_run_reports_completeness_and_bounds(
            self, capsys, clean_obs, charlib_poly_90, tmp_path):
        metrics = tmp_path / "metrics.json"
        rc = main(["analyze", "iscas:c432@0.1", "--extension-budget", "3",
                   "--metrics-json", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "origin completeness" in out
        assert "partial" in out
        assert "GBA bound" in out
        data = json.loads(metrics.read_text())
        assert data["resilience.degraded_origins"] > 0
        assert data["pathfinder.budget_trips"] >= 1

    def test_checkpoint_resume_round_trip(self, bench_file, tmp_path,
                                          capsys, charlib_poly_90):
        checkpoint = tmp_path / "ck.json"
        assert main(["analyze", bench_file, "--no-map",
                     "--checkpoint", str(checkpoint)]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", bench_file, "--no-map",
                     "--resume", str(checkpoint)]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[:5] == second.splitlines()[:5]

    def test_warn_substitute_policy_flag_accepted(self, bench_file,
                                                  capsys, charlib_poly_90):
        rc = main(["analyze", bench_file, "--no-map",
                   "--missing-arc-policy", "warn-substitute"])
        assert rc == 0
        assert "True-path report" in capsys.readouterr().out

    def test_supervised_n_worst_matches_plain(self, bench_file, capsys,
                                              charlib_poly_90):
        assert main(["analyze", bench_file, "--no-map",
                     "--n-worst", "3"]) == 0
        plain = capsys.readouterr().out
        # Any resilience flag routes through the supervised pipeline;
        # the report must not change.
        assert main(["analyze", bench_file, "--no-map", "--n-worst", "3",
                     "--shard-retries", "1", "--extension-budget",
                     "1000000"]) == 0
        supervised = capsys.readouterr().out
        assert plain.splitlines()[:4] == supervised.splitlines()[:4]


class TestWarnSubstituteEquivalence:
    def test_serial_and_parallel_substitutions_identical(
            self, charlib_poly_90):
        """Satellite (c): under warn-substitute on a corrupted library,
        serial and parallel runs pick identical substitute arcs."""
        from repro.netlist.generate import random_dag
        from repro.netlist.techmap import techmap
        from repro.perf import supervised_find_paths
        from repro.verify.faults import corrupt_charlib
        from repro.verify.metamorphic import _path_identity

        circuit = techmap(random_dag("sub7", 6, 30, seed=7, n_outputs=3))
        corrupted, dropped = corrupt_charlib(charlib_poly_90, circuit,
                                             seed=2)
        assert dropped
        serial = supervised_find_paths(
            circuit, corrupted, jobs=1,
            missing_arc_policy="warn-substitute")
        parallel = supervised_find_paths(
            circuit, corrupted, jobs=2,
            missing_arc_policy="warn-substitute")
        assert ([_path_identity(p) for p in serial.paths]
                == [_path_identity(p) for p in parallel.paths])
