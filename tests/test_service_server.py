"""Served results vs the one-shot CLI: the byte-identity contract.

The central promise of ``repro serve`` is that holding state hot never
changes an answer: for any configuration, the served ``report`` equals
the one-shot CLI's stdout byte for byte.  These tests run both front
ends in-process over a mixed workload (full enumeration, GBA, N-worst,
verify; c17 and scaled c432), concurrently, and compare bytes -- plus
the cache observability: warm-context hit counters, result-memo hits,
and LRU eviction under a capacity-1 cache.
"""

from __future__ import annotations

import io
import contextlib
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import cli, obs
from repro.service import ServiceClient, ServiceError
from repro.service.qos import DeadlineExceeded, resolve_budgets
from repro.service.protocol import BadRequest
from repro.service.server import ServiceConfig, start_in_thread
from repro.resilience.budgets import SearchBudgets

#: The mixed workload: (label, CLI argv, service op, service params).
#: One entry per paper-relevant request shape; c432 is scaled down so
#: the whole matrix stays test-suite cheap.
WORKLOAD = [
    ("c17-full",
     ["analyze", "iscas:c17"],
     "analyze", {"netlist": "iscas:c17"}),
    ("c17-gba",
     ["analyze", "iscas:c17", "--tool", "gba"],
     "analyze", {"netlist": "iscas:c17", "tool": "gba"}),
    ("c432-nworst",
     ["analyze", "iscas:c432@0.1", "--n-worst", "5", "--top", "5"],
     "analyze", {"netlist": "iscas:c432@0.1", "n_worst": 5, "top": 5}),
    ("c17-slack",
     ["analyze", "iscas:c17", "--required", "120"],
     "analyze", {"netlist": "iscas:c17", "required_ps": 120.0}),
    ("c17-verify",
     ["verify", "--oracle", "--circuit", "iscas:c17"],
     "verify", {"circuits": ["iscas:c17"], "oracle": True}),
]


def cli_stdout(argv) -> str:
    """One-shot CLI stdout for ``argv`` (must exit 0)."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        rc = cli.main(argv)
    assert rc == 0, f"cli {argv} exited {rc}"
    return buffer.getvalue()


@pytest.fixture(scope="module")
def server():
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.05,
                                           max_concurrent=4))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port, timeout=300.0) as c:
        yield c


# ---------------------------------------------------------------------------
# Byte identity


@pytest.mark.parametrize(
    "label,argv,op,params", WORKLOAD, ids=[w[0] for w in WORKLOAD])
def test_served_report_byte_identical_to_cli(client, label, argv, op,
                                             params):
    served = client.call(op, params)
    expected = cli_stdout(argv)
    # The CLI prints the report plus one trailing newline.
    assert served["report"] + "\n" == expected


def test_repeat_request_hits_result_memo_and_stays_identical(client):
    first = client.call("analyze", {"netlist": "iscas:c17", "top": 7})
    second = client.call("analyze", {"netlist": "iscas:c17", "top": 7})
    assert first["cached"] is False or first["cached"] is True  # present
    assert second["cached"] is True
    assert second["report"] == first["report"]


def test_heartbeats_stream_while_computing():
    # A dedicated fast-beat server: the cold c432@0.3 request computes
    # for ~100 ms, a comfortable 10x the 10 ms heartbeat interval.
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.01))
    beats = []
    try:
        with ServiceClient(handle.host, handle.port, timeout=300.0) as c:
            result = c.call("analyze",
                            {"netlist": "iscas:c432@0.3", "n_worst": 3},
                            on_heartbeat=beats.append)
    finally:
        handle.stop()
    assert result["kind"] == "result"
    assert beats, "no heartbeat frame during a slow cold request"
    assert all(b["id"] == result["id"] for b in beats)
    assert all(b["elapsed_s"] >= 0 for b in beats)


# ---------------------------------------------------------------------------
# Concurrent mixed workload


def test_concurrent_mixed_workload_byte_identical(server):
    # CLI references first (serially -- stdout capture is process-wide).
    references = {label: cli_stdout(argv)
                  for label, argv, _, _ in WORKLOAD}

    def serve_one(entry):
        label, _, op, params = entry
        # Separate connection per worker: requests multiplex across
        # connections, not within one.
        with ServiceClient(server.host, server.port, timeout=300.0) as c:
            return label, c.call(op, params)["report"]

    # Two rounds of everything, interleaved across 5 threads: cold and
    # warm answers must both match the CLI.
    jobs = WORKLOAD * 2
    with ThreadPoolExecutor(max_workers=5) as pool:
        for label, report in pool.map(serve_one, jobs):
            assert report + "\n" == references[label], \
                f"served {label} diverged from one-shot CLI"


def test_verify_op_reports_ok_flag(client):
    result = client.call("verify",
                         {"circuits": ["iscas:c17"], "oracle": True})
    assert result["ok"] is True
    assert "oracle c17" in result["report"]


# ---------------------------------------------------------------------------
# Cache observability


def test_warm_cache_hit_counters(server):
    with ServiceClient(server.host, server.port, timeout=300.0) as c:
        before = c.call("stats")["contexts"]
        # Same context key (netlist/tool/tech), different fingerprints:
        # context cache hits, result memo misses.
        c.call("analyze", {"netlist": "iscas:c17", "top": 2})
        c.call("analyze", {"netlist": "iscas:c17", "top": 3})
        c.call("analyze", {"netlist": "iscas:c17", "top": 4})
        after = c.call("stats")["contexts"]
    # The context was warm (possibly built by an earlier test): at most
    # one miss here, and at least two of the three requests hit.
    assert after["misses"] - before["misses"] <= 1
    assert after["hits"] - before["hits"] >= 2


def test_result_memo_counters(server):
    with ServiceClient(server.host, server.port, timeout=300.0) as c:
        params = {"netlist": "iscas:c17", "top": 9}
        first = c.call("analyze", params)
        hits_before = c.call("stats")["results"]["hits"]
        second = c.call("analyze", params)
        hits_after = c.call("stats")["results"]["hits"]
    assert first["cached"] is False
    assert second["cached"] is True
    assert hits_after - hits_before == 1


def test_lru_eviction_under_capacity_one():
    handle = start_in_thread(ServiceConfig(cache_size=1,
                                           heartbeat_interval=0.2))
    try:
        with ServiceClient(handle.host, handle.port, timeout=300.0) as c:
            c.call("analyze", {"netlist": "iscas:c17"})
            stats1 = c.call("stats")["contexts"]
            # A second config evicts the first (capacity 1)...
            c.call("analyze", {"netlist": "iscas:c17", "tool": "gba"})
            stats2 = c.call("stats")["contexts"]
            # ...and re-requesting the first must rebuild it (the result
            # memo is bypassed by varying `top` so the context is used).
            c.call("analyze", {"netlist": "iscas:c17", "top": 4})
            stats3 = c.call("stats")["contexts"]
    finally:
        handle.stop()
    assert stats1["entries"] == 1 and stats1["misses"] == 1
    assert stats2["entries"] == 1 and stats2["evictions"] == 1
    assert stats3["misses"] == 3, "evicted context was not rebuilt"
    assert stats3["evictions"] == 2


def test_stats_endpoint_shape(client):
    stats = client.call("stats")
    assert stats["requests"]["total"] >= 1
    assert "analyze" in stats["requests"]["by_op"] or True
    assert set(stats["contexts"]) >= {"entries", "hits", "misses",
                                      "evictions", "max_entries"}
    assert "spans" in stats["metrics"]
    assert stats["uptime_s"] >= 0


def test_request_metrics_delta_present(server):
    with ServiceClient(server.host, server.port, timeout=300.0) as c:
        # A fresh fingerprint so the memo cannot short-circuit it.
        result = c.call("analyze", {"netlist": "iscas:c17", "top": 11})
    assert any(key.startswith("pathfinder.")
               for key in result["metrics"]), result["metrics"]


# ---------------------------------------------------------------------------
# QoS


def test_qos_effort_tier_maps_to_extension_budget():
    budgets = resolve_budgets(None, None, "low")
    assert budgets == SearchBudgets(max_extensions=10_000)


def test_qos_explicit_budget_only_tightens():
    base = SearchBudgets(max_extensions=500)
    assert resolve_budgets(base, None, "high").max_extensions == 500
    wide = SearchBudgets(max_extensions=10 ** 9)
    assert resolve_budgets(wide, None, "low").max_extensions == 10_000


def test_qos_exhaustive_and_absent_effort_are_uncapped():
    assert resolve_budgets(None, None, "exhaustive") is None
    assert resolve_budgets(None, None, None) is None


def test_qos_deadline_counts_queue_wait():
    budgets = resolve_budgets(None, 10.0, None, queued_at=100.0, now=104.0)
    assert budgets.wall_seconds == pytest.approx(6.0)
    with pytest.raises(DeadlineExceeded):
        resolve_budgets(None, 3.0, None, queued_at=100.0, now=104.0)


def test_qos_unknown_effort_rejected():
    with pytest.raises(BadRequest):
        resolve_budgets(None, None, "heroic")


def test_expired_deadline_refused_before_search(client):
    with pytest.raises(ServiceError) as err:
        client.call("analyze", {"netlist": "iscas:c17"}, deadline_s=1e-9)
    assert err.value.code == "deadline-exceeded"


def test_effort_capped_request_still_serves(client):
    result = client.call("analyze",
                         {"netlist": "iscas:c17", "top": 6},
                         effort="low")
    # c17 completes well inside the low tier, so the report matches an
    # uncapped run (budgeted supervision, same answer).
    expected = cli_stdout(["analyze", "iscas:c17", "--top", "6",
                           "--extension-budget", "10000"])
    assert result["report"] + "\n" == expected
