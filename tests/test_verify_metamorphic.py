"""The cross-engine invariant catalog (repro.verify.metamorphic)."""

from __future__ import annotations

import copy

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap
from repro.verify import INVARIANTS, run_metamorphic
from repro.verify.metamorphic import (
    check_gba_bounds,
    check_incremental_identical,
    check_pruning_identical,
    check_structural_superset,
)


class TestCatalog:
    def test_c17_all_invariants_hold(self, charlib_poly_90, clean_obs):
        results = run_metamorphic(c17(), charlib_poly_90, jobs=1)
        assert [r.name for r in results] == list(INVARIANTS)
        assert all(r.ok for r in results), [r.describe() for r in results]
        snapshot = clean_obs.snapshot()
        assert snapshot["verify.circuits_checked"] == 1
        assert snapshot["verify.mismatches"] == 0

    def test_mapped_random_dag(self, charlib_poly_90):
        circuit = techmap(random_dag("meta", 8, 40, seed=5))
        results = run_metamorphic(circuit, charlib_poly_90, jobs=1)
        assert all(r.ok for r in results), [r.describe() for r in results]

    def test_subset_selection(self, charlib_poly_90):
        results = run_metamorphic(
            c17(), charlib_poly_90, invariants=["pruning_identical"]
        )
        assert [r.name for r in results] == ["pruning_identical"]

    def test_unknown_invariant_rejected(self, charlib_poly_90):
        with pytest.raises(ValueError, match="unknown invariants"):
            run_metamorphic(c17(), charlib_poly_90, invariants=["bogus"])

    def test_mismatch_counter_on_violation(self, charlib_poly_90, clean_obs,
                                           monkeypatch):
        from repro.verify import metamorphic as meta

        def broken(circuit, charlib, **kwargs):
            return meta.InvariantResult("gba_bounds", False, 1, "forced")

        monkeypatch.setitem(meta._CHECKS, "gba_bounds", broken)
        monkeypatch.setattr(meta, "check_gba_bounds", broken)
        results = run_metamorphic(
            c17(), charlib_poly_90, invariants=["gba_bounds"]
        )
        assert not results[0].ok
        assert clean_obs.snapshot()["verify.mismatches"] == 1


class TestDetectionPower:
    """The checks must actually fire on corrupted inputs."""

    def test_gba_bounds_catches_inflated_path(self, charlib_poly_90):
        paths = TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        forged = copy.deepcopy(paths)
        victim = forged[0]
        polarity = max(victim.polarities(), key=lambda p: p.arrival)
        polarity.arrival *= 10.0
        result = check_gba_bounds(c17(), charlib_poly_90, paths=forged)
        assert not result.ok
        assert "exceeds GBA bound" in result.detail

    def test_structural_superset_catches_forged_course(self, charlib_poly_90):
        paths = TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        forged = copy.deepcopy(paths)
        forged[0].nets = ("GAT1", "GAT23")  # no such structural edge
        result = check_structural_superset(
            c17(), charlib_poly_90, paths=forged
        )
        assert not result.ok
        assert "missing structurally" in result.detail

    def test_pruning_identical_on_c17(self, charlib_poly_90):
        result = check_pruning_identical(c17(), charlib_poly_90, n_worst=3)
        assert result.ok, result.describe()
        assert result.checked == 3

    def test_incremental_identical_on_c17(self, charlib_poly_90):
        circuit = c17()
        original = {
            name: circuit.instances[name].cell.name
            for name in circuit.instances
        }
        result = check_incremental_identical(
            circuit, charlib_poly_90, seed=1, edits=3
        )
        assert result.ok, result.describe()
        assert result.checked >= 2  # scalar + vectorized per edit
        # The check mutates the circuit, then must restore it.
        assert original == {
            name: circuit.instances[name].cell.name
            for name in circuit.instances
        }

    def test_incremental_identical_catches_skipped_repair(
        self, charlib_poly_90, monkeypatch
    ):
        from repro.core.tgraph import TimingGraph

        # Sabotage the dirty-cone forward repair: the session keeps its
        # stale arrivals while the scratch reference re-analyzes.
        monkeypatch.setattr(
            TimingGraph, "forward_update_net",
            lambda self, calc, net, timing: False,
        )
        result = check_incremental_identical(
            c17(), charlib_poly_90, seed=1, edits=3
        )
        assert not result.ok
        assert "diverged" in result.detail


class TestResultFormatting:
    def test_describe_mentions_status(self, charlib_poly_90):
        results = run_metamorphic(
            c17(), charlib_poly_90, invariants=["gba_bounds"]
        )
        text = results[0].describe()
        assert "gba_bounds" in text
        assert "ok" in text
