"""Calibration lock-in: the presets must keep the Tables 3-4 shape.

These tests are the contract behind DESIGN.md section 4: absolute
picoseconds differ from the paper's foundry libraries, but the orderings
and rough magnitudes that drive every downstream experiment must hold.
They are slower than unit tests (a few dozen transients)."""

import pytest

from repro.gates.library import default_library
from repro.spice.cellsim import CellSimulator
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def ao22_data():
    lib = default_library()
    cell = lib["AO22"]
    data = {}
    for name, tech in TECHNOLOGIES.items():
        sim = CellSimulator(cell, tech, steps_per_window=250)
        load = sim.same_gate_load()
        per_case = {}
        for vec in cell.sensitization_vectors("A"):
            rise = sim.propagation("A", vec, True, 50e-12, load).delay
            fall = sim.propagation("A", vec, False, 50e-12, load).delay
            per_case[vec.case] = (rise, fall)
        data[name] = per_case
    return data


class TestAo22Calibration:
    def test_90nm_is_fastest_node(self, ao22_data):
        assert ao22_data["90nm"][1][0] < ao22_data["130nm"][1][0]
        assert ao22_data["90nm"][1][0] < ao22_data["65nm"][1][0]

    def test_65nm_slower_than_90nm(self, ao22_data):
        """The paper's 65nm library is a slow LP flavour (Table 3)."""
        assert ao22_data["65nm"][1][0] > ao22_data["90nm"][1][0]

    def test_delays_in_paper_ballpark(self, ao22_data):
        """Case 1 delays within 2x of the paper's values."""
        paper = {"130nm": 121e-12, "90nm": 60e-12, "65nm": 110e-12}
        for name, expected in paper.items():
            measured = ao22_data[name][1][0]
            assert expected / 2 < measured < expected * 2, name

    @pytest.mark.parametrize("tech_name", list(TECHNOLOGIES))
    def test_fall_ordering_case2_slowest(self, ao22_data, tech_name):
        d = ao22_data[tech_name]
        assert d[1][1] < d[3][1] < d[2][1]

    def test_fall_spread_significant(self, ao22_data):
        """Case 2 vs case 1 spread is >8% everywhere (the paper reports
        12-22%), so ignoring the vector is a real error."""
        for name, d in ao22_data.items():
            spread = d[2][1] / d[1][1] - 1.0
            assert spread > 0.08, name

    def test_65nm_spread_smallest(self, ao22_data):
        """Table 3: the 65nm spread (12.1%) is below 130/90nm (19-22%)."""
        def spread(name):
            d = ao22_data[name]
            return d[2][1] / d[1][1] - 1.0

        assert spread("65nm") < spread("130nm")
        assert spread("65nm") < spread("90nm")

    def test_rise_spread_small(self, ao22_data):
        """Rising-input delays vary only a few percent (Table 3)."""
        for name, d in ao22_data.items():
            assert abs(d[2][0] / d[1][0] - 1.0) < 0.10, name


class TestOa12Calibration:
    @pytest.fixture(scope="class")
    def oa12_data(self):
        lib = default_library()
        cell = lib["OA12"]
        data = {}
        for name, tech in TECHNOLOGIES.items():
            sim = CellSimulator(cell, tech, steps_per_window=250)
            load = sim.same_gate_load()
            data[name] = {
                vec.case: sim.propagation("C", vec, True, 50e-12, load).delay
                for vec in cell.sensitization_vectors("C")
            }
        return data

    @pytest.mark.parametrize("tech_name", list(TECHNOLOGIES))
    def test_rise_case1_slowest(self, oa12_data, tech_name):
        d = oa12_data[tech_name]
        assert d[3] < d[2] < d[1]  # Table 4: cases 2/3 faster than case 1

    def test_case3_speedup_significant(self, oa12_data):
        for name, d in oa12_data.items():
            assert d[3] / d[1] - 1.0 < -0.05, name
