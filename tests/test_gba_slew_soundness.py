"""Regression: GBA forward pass must propagate the *worst* slew.

The historical forward pass stored the slew of whichever transition
arrived latest at a net.  That is unsound: a slightly-earlier arrival
carrying a much larger slew can drive a bigger downstream delay, so the
GBA "bound" could fall below a true path delay.  The fix maximizes
arrival and slew independently per polarity -- each is then a sound
per-net bound -- and must behave identically in the scalar and
vectorized sweeps.

The pinned netlist makes the failure concrete: a NAND2 whose A-input
arc wins the arrival race with a crisp 10 ps slew while the B-input arc
loses by 1 ps but carries a 200 ps slew into a slew-sensitive inverter.
"""

import numpy as np
import pytest

from repro.charlib.polynomial import Normalization, PolynomialModel
from repro.charlib.store import CharacterizedLibrary, TimingArc
from repro.core.graphsta import GraphSTA
from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit

_IDENTITY = Normalization((0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 1.0, 1.0))


def _const(value):
    """f(Fo, t_in, T, VDD) = value, exactly."""
    return PolynomialModel((0, 0, 0, 0), np.full((1, 1, 1, 1), value),
                           _IDENTITY)


def _affine(c0, c1):
    """f = c0 + c1 * t_in, exactly (identity normalization)."""
    coeffs = np.zeros((1, 2, 1, 1))
    coeffs[0, 0, 0, 0] = c0
    coeffs[0, 1, 0, 0] = c1
    return PolynomialModel((0, 1, 0, 0), coeffs, _IDENTITY)


#: (cell, pin) -> (delay model, slew model).  Pin A of the NAND2 wins
#: the arrival race (100 ps > 99 ps) but pin B carries the huge slew.
_SPEC = {
    ("NAND2", "A"): (_const(100e-12), _const(10e-12)),
    ("NAND2", "B"): (_const(99e-12), _const(200e-12)),
    ("INV", "A"): (_affine(5e-12, 0.5), _affine(0.0, 1.0)),
}


@pytest.fixture(scope="module")
def slew_charlib(library):
    arcs = []
    for (cell_name, pin), (delay_model, slew_model) in _SPEC.items():
        for vec in library[cell_name].sensitization_vectors(pin):
            for input_rising in (True, False):
                arcs.append(TimingArc(
                    cell=cell_name,
                    pin=pin,
                    vector_id=vec.vector_id,
                    input_rising=input_rising,
                    output_rising=input_rising != vec.inverting,
                    delay_model=delay_model,
                    slew_model=slew_model,
                ))
    return CharacterizedLibrary(
        tech_name="cmos90",
        library_name="slew-soundness-pin",
        model_kind="polynomial",
        input_caps={"NAND2": {"A": 2e-15, "B": 2e-15},
                    "INV": {"A": 2e-15}},
        arcs=arcs,
    )


@pytest.fixture(scope="module")
def netlist(library):
    circuit = Circuit("slewreg", library)
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("NAND2", "n", {"A": "a", "B": "b"})
    circuit.add_gate("INV", "out", {"A": "n"})
    circuit.add_output("out")
    circuit.check()
    return circuit


class TestWorstSlewPropagation:
    def test_mid_net_keeps_the_worst_slew(self, netlist, slew_charlib):
        """The 200 ps slew from the losing-arrival B arc must survive."""
        result = GraphSTA(netlist, slew_charlib).run()
        assert result.slews["n"] == (200e-12, 200e-12)
        # The buggy latest-arrival rule would have kept A's 10 ps slew.
        assert result.slews["n"] != (10e-12, 10e-12)

    def test_gba_stays_above_every_true_path(self, netlist, slew_charlib):
        gba = GraphSTA(netlist, slew_charlib).run()
        paths = TruePathSTA(netlist, slew_charlib).enumerate_paths()
        assert paths
        bound = gba.worst_arrival("out")
        for path in paths:
            assert bound >= path.worst_arrival, path.nets
        # With the old bug the bound was 100ps + 5ps + 0.5*10ps =
        # 110 ps, below the true path through B:
        true_via_b = 99e-12 + 5e-12 + 0.5 * 200e-12
        assert bound >= true_via_b
        assert bound == pytest.approx(100e-12 + 5e-12 + 0.5 * 200e-12)

    def test_scalar_and_vectorized_agree_bitwise(self, netlist, slew_charlib):
        scalar = GraphSTA(netlist, slew_charlib, vectorize=False).run()
        vector = GraphSTA(netlist, slew_charlib, vectorize=True).run()
        assert scalar.arrivals == vector.arrivals
        assert scalar.slews == vector.slews
