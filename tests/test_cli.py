"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import load_circuit, main
from repro.netlist.bench import C17_BENCH


@pytest.fixture
def bench_file(tmp_path):
    path = tmp_path / "c17.bench"
    path.write_text(C17_BENCH)
    return str(path)


@pytest.fixture
def verilog_file(tmp_path, charlib_poly_90):
    from repro.netlist.generate import c17
    from repro.netlist.verilog import write_verilog

    path = tmp_path / "c17.v"
    path.write_text(write_verilog(c17()))
    return str(path)


class TestLoadCircuit:
    def test_bench_mapped(self, bench_file):
        circuit = load_circuit(bench_file)
        assert circuit.num_gates >= 1

    def test_bench_unmapped(self, bench_file):
        circuit = load_circuit(bench_file, map_to_complex=False)
        assert circuit.num_gates == 6

    def test_verilog(self, verilog_file):
        circuit = load_circuit(verilog_file)
        assert circuit.num_gates == 6


class TestStatsCommand:
    def test_stats(self, bench_file, capsys):
        assert main(["stats", bench_file, "--no-map"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "6" in out


class TestAnalyzeCommand:
    def test_developed(self, bench_file, capsys, charlib_poly_90):
        assert main([
            "analyze", bench_file, "--no-map", "--tech", "90nm", "--top", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "True-path report" in out
        assert "ps" in out

    def test_baseline(self, bench_file, capsys, charlib_lut_90):
        assert main([
            "analyze", bench_file, "--no-map", "--tool", "baseline",
            "--tech", "90nm",
        ]) == 0
        out = capsys.readouterr().out
        assert "two-step baseline" in out

    def test_slack_and_json(self, bench_file, tmp_path, capsys,
                            charlib_poly_90):
        json_path = tmp_path / "paths.json"
        assert main([
            "analyze", bench_file, "--no-map", "--tech", "90nm",
            "--required", "90", "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "slack" in out
        data = json.loads(json_path.read_text())
        assert len(data) == 11


class TestObservabilityFlags:
    def test_profile_prints_span_tree(self, bench_file, capsys, clean_obs,
                                      charlib_poly_90):
        assert main([
            "analyze", bench_file, "--no-map", "--tech", "90nm", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "pathfinder.justify" in out
        assert "pathfinder.delaycalc" in out
        assert "metrics:" in out

    def test_metrics_json_snapshot(self, bench_file, tmp_path, capsys,
                                   clean_obs, charlib_poly_90):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "analyze", bench_file, "--no-map", "--tech", "90nm",
            "--profile", "--metrics-json", str(metrics_path),
        ]) == 0
        data = json.loads(metrics_path.read_text())
        assert data["pathfinder.extensions_tried"] > 0
        assert "pathfinder.conflicts" in data
        assert "pathfinder.justification_backtracks" in data
        assert data["spans"]["pathfinder.justify"]["count"] > 0
        assert data["spans"]["pathfinder.delaycalc"]["total_s"] >= 0

    def test_metrics_json_baseline_tool(self, bench_file, tmp_path, capsys,
                                        clean_obs, charlib_lut_90):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "analyze", bench_file, "--no-map", "--tool", "baseline",
            "--tech", "90nm", "--metrics-json", str(metrics_path),
        ]) == 0
        data = json.loads(metrics_path.read_text())
        assert data["baseline.paths_explored"] > 0

    def test_log_level_emits_structured_records(self, bench_file, capsys,
                                                clean_obs, charlib_poly_90):
        assert main([
            "analyze", bench_file, "--no-map", "--tech", "90nm",
            "--log-level", "info",
        ]) == 0
        err = capsys.readouterr().err
        assert "charlib_memo" in err  # hit or miss, either is logged

    def test_charlib_memo_hits_on_repeat(self, bench_file, capsys, clean_obs,
                                         charlib_poly_90):
        import repro.cli as cli

        cli._CHARLIB_MEMO.clear()
        assert main(["analyze", bench_file, "--no-map", "--tech", "90nm"]) == 0
        assert main(["analyze", bench_file, "--no-map", "--tech", "90nm"]) == 0
        capsys.readouterr()
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("cli.charlib_memo_misses").value == 1
        assert registry.counter("cli.charlib_memo_hits").value == 1


class TestSizeCommand:
    def test_size_text_report(self, bench_file, capsys, tech90):
        assert main([
            "size", bench_file, "--no-map", "--tech", "90nm",
            "--required", "80", "--max-moves", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sizing:" in out
        assert "strategy greedy" in out

    def test_size_json_and_metrics(self, bench_file, tmp_path, capsys,
                                   clean_obs, tech90):
        report = tmp_path / "sizing.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "size", bench_file, "--no-map", "--tech", "90nm",
            "--required", "80", "--max-moves", "2",
            "--json", str(report), "--metrics-json", str(metrics),
        ]) == 0
        payload = json.loads(report.read_text())
        assert payload["strategy"] == "greedy"
        assert payload["required_ps"] == 80.0
        for move in payload["moves"]:
            assert move["to"].endswith("_X2") or move["from"].endswith("_X2")
        data = json.loads(metrics.read_text())
        assert data["sizer.moves_tried"] >= data["sizer.moves_accepted"]
        if payload["moves"]:
            assert data["incremental.edits"] >= 1

    def test_size_scratch_matches_incremental(self, bench_file, capsys,
                                              tech90):
        assert main([
            "size", bench_file, "--no-map", "--tech", "90nm",
            "--required", "80", "--max-moves", "2",
        ]) == 0
        incremental = capsys.readouterr().out
        assert main([
            "size", bench_file, "--no-map", "--tech", "90nm",
            "--required", "80", "--max-moves", "2", "--scratch",
        ]) == 0
        assert capsys.readouterr().out == incremental
