"""Unit tests for the TruePathSTA facade and delay calculator."""

import pytest

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap


class TestFacade:
    def test_report_text(self, charlib_poly_90):
        sta = TruePathSTA(c17(), charlib_poly_90)
        paths = sta.enumerate_paths()
        text = sta.report(paths, limit=5)
        assert "c17" in text
        assert "ps" in text
        assert "... 6 more" in text

    def test_group_by_course(self, charlib_poly_90):
        sta = TruePathSTA(c17(), charlib_poly_90)
        paths = sta.enumerate_paths()
        groups = sta.group_by_course(paths)
        assert sum(len(v) for v in groups.values()) == len(paths)

    def test_n_worst_sorted(self, charlib_poly_90):
        sta = TruePathSTA(c17(), charlib_poly_90)
        top = sta.n_worst_paths(4)
        arrivals = [p.worst_arrival for p in top]
        assert arrivals == sorted(arrivals, reverse=True)
        assert len(top) == 4

    def test_multi_vector_filter(self, charlib_poly_90):
        circuit = techmap(random_dag("mv", 14, 80, seed=21))
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths(max_paths=300)
        multi = sta.multi_vector_paths(paths)
        assert all(p.multi_vector for p in multi)

    def test_invalid_circuit_rejected(self, charlib_poly_90):
        from repro.netlist.circuit import Circuit

        c = Circuit("bad")
        c.add_input("a")
        c.add_gate("NAND2", "n", {"A": "a", "B": "ghost"})
        with pytest.raises(ValueError):
            TruePathSTA(c, charlib_poly_90)


class TestDelayCalculator:
    def test_fo_positive(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        assert all(fo > 0 for fo in calc.fo)

    def test_arc_timing(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        gate = ec.gates[0]
        delay, slew = calc.arc_timing(gate, "A", "A:1", True, False, 4e-11)
        assert delay > 0 and slew > 0

    def test_worst_gate_delay_bounds_arcs(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        gate = ec.gates[0]
        worst = calc.worst_gate_delay(gate)
        delay, _ = calc.arc_timing(gate, "A", "A:1", True, False, 4e-11)
        assert worst >= delay

    def test_worst_gate_delay_cached(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        gate = ec.gates[0]
        assert calc.worst_gate_delay(gate) == calc.worst_gate_delay(gate)
        assert gate.index in calc._worst_delay_cache

    def test_remaining_bounds_monotone(self, charlib_poly_90):
        """A net's bound is at least any successor's bound."""
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        bounds = calc.remaining_bounds()
        for gate in ec.gates:
            for net in gate.input_nets:
                assert bounds[net] >= bounds[gate.output_net]

    def test_po_bound_zero(self, charlib_poly_90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        bounds = calc.remaining_bounds()
        # G22 feeds nothing, so its remaining delay is 0.
        assert bounds[ec.net_id["G22"]] == 0.0

    def test_vdd_inferred_from_tech(self, charlib_poly_90, tech90):
        ec = EngineCircuit(c17())
        calc = DelayCalculator(ec, charlib_poly_90)
        assert calc.vdd == pytest.approx(tech90.vdd)
