"""Tests for the Monte-Carlo variation layer."""

import numpy as np
import pytest

from repro.core.sta import TruePathSTA
from repro.core.variation import (
    VariationSpec,
    criticality,
    path_statistics,
    sample_path_arrivals,
    timing_yield,
)
from repro.netlist.generate import c17


@pytest.fixture(scope="module")
def paths(charlib_poly_90):
    sta = TruePathSTA(c17(), charlib_poly_90)
    return sta.enumerate_paths()


class TestSampling:
    def test_shape(self, paths):
        samples = sample_path_arrivals(paths, VariationSpec(seed=1), 200)
        assert samples.shape == (200, len(paths))
        assert np.all(samples > 0)

    def test_zero_sigma_reproduces_nominal(self, paths):
        spec = VariationSpec(sigma_local=0.0, sigma_global=0.0)
        samples = sample_path_arrivals(paths, spec, 10)
        for k, path in enumerate(paths):
            nominal = max(p.arrival for p in path.polarities())
            assert samples[:, k] == pytest.approx(nominal, rel=1e-12)

    def test_deterministic_seed(self, paths):
        a = sample_path_arrivals(paths, VariationSpec(seed=7), 50)
        b = sample_path_arrivals(paths, VariationSpec(seed=7), 50)
        assert np.array_equal(a, b)

    def test_shared_gates_correlate(self, paths):
        """Paths sharing gates must be positively correlated."""
        shared = [
            (i, j)
            for i, p in enumerate(paths)
            for j, q in enumerate(paths)
            if i < j
            and {s.gate_name for s in p.steps} & {s.gate_name for s in q.steps}
        ]
        assert shared
        spec = VariationSpec(sigma_local=0.2, sigma_global=0.0, seed=3)
        samples = sample_path_arrivals(paths, spec, 3000)
        i, j = shared[0]
        rho = np.corrcoef(samples[:, i], samples[:, j])[0, 1]
        assert rho > 0.2

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            VariationSpec(sigma_local=-0.1)

    def test_empty_paths(self):
        with pytest.raises(ValueError):
            sample_path_arrivals([], VariationSpec(), 10)


class TestStatistics:
    def test_quantiles_ordered(self, paths):
        stats = path_statistics(paths, VariationSpec(seed=2), 1000)
        for s in stats:
            assert s.q50 <= s.q95 <= s.q997
            assert s.mean == pytest.approx(s.nominal, rel=0.1)

    def test_std_grows_with_sigma(self, paths):
        tight = path_statistics(paths, VariationSpec(0.02, 0.0, seed=4), 1500)
        loose = path_statistics(paths, VariationSpec(0.10, 0.0, seed=4), 1500)
        assert loose[0].std > tight[0].std


class TestCriticality:
    def test_probabilities_sum_to_one(self, paths):
        crit = criticality(paths, VariationSpec(seed=5), 1000)
        assert sum(crit.values()) == pytest.approx(1.0)

    def test_nominal_winner_most_likely(self, paths):
        crit = criticality(paths, VariationSpec(0.03, 0.02, seed=6), 2000)
        nominal_worst = max(paths, key=lambda p: p.worst_arrival)
        assert crit[nominal_worst.course] == max(crit.values())


class TestYield:
    def test_bounds(self, paths):
        spec = VariationSpec(seed=8)
        worst = max(p.worst_arrival for p in paths)
        assert timing_yield(paths, spec, worst * 2.0) == pytest.approx(1.0)
        assert timing_yield(paths, spec, worst * 0.5) == pytest.approx(0.0)

    def test_monotone_in_required_time(self, paths):
        spec = VariationSpec(seed=9)
        worst = max(p.worst_arrival for p in paths)
        levels = [worst * f for f in (0.95, 1.0, 1.05, 1.2)]
        yields = [timing_yield(paths, spec, t, 1500) for t in levels]
        assert yields == sorted(yields)
