"""Unit tests for cell definitions and sensitization vectors."""

import pytest

from repro.gates.cell import Cell, SensitizationVector, expr_function
from repro.gates.library import default_library
from repro.gates.logic import BoolFunc


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestCellBasics:
    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            Cell("BAD", ["A", "B"], BoolFunc.constant(3, 0))

    def test_duplicate_pins(self):
        with pytest.raises(ValueError):
            Cell("BAD", ["A", "A"], BoolFunc.constant(2, 0))

    def test_pin_index(self, lib):
        nand3 = lib["NAND3"]
        assert nand3.pin_index("C") == 2
        with pytest.raises(KeyError):
            nand3.pin_index("Z")

    def test_evaluate(self, lib):
        ao22 = lib["AO22"]
        assert ao22.evaluate({"A": 1, "B": 1, "C": 0, "D": 0}) == 1
        assert ao22.evaluate({"A": 1, "B": 0, "C": 0, "D": 0}) == 0

    def test_repr(self, lib):
        assert "AO22" in repr(lib["AO22"])


class TestSensitizationVectors:
    def test_paper_table1_ao22_input_a(self, lib):
        """The exact rows of the paper's Table 1 for input A."""
        vectors = lib["AO22"].sensitization_vectors("A")
        sides = [v.side_values for v in vectors]
        assert sides == [
            {"B": 1, "C": 0, "D": 0},
            {"B": 1, "C": 1, "D": 0},
            {"B": 1, "C": 0, "D": 1},
        ]
        assert [v.case for v in vectors] == [1, 2, 3]

    def test_paper_table1_total(self, lib):
        total = sum(len(v) for v in lib["AO22"].sensitization_vectors().values())
        assert total == 12  # "a total of 12 different delay propagation values"

    def test_paper_table2_oa12(self, lib):
        oa12 = lib["OA12"]
        assert [v.side_values for v in oa12.sensitization_vectors("C")] == [
            {"A": 1, "B": 0},
            {"A": 0, "B": 1},
            {"A": 1, "B": 1},
        ]
        assert len(oa12.sensitization_vectors("A")) == 1
        assert len(oa12.sensitization_vectors("B")) == 1

    def test_simple_gate_single_vector(self, lib):
        """'single gates have typically only one sensitization vector'."""
        for name in ("INV", "NAND2", "NAND3", "NOR2", "AND2", "OR4"):
            cell = lib[name]
            for pin in cell.inputs:
                assert len(cell.sensitization_vectors(pin)) == 1

    def test_xor_two_vectors_per_pin(self, lib):
        xor = lib["XOR2"]
        for pin in xor.inputs:
            vectors = xor.sensitization_vectors(pin)
            assert len(vectors) == 2
            assert {v.inverting for v in vectors} == {False, True}

    def test_mux_select_pin(self, lib):
        mux = lib["MUX2"]
        s_vectors = mux.sensitization_vectors("S")
        # S toggles the output only when A != B.
        assert len(s_vectors) == 2
        for v in s_vectors:
            assert v.side_values["A"] != v.side_values["B"]

    def test_vector_by_id_roundtrip(self, lib):
        ao22 = lib["AO22"]
        for pin in ao22.inputs:
            for vec in ao22.sensitization_vectors(pin):
                assert ao22.vector_by_id(vec.vector_id) is vec

    def test_vector_by_id_missing(self, lib):
        with pytest.raises(KeyError):
            lib["AO22"].vector_by_id("A:999")

    def test_unknown_pin(self, lib):
        with pytest.raises(KeyError):
            lib["AO22"].sensitization_vectors("Q")

    def test_is_complex(self, lib):
        assert lib["AO22"].is_complex
        assert lib["OA12"].is_complex
        assert not lib["NAND2"].is_complex
        assert not lib["INV"].is_complex

    def test_polarity_non_inverting_families(self, lib):
        for name in ("AND2", "OR3", "AO22", "OA12", "BUF"):
            cell = lib[name]
            for pin, vectors in cell.sensitization_vectors().items():
                for v in vectors:
                    assert v.inverting is False, (name, pin)

    def test_polarity_inverting_families(self, lib):
        for name in ("INV", "NAND2", "NOR4", "AOI22", "OAI12"):
            cell = lib[name]
            for pin, vectors in cell.sensitization_vectors().items():
                for v in vectors:
                    assert v.inverting is True, (name, pin)


class TestVectorObject:
    def test_vector_id_format(self, lib):
        v = lib["AO22"].sensitization_vectors("A")[0]
        assert v.vector_id == "A:100"  # B=1, C=0, D=0

    def test_repr_and_hash(self, lib):
        vectors = lib["AO22"].sensitization_vectors("A")
        assert len({hash(v) for v in vectors}) == 3
        assert "case1" in repr(vectors[0])


class TestJustificationCubes:
    def test_pin_names(self, lib):
        cubes = lib["NAND2"].justification_cubes(1)
        assert {frozenset(c.items()) for c in cubes} == {
            frozenset({("A", 0)}), frozenset({("B", 0)})
        }

    def test_cached(self, lib):
        cell = lib["AO21"]
        assert cell.justification_cubes(0) is cell.justification_cubes(0)


class TestExprFunction:
    def test_series_is_and(self):
        f = expr_function(("s", "A", "B"), ["A", "B"])
        assert f == BoolFunc.from_callable(2, lambda a, b: a and b)

    def test_parallel_is_or(self):
        f = expr_function(("p", "A", "B"), ["A", "B"])
        assert f == BoolFunc.from_callable(2, lambda a, b: a or b)

    def test_negated_literal(self):
        f = expr_function(("s", "A", "!B"), ["A", "B"])
        assert f.eval((1, 0)) == 1
        assert f.eval((1, 1)) == 0

    def test_bad_node(self):
        with pytest.raises(ValueError):
            expr_function(("x", "A"), ["A"]).eval((1,))

    def test_transistor_count(self, lib):
        assert lib["INV"].transistor_count() == 2
        assert lib["NAND2"].transistor_count() == 4
        assert lib["AOI22"].transistor_count() == 8
        assert lib["AO22"].transistor_count() == 10  # AOI22 core + inverter
        assert lib["XOR2"].transistor_count() == 14  # 8 core + 4 inv-in + 2 out
