"""Unit tests for levelization utilities."""

from repro.netlist.circuit import Circuit
from repro.netlist.generate import c17
from repro.netlist.levelize import (
    fanin_cone,
    fanout_cone,
    instances_by_level,
    levelize,
    logic_depth,
)


def chain(n):
    c = Circuit(f"chain{n}")
    c.add_input("i")
    prev = "i"
    for k in range(n):
        c.add_gate("INV", f"n{k}", {"A": prev})
        prev = f"n{k}"
    c.add_output(prev)
    return c


class TestLevels:
    def test_chain_levels(self):
        c = chain(4)
        levels = levelize(c)
        assert levels["i"] == 0
        assert levels["n3"] == 4
        assert logic_depth(c) == 4

    def test_c17_depth(self):
        assert logic_depth(c17()) == 3

    def test_empty_circuit(self):
        c = Circuit("empty")
        c.add_input("a")
        assert logic_depth(c) == 0

    def test_instances_by_level(self):
        groups = instances_by_level(c17())
        assert [len(g) for g in groups] == [2, 2, 2]

    def test_level_is_max_of_inputs_plus_one(self):
        c = Circuit("mix")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("INV", "n1", {"A": "a"})
        c.add_gate("NAND2", "n2", {"A": "n1", "B": "b"})
        c.add_output("n2")
        levels = levelize(c)
        assert levels["n2"] == 2


class TestCones:
    def test_fanin_cone(self):
        c = c17()
        cone = fanin_cone(c, "G22")
        assert "G1" in cone and "G16" in cone and "G22" in cone
        assert "G19" not in cone  # G19 only feeds G23

    def test_fanout_cone(self):
        c = c17()
        cone = fanout_cone(c, "G11")
        assert {"G11", "G16", "G19", "G22", "G23"} == set(cone)

    def test_cone_of_input(self):
        c = c17()
        assert fanin_cone(c, "G1") == ["G1"]
