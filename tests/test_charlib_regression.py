"""Unit tests for adaptive-order polynomial regression."""

import numpy as np
import pytest

from repro.charlib.regression import fit_adaptive, fit_fixed


def factorial_points(fo, tin, temp=(25.0,), vdd=(1.1,)):
    return np.array(
        [[f, t, T, v] for f in fo for t in tin for T in temp for v in vdd]
    )


class TestAdaptive:
    def test_linear_data_stays_first_order(self):
        pts = factorial_points([0.5, 1, 2, 4, 8], [1e-11, 5e-11, 2e-10])
        values = 1e-11 + 2e-12 * pts[:, 0] + 0.1 * pts[:, 1]
        model, report = fit_adaptive(pts, values, target_rel_error=0.01)
        assert report.orders[0] == 1 and report.orders[1] == 1
        assert report.target_met

    def test_quadratic_data_escalates_order(self):
        pts = factorial_points([0.5, 1, 2, 4, 8], [1e-11, 5e-11, 1e-10, 2e-10])
        values = 1e-11 + 5e-13 * pts[:, 0] ** 2 + 0.05 * pts[:, 1]
        model, report = fit_adaptive(pts, values, target_rel_error=0.005)
        assert report.orders[0] >= 2
        assert report.target_met
        assert report.max_rel_error <= 0.005

    def test_constant_variables_pinned_to_zero(self):
        pts = factorial_points([1, 2, 4], [1e-11, 1e-10])
        values = pts[:, 0] * 1e-12
        _model, report = fit_adaptive(pts, values)
        assert report.orders[2] == 0 and report.orders[3] == 0

    def test_order_caps_respected(self):
        rng = np.random.default_rng(3)
        pts = factorial_points([0.5, 1, 2, 4, 8], [1e-11, 5e-11, 1e-10, 2e-10])
        values = 1e-11 * (1 + rng.random(len(pts)))  # noise: unfittable
        _model, report = fit_adaptive(
            pts, values, target_rel_error=1e-6, max_orders=(2, 2, 0, 0)
        )
        assert report.orders[0] <= 2 and report.orders[1] <= 2
        assert not report.target_met

    def test_never_more_params_than_points(self):
        pts = factorial_points([1, 2], [1e-11, 1e-10])
        values = pts[:, 0] * 1e-12
        _model, report = fit_adaptive(pts, values, target_rel_error=1e-12)
        assert np.prod([o + 1 for o in report.orders]) <= len(values)

    def test_iterations_counted(self):
        pts = factorial_points([0.5, 1, 2, 4], [1e-11, 1e-10])
        values = 1e-12 * pts[:, 0] ** 2
        _model, report = fit_adaptive(pts, values, target_rel_error=0.001)
        assert report.iterations >= 2


class TestFixed:
    def test_first_order_reported(self):
        pts = factorial_points([0.5, 1, 2], [1e-11, 1e-10])
        values = 1e-12 * pts[:, 0]
        model, report = fit_fixed(pts, values, (1, 1, 1, 1))
        # temp/vdd constant -> pinned to zero regardless of request
        assert report.orders == (1, 1, 0, 0)
        assert np.allclose(model.evaluate_many(pts), values, rtol=1e-9)
