"""Tests for metrics and table rendering."""

import pytest

from repro.eval.metrics import ErrorStats, error_stats, relative_error
from repro.eval.tables import format_pct, format_ps, render_dict_rows, render_table


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_zero_golden_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_error_stats(self):
        stats = error_stats(
            path_pairs=[(105.0, 100.0), (98.0, 100.0)],
            gate_pairs=[(11.0, 10.0), (10.0, 10.0), (8.0, 10.0)],
        )
        assert stats.mean_path_error == pytest.approx(0.035)
        assert stats.max_path_error == pytest.approx(0.05)
        assert stats.max_gate_error == pytest.approx(0.2)
        assert stats.n_paths == 2 and stats.n_gates == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            error_stats([], [(1.0, 1.0)])

    def test_as_row_format(self):
        stats = ErrorStats(0.0123, 0.2, 0.05, 0.3, 2, 4)
        row = stats.as_row()
        assert row["mean_path"] == "1.23%"
        assert row["max_gate"] == "30.00%"


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "bee"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_dict_rows(self):
        text = render_dict_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in text and "3" in text

    def test_dict_rows_empty(self):
        assert render_dict_rows([], title="t") == "t"

    def test_formatters(self):
        assert format_ps(1.5e-10) == "150.00"
        assert format_pct(0.123) == "+12.30%"
        assert format_pct(-0.05) == "-5.00%"
