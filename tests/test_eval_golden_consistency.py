"""Consistency of the golden-glue helpers with the STA itself."""

import pytest

from repro.charlib.fanout import output_load
from repro.core.sta import TruePathSTA
from repro.eval.golden import estimate_path_with, path_stages
from repro.netlist.generate import c17
from repro.netlist.techmap import techmap
from repro.netlist.generate import random_dag


@pytest.fixture(scope="module")
def setup(charlib_poly_90):
    circuit = techmap(random_dag("gc", 12, 60, seed=55))
    sta = TruePathSTA(circuit, charlib_poly_90)
    paths = sta.enumerate_paths(max_paths=200)
    return circuit, sta, paths


class TestPathStages:
    def test_stage_loads_match_circuit(self, setup, charlib_poly_90):
        circuit, _sta, paths = setup
        path = paths[0]
        stages = path_stages(circuit, charlib_poly_90, path)
        assert len(stages) == len(path.steps)
        for stage, step in zip(stages, path.steps):
            inst = circuit.instances[step.gate_name]
            assert stage.cell is inst.cell
            assert stage.pin == step.pin
            assert stage.c_load == pytest.approx(
                output_load(circuit, inst, charlib_poly_90)
            )

    def test_stage_vectors_match_steps(self, setup, charlib_poly_90):
        circuit, _sta, paths = setup
        for path in paths[:10]:
            stages = path_stages(circuit, charlib_poly_90, path)
            for stage, step in zip(stages, path.steps):
                assert stage.vector.vector_id == step.vector_id


class TestEstimateSelfConsistency:
    def test_same_calculator_reproduces_arrival(self, setup):
        """estimate_path_with under the STA's own calculator equals the
        arrival the pathfinder accumulated."""
        _circuit, sta, paths = setup
        for path in paths[:25]:
            for polarity in path.polarities():
                total, gate_delays = estimate_path_with(
                    sta.calc, sta.ec, path, polarity
                )
                assert total == pytest.approx(polarity.arrival, rel=1e-9)
                assert gate_delays == pytest.approx(polarity.gate_delays)

    def test_fixed_slew_differs_somewhere(self, setup):
        """Disabling slew propagation changes at least some estimates
        (paths whose internal slews differ from the nominal one)."""
        _circuit, sta, paths = setup
        diffs = []
        for path in (p for p in paths if len(p.steps) >= 3):
            polarity = path.polarities()[0]
            with_slew, _ = estimate_path_with(sta.calc, sta.ec, path, polarity)
            without, _ = estimate_path_with(
                sta.calc, sta.ec, path, polarity, propagate_slew=False
            )
            diffs.append(abs(with_slew - without) / with_slew)
        assert diffs
        assert max(diffs) > 1e-4
