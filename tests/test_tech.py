"""Unit tests for technology parameter sets."""

import pytest

from repro.tech.presets import TECHNOLOGIES, technology, technology_names
from repro.tech.technology import DeviceParams, T_NOMINAL_C, Technology


class TestPresets:
    def test_three_nodes(self):
        assert technology_names() == ["130nm", "90nm", "65nm"]

    def test_lookup(self):
        assert technology("130nm").node_nm == 130
        with pytest.raises(KeyError, match="unknown technology"):
            technology("45nm")

    def test_supplies(self):
        assert technology("130nm").vdd == pytest.approx(1.2)
        assert technology("90nm").vdd == pytest.approx(1.1)
        assert technology("65nm").vdd == pytest.approx(1.0)

    def test_65nm_is_low_power_flavour(self):
        """The paper's 65nm library is slower than its 90nm one; ours
        mimics that with a higher Vt at lower VDD."""
        t65, t90 = technology("65nm"), technology("90nm")
        assert t65.nmos.vt0 > t90.nmos.vt0
        assert t65.vdd < t90.vdd

    def test_describe(self):
        d = technology("90nm").describe()
        assert d["vdd"] == pytest.approx(1.1)
        assert d["node_nm"] == 90

    def test_scaled_override(self):
        base = technology("130nm")
        fast = base.scaled(vdd=1.32)
        assert fast.vdd == pytest.approx(1.32)
        assert base.vdd == pytest.approx(1.2)  # frozen original untouched


class TestDeviceParams:
    def setup_method(self):
        self.dev = DeviceParams(vt0=0.3, k=100e-6, c_gate=1e-15, c_diff=1e-15)

    def test_k_at_nominal(self):
        assert self.dev.k_at(T_NOMINAL_C) == pytest.approx(100e-6)

    def test_mobility_falls_with_temperature(self):
        assert self.dev.k_at(125.0) < self.dev.k_at(25.0) < self.dev.k_at(-25.0)

    def test_vt_falls_with_temperature(self):
        assert self.dev.vt_at(125.0) < self.dev.vt_at(25.0)

    def test_vt_floor(self):
        assert self.dev.vt_at(1000.0) == pytest.approx(0.05)

    def test_pmos_weaker_than_nmos_everywhere(self):
        for tech in TECHNOLOGIES.values():
            assert tech.pmos.k < tech.nmos.k
