"""HotCache under concurrency: single-flight builds, safe eviction.

The per-key build gate must collapse racing cold requests for one
configuration into a single build (the whole point of the hot cache:
context builds cost ~seconds), and LRU churn during an in-flight build
must never surface a half-built value -- an entry lands in the cache
only once its build returned.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.service.cache import HotCache


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,), daemon=True)
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert not any(t.is_alive() for t in threads), "cache access hung"


def test_racing_cold_requests_build_once():
    cache = HotCache(4, name="race")
    builds = []
    barrier = threading.Barrier(8)
    results = [None] * 8

    def build():
        builds.append(threading.get_ident())
        time.sleep(0.2)  # hold the build open so every racer piles up
        return {"token": object()}

    def worker(i):
        barrier.wait()
        results[i] = cache.get_or_build(("90nm", "soa"), build)

    _run_threads(8, worker)
    assert len(builds) == 1, f"{len(builds)} builds for one key"
    assert all(r is results[0] for r in results), \
        "racers observed different objects for one key"
    assert obs.counter("service.race_misses").value == 1
    assert obs.counter("service.race_hits").value >= 1


def test_concurrent_keys_build_in_parallel_not_serialized():
    cache = HotCache(8, name="par")
    barrier = threading.Barrier(4)
    started = time.perf_counter()

    def worker(i):
        barrier.wait()
        cache.get_or_build(("key", i),
                           lambda: time.sleep(0.2) or {"i": i})

    _run_threads(4, worker)
    elapsed = time.perf_counter() - started
    # Four 0.2s builds on distinct keys must overlap: one global build
    # lock would cost >= 0.8s.
    assert elapsed < 0.7, \
        f"distinct-key builds serialized ({elapsed:.2f}s for 4 x 0.2s)"
    assert len(cache) == 4


def test_eviction_churn_during_inflight_build_serves_complete_value():
    cache = HotCache(1, name="churn")
    release = threading.Event()
    builds = []

    def build_slow():
        builds.append(1)
        value = {"complete": False}
        assert release.wait(10.0), "test driver never released the build"
        value["complete"] = True
        return value

    got = [None, None]

    def getter(i):
        got[i] = cache.get_or_build(("victim",), build_slow)

    getters = [threading.Thread(target=getter, args=(i,), daemon=True)
               for i in range(2)]
    for thread in getters:
        thread.start()
    time.sleep(0.1)  # both racers inside get_or_build, build in flight
    # Churn the capacity-1 LRU while the victim key is mid-build.
    cache.get_or_build(("filler-b",), lambda: "b")
    cache.get_or_build(("filler-c",), lambda: "c")
    release.set()
    for thread in getters:
        thread.join(30.0)
    assert not any(t.is_alive() for t in getters)
    assert builds == [1], "racers on one key built more than once"
    for value in got:
        assert value is not None and value["complete"] is True, \
            "a getter observed a half-built value"
    # A post-churn re-get is either a hit (the finished build landed
    # last, evicting a filler) or a fresh *complete* rebuild -- both
    # fine; partial state is the only failure.
    again = cache.get_or_build(("victim",),
                               lambda: {"complete": True, "rebuilt": True})
    assert again["complete"] is True


def test_capacity_one_eviction_counts_and_keeps_newest():
    cache = HotCache(1, name="tiny")
    cache.get_or_build(("a",), lambda: "a")
    cache.get_or_build(("b",), lambda: "b")
    cache.get_or_build(("c",), lambda: "c")
    assert cache.keys() == [("c",)]
    assert obs.counter("service.tiny_evictions").value == 2
    # The survivor is still a hit, not a rebuild.
    assert cache.get_or_build(("c",), lambda: "rebuilt") == "c"


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match=">= 1"):
        HotCache(0)
