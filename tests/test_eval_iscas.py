"""Tests for the benchmark-suite builders."""

import pytest

from repro.eval.iscas import ISCAS_SUITE, build_circuit, suite_names


class TestSuite:
    def test_names_match_paper_order(self):
        assert suite_names() == [
            "c17", "c432", "c499", "c880a", "c1355", "c1908",
            "c2670", "c3540", "c5315", "c6288", "c7552",
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown suite circuit"):
            build_circuit("c9999")

    def test_c17_is_exact(self):
        c = build_circuit("c17")
        assert c.num_gates == 6

    @pytest.mark.parametrize("name", ["c432", "c499", "c880a", "c1355"])
    def test_small_scale_builds(self, name):
        c = build_circuit(name, scale=0.25)
        stats = c.stats()
        assert stats["gates"] > 10
        assert stats["complex_gates"] > 0  # techmap introduced complex gates

    def test_scale_shrinks(self):
        small = build_circuit("c432", scale=0.2).num_gates
        large = build_circuit("c432", scale=0.6).num_gates
        assert small < large

    def test_c6288_is_multiplier(self):
        c = build_circuit("c6288", scale=0.25)  # 4x4 multiplier
        iv = {f"A{i}": (5 >> i) & 1 for i in range(4)}
        iv.update({f"B{j}": (6 >> j) & 1 for j in range(4)})
        v = c.simulate(iv)
        product = sum(v[f"P{k}"] << k for k in range(8) if f"P{k}" in v)
        assert product == 30

    def test_full_scale_sizes_near_reference(self):
        """Stand-ins land within a factor ~2 of the published gate
        counts (spot-check on mid-size circuits)."""
        for name in ("c499", "c880a", "c1908"):
            entry = ISCAS_SUITE[name]
            gates = build_circuit(name).num_gates
            assert entry.ref_gates / 2.5 <= gates <= entry.ref_gates * 2.5, (
                name, gates
            )

    def test_deterministic(self):
        a = build_circuit("c432", scale=0.3)
        b = build_circuit("c432", scale=0.3)
        assert a.cell_histogram() == b.cell_histogram()
