"""Unit tests for cross-process telemetry shipping (repro.obs.aggregate).

The shard-level end-to-end equivalence (serial snapshot == --jobs N
snapshot) lives in test_obs_parallel_equivalence.py; this module pins
the shipper/merge building blocks: delta semantics, histogram state
round-trips, gauge labeling, fork-inheritance hygiene, and the
resource-usage gauges.
"""

from __future__ import annotations

import os

import pytest

from repro.obs.aggregate import (
    RegistryShipper,
    ShardTelemetry,
    merge_shard_telemetry,
    record_resource_usage,
)
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRegistryShipper:
    def test_counter_deltas_ship_once(self, registry):
        shipper = RegistryShipper(registry)
        registry.counter("work.units").inc(5)
        first = shipper.collect("I0")
        registry.counter("work.units").inc(3)
        second = shipper.collect("I1")

        assert ("counter", "work.units", (), 5) in first.metrics
        assert ("counter", "work.units", (), 3) in second.metrics

    def test_unchanged_counter_not_reshipped(self, registry):
        shipper = RegistryShipper(registry)
        registry.counter("work.units").inc(5)
        shipper.collect("I0")
        empty = shipper.collect("I1")
        assert empty.metrics == []

    def test_baseline_collect_absorbs_preexisting_state(self, registry):
        registry.counter("inherited.from.parent").inc(100)
        shipper = RegistryShipper(registry)
        shipper.collect("__init__")
        registry.counter("inherited.from.parent").inc(2)
        delta = shipper.collect("I0")
        assert delta.metrics == [
            ("counter", "inherited.from.parent", (), 2)
        ]

    def test_labels_ride_along(self, registry):
        shipper = RegistryShipper(registry)
        shipper.collect("__init__")
        registry.counter("work.units", circuit="c432").inc(7)
        delta = shipper.collect("I0")
        assert delta.metrics == [
            ("counter", "work.units", (("circuit", "c432"),), 7)
        ]

    def test_histogram_delta_is_bucket_exact(self, registry):
        shipper = RegistryShipper(registry)
        hist = registry.histogram("lat.s")
        hist.observe(1.5)
        shipper.collect("I0")
        hist.observe(3.0)
        hist.observe(100.0)
        delta = shipper.collect("I1")

        (kind, name, _labels, payload), = delta.metrics
        assert (kind, name) == ("histogram", "lat.s")
        assert payload["count"] == 2
        assert payload["total"] == pytest.approx(103.0)
        assert sum(payload["buckets"].values()) == 2

    def test_untouched_gauge_not_shipped_touched_gauge_is(self, registry):
        """A forked worker inherits parent gauges; only gauges this
        process wrote since the baseline may ship (version counter,
        not value comparison -- rewriting the same value still ships)."""
        registry.gauge("inherited", shard="I9").set(123)
        shipper = RegistryShipper(registry)
        shipper.collect("__init__")

        registry.gauge("touched").set(7)
        delta = shipper.collect("I0")
        names = [name for _kind, name, _l, _p in delta.metrics]
        assert names == ["touched"]

        # Same value set again: still a write, still ships.
        registry.gauge("touched").set(7)
        again = shipper.collect("I1")
        assert [n for _k, n, _l, _p in again.metrics] == ["touched"]

    def test_span_aggregate_deltas(self, registry, clean_obs):
        from repro.obs import tracing

        tracing.enable()
        with tracing.span("unit.work"):
            pass
        shipper = RegistryShipper(registry)
        first = shipper.collect("I0")
        assert first.spans["unit.work"]["count"] == 1
        with tracing.span("unit.work"):
            pass
        second = shipper.collect("I1")
        assert second.spans["unit.work"]["count"] == 1


class TestMergeShardTelemetry:
    def test_counters_add(self, registry):
        telemetry = ShardTelemetry(origin="I0", pid=1234, metrics=[
            ("counter", "work.units", (), 5),
            ("counter", "work.units", (("circuit", "x"),), 5),
        ])
        merge_shard_telemetry(telemetry, registry)
        merge_shard_telemetry(telemetry, registry)
        assert registry.counter("work.units").value == 10
        assert registry.counter("work.units", circuit="x").value == 10

    def test_gauges_keep_shard_label(self, registry):
        for origin, value in (("I0", 10), ("I1", 20)):
            merge_shard_telemetry(ShardTelemetry(
                origin=origin, pid=1,
                metrics=[("gauge", "run.peak_rss_bytes", (), value)],
            ), registry)
        snap = registry.snapshot()
        assert snap["run.peak_rss_bytes{shard=I0}"] == 10
        assert snap["run.peak_rss_bytes{shard=I1}"] == 20

    def test_inherited_shard_label_is_overridden(self, registry):
        """A respawned worker can ship a gauge that already carries a
        shard label from the fork; the merge must not crash and must
        re-label it with the shipping shard's origin."""
        telemetry = ShardTelemetry(
            origin="I5", pid=1,
            metrics=[("gauge", "run.cpu_seconds",
                      (("shard", "I0"),), 2.5)],
        )
        merge_shard_telemetry(telemetry, registry)
        assert registry.snapshot()["run.cpu_seconds{shard=I5}"] == 2.5

    def test_histogram_merge_matches_single_observer(self, registry):
        one = Histogram("lat.s", {})
        for v in (0.5, 1.5, 3.0):
            one.observe(v)
        other = Histogram("lat.s", {})
        for v in (100.0, 0.25):
            other.observe(v)

        merged = registry.histogram("lat.s")
        merged.merge_state(one.state())
        merged.merge_state(other.state())

        reference = Histogram("lat.s", {})
        for v in (0.5, 1.5, 3.0, 100.0, 0.25):
            reference.observe(v)
        assert merged.as_value() == reference.as_value()

    def test_empty_histogram_state_merges_as_noop(self, registry):
        merged = registry.histogram("lat.s")
        merged.observe(1.0)
        before = merged.as_value()
        merged.merge_state(Histogram("lat.s", {}).state())
        assert merged.as_value() == before


class TestRecordResourceUsage:
    def test_gauges_are_stamped_and_sane(self, registry):
        values = record_resource_usage(registry)
        assert values["run.peak_rss_bytes"] > 1024 * 1024  # > 1 MiB
        assert values["run.cpu_seconds"] > 0
        snap = registry.snapshot()
        assert snap["run.peak_rss_bytes"] == values["run.peak_rss_bytes"]
        assert snap["run.cpu_seconds"] == values["run.cpu_seconds"]

    def test_shippable_through_telemetry(self, registry):
        worker = MetricsRegistry()
        shipper = RegistryShipper(worker)
        shipper.collect("__init__")
        record_resource_usage(worker)
        delta = shipper.collect("I3")
        merge_shard_telemetry(delta, registry)
        snap = registry.snapshot()
        assert snap["run.peak_rss_bytes{shard=I3}"] > 0
        assert delta.pid == os.getpid()
