"""Unit tests for the default standard-cell library."""

import itertools

import pytest

from repro.gates.cell import expr_function
from repro.gates.library import Library, default_library


@pytest.fixture(scope="module")
def lib():
    return default_library()


EXPECTED = {
    "INV": 1, "BUF": 1,
    "NAND2": 2, "NAND3": 3, "NAND4": 4,
    "NOR2": 2, "NOR3": 3, "NOR4": 4,
    "AND2": 2, "AND3": 3, "AND4": 4,
    "OR2": 2, "OR3": 3, "OR4": 4,
    "XOR2": 2, "XNOR2": 2,
    "AOI21": 3, "AOI22": 4, "OAI12": 3, "OAI21": 3, "OAI22": 4,
    "AO21": 3, "AO22": 4, "OA12": 3, "OA21": 3, "OA22": 4,
    "MUX2": 3,
    "NAND2B": 2, "NOR2B": 2, "AND2B": 2, "OR2B": 2,
}


class TestContents:
    def test_all_cells_present(self, lib):
        for name, arity in EXPECTED.items():
            assert name in lib
            assert lib[name].num_inputs == arity

    def test_len_and_iteration(self, lib):
        assert len(lib) == len(EXPECTED)
        assert {c.name for c in lib} == set(EXPECTED)

    def test_missing_cell(self, lib):
        with pytest.raises(KeyError):
            lib["NAND9"]
        assert lib.get("NAND9") is None

    def test_duplicate_rejected(self, lib):
        inv = lib["INV"]
        with pytest.raises(ValueError):
            Library("dup", [inv, inv])


class TestFunctionDefinitions:
    def test_functions_match_pdn(self, lib):
        """The cell function must equal the PDN conduction condition
        (buffered cells) or its complement (inverting cells)."""
        for cell in lib:
            conducts = expr_function(cell.pdn, cell.inputs)
            expected = conducts if cell.output_inverter else conducts.compose_not()
            assert cell.func == expected, cell.name

    @pytest.mark.parametrize(
        "name,fn",
        [
            ("AO22", lambda a, b, c, d: (a and b) or (c and d)),
            ("OA12", lambda a, b, c: (a or b) and c),
            ("AOI22", lambda a, b, c, d: not ((a and b) or (c and d))),
            ("OAI12", lambda a, b, c: not ((a or b) and c)),
            ("MUX2", lambda a, b, s: b if s else a),
            ("XOR2", lambda a, b: a ^ b),
            ("XNOR2", lambda a, b: 1 - (a ^ b)),
            ("AND2B", lambda a, b: (1 - a) and b),
            ("NOR2B", lambda a, b: not ((1 - a) or b)),
        ],
    )
    def test_paper_equations(self, lib, name, fn):
        cell = lib[name]
        for bits in itertools.product((0, 1), repeat=cell.num_inputs):
            assert cell.func.eval(bits) == (1 if fn(*bits) else 0), (name, bits)

    def test_oa12_equals_oa21_function(self, lib):
        """Vendor naming: OA12/OA21 are the same (A+B)*C gate here."""
        assert lib["OA12"].func == lib["OA21"].func


class TestComplexCells:
    def test_complex_set(self, lib):
        complex_names = {c.name for c in lib.complex_cells()}
        assert "AO22" in complex_names and "OA12" in complex_names
        assert "NAND2" not in complex_names
        assert "MUX2" in complex_names

    def test_subset(self, lib):
        sub = lib.subset(["INV", "NAND2"])
        assert len(sub) == 2
        assert "AO22" not in sub

    def test_default_library_is_cached(self):
        assert default_library() is default_library()
