"""Property tests for N-worst pruning and search invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def load_charlib():
    from repro.charlib.characterize import FAST_GRID, characterize_library
    from repro.gates.library import default_library
    from repro.tech.presets import TECHNOLOGIES

    return characterize_library(
        default_library(), TECHNOLOGIES["90nm"], grid=FAST_GRID
    )


class TestNWorstPruning:
    @given(st.integers(0, 3000), st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_pruned_equals_exhaustive_topn(self, seed, n):
        """The admissible bound guarantees the pruned search returns the
        same N worst arrivals as exhaustive enumeration."""
        charlib = load_charlib()
        circuit = techmap(random_dag(f"nw{seed}", 10, 45, seed=seed))
        sta = TruePathSTA(circuit, charlib)
        exhaustive = sta.enumerate_paths()
        if not exhaustive:
            return
        expected = sorted(
            (p.worst_arrival for p in exhaustive), reverse=True
        )[:n]
        pruned = sta.n_worst_paths(n)
        assert [p.worst_arrival for p in pruned] == pytest.approx(expected)

    @given(st.integers(0, 3000))
    @settings(max_examples=8, deadline=None)
    def test_paths_unique_by_key_and_polarity(self, seed):
        """No (course, vector) combination is reported twice."""
        charlib = load_charlib()
        circuit = techmap(random_dag(f"uq{seed}", 10, 45, seed=seed))
        sta = TruePathSTA(circuit, charlib)
        paths = sta.enumerate_paths()
        keys = [p.key for p in paths]
        assert len(keys) == len(set(keys))

    @given(st.integers(0, 3000))
    @settings(max_examples=8, deadline=None)
    def test_arrivals_consistent_with_gate_delays(self, seed):
        charlib = load_charlib()
        circuit = techmap(random_dag(f"ar{seed}", 10, 45, seed=seed))
        sta = TruePathSTA(circuit, charlib)
        for path in sta.enumerate_paths(max_paths=200):
            for pol in path.polarities():
                assert sum(pol.gate_delays) == pytest.approx(pol.arrival)
                assert len(pol.gate_delays) == len(path.steps)
                assert all(d > 0 for d in pol.gate_delays)
