"""The MODEL_KINDS persistence registry (repro.charlib.model).

Both fitting families must survive a JSON round trip through the
registry dispatch, and unregistered kinds must fail loudly -- a silent
fallback here would quietly re-time every path with the wrong model.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.charlib.model import (
    MODEL_KINDS,
    DelayModel,
    model_from_dict,
    register_model_kind,
)
from repro.charlib.store import TimingArc

#: Representative (fo, t_in, temp, vdd) probe points inside the
#: characterization grid.
PROBES = [
    (1.0, 20e-12, 25.0, 1.2),
    (3.0, 80e-12, 75.0, 1.1),
    (2.0, 150e-12, 0.0, 1.3),
]


def _first_model(charlib):
    return charlib.arcs()[0].delay_model


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert "polynomial" in MODEL_KINDS
        assert "lut" in MODEL_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown model kind 'spice'"):
            model_from_dict({"kind": "spice", "netlist": "..."})

    def test_custom_kind_dispatches(self):
        class Constant:
            def __init__(self, value):
                self.value = value

            def evaluate(self, fo, t_in, temp, vdd):
                return self.value

            def evaluate_many(self, points):
                return np.full(len(points), self.value)

            def to_dict(self):
                return {"kind": "constant", "value": self.value}

        register_model_kind("constant", lambda d: Constant(d["value"]))
        try:
            model = model_from_dict({"kind": "constant", "value": 7e-12})
            assert isinstance(model, DelayModel)  # protocol check
            assert model.evaluate(*PROBES[0]) == 7e-12
        finally:
            MODEL_KINDS.pop("constant")
        with pytest.raises(ValueError, match="unknown model kind"):
            model_from_dict({"kind": "constant", "value": 1.0})


class TestRoundTrip:
    @pytest.mark.parametrize("fixture_name,kind", [
        ("charlib_poly_90", "polynomial"),
        ("charlib_lut_90", "lut"),
    ])
    def test_kind_survives_json(self, request, fixture_name, kind):
        model = _first_model(request.getfixturevalue(fixture_name))
        data = json.loads(json.dumps(model.to_dict()))
        assert data["kind"] == kind
        rebuilt = model_from_dict(data)
        assert type(rebuilt) is type(model)
        for probe in PROBES:
            assert rebuilt.evaluate(*probe) == pytest.approx(
                model.evaluate(*probe), rel=1e-12, abs=1e-18
            )

    @pytest.mark.parametrize("fixture_name", [
        "charlib_poly_90", "charlib_lut_90",
    ])
    def test_evaluate_many_matches_after_round_trip(self, request,
                                                    fixture_name):
        model = _first_model(request.getfixturevalue(fixture_name))
        rebuilt = model_from_dict(model.to_dict())
        points = np.array(PROBES, dtype=float)
        np.testing.assert_allclose(
            rebuilt.evaluate_many(points), model.evaluate_many(points),
            rtol=1e-12,
        )

    def test_timing_arc_round_trip_preserves_models(self, charlib_lut_90):
        arc = charlib_lut_90.arcs()[0]
        rebuilt = TimingArc.from_dict(json.loads(json.dumps(arc.to_dict())))
        assert rebuilt.key == arc.key
        for probe in PROBES:
            assert rebuilt.delay(*probe) == pytest.approx(arc.delay(*probe))
            assert rebuilt.slew(*probe) == pytest.approx(arc.slew(*probe))
