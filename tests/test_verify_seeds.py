"""Replay pinned fuzz counterexamples (tests/seeds/*.v).

Every circuit here once made a verification check fail; after the fix
it must pass the full battery forever.  See tests/seeds/README.md for
the pinning procedure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify import load_seed
from repro.verify.fuzz import check_circuit

SEED_DIR = Path(__file__).parent / "seeds"
SEED_FILES = sorted(SEED_DIR.glob("*.v"))


def test_seed_corpus_is_nonempty():
    assert SEED_FILES, "tests/seeds/ lost its pinned counterexamples"


@pytest.mark.parametrize(
    "seed_file", SEED_FILES, ids=[p.stem for p in SEED_FILES]
)
def test_pinned_counterexample_passes(seed_file, charlib_poly_90):
    circuit = load_seed(seed_file.read_text())
    failure = check_circuit(circuit, charlib_poly_90)
    assert failure is None, f"{seed_file.name} regressed: {failure}"
