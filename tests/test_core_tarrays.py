"""Scalar-vs-vectorized equivalence for the SoA timing core.

The vectorized sweeps in :mod:`repro.core.tarrays` promise *byte
identity* with the scalar traversals they replace, not approximate
agreement: every arrival, slew, prune bound and N-worst report must be
bitwise the same float.  These tests pin that contract on the ISCAS
suite, on seeded fuzz netlists, and on degenerate graphs, and also pin
the batch-equivalence law of the models that the whole scheme rests on
(``evaluate_many(batch)[i]`` bitwise-equal to ``evaluate(batch[i])``).
"""

import pickle

import numpy as np
import pytest

from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.sta import TruePathSTA
from repro.core.tarrays import CompiledTables, TimingArrays
from repro.eval.iscas import build_circuit
from repro.obs import metrics as obs_metrics
from repro.perf.parallel import supervised_find_paths
from repro.verify.fuzz import generate_case


def _calcs(circuit, charlib):
    """A (scalar, vectorized) calculator pair over independent engines."""
    scalar = DelayCalculator(
        EngineCircuit(circuit), charlib,
        vector_blind=charlib.metadata.get("vector_mode") == "default",
        vectorize=False,
    )
    vectorized = DelayCalculator(
        EngineCircuit(circuit), charlib,
        vector_blind=charlib.metadata.get("vector_mode") == "default",
        vectorize=True,
    )
    return scalar, vectorized


def _assert_identical(circuit, charlib):
    """Forward pass, prune bounds and slew ceiling are byte-identical."""
    scalar, vectorized = _calcs(circuit, charlib)

    ft_s = scalar.ec.tgraph.forward_arrivals(scalar)
    ft_v = vectorized.ec.tgraph.forward_arrivals(vectorized)
    assert ft_s.arrivals == ft_v.arrivals
    assert ft_s.slews == ft_v.slews

    assert scalar.bound_slews() == vectorized.bound_slews()

    pb_s = scalar.prune_bounds()
    pb_v = vectorized.prune_bounds()
    assert pb_s.required == pb_v.required
    assert pb_s.suffix == pb_v.suffix


class TestIscasEquivalence:
    @pytest.mark.parametrize("spec", ["c17", "c432@0.3", "c1908@0.25"])
    def test_polynomial(self, spec, charlib_poly_90):
        name, _, scale = spec.partition("@")
        circuit = build_circuit(name, scale=float(scale) if scale else 1.0)
        _assert_identical(circuit, charlib_poly_90)

    @pytest.mark.parametrize("spec", ["c17", "c432@0.3"])
    def test_lut(self, spec, charlib_lut_90):
        name, _, scale = spec.partition("@")
        circuit = build_circuit(name, scale=float(scale) if scale else 1.0)
        _assert_identical(circuit, charlib_lut_90)


class TestFuzzEquivalence:
    @pytest.mark.parametrize("index", range(4))
    def test_seeded_netlists(self, index, charlib_poly_90):
        _assert_identical(generate_case(2026, index), charlib_poly_90)


class TestDegenerateGraphs:
    def test_single_gate(self, library, charlib_poly_90):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("onegate", library)
        circuit.add_input("a")
        circuit.add_gate("INV", "out", {"A": "a"})
        circuit.add_output("out")
        circuit.check()
        _assert_identical(circuit, charlib_poly_90)

    def test_fanout_chain(self, library, charlib_poly_90):
        """A diamond plus a side net exercising fanout > 1 per level."""
        from repro.netlist.circuit import Circuit

        circuit = Circuit("diamond", library)
        circuit.add_input("a")
        circuit.add_gate("INV", "u", {"A": "a"})
        circuit.add_gate("INV", "v", {"A": "a"})
        circuit.add_gate("NAND2", "out", {"A": "u", "B": "v"})
        circuit.add_output("out")
        circuit.check()
        _assert_identical(circuit, charlib_poly_90)


class TestBatchEquivalenceLaw:
    """``evaluate_many(batch)[i]`` must be bitwise ``evaluate(batch[i])``.

    This is the law (documented in repro.charlib.model) that lets the
    SoA sweeps batch arbitrarily while staying byte-identical to the
    scalar traversal.  Checked against every arc of both model kinds.
    """

    def _check(self, charlib, points):
        for arc in charlib.arcs()[:40]:
            for model in (arc.delay_model, arc.slew_model):
                batch = model.evaluate_many(points)
                for i, (fo, t_in, temp, vdd) in enumerate(points):
                    one = model.evaluate(fo, t_in, temp, vdd)
                    assert batch[i] == one, (arc.key, i)

    def _points(self):
        rng = np.random.default_rng(7)
        n = 16
        return np.column_stack([
            rng.uniform(0.5, 8.0, n),
            rng.uniform(1e-12, 4e-10, n),
            np.full(n, 25.0),
            np.full(n, 1.2),
        ])

    def test_polynomial_models(self, charlib_poly_90):
        self._check(charlib_poly_90, self._points())

    def test_lut_models(self, charlib_lut_90):
        self._check(charlib_lut_90, self._points())


class TestNWorstEquivalence:
    def test_top_n_reports_identical(self, charlib_poly_90):
        circuit = build_circuit("c432", scale=0.3)
        scalar = TruePathSTA(circuit, charlib_poly_90, vectorize=False)
        vector = TruePathSTA(circuit, charlib_poly_90, vectorize=True)
        paths_s = scalar.enumerate_paths(n_worst=5)
        paths_v = vector.enumerate_paths(n_worst=5)
        assert [(p.worst_arrival, tuple(p.nets)) for p in paths_s] == \
               [(p.worst_arrival, tuple(p.nets)) for p in paths_v]


class TestShardShipping:
    def test_jobs2_matches_serial_scalar(self, charlib_poly_90, clean_obs):
        """Shipping CompiledTables to shards changes nothing observable."""
        circuit = build_circuit("c432", scale=0.3)
        serial = supervised_find_paths(
            circuit, charlib_poly_90, jobs=1, n_worst=5, vectorize=False)
        sharded = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, n_worst=5, vectorize=True)

        def key(paths):
            return sorted((p.worst_arrival, tuple(p.nets)) for p in paths)

        assert key(serial.paths) == key(sharded.paths)
        shipped = obs_metrics.REGISTRY.counter("perf.compiled_tables_shipped")
        assert shipped.value >= 1


class TestCompiledTables:
    def test_pickle_roundtrip_and_seed(self, charlib_poly_90):
        circuit = build_circuit("c432", scale=0.3)
        _, vectorized = _calcs(circuit, charlib_poly_90)
        tables = vectorized.export_tables()

        thawed = pickle.loads(pickle.dumps(tables))
        assert isinstance(thawed, CompiledTables)
        assert thawed.bound_slews == tables.bound_slews
        assert thawed.required == tables.required
        assert thawed.suffix == tables.suffix
        assert thawed.worst_arc == tables.worst_arc

        seeded = DelayCalculator(
            EngineCircuit(circuit), charlib_poly_90, compiled=thawed)
        assert seeded.bound_slews() == vectorized.bound_slews()
        pb = seeded.prune_bounds()
        assert pb.required == tables.required
        assert pb.suffix == tables.suffix

    def test_seeded_calc_skips_recompute(self, charlib_poly_90):
        circuit = build_circuit("c17")
        _, vectorized = _calcs(circuit, charlib_poly_90)
        tables = vectorized.export_tables()
        seeded = DelayCalculator(
            EngineCircuit(circuit), charlib_poly_90, compiled=tables)
        # Seeding installs the finished tables directly; no sweep runs.
        assert seeded._prune_bounds is not None
        assert seeded._worst_table_complete


class TestLazyMissingArcs:
    def test_compile_survives_missing_arcs(self, library, charlib_poly_90):
        """Compilation must not raise for arcs no reachable signal uses;
        a reachable missing arc raises the same error as the scalar
        path when the sweep activates it."""
        from repro.charlib.store import CharacterizedLibrary
        from repro.core.delaycalc import MissingArcsError
        from repro.netlist.circuit import Circuit

        circuit = Circuit("missing", library)
        circuit.add_input("a")
        circuit.add_gate("INV", "out", {"A": "a"})
        circuit.add_output("out")
        circuit.check()

        kept = [a for a in charlib_poly_90.arcs() if a.cell != "INV"]
        gutted = CharacterizedLibrary(
            tech_name=charlib_poly_90.tech_name,
            library_name=charlib_poly_90.library_name,
            model_kind=charlib_poly_90.model_kind,
            input_caps=charlib_poly_90.input_caps,
            arcs=kept,
            metadata=charlib_poly_90.metadata,
        )

        scalar, vectorized = _calcs(circuit, gutted)
        with pytest.raises(MissingArcsError):
            scalar.ec.tgraph.forward_arrivals(scalar)
        with pytest.raises(MissingArcsError):
            vectorized.ec.tgraph.forward_arrivals(vectorized)


class TestCompileShape:
    def test_arrays_cover_every_timing_arc(self, charlib_poly_90):
        circuit = build_circuit("c17")
        _, vectorized = _calcs(circuit, charlib_poly_90)
        arrays = vectorized.tarrays
        assert isinstance(arrays, TimingArrays)
        ft = arrays.forward_arrivals()
        n_nets = vectorized.ec.num_nets
        assert len(ft.arrivals) == n_nets
        assert len(ft.slews) == n_nets
        # Every primary output must be reached at some polarity.
        for net in vectorized.ec.output_ids:
            assert any(a is not None for a in ft.arrivals[net])
