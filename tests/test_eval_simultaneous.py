"""Tests for the simultaneous-transition extension experiment."""

import pytest

from repro.eval.exp_simultaneous import dual_input_delay, skew_sweep
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def sweep(tech90):
    return skew_sweep(
        tech90, skews=[0.0, 25e-12, 100e-12, 200e-12], steps_per_window=300
    )


class TestSkewSweep:
    def test_zero_skew_pushes_out(self, sweep):
        """Both series inputs switching together is slower than the
        single-input (side already settled) arc."""
        zero = sweep["rows"][0]
        assert zero["skew"] == 0.0
        assert zero["push_out"] > 0.0

    def test_push_out_decays_with_skew(self, sweep):
        push = [r["push_out"] for r in sweep["rows"]]
        assert push[0] > push[-1]
        # At large skew the later edge behaves like the single-input arc.
        assert abs(push[-1]) < 0.15

    def test_total_delay_grows_with_skew(self, sweep):
        delays = [r["delay"] for r in sweep["rows"]]
        assert delays == sorted(delays)

    def test_text_render(self, sweep):
        assert "push-out" in sweep["text"]


class TestDualInputDelay:
    def test_non_toggling_assignment_rejected(self, tech90):
        with pytest.raises(ValueError, match="does not toggle"):
            # With C=1,D=1 the AO22 output is stuck at 1.
            dual_input_delay(
                "AO22", "A", "B", {"C": 1, "D": 1}, tech90, skew=0.0,
                steps_per_window=250,
            )

    def test_or_branch_speeds_up(self, tech90):
        """Both parallel inputs of an OR2 rising together is *faster*
        than one alone (parallel PUN devices assist)."""
        from repro.gates.library import default_library
        from repro.spice.cellsim import CellSimulator, input_capacitance

        lib = default_library()
        or2 = lib["OR2"]
        sim = CellSimulator(or2, tech90, steps_per_window=300)
        single = sim.propagation(
            "A", or2.vector_by_id("A:0"), True, 50e-12,
            input_capacitance(or2, "A", tech90),
        ).delay
        both = dual_input_delay(
            "OR2", "A", "B", {}, tech90, skew=0.0, steps_per_window=300,
        )
        assert both < single
