"""Tests for chained full-path electrical simulation."""

import numpy as np
import pytest

from repro.gates.library import default_library
from repro.spice.cellsim import CellSimulator, input_capacitance
from repro.spice.pathsim import PathSimulator, PathStage, _crop_edge
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["90nm"]


class TestCropEdge:
    def test_crops_leading_flat(self, tech):
        times = np.linspace(0, 1e-9, 101)
        wave = np.where(times < 5e-10, 0.0, tech.vdd)
        cropped = _crop_edge(times, wave, tech.vdd)
        assert cropped["times"][0] == 0.0
        assert cropped["times"][-1] < 6e-10
        assert cropped["values"][-1] == pytest.approx(tech.vdd)

    def test_flat_wave_unchanged(self, tech):
        times = np.linspace(0, 1e-9, 11)
        wave = np.zeros(11)
        cropped = _crop_edge(times, wave, tech.vdd)
        assert len(cropped["times"]) == 11


class TestChains:
    def test_inverter_chain_polarity(self, lib, tech):
        inv = lib["INV"]
        vec = inv.sensitization_vectors("A")[0]
        load = input_capacitance(inv, "A", tech)
        stages = [PathStage(inv, "A", vec, load) for _ in range(4)]
        sim = PathSimulator(tech, steps_per_window=250)
        result = sim.run(stages, input_rising=True, t_in_first=40e-12)
        assert result.output_rising is True  # even number of inversions
        assert len(result.gate_delays) == 4
        assert result.path_delay == pytest.approx(sum(result.gate_delays))

    def test_chain_delay_roughly_additive(self, lib, tech):
        """A 4-stage identical chain's stages settle to similar delays
        (slews converge), so total ~ 4x the steady-state stage delay."""
        inv = lib["INV"]
        vec = inv.sensitization_vectors("A")[0]
        load = input_capacitance(inv, "A", tech)
        sim = PathSimulator(tech, steps_per_window=250)
        result = sim.run([PathStage(inv, "A", vec, load)] * 6, True, 40e-12)
        late = result.gate_delays[3:]
        assert max(late) / min(late) < 1.6

    def test_mixed_cells(self, lib, tech):
        nand = lib["NAND2"]
        ao22 = lib["AO22"]
        load = input_capacitance(nand, "A", tech)
        stages = [
            PathStage(nand, "A", nand.sensitization_vectors("A")[0],
                      input_capacitance(ao22, "A", tech)),
            PathStage(ao22, "A", ao22.sensitization_vectors("A")[1], load),
            PathStage(nand, "B", nand.sensitization_vectors("B")[0], load),
        ]
        sim = PathSimulator(tech, steps_per_window=250)
        result = sim.run(stages, input_rising=False, t_in_first=40e-12)
        # NAND inverts, AO22 doesn't, NAND inverts: falling -> rising -> rising -> falling
        assert result.output_rising is False
        assert all(d > 0 for d in result.gate_delays)

    def test_empty_path_rejected(self, tech):
        with pytest.raises(ValueError, match="empty"):
            PathSimulator(tech).run([], True, 1e-11)

    def test_cell_simulator_cache(self, lib, tech):
        sim = PathSimulator(tech)
        inv = lib["INV"]
        assert sim._sim(inv) is sim._sim(inv)

    def test_vector_dependence_visible_at_path_level(self, lib, tech):
        """Chaining preserves the case-2-slower-than-case-1 effect."""
        ao22 = lib["AO22"]
        inv = lib["INV"]
        load = input_capacitance(inv, "A", tech)
        sim = PathSimulator(tech, steps_per_window=250)
        def path_delay(case):
            stages = [
                PathStage(inv, "A", inv.sensitization_vectors("A")[0],
                          input_capacitance(ao22, "A", tech)),
                PathStage(ao22, "A", ao22.sensitization_vectors("A")[case - 1],
                          load),
                PathStage(inv, "A", inv.sensitization_vectors("A")[0], load),
            ]
            return sim.run(stages, input_rising=True, t_in_first=40e-12).path_delay

        assert path_delay(2) > path_delay(1)
