"""Timing-driven sizer: strategies, budgets, no-candidate reporting,
and incremental-vs-scratch agreement."""

import pytest

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sizing import upsize_critical_path
from repro.eval.iscas import build_circuit
from repro.gates.library import sized_library
from repro.netlist.circuit import Circuit
from repro.opt.sizer import TimingDrivenSizer, size_circuit
from repro.resilience.budgets import SearchBudgets

SIZING_CELLS = ["INV", "INV_X2", "NAND2", "NAND2_X2", "AO22", "AO22_X2"]


@pytest.fixture(scope="module")
def sized_lib():
    return sized_library()


@pytest.fixture(scope="module")
def charlib_sized(sized_lib, tech90):
    return characterize_library(
        sized_lib, tech90, grid=FAST_GRID, cells=SIZING_CELLS,
    )


def chain_circuit(sized_lib):
    c = Circuit("chain", sized_lib)
    for n in ("a", "b", "c", "d"):
        c.add_input(n)
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "n2", {"A": "n1"}, name="U2")
    c.add_gate("AO22", "n3", {"A": "n2", "B": "b", "C": "c", "D": "d"},
               name="U3")
    c.add_gate("INV", "n4", {"A": "n3"}, name="U4")
    for k in range(5):
        c.add_gate("INV", f"z{k}", {"A": "n4"}, name=f"UL{k}")
        c.add_output(f"z{k}")
    c.check()
    return c


class TestGreedy:
    def test_reduces_arrival(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        sizer = TimingDrivenSizer(
            circuit, charlib_sized, required_time=1e-12, max_moves=6,
        )
        result = sizer.run()
        assert result.strategy == "greedy"
        assert result.accepted_moves
        assert result.final_arrival < result.initial_arrival
        for move in result.accepted_moves:
            assert move.arrival_after < move.arrival_before

    def test_matches_legacy_wrapper(self, sized_lib, charlib_sized):
        """The refactored loop and the compatibility wrapper make the
        identical decisions on identical circuits."""
        circuit_a = chain_circuit(sized_lib)
        circuit_b = chain_circuit(sized_lib)
        legacy = upsize_critical_path(
            circuit_a, charlib_sized, required_time=1e-12, max_iterations=4,
        )
        direct = TimingDrivenSizer(
            circuit_b, charlib_sized, required_time=1e-12, max_moves=4,
        ).run().to_sizing_result()
        assert legacy.initial_arrival == direct.initial_arrival
        assert legacy.final_arrival == direct.final_arrival
        assert (
            [(c.gate_name, c.to_cell) for c in legacy.changes]
            == [(c.gate_name, c.to_cell) for c in direct.changes]
        )
        assert {
            name: circuit_a.instances[name].cell.name
            for name in circuit_a.instances
        } == {
            name: circuit_b.instances[name].cell.name
            for name in circuit_b.instances
        }

    def test_met_without_moves(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        result = size_circuit(circuit, charlib_sized, required_time=1.0)
        assert result.met
        assert result.stop_reason == "met"
        assert not result.moves

    def test_scratch_mode_identical(self, sized_lib, charlib_sized):
        circuit_a = chain_circuit(sized_lib)
        circuit_b = chain_circuit(sized_lib)
        inc = TimingDrivenSizer(
            circuit_a, charlib_sized, required_time=1e-12, max_moves=4,
        ).run()
        scratch = TimingDrivenSizer(
            circuit_b, charlib_sized, required_time=1e-12, max_moves=4,
            scratch=True,
        ).run()
        assert inc.describe() == scratch.describe()
        assert (
            [(m.gate_name, m.to_cell, m.accepted) for m in inc.moves]
            == [(m.gate_name, m.to_cell, m.accepted) for m in scratch.moves]
        )


class TestNoCandidate:
    def test_warns_and_counts(self, charlib_poly_90, clean_obs):
        """Satellite fix: a critical path with no drive variants must
        surface a structured warning + counter, not a silent no-op."""
        circuit = build_circuit("c17")  # default library: no _X2 cells
        result = size_circuit(
            circuit, charlib_poly_90, required_time=1e-12, max_moves=3,
        )
        assert result.stop_reason == "no_candidate"
        assert not result.moves
        assert not result.met
        snapshot = clean_obs.snapshot()
        assert snapshot["sizer.no_candidate"] == 1
        assert snapshot["sizer.moves_tried"] == 0


class TestAnneal:
    def test_deterministic_for_seed(self, sized_lib, charlib_sized):
        runs = []
        for _ in range(2):
            circuit = chain_circuit(sized_lib)
            result = TimingDrivenSizer(
                circuit, charlib_sized, required_time=1e-12,
                strategy="anneal", seed=11, max_moves=6,
            ).run()
            runs.append([
                (m.gate_name, m.from_cell, m.to_cell, m.accepted)
                for m in result.moves
            ])
        assert runs[0] == runs[1]
        assert runs[0]  # the walk actually attempted moves

    def test_never_worse_than_initial_when_accepting_improvements(
        self, sized_lib, charlib_sized,
    ):
        circuit = chain_circuit(sized_lib)
        result = TimingDrivenSizer(
            circuit, charlib_sized, required_time=1e-12,
            strategy="anneal", seed=3, max_moves=8,
        ).run()
        # Metropolis can accept uphill moves, but the final arrival is
        # what the accepted sequence produced -- consistency check.
        if result.accepted_moves:
            assert result.final_arrival == (
                result.accepted_moves[-1].arrival_after
            )
        else:
            assert result.final_arrival == result.initial_arrival

    def test_unknown_strategy_rejected(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        with pytest.raises(ValueError, match="unknown sizing strategy"):
            TimingDrivenSizer(
                circuit, charlib_sized, required_time=1e-12,
                strategy="tabu",
            )


class TestBudgets:
    def test_wall_budget_stops_loop(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        result = TimingDrivenSizer(
            circuit, charlib_sized, required_time=1e-12, max_moves=50,
            budgets=SearchBudgets(wall_seconds=0.0),
        ).run()
        assert result.stop_reason == "budget"
        assert not result.moves
