"""Unit tests for the cell-level electrical testbench."""

import pytest

from repro.gates.library import default_library
from repro.spice.cellsim import (
    CellSimulator,
    input_capacitance,
    mean_input_capacitance,
)
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="module")
def inv_sim(lib, tech):
    return CellSimulator(lib["INV"], tech, steps_per_window=250)


class TestInputCapacitance:
    def test_inv(self, lib, tech):
        cin = input_capacitance(lib["INV"], "A", tech)
        expected = (1.0 + tech.pmos_ratio) * tech.nmos.c_gate
        assert cin == pytest.approx(expected)

    def test_unknown_pin(self, lib, tech):
        with pytest.raises(ValueError):
            input_capacitance(lib["INV"], "Q", tech)

    def test_mean(self, lib, tech):
        mean = mean_input_capacitance(lib["AO22"], tech)
        per_pin = [input_capacitance(lib["AO22"], p, tech) for p in "ABCD"]
        assert mean == pytest.approx(sum(per_pin) / 4)

    def test_xor_pin_cap_includes_internal_inverter(self, lib, tech):
        xor_cin = input_capacitance(lib["XOR2"], "A", tech)
        nand_cin = input_capacitance(lib["NAND2"], "A", tech)
        assert xor_cin > nand_cin


class TestPropagation:
    def test_inverter_delay_positive(self, inv_sim, lib):
        vec = lib["INV"].sensitization_vectors("A")[0]
        r = inv_sim.propagation("A", vec, True, t_in=40e-12, c_load=4e-15)
        assert 1e-12 < r.delay < 1e-9
        assert r.out_slew > 0
        assert r.out_rising is False  # inverter flips a rising input

    def test_polarity_non_inverting(self, lib, tech):
        buf = lib["BUF"]
        sim = CellSimulator(buf, tech, steps_per_window=250)
        vec = buf.sensitization_vectors("A")[0]
        r = sim.propagation("A", vec, True, t_in=40e-12, c_load=4e-15)
        assert r.out_rising is True

    def test_delay_grows_with_load(self, inv_sim, lib):
        vec = lib["INV"].sensitization_vectors("A")[0]
        delays = [
            inv_sim.propagation("A", vec, False, t_in=40e-12, c_load=c).delay
            for c in (1e-15, 4e-15, 12e-15)
        ]
        assert delays[0] < delays[1] < delays[2]

    def test_slew_grows_with_load(self, inv_sim, lib):
        vec = lib["INV"].sensitization_vectors("A")[0]
        slews = [
            inv_sim.propagation("A", vec, False, t_in=40e-12, c_load=c).out_slew
            for c in (1e-15, 12e-15)
        ]
        assert slews[0] < slews[1]

    def test_delay_grows_with_input_slew(self, inv_sim, lib):
        vec = lib["INV"].sensitization_vectors("A")[0]
        fast = inv_sim.propagation("A", vec, True, t_in=10e-12, c_load=4e-15)
        slow = inv_sim.propagation("A", vec, True, t_in=200e-12, c_load=4e-15)
        assert slow.delay > fast.delay

    def test_hotter_is_slower(self, inv_sim, lib):
        vec = lib["INV"].sensitization_vectors("A")[0]
        cold = inv_sim.propagation("A", vec, True, 40e-12, 4e-15, temp=0.0)
        hot = inv_sim.propagation("A", vec, True, 40e-12, 4e-15, temp=125.0)
        assert hot.delay > cold.delay

    def test_lower_vdd_is_slower(self, inv_sim, lib, tech):
        vec = lib["INV"].sensitization_vectors("A")[0]
        nom = inv_sim.propagation("A", vec, True, 40e-12, 4e-15)
        low = inv_sim.propagation("A", vec, True, 40e-12, 4e-15,
                                  vdd=0.9 * tech.vdd)
        assert low.delay > nom.delay

    def test_wrong_vector_pin_rejected(self, inv_sim, lib):
        ao22 = lib["AO22"]
        vec = ao22.sensitization_vectors("B")[0]
        with pytest.raises(ValueError, match="does not sensitize"):
            inv_sim.propagation("A", vec, True, 40e-12, 1e-15)

    def test_explicit_waveform_input(self, inv_sim, lib, tech):
        import numpy as np

        vec = lib["INV"].sensitization_vectors("A")[0]
        times = np.linspace(0, 4e-10, 100)
        values = np.clip((times - 5e-11) / 5e-11, 0, 1) * tech.vdd
        r = inv_sim.propagation(
            "A", vec, True, t_in=0.0, c_load=4e-15,
            input_waveform={"times": times, "values": values},
        )
        assert r.delay > 0


class TestVectorDependence:
    """The paper's central phenomenon, as a regression test."""

    def test_ao22_case1_fastest_on_fall(self, lib, tech):
        ao22 = lib["AO22"]
        sim = CellSimulator(ao22, tech, steps_per_window=250)
        load = sim.same_gate_load()
        delays = {
            v.case: sim.propagation("A", v, False, 50e-12, load).delay
            for v in ao22.sensitization_vectors("A")
        }
        assert delays[1] < delays[3] < delays[2]  # Table 3 ordering

    def test_oa12_case3_fastest_on_rise(self, lib, tech):
        oa12 = lib["OA12"]
        sim = CellSimulator(oa12, tech, steps_per_window=250)
        load = sim.same_gate_load()
        delays = {
            v.case: sim.propagation("C", v, True, 50e-12, load).delay
            for v in oa12.sensitization_vectors("C")
        }
        assert delays[3] < delays[2] < delays[1]  # Table 4 ordering

    def test_same_gate_load(self, lib, tech):
        sim = CellSimulator(lib["AO22"], tech)
        assert sim.same_gate_load() == pytest.approx(
            input_capacitance(lib["AO22"], "A", tech)
        )
