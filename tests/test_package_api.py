"""The public package surface: lazy exports resolve and are stable."""

import pytest

import repro


class TestLazyExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None, name

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in ("TruePathSTA", "TwoStepSTA", "GraphSTA",
                     "characterize_library", "default_library"):
            assert name in listing

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_resolved_names_cached(self):
        first = repro.TruePathSTA
        assert repro.__dict__["TruePathSTA"] is first

    def test_headline_types_are_correct(self):
        from repro.core.sta import TruePathSTA as direct

        assert repro.TruePathSTA is direct
