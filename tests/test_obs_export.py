"""Trace-event export (repro.obs.export): schema, lanes, instants.

Validates the emitted JSON against the Trace Event Format contract the
viewers actually enforce: every event carries name/ph/pid/tid, complete
events ("X") carry microsecond ts+dur, instants ("i") carry a scope,
and process lanes are named via "M" metadata events.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import export, tracing


def validate_trace(document: dict) -> list:
    """Assert the trace-event JSON object form; returns the events."""
    assert set(document) >= {"traceEvents"}
    events = document["traceEvents"]
    assert isinstance(events, list)
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event), event
        assert isinstance(event["name"], str)
        assert event["ph"] in {"M", "X", "i"}, event
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        elif event["ph"] == "i":
            assert event["s"] in {"g", "p", "t"}
        elif event["ph"] == "M":
            assert event["name"] == "process_name"
            assert "name" in event["args"]
    return events


@pytest.fixture
def collector(clean_obs):
    return export.enable()


class TestCollector:
    def test_parent_lane_named_on_creation(self, collector):
        events = validate_trace(collector.as_dict())
        meta = [e for e in events if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == ["parent"]

    def test_foreign_pid_gets_worker_lane(self, collector):
        collector.add_complete("shard.search", 100.0, 2.5, pid=4242)
        events = validate_trace(collector.as_dict())
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "worker-4242" in lanes

    def test_complete_event_microseconds(self, collector):
        collector.add_complete("shard.search", start_epoch_s=10.0,
                               dur_s=0.5, pid=1)
        (event,) = [e for e in validate_trace(collector.as_dict())
                    if e["ph"] == "X"]
        assert event["ts"] == pytest.approx(10.0 * 1e6)
        assert event["dur"] == pytest.approx(0.5 * 1e6)

    def test_instant_carries_global_scope_and_args(self, collector):
        export.instant("resilience.worker_crash", origin="I3", attempt=2)
        (event,) = [e for e in validate_trace(collector.as_dict())
                    if e["ph"] == "i"]
        assert event["s"] == "g"
        assert event["args"] == {"origin": "I3", "attempt": 2}

    def test_metadata_events_sort_first(self, collector):
        collector.add_complete("a", 5.0, 1.0, pid=7)
        collector.add_complete("b", 1.0, 1.0, pid=8)
        events = validate_trace(collector.as_dict())
        phases = [e["ph"] for e in events]
        assert phases == sorted(phases, key=lambda p: 0 if p == "M" else 1)

    def test_write_drains_pending_span_events(self, collector, tmp_path):
        with tracing.span("parent.work"):
            pass
        out = tmp_path / "trace.json"
        count = collector.write(str(out))
        document = json.loads(out.read_text())
        events = validate_trace(document)
        assert count == len(events)
        assert any(e["name"] == "parent.work" and e["ph"] == "X"
                   for e in events)

    def test_disabled_module_hooks_are_noops(self, clean_obs):
        assert not export.enabled()
        export.instant("resilience.worker_crash")  # must not raise
        export.ingest_span_events([("x", 0.0, 1.0, 0)])
        assert export.collector() is None

    def test_ingest_span_events_lands_on_worker_lane(self, collector):
        collector.ingest_span_events(
            [("shard.search", 50.0, 1.0, 0)], pid=999)
        events = validate_trace(collector.as_dict())
        (event,) = [e for e in events if e["ph"] == "X"]
        assert event["pid"] == 999


class TestSupervisedTrace:
    def test_fault_injected_run_has_lanes_and_incident_instants(
            self, clean_obs, charlib_poly_90):
        """The acceptance trace: a --jobs run under fault injection
        exports worker lanes plus crash/retry instants."""
        from repro.cli import load_circuit
        from repro.perf.parallel import supervised_find_paths
        from repro.verify.faults import FaultPlan

        circuit = load_circuit("iscas:c432@0.1")
        origins = list(circuit.inputs)
        export.enable()
        plan = FaultPlan(crash_origins=(origins[1],))
        supervised_find_paths(circuit, charlib_poly_90, jobs=2,
                              shard_retries=2, fault_plan=plan)
        events = validate_trace(export.collector().as_dict())

        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "parent" in lanes
        assert sum(name.startswith("worker-") for name in lanes) >= 1

        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "resilience.worker_crash" in instants
        assert "resilience.shard_retry" in instants

        # Worker span events landed on worker lanes, not the parent's.
        worker_pids = {e["pid"] for e in events
                       if e["ph"] == "M" and
                       e["args"]["name"].startswith("worker-")}
        assert any(e["ph"] == "X" and e["pid"] in worker_pids
                   for e in events)

    def test_shard_timeout_instant(self, clean_obs, charlib_poly_90):
        from repro.cli import load_circuit
        from repro.perf.parallel import supervised_find_paths
        from repro.verify.faults import FaultPlan

        circuit = load_circuit("iscas:c432@0.1")
        origins = list(circuit.inputs)
        export.enable()
        plan = FaultPlan(hang_origins=(origins[0],))
        supervised_find_paths(circuit, charlib_poly_90, jobs=2,
                              shard_timeout=2.0, shard_retries=1,
                              fault_plan=plan)
        events = validate_trace(export.collector().as_dict())
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "resilience.shard_timeout" in instants


class TestCliTraceJson:
    def test_analyze_writes_valid_trace(self, tmp_path, capsys,
                                        charlib_poly_90, clean_obs):
        from repro.cli import main

        out = tmp_path / "trace.json"
        rc = main(["analyze", "iscas:c17", "--jobs", "2",
                   "--trace-json", str(out)])
        assert rc == 0
        events = validate_trace(json.loads(out.read_text()))
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "parent" in lanes
        assert sum(name.startswith("worker-") for name in lanes) >= 1
        assert "trace events" in capsys.readouterr().out
