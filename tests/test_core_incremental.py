"""Incremental STA: dirty-cone repair is byte-identical to from-scratch
re-analysis across edit sequences, and strictly cheaper on the metrics
that matter (cone size, levels reswept)."""

import pytest

from repro.core.incremental import IncrementalSTA
from repro.core.sta import TruePathSTA
from repro.eval.iscas import build_circuit
from repro.verify.metamorphic import _path_identity


def _scratch_state(circuit, charlib, n_worst=4):
    """Reference tuple from a fresh analysis of the circuit as-is."""
    sta = TruePathSTA(circuit, charlib)
    timing = sta.ec.tgraph.forward_arrivals(sta.calc)
    return (
        timing.arrivals,
        timing.slews,
        sta.calc.required_bounds(),
        sta.calc.remaining_bounds(),
        [_path_identity(p) for p in sta.n_worst_paths(n_worst)],
    )


def _session_state(session, n_worst=4):
    return (
        session.arrivals(),
        session.slews(),
        session.required_bounds(),
        session.suffix_bounds(),
        [_path_identity(p) for p in session.n_worst_paths(n_worst)],
    )


def _pi_fanout_gate(circuit):
    """A gate every input of which is a primary input."""
    inputs = set(circuit.inputs)
    for name in sorted(circuit.instances):
        inst = circuit.instances[name]
        if all(net in inputs for net in inst.pins.values()):
            return name
    raise AssertionError("no PI-fanout gate in circuit")


def _endpoint_gate(circuit):
    """A gate driving a primary output."""
    outputs = set(circuit.outputs)
    for name in sorted(circuit.instances):
        if circuit.instances[name].output_net in outputs:
            return name
    raise AssertionError("no endpoint gate in circuit")


class TestEditIdentity:
    """Satellite: edit-sequence edge cases, each checked bit-for-bit
    against a from-scratch rebuild of the mutated circuit."""

    def test_pi_fanout_gate_edit(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        name = _pi_fanout_gate(circuit)
        report = session.replace_cell(name, "AND2")
        assert report.to_cell == "AND2"
        assert not report.full_rebuild
        assert _session_state(session) == _scratch_state(
            circuit, charlib_poly_90
        )

    def test_endpoint_gate_edit(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        name = _endpoint_gate(circuit)
        report = session.replace_cell(name, "NOR2")
        # An endpoint gate has no transitive fanout of its own; the
        # cone is its dirty drivers plus their direct sinks, not the
        # whole circuit.
        assert report.cone_gates < len(circuit.instances)
        assert _session_state(session) == _scratch_state(
            circuit, charlib_poly_90
        )

    def test_edit_inside_cached_nworst_path(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        before = session.n_worst_paths(4)  # populates the memo
        target = before[0].steps[0].gate_name
        session.replace_cell(target, "AND2")
        # The memoized report crossed the dirty cone; the session must
        # serve the re-analyzed circuit, not the stale memo.
        assert _session_state(session) == _scratch_state(
            circuit, charlib_poly_90
        )

    def test_two_edits_with_overlapping_cones(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        first = _pi_fanout_gate(circuit)
        session.replace_cell(first, "AND2")
        # Second edit: a sink of the first gate's output -- the cones
        # share the downstream levels.
        out_net = circuit.instances[first].output_net
        second = next(
            name for name in sorted(circuit.instances)
            if name != first
            and out_net in circuit.instances[name].pins.values()
        )
        session.replace_cell(second, "OR2")
        assert _session_state(session) == _scratch_state(
            circuit, charlib_poly_90
        )

    def test_edit_then_revert_restores_original(self, charlib_poly_90):
        circuit = build_circuit("c17")
        want = _scratch_state(circuit, charlib_poly_90)
        session = IncrementalSTA(circuit, charlib_poly_90)
        name = _pi_fanout_gate(circuit)
        session.replace_cell(name, "XOR2")
        session.replace_cell(name, "NAND2")
        assert _session_state(session) == want

    def test_scalar_session_matches_vectorized(self, charlib_poly_90):
        circuit_a = build_circuit("c17")
        circuit_b = build_circuit("c17")
        vec = IncrementalSTA(circuit_a, charlib_poly_90, vectorize=True)
        scalar = IncrementalSTA(circuit_b, charlib_poly_90, vectorize=False)
        name = _endpoint_gate(circuit_a)
        vec.replace_cell(name, "AND2")
        scalar.replace_cell(name, "AND2")
        assert _session_state(vec) == _session_state(scalar)

    def test_scratch_mode_identical_and_counted(self, charlib_poly_90,
                                                clean_obs):
        circuit_a = build_circuit("c17")
        circuit_b = build_circuit("c17")
        inc = IncrementalSTA(circuit_a, charlib_poly_90)
        scratch = IncrementalSTA(circuit_b, charlib_poly_90,
                                 full_rebuild=True)
        name = _pi_fanout_gate(circuit_a)
        inc.replace_cell(name, "AND2")
        report = scratch.replace_cell(name, "AND2")
        assert report.full_rebuild
        assert _session_state(inc) == _session_state(scratch)
        snapshot = clean_obs.snapshot()
        assert snapshot["incremental.full_rebuilds"] == 1


class TestResize:
    def test_resize_uses_drive_variant(self, tech90):
        from repro.charlib.characterize import (
            FAST_GRID, characterize_library,
        )
        from repro.gates.library import sized_library

        circuit = build_circuit("c17")
        circuit.library = sized_library()
        charlib = characterize_library(
            sized_library(), tech90, grid=FAST_GRID,
            cells=["NAND2", "NAND2_X2"],
        )
        session = IncrementalSTA(circuit, charlib)
        name = _endpoint_gate(circuit)
        report = session.resize(name)
        assert report.from_cell == "NAND2"
        assert report.to_cell == "NAND2_X2"
        assert _session_state(session) == _scratch_state(circuit, charlib)

    def test_resize_without_variant_raises(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        with pytest.raises(ValueError, match="drive variant"):
            session.resize(_endpoint_gate(circuit))


class TestErrors:
    def test_unknown_instance(self, charlib_poly_90):
        session = IncrementalSTA(build_circuit("c17"), charlib_poly_90)
        with pytest.raises(KeyError, match="unknown instance"):
            session.replace_cell("nope", "AND2")

    def test_pin_incompatible_swap(self, charlib_poly_90):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        name = _pi_fanout_gate(circuit)
        with pytest.raises(ValueError, match="pin-compatible"):
            session.replace_cell(name, "INV")

    def test_worst_path_on_empty_circuit(self, charlib_poly_90):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("empty")
        circuit.add_input("a")
        circuit.add_output("a")
        session = IncrementalSTA(circuit, charlib_poly_90)
        with pytest.raises(ValueError, match="no true paths"):
            session.worst_path()


class TestMetricsAndLocality:
    def test_edit_metrics_published(self, charlib_poly_90, clean_obs):
        circuit = build_circuit("c17")
        session = IncrementalSTA(circuit, charlib_poly_90)
        session.n_worst_paths(2)
        session.replace_cell(_pi_fanout_gate(circuit), "AND2")
        session.n_worst_paths(2)
        session.n_worst_paths(2)  # second query hits the version memo
        snapshot = clean_obs.snapshot()
        assert snapshot["incremental.edits"] == 1
        assert snapshot["incremental.cone_gates"] >= 1
        assert snapshot["incremental.levels_reswept"] >= 1
        assert snapshot.get("incremental.full_rebuilds", 0) == 0
        assert snapshot["incremental.nworst_cache_hits"] == 1
        assert snapshot["incremental.graph_levels"] >= 1

    def test_endpoint_cone_is_local_on_c432(self, charlib_poly_90,
                                            clean_obs):
        circuit = build_circuit("c432", scale=0.25)
        session = IncrementalSTA(circuit, charlib_poly_90)
        session.refresh()
        report = session.replace_cell(_endpoint_gate(circuit), "NOR2")
        total_gates = len(circuit.instances)
        assert report.cone_gates < total_gates / 4
        snapshot = clean_obs.snapshot()
        assert (snapshot["incremental.levels_reswept"]
                < 2 * snapshot["incremental.graph_levels"])
        assert _session_state(session, n_worst=2) == _scratch_state(
            circuit, charlib_poly_90, n_worst=2
        )
