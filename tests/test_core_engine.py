"""Unit tests for the engine state (dual values, trail, implication)."""

import pytest

from repro.core.engine import EngineCircuit, EngineState, FALLING, RISING
from repro.core.logic_values import Value9
from repro.netlist.circuit import Circuit

V = Value9


def chain_circuit():
    """a -> INV -> n1 -> NAND2(b) -> n2, output n2."""
    c = Circuit("chain")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("INV", "n1", {"A": "a"}, name="U1")
    c.add_gate("NAND2", "n2", {"A": "n1", "B": "b"}, name="U2")
    c.add_output("n2")
    return c


@pytest.fixture
def ec():
    return EngineCircuit(chain_circuit())


@pytest.fixture
def state(ec):
    return EngineState(ec)


class TestEngineCircuit:
    def test_indexing(self, ec):
        assert ec.num_nets == 4
        assert ec.driver[ec.net_id["a"]] == -1
        assert ec.driver[ec.net_id["n1"]] >= 0
        assert ec.is_input[ec.net_id["a"]]
        assert ec.is_output[ec.net_id["n2"]]

    def test_sinks(self, ec):
        sinks = ec.sinks[ec.net_id["n1"]]
        assert len(sinks) == 1
        gate = ec.gates[sinks[0][0]]
        assert gate.cell.name == "NAND2" and sinks[0][1] == "A"

    def test_vector_options_resolved(self, ec):
        gate = ec.gates[ec.driver[ec.net_id["n2"]]]
        options = gate.options["A"]
        assert len(options) == 1
        net, bit = options[0].side_assignments[0]
        assert net == ec.net_id["b"] and bit == 1
        assert options[0].inverting is True


class TestAssignRollback:
    def test_assign_and_propagate(self, ec, state):
        a = ec.net_id["a"]
        state.assign(a, V.RISE, RISING)
        state.assign(a, V.FALL, FALLING)
        assert state.propagate()
        n1 = ec.net_id["n1"]
        assert state.values[RISING][n1] == V.FALL
        assert state.values[FALLING][n1] == V.RISE

    def test_semi_undetermined_through_nand(self, ec, state):
        a = ec.net_id["a"]
        state.assign(a, V.RISE, RISING)
        assert state.propagate()
        n2 = ec.net_id["n2"]
        # NAND2(FALL at A, unknown B): starts X, ends 1 -> X1
        assert state.values[RISING][n2] == V.X1

    def test_rollback_restores_values(self, ec, state):
        a = ec.net_id["a"]
        mark = state.checkpoint()
        state.assign(a, V.RISE, RISING)
        state.propagate()
        state.rollback(mark)
        assert state.values[RISING][a] == V.XX
        assert state.values[RISING][ec.net_id["n1"]] == V.XX

    def test_conflict_kills_component(self, ec, state):
        a = ec.net_id["a"]
        state.assign(a, V.RISE, RISING)
        state.assign(a, V.FALL, FALLING)
        state.propagate()
        # Requiring n1 steady 1 contradicts both transitions... rising
        # component first:
        n1 = ec.net_id["n1"]
        alive = state.assign(n1, V.S1, RISING)
        assert alive  # falling component still alive
        assert not state.alive[RISING]
        assert state.alive[FALLING]

    def test_kill_both_reports_dead(self, ec, state):
        a = ec.net_id["a"]
        state.assign(a, V.RISE, RISING)
        state.assign(a, V.FALL, FALLING)
        state.propagate()
        n1 = ec.net_id["n1"]
        state.assign(n1, V.S1, RISING)
        assert not state.assign(n1, V.S1, FALLING)
        assert not any(state.alive)

    def test_rollback_revives_component(self, ec, state):
        a = ec.net_id["a"]
        state.assign(a, V.RISE, RISING)
        state.propagate()
        mark = state.checkpoint()
        state.assign(ec.net_id["n1"], V.S1, RISING)
        assert not state.alive[RISING]
        state.rollback(mark)
        assert state.alive[RISING]


class TestObligations:
    def test_require_steady_records_obligation(self, ec, state):
        n1 = ec.net_id["n1"]
        assert state.require_steady(n1, 0)
        assert state.obligations == [(n1, 0)]

    def test_pi_requirement_not_an_obligation(self, ec, state):
        b = ec.net_id["b"]
        state.require_steady(b, 1)
        assert state.obligations == []

    def test_is_justified_by_implication(self, ec, state):
        a, n1 = ec.net_id["a"], ec.net_id["n1"]
        state.require_steady(n1, 0)
        assert not state.is_justified(n1, 0)
        state.require_steady(a, 1)
        state.propagate()
        assert state.is_justified(n1, 0)

    def test_first_unjustified(self, ec, state):
        n1 = ec.net_id["n1"]
        state.require_steady(n1, 0)
        assert state.first_unjustified() == (0, n1, 0)

    def test_first_unjustified_scan_start(self, ec, state):
        n1 = ec.net_id["n1"]
        state.require_steady(n1, 0)
        assert state.first_unjustified(start=1) is None

    def test_obligation_rolls_back(self, ec, state):
        mark = state.checkpoint()
        state.require_steady(ec.net_id["n1"], 0)
        state.rollback(mark)
        assert state.obligations == []


class TestInputVector:
    def test_extraction(self, ec, state):
        a, b = ec.net_id["a"], ec.net_id["b"]
        state.assign(a, V.RISE, RISING)
        state.require_steady(b, 1)
        state.propagate()
        vec = state.input_vector(RISING)
        assert vec == {"a": "T", "b": 1}

    def test_dont_care(self, ec, state):
        vec = state.input_vector(RISING)
        assert vec == {"a": None, "b": None}
