"""Tests for the suite-inventory runner."""

import pytest

from repro.eval.exp_inventory import run


class TestInventory:
    def test_subset(self):
        result = run(circuits=["c17", "c499"], scale=0.25)
        assert [r["name"] for r in result["rows"]] == ["c17", "c499"]
        assert "Benchmark suite inventory" in result["text"]

    def test_c17_exact(self):
        result = run(circuits=["c17"])
        row = result["rows"][0]
        assert row["stats"]["gates"] == 6
        assert row["complex_density"] == 0.0

    def test_complex_density_computed(self):
        result = run(circuits=["c499"], scale=0.25)
        row = result["rows"][0]
        expected = row["stats"]["complex_gates"] / row["stats"]["gates"]
        assert row["complex_density"] == pytest.approx(expected)
        assert row["complex_density"] > 0.3  # XOR-tree circuit

    def test_histogram_present(self):
        result = run(circuits=["c432"], scale=0.25)
        assert sum(result["rows"][0]["histogram"].values()) == (
            result["rows"][0]["stats"]["gates"]
        )
