"""Unit tests for the structural-Verilog reader/writer."""

import pytest

from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import equivalent, techmap
from repro.netlist.verilog import VerilogParseError, parse_verilog, write_verilog

SAMPLE = """
// a comment
module top (N1, N2, Z);
  input N1, N2;
  output Z;
  wire n10; /* block
  comment */
  NAND2 U1 (.A(N1), .B(N2), .Z(n10));
  INV U2 (.A(n10), .Z(Z));
endmodule
"""


class TestParse:
    def test_sample(self):
        c = parse_verilog(SAMPLE)
        assert c.name == "top"
        assert c.num_gates == 2
        assert c.simulate({"N1": 1, "N2": 1})["Z"] == 1
        assert c.simulate({"N1": 0, "N2": 1})["Z"] == 0

    def test_unknown_cell(self):
        with pytest.raises(VerilogParseError, match="unknown cell"):
            parse_verilog(SAMPLE.replace("NAND2", "MYSTERY3"))

    def test_no_module(self):
        with pytest.raises(VerilogParseError, match="no module"):
            parse_verilog("wire x;")

    def test_missing_endmodule(self):
        with pytest.raises(VerilogParseError, match="endmodule"):
            parse_verilog("module m (a); input a;")

    def test_positional_rejected(self):
        bad = """
        module m (a, z);
          input a; output z;
          INV U1 (a, z);
        endmodule
        """
        with pytest.raises(VerilogParseError, match="positional"):
            parse_verilog(bad)

    def test_unconnected_output(self):
        bad = """
        module m (a, z);
          input a; output z;
          INV U1 (.A(a));
        endmodule
        """
        with pytest.raises(VerilogParseError, match="output pin"):
            parse_verilog(bad)


class TestRoundTrip:
    def test_c17(self):
        c = c17()
        again = parse_verilog(write_verilog(c))
        assert equivalent(c, again)

    def test_mapped_circuit_with_complex_cells(self):
        c = techmap(random_dag("vrt", 12, 60, seed=3))
        text = write_verilog(c)
        assert "AO" in text or "OA" in text or "AOI" in text or "NAND" in text
        again = parse_verilog(text)
        assert equivalent(c, again, vectors=128)

    def test_writer_declares_all_wires(self):
        c = c17()
        text = write_verilog(c)
        assert "wire" in text
        assert text.strip().endswith("endmodule")
