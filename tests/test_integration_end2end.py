"""End-to-end integration: both tools vs the electrical golden reference.

This is the Tables 7-9 pipeline in miniature -- one circuit, a couple of
electrically simulated paths -- asserting the paper's qualitative
outcome: the vector-resolved polynomial tool tracks the golden delays
much more closely than the vector-blind LUT baseline on multi-vector
paths.
"""

import pytest

from repro.core.delaycalc import DelayCalculator
from repro.core.sta import TruePathSTA
from repro.eval.fig4 import fig4_circuit
from repro.eval.golden import estimate_path_with, simulate_timed_path
from repro.eval.exp_accuracy import measure_circuit, select_paths
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


@pytest.fixture(scope="module")
def fig4_setup(charlib_poly_90):
    circuit = fig4_circuit()
    sta = TruePathSTA(circuit, charlib_poly_90)
    paths = sta.enumerate_paths()
    return circuit, sta, paths


class TestGoldenAgreement:
    def test_model_tracks_golden_on_fig4(self, fig4_setup, tech90,
                                         charlib_poly_90):
        circuit, _sta, paths = fig4_setup
        from repro.eval.fig4 import CRITICAL_NETS

        critical = [p for p in paths if p.nets == CRITICAL_NETS]
        path = max(critical, key=lambda p: p.worst_arrival)
        polarity = max(path.polarities(), key=lambda p: p.arrival)
        golden = simulate_timed_path(
            circuit, charlib_poly_90, tech90, path, polarity,
            steps_per_window=250,
        )
        rel = abs(polarity.arrival - golden.path_delay) / golden.path_delay
        assert rel < 0.08  # paper: mean path error a few percent

    def test_golden_vector_ordering_matches_model(self, fig4_setup, tech90,
                                                  charlib_poly_90):
        """The model ranks the three AO22 vectors like the golden sim."""
        from repro.eval.fig4 import CRITICAL_NETS

        circuit, _sta, paths = fig4_setup
        critical = [p for p in paths if p.nets == CRITICAL_NETS]
        critical.sort(key=lambda p: p.worst_arrival)
        goldens = []
        for p in critical:
            pol = max(p.polarities(), key=lambda q: q.arrival)
            goldens.append(
                simulate_timed_path(circuit, charlib_poly_90, tech90, p, pol,
                                    steps_per_window=250).path_delay
            )
        assert goldens == sorted(goldens)


class TestBaselineWorseThanDeveloped:
    def test_accuracy_gap(self, tech90, charlib_poly_90, charlib_lut_90):
        circuit = fig4_circuit()
        row = measure_circuit(
            "fig4", circuit, tech90, charlib_poly_90, charlib_lut_90,
            paths_per_circuit=3, steps_per_window=250,
        )
        assert row.developed.mean_path_error < row.baseline.mean_path_error
        assert row.developed.mean_path_error < 0.10

    def test_blind_estimate_differs_on_nondefault_vector(
        self, fig4_setup, charlib_lut_90
    ):
        circuit, sta, paths = fig4_setup
        from repro.eval.fig4 import CRITICAL_NETS

        lut_calc = DelayCalculator(
            sta.ec, charlib_lut_90, vector_blind=True,
        )
        critical = [p for p in paths if p.nets == CRITICAL_NETS]
        worst = max(critical, key=lambda p: p.worst_arrival)
        easy = min(critical, key=lambda p: p.worst_arrival)
        pol = max(worst.polarities(), key=lambda q: q.arrival)
        blind_total, _ = estimate_path_with(lut_calc, sta.ec, worst, pol)
        # The blind estimate cannot distinguish worst from easy vector.
        pol_easy = max(easy.polarities(), key=lambda q: q.arrival)
        blind_easy, _ = estimate_path_with(lut_calc, sta.ec, easy, pol_easy)
        assert blind_total == pytest.approx(blind_easy, rel=0.02)
        # ...but the vector-resolved arrival does distinguish them.
        assert worst.worst_arrival > easy.worst_arrival * 1.05


class TestSelectPaths:
    def test_prefers_multi_vector(self, charlib_poly_90):
        circuit = techmap(random_dag("sel", 14, 90, seed=23))
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths(max_paths=400)
        chosen = select_paths(paths, 5)
        assert len(chosen) == 5
        if any(p.multi_vector for p in paths):
            assert any(p.multi_vector for p in chosen)

    def test_keeps_worst_path(self, charlib_poly_90):
        circuit = techmap(random_dag("sel2", 14, 90, seed=29))
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths(max_paths=400)
        chosen = select_paths(paths, 4)
        worst = max(paths, key=lambda p: p.worst_arrival)
        pool_has_worst = worst.multi_vector or all(
            not p.multi_vector for p in paths
        )
        if pool_has_worst:
            assert worst in chosen
