"""Unit tests for transistor network construction."""

import pytest

from repro.gates.library import default_library
from repro.spice.topology import GND_NODE, VDD_NODE, build_topology, _dual
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["130nm"]


class TestDual:
    def test_series_parallel_swap(self):
        assert _dual(("s", "A", "B")) == ("p", "A", "B")
        assert _dual(("p", ("s", "A", "B"), "C")) == ("s", ("p", "A", "B"), "C")

    def test_leaf(self):
        assert _dual("!A") == "!A"


class TestInverter:
    def test_device_count(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        assert len(topo.transistors) == 2
        kinds = sorted(t.kind for t in topo.transistors)
        assert kinds == ["n", "p"]

    def test_pmos_wider(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        nmos = next(t for t in topo.transistors if t.kind == "n")
        pmos = next(t for t in topo.transistors if t.kind == "p")
        assert pmos.width == pytest.approx(tech.pmos_ratio * nmos.width)

    def test_rails_connected(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        nodes = {t.a for t in topo.transistors} | {t.b for t in topo.transistors}
        assert VDD_NODE in nodes and GND_NODE in nodes and "Z" in nodes


class TestComplexGates:
    def test_nand2_stack(self, lib, tech):
        topo = build_topology(lib["NAND2"], tech)
        assert len(topo.transistors) == 4
        # The series NMOS stack creates exactly one internal node.
        internal = [n for n in topo.nodes() if n.startswith("x")]
        assert len(internal) == 1
        # Stacked devices are widened to compensate series resistance.
        nmos = [t for t in topo.transistors if t.kind == "n"]
        assert all(t.width == pytest.approx(2.0) for t in nmos)

    def test_ao22_structure(self, lib, tech):
        topo = build_topology(lib["AO22"], tech)
        # AOI22 core (8) + output inverter (2).
        assert len(topo.transistors) == 10
        assert "Y" in topo.nodes()
        inv_devices = [t for t in topo.transistors if t.gate == "Y"]
        assert len(inv_devices) == 2

    def test_oa12_pdn_series_parallel(self, lib, tech):
        topo = build_topology(lib["OA12"], tech)
        # PDN of (A+B)*C: nC in series with (nA || nB).
        nmos = [t for t in topo.transistors if t.kind == "n" and t.gate in "ABC"]
        assert len(nmos) == 3
        by_gate = {t.gate: t for t in nmos}
        # nA and nB share both terminals (parallel).
        assert {by_gate["A"].a, by_gate["A"].b} == {by_gate["B"].a, by_gate["B"].b}

    def test_xor_internal_inverters(self, lib, tech):
        topo = build_topology(lib["XOR2"], tech)
        # 8 core + 2x2 input inverters + 2 output inverter = 14
        assert len(topo.transistors) == 14
        inverted_nodes = [n for n in topo.nodes() if "_n" in n]
        assert len(inverted_nodes) == 2

    def test_no_model_cell(self, tech):
        from repro.gates.cell import Cell
        from repro.gates.logic import BoolFunc

        bare = Cell("BARE", ["A"], BoolFunc.projection(1, 0))
        with pytest.raises(ValueError, match="transistor-level"):
            build_topology(bare, tech)


class TestCapacitances:
    def test_all_internal_nodes_have_caps(self, lib, tech):
        for name in ("INV", "NAND3", "AO22", "XOR2", "MUX2"):
            topo = build_topology(lib[name], tech)
            caps = topo.capacitances(tech)
            for node in topo.nodes():
                if node in (VDD_NODE, GND_NODE):
                    assert node not in caps
                else:
                    assert caps[node] > 0, (name, node)

    def test_load_added_at_output(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        bare = topo.capacitances(tech)["Z"]
        loaded = topo.capacitances(tech, c_load=5e-15)["Z"]
        assert loaded == pytest.approx(bare + 5e-15)

    def test_gate_width_on_pin(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        assert topo.gate_width_on_pin("A") == pytest.approx(1.0 + tech.pmos_ratio)

    def test_output_inverter_width_follows_tech(self, lib):
        t65 = TECHNOLOGIES["65nm"]
        topo = build_topology(lib["AND2"], t65)
        inv_nmos = next(
            t for t in topo.transistors if t.gate == "Y" and t.kind == "n"
        )
        assert inv_nmos.width == pytest.approx(t65.out_inv_width)
