"""Input-vector extraction semantics (what the tool reports to users)."""

import pytest

from repro.core.engine import EngineCircuit, EngineState, FALLING, RISING
from repro.core.logic_values import Value9
from repro.netlist.circuit import Circuit

V = Value9


def circuit():
    c = Circuit("iv")
    for n in ("a", "b", "c"):
        c.add_input(n)
    c.add_gate("AND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("OR2", "z", {"A": "n1", "B": "c"}, name="U2")
    c.add_output("z")
    c.check()
    return c


@pytest.fixture
def state():
    ec = EngineCircuit(circuit())
    return ec, EngineState(ec)


class TestInputVectorExtraction:
    def test_transition_reported_as_t(self, state):
        ec, st = state
        st.assign(ec.net_id["a"], V.RISE, RISING)
        assert st.input_vector(RISING)["a"] == "T"

    def test_steady_values(self, state):
        ec, st = state
        st.assign(ec.net_id["b"], V.S1, RISING)
        st.assign(ec.net_id["c"], V.S0, RISING)
        vec = st.input_vector(RISING)
        assert vec["b"] == 1 and vec["c"] == 0

    def test_unconstrained_is_none(self, state):
        _ec, st = state
        assert st.input_vector(RISING) == {"a": None, "b": None, "c": None}

    def test_semi_undetermined_reported_as_dont_care(self, state):
        """X0/X1 on a PI means 'only the final value is pinned'; the
        report treats it as a don't-care rather than inventing a steady
        value that was never required."""
        ec, st = state
        st.assign(ec.net_id["b"], V.X1, RISING)
        assert st.input_vector(RISING)["b"] is None

    def test_components_independent(self, state):
        ec, st = state
        st.assign(ec.net_id["b"], V.S1, RISING)
        assert st.input_vector(FALLING)["b"] is None

    def test_fall_component_transition(self, state):
        ec, st = state
        st.assign(ec.net_id["a"], V.FALL, FALLING)
        assert st.input_vector(FALLING)["a"] == "T"
