"""Unit tests for the NLDM-style LUT model."""

import numpy as np
import pytest

from repro.charlib.lut import LutModel


def simple_lut():
    t_axis = [1e-11, 1e-10]
    fo_axis = [1.0, 2.0, 4.0]
    table = np.array([[10.0, 20.0, 40.0], [30.0, 40.0, 60.0]]) * 1e-12
    return LutModel(t_axis, fo_axis, table, ref_temp=25.0, ref_vdd=1.1)


class TestInterpolation:
    def test_exact_at_corners(self):
        lut = simple_lut()
        assert lut.evaluate(1.0, 1e-11, 25.0, 1.1) == pytest.approx(10e-12)
        assert lut.evaluate(4.0, 1e-10, 25.0, 1.1) == pytest.approx(60e-12)

    def test_bilinear_midpoint(self):
        lut = simple_lut()
        mid = lut.evaluate(1.5, 5.5e-11, 25.0, 1.1)
        assert mid == pytest.approx(25e-12)

    def test_clamped_extrapolation(self):
        lut = simple_lut()
        assert lut.evaluate(100.0, 1e-9, 25.0, 1.1) == pytest.approx(60e-12)
        assert lut.evaluate(0.01, 1e-13, 25.0, 1.1) == pytest.approx(10e-12)

    def test_derating(self):
        lut = LutModel(
            [1e-11, 1e-10], [1.0, 2.0],
            np.full((2, 2), 10e-12),
            ref_temp=25.0, ref_vdd=1.0, k_temp=0.001, k_vdd=-0.5,
        )
        hot = lut.evaluate(1.0, 1e-11, 125.0, 1.0)
        assert hot == pytest.approx(10e-12 * 1.1)
        boosted = lut.evaluate(1.0, 1e-11, 25.0, 1.1)
        assert boosted == pytest.approx(10e-12 * 0.95)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            LutModel([1e-11, 1e-10], [1.0], np.zeros((2, 2)))

    def test_non_monotonic_axis(self):
        with pytest.raises(ValueError, match="increasing"):
            LutModel([1e-10, 1e-11], [1.0, 2.0], np.zeros((2, 2)))


class TestSerialization:
    def test_roundtrip(self):
        lut = simple_lut()
        again = LutModel.from_dict(lut.to_dict())
        assert again.evaluate(1.5, 5.5e-11, 25.0, 1.1) == pytest.approx(
            lut.evaluate(1.5, 5.5e-11, 25.0, 1.1)
        )

    def test_kind(self):
        assert simple_lut().to_dict()["kind"] == "lut"


class TestFromSamples:
    def test_assembles_factorial(self):
        samples = []
        for i, t in enumerate([1e-11, 1e-10]):
            for j, f in enumerate([1.0, 2.0]):
                samples.append(
                    {"fo": f, "t_in": t, "temp": 25.0, "vdd": 1.1,
                     "delay": (i * 2 + j) * 1e-12}
                )
        lut = LutModel.from_samples(samples, [1e-11, 1e-10], [1.0, 2.0],
                                    "delay", ref_temp=25.0, ref_vdd=1.1)
        assert lut.evaluate(2.0, 1e-10, 25.0, 1.1) == pytest.approx(3e-12)

    def test_incomplete_factorial_rejected(self):
        samples = [
            {"fo": 1.0, "t_in": 1e-11, "temp": 25.0, "vdd": 1.1, "delay": 1e-12}
        ]
        with pytest.raises(ValueError, match="incomplete"):
            LutModel.from_samples(samples, [1e-11, 1e-10], [1.0, 2.0],
                                  "delay", 25.0, 1.1)

    def test_off_corner_samples_ignored(self):
        samples = []
        for t in [1e-11, 1e-10]:
            for f in [1.0, 2.0]:
                samples.append({"fo": f, "t_in": t, "temp": 25.0, "vdd": 1.1,
                                "delay": 5e-12})
        samples.append({"fo": 1.0, "t_in": 1e-11, "temp": 125.0, "vdd": 1.1,
                        "delay": 99e-12})
        lut = LutModel.from_samples(samples, [1e-11, 1e-10], [1.0, 2.0],
                                    "delay", 25.0, 1.1)
        assert lut.evaluate(1.0, 1e-11, 25.0, 1.1) == pytest.approx(5e-12)
