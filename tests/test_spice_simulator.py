"""Unit tests for the transient solver and device model."""

import numpy as np
import pytest

from repro.gates.library import default_library
from repro.spice.simulator import (
    TransientSolver,
    _nmos_iv,
    constant,
    ramp,
    sampled,
)
from repro.spice.topology import build_topology
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["90nm"]


class TestWaveforms:
    def test_ramp(self):
        w = ramp(0.0, 1.0, t_start=1e-9, span=1e-9)
        assert w(0.0) == 0.0
        assert w(1.5e-9) == pytest.approx(0.5)
        assert w(3e-9) == 1.0

    def test_falling_ramp(self):
        w = ramp(1.2, 0.0, t_start=0.0, span=2e-9)
        assert w(1e-9) == pytest.approx(0.6)

    def test_constant(self):
        assert constant(0.7)(123.0) == 0.7

    def test_sampled_interpolates_and_clamps(self):
        w = sampled([0.0, 1.0, 2.0], [0.0, 1.0, 0.5])
        assert w(0.5) == pytest.approx(0.5)
        assert w(-1.0) == 0.0
        assert w(9.0) == 0.5


class TestDeviceModel:
    BETA = 1e-4
    VT = 0.3

    def test_cutoff(self):
        i, *_ = _nmos_iv(vg=0.2, va=1.0, vb=0.0, beta=self.BETA, vt=self.VT)
        assert i == 0.0

    def test_conducts_above_vt(self):
        i, *_ = _nmos_iv(vg=1.0, va=1.0, vb=0.0, beta=self.BETA, vt=self.VT)
        assert i > 0

    def test_symmetry(self):
        """Swapping source/drain flips the current sign."""
        i_ab, *_ = _nmos_iv(1.0, 0.8, 0.2, self.BETA, self.VT)
        i_ba, *_ = _nmos_iv(1.0, 0.2, 0.8, self.BETA, self.VT)
        assert i_ab == pytest.approx(-i_ba)

    def test_zero_vds_zero_current(self):
        i, *_ = _nmos_iv(1.0, 0.5, 0.5, self.BETA, self.VT)
        assert i == pytest.approx(0.0, abs=1e-15)

    def test_linear_saturation_continuity(self):
        vov = 1.0 - self.VT
        below, *_ = _nmos_iv(1.0, vov - 1e-6, 0.0, self.BETA, self.VT)
        above, *_ = _nmos_iv(1.0, vov + 1e-6, 0.0, self.BETA, self.VT)
        assert below == pytest.approx(above, rel=1e-3)

    def test_monotone_in_vgs(self):
        currents = [
            _nmos_iv(vg, 1.0, 0.0, self.BETA, self.VT)[0]
            for vg in np.linspace(0.0, 1.2, 13)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_jacobian_matches_finite_difference(self):
        eps = 1e-7
        for vg, va, vb in [(0.9, 0.7, 0.1), (0.8, 0.2, 0.9), (1.1, 1.0, 0.0)]:
            i0, dg, da, db = _nmos_iv(vg, va, vb, self.BETA, self.VT)
            for k, (dv, grad) in enumerate(
                [((eps, 0, 0), dg), ((0, eps, 0), da), ((0, 0, eps), db)]
            ):
                i1, *_ = _nmos_iv(vg + dv[0], va + dv[1], vb + dv[2],
                                  self.BETA, self.VT)
                assert (i1 - i0) / eps == pytest.approx(grad, rel=1e-3, abs=1e-9)


class TestTransient:
    def test_inverter_switches(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        solver = TransientSolver(
            topo, tech,
            forced={"A": ramp(0.0, tech.vdd, 50e-12, 50e-12)},
            c_load=2e-15,
        )
        times, traces = solver.run(1e-9, dt=1e-12)
        out = traces["Z"]
        assert out[0] == pytest.approx(tech.vdd, abs=0.05)
        assert out[-1] == pytest.approx(0.0, abs=0.05)

    def test_inverter_rise(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        solver = TransientSolver(
            topo, tech,
            forced={"A": ramp(tech.vdd, 0.0, 50e-12, 50e-12)},
            c_load=2e-15,
        )
        _times, traces = solver.run(1e-9, dt=1e-12)
        assert traces["Z"][-1] == pytest.approx(tech.vdd, abs=0.05)

    def test_dc_matches_logic(self, lib, tech):
        """DC solution of a NAND2 agrees with the boolean function."""
        topo = build_topology(lib["NAND2"], tech)
        for a, b, expected in [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            solver = TransientSolver(
                topo, tech,
                forced={"A": constant(a * tech.vdd), "B": constant(b * tech.vdd)},
                c_load=1e-15,
            )
            v = solver.solve_dc()
            z = v[solver.unknown_nodes.index("Z")]
            assert z == pytest.approx(expected * tech.vdd, abs=0.08), (a, b)

    def test_missing_pin_rejected(self, lib, tech):
        topo = build_topology(lib["NAND2"], tech)
        with pytest.raises(ValueError, match="unforced"):
            TransientSolver(topo, tech, forced={"A": constant(0.0)})

    def test_vdd_override(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        solver = TransientSolver(
            topo, tech, forced={"A": constant(0.0)}, c_load=1e-15, vdd=0.9
        )
        v = solver.solve_dc()
        assert v[solver.unknown_nodes.index("Z")] == pytest.approx(0.9, abs=0.05)

    def test_record_subset(self, lib, tech):
        topo = build_topology(lib["INV"], tech)
        solver = TransientSolver(
            topo, tech, forced={"A": constant(0.0)}, c_load=1e-15
        )
        _t, traces = solver.run(1e-10, dt=1e-12, record=["Z"])
        assert list(traces) == ["Z"]
