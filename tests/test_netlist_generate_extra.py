"""Extra generator coverage: edge cases and mapped equivalence."""

import pytest

from repro.netlist.generate import (
    array_multiplier,
    ecc_corrector,
    parity_tree,
    random_dag,
    ripple_adder,
)
from repro.netlist.techmap import equivalent, techmap


class TestEdgeCases:
    def test_parity_tree_odd_width(self):
        c = parity_tree(5)
        value = 0b10110
        v = c.simulate({f"D{i}": (value >> i) & 1 for i in range(5)})
        assert v["PARITY"] == bin(value).count("1") % 2

    def test_parity_tree_width_two(self):
        c = parity_tree(2)
        assert c.simulate({"D0": 1, "D1": 0})["PARITY"] == 1

    def test_smallest_multiplier(self):
        c = array_multiplier(2)
        for x in range(4):
            for y in range(4):
                iv = {f"A{i}": (x >> i) & 1 for i in range(2)}
                iv.update({f"B{j}": (y >> j) & 1 for j in range(2)})
                v = c.simulate(iv)
                p = sum(v[f"P{k}"] << k for k in range(4) if f"P{k}" in v)
                assert p == x * y

    def test_one_bit_adder(self):
        c = ripple_adder(1)
        v = c.simulate({"A0": 1, "B0": 1, "CIN": 1})
        assert v["S0"] == 1 and v["C1"] == 1

    def test_random_dag_tiny(self):
        c = random_dag("tiny", 4, 8, seed=0)
        c.check()
        assert c.num_gates == 8

    def test_random_dag_single_fanin_start(self):
        """With very few nets early on, fan-in clamps to what exists."""
        c = random_dag("clamp", 4, 3, seed=1)
        for inst in c.instances.values():
            assert inst.cell.num_inputs <= 4


class TestMappedEquivalence:
    @pytest.mark.parametrize("width", [3, 4])
    def test_mapped_multiplier_multiplies(self, width):
        mapped = techmap(array_multiplier(width))
        for x, y in [(0, 0), (2**width - 1, 2**width - 1), (3, 5), (5, 2)]:
            iv = {f"A{i}": (x >> i) & 1 for i in range(width)}
            iv.update({f"B{j}": (y >> j) & 1 for j in range(width)})
            v = mapped.simulate(iv)
            p = sum(
                v[f"P{k}"] << k for k in range(2 * width) if f"P{k}" in v
            )
            assert p == x * y

    def test_mapped_adder_equivalent(self):
        plain = ripple_adder(5)
        assert equivalent(plain, techmap(plain))

    def test_mapped_ecc_equivalent(self):
        plain = ecc_corrector(8)
        assert equivalent(plain, techmap(plain), vectors=256)
