"""Anytime-search budgets: ledger mechanics and degraded-mode results.

The integration half is the degraded-mode contract (ISSUE 5,
satellite c): a budget-exhausted search returns a *partial* path list
whose every entry is a true path of the unbudgeted run, tags each
origin with a completeness status, and attaches a GBA bound that
dominates anything the search did or could have returned.
"""

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.resilience.budgets import (
    BudgetLedger,
    CompletenessReport,
    ORIGIN_STATUSES,
    OriginOutcome,
    SearchBudgets,
    WALL_POLL_INTERVAL,
)
from repro.verify.metamorphic import GBA_REL_TOL, _path_identity


def _circuit(seed=5, gates=40):
    return techmap(random_dag(f"bud{seed}", 8, gates, seed=seed,
                              n_outputs=4))


class TestBudgetLedger:
    def test_unbounded_by_default(self):
        assert not SearchBudgets().bounded()
        assert SearchBudgets(max_extensions=1).bounded()
        assert SearchBudgets(wall_seconds=1.0).bounded()
        assert SearchBudgets(max_backtracks=1).bounded()

    def test_extension_budget_trips(self):
        ledger = BudgetLedger(SearchBudgets(max_extensions=3))
        assert all(ledger.charge_extension() for _ in range(3))
        assert not ledger.charge_extension()
        assert ledger.exhausted
        assert ledger.exhausted_axis == "extensions"
        # Once tripped, every further charge is refused.
        assert not ledger.charge_extension()
        assert not ledger.charge_backtracks(1)

    def test_backtrack_budget_trips(self):
        ledger = BudgetLedger(SearchBudgets(max_backtracks=10))
        assert ledger.charge_backtracks(10)
        assert not ledger.charge_backtracks(1)
        assert ledger.exhausted_axis == "backtracks"

    def test_wall_budget_polls_periodically(self):
        ledger = BudgetLedger(SearchBudgets(wall_seconds=0.0))
        # The hot loop only pays a clock read every WALL_POLL_INTERVAL
        # extensions, so an expired wall budget trips within one window.
        trips = 0
        for _ in range(WALL_POLL_INTERVAL + 1):
            if not ledger.charge_extension():
                trips += 1
        assert trips >= 1
        assert ledger.exhausted_axis == "wall_seconds"

    def test_as_dict_round_trip(self):
        budgets = SearchBudgets(wall_seconds=1.5, max_extensions=100)
        assert SearchBudgets(**budgets.as_dict()) == budgets


class TestCompletenessReport:
    def test_outcome_round_trip(self):
        outcome = OriginOutcome("I3", "partial", paths_found=7,
                                gba_bound=1.25e-10)
        assert OriginOutcome.from_dict(outcome.as_dict()) == outcome

    def test_summary_orders_statuses(self):
        report = CompletenessReport()
        report.origins["a"] = OriginOutcome("a", "complete")
        report.origins["b"] = OriginOutcome("b", "partial")
        report.origins["c"] = OriginOutcome("c", "failed")
        assert report.summary() == "1 complete, 1 partial, 1 failed"
        assert not report.complete
        assert set(report.degraded_origins()) == {"b", "c"}

    def test_empty_report_is_complete(self):
        report = CompletenessReport()
        assert report.complete
        assert report.summary() == "no origins"


class TestDegradedSearch:
    """Budget exhaustion on a real circuit (serial iter_paths level)."""

    def test_exhaustion_yields_partial_true_paths(self, charlib_poly_90):
        circuit = _circuit()
        sta = TruePathSTA(circuit, charlib_poly_90)
        reference = sta.enumerate_paths()
        reference_ids = {_path_identity(p) for p in reference}

        budgeted = TruePathSTA(circuit, charlib_poly_90)
        with budgeted.iter_paths(
            budgets=SearchBudgets(max_extensions=len(reference) * 2)
        ) as stream:
            partial = list(stream)
        assert len(partial) < len(reference)
        # Soundness under exhaustion: everything returned is a true
        # path of the unbudgeted run, in the same deterministic order.
        partial_ids = [_path_identity(p) for p in partial]
        assert set(partial_ids) <= reference_ids
        assert budgeted.last_stats.budget_trips == 1

        completeness = budgeted.last_completeness
        assert set(completeness.origins) == set(circuit.inputs)
        assert not completeness.complete
        statuses = {o.status for o in completeness.origins.values()}
        assert statuses <= set(ORIGIN_STATUSES)
        # Serial semantics: one ledger across origins, so exactly one
        # origin is cut mid-search and everything after it is skipped.
        assert sum(1 for o in completeness.origins.values()
                   if o.status == "partial") == 1
        names = list(circuit.inputs)
        tripped = next(i for i, name in enumerate(names)
                       if completeness.origins[name].status != "complete")
        assert all(completeness.origins[n].status == "skipped"
                   for n in names[tripped + 1:])

    def test_unbudgeted_run_reports_all_complete(self, charlib_poly_90):
        circuit = _circuit(seed=6, gates=25)
        sta = TruePathSTA(circuit, charlib_poly_90)
        sta.enumerate_paths()
        assert sta.last_completeness.complete
        assert sta.last_stats.budget_trips == 0


class TestAnalyzeDegraded:
    """The supervised analyze() entry point (ISSUE 5 acceptance)."""

    def test_gba_bound_dominates_partial_arrivals(self, charlib_poly_90):
        circuit = _circuit(seed=9, gates=35)
        sta = TruePathSTA(circuit, charlib_poly_90)
        reference = sta.enumerate_paths()

        analysis = sta.analyze(budgets=SearchBudgets(max_extensions=10))
        assert analysis.degraded
        degraded = analysis.completeness.degraded_origins()
        assert degraded
        by_origin = {}
        for path in reference:
            origin = path.nets[0]
            by_origin[origin] = max(by_origin.get(origin, 0.0),
                                    path.worst_arrival)
        for name, outcome in degraded.items():
            assert outcome.gba_bound is not None
            # The bound must dominate every arrival the origin could
            # still produce (up to the documented GBA model noise) --
            # including the ones the budgeted search did return.
            if name in by_origin:
                assert (outcome.gba_bound * (1.0 + GBA_REL_TOL)
                        >= by_origin[name])
        for path in analysis.paths:
            outcome = analysis.completeness.origins[path.nets[0]]
            if outcome.status != "complete":
                assert (outcome.gba_bound * (1.0 + GBA_REL_TOL)
                        >= path.worst_arrival)
        text = analysis.describe_completeness()
        assert "origin completeness" in text
        assert "GBA bound" in text

    def test_degraded_origins_metric_published(self, charlib_poly_90,
                                               clean_obs):
        circuit = _circuit(seed=9, gates=35)
        sta = TruePathSTA(circuit, charlib_poly_90)
        analysis = sta.analyze(budgets=SearchBudgets(max_extensions=10))
        assert analysis.degraded
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("resilience.degraded_origins").value > 0

    def test_per_shard_budgets_beat_serial_ledger(self, charlib_poly_90):
        """analyze() gives each origin the full allowance (per-shard
        ledger), so it finds at least as many paths as a serial run
        whose single ledger the first origins exhaust."""
        circuit = _circuit(seed=9, gates=35)
        budgets = SearchBudgets(max_extensions=30)
        sta = TruePathSTA(circuit, charlib_poly_90)
        supervised = sta.analyze(budgets=budgets)

        serial = TruePathSTA(circuit, charlib_poly_90)
        with serial.iter_paths(budgets=budgets) as stream:
            serial_paths = list(stream)
        assert len(supervised.paths) >= len(serial_paths)
        # No origin is ever "skipped" under per-shard budgets.
        assert all(o.status in ("complete", "partial")
                   for o in supervised.completeness.origins.values())
