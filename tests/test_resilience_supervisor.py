"""Supervised parallel driver: crash retry, fallback, clean interrupt.

Fault scheduling uses :class:`repro.verify.faults.FaultPlan` -- faults
fire only inside pool workers, so every recovery path must converge on
output identical to the undisturbed serial search.
"""

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.perf import supervised_find_paths
from repro.resilience.errors import SearchInterrupted
from repro.verify.faults import FaultPlan
from repro.verify.metamorphic import _path_identity


def _circuit(seed=21, gates=35):
    return techmap(random_dag(f"sup{seed}", 6, gates, seed=seed,
                              n_outputs=3))


@pytest.fixture(scope="module")
def circuit():
    return _circuit()


def _reference(circuit, charlib):
    return TruePathSTA(circuit, charlib).enumerate_paths()


class TestSupervisedEqualsSerial:
    def test_jobs1_pipeline_matches_serial(self, circuit, charlib_poly_90):
        serial = _reference(circuit, charlib_poly_90)
        result = supervised_find_paths(circuit, charlib_poly_90, jobs=1)
        assert ([_path_identity(p) for p in result.paths]
                == [_path_identity(p) for p in serial])
        assert result.completeness.complete
        assert not result.degraded
        assert result.resumed_shards == 0

    def test_completeness_covers_every_origin(self, circuit,
                                              charlib_poly_90):
        result = supervised_find_paths(circuit, charlib_poly_90, jobs=1)
        assert list(result.completeness.origins) == list(circuit.inputs)
        assert all(o.status == "complete"
                   for o in result.completeness.origins.values())


class TestCrashRecovery:
    def test_worker_crash_retried_to_identical_output(
            self, circuit, charlib_poly_90, clean_obs):
        serial = _reference(circuit, charlib_poly_90)
        victim = circuit.inputs[0]
        result = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2,
            fault_plan=FaultPlan(crash_origins=(victim,)),
        )
        assert ([_path_identity(p) for p in result.paths]
                == [_path_identity(p) for p in serial])
        assert result.completeness.complete
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("resilience.worker_crashes").value >= 1
        assert registry.counter("resilience.shard_retries").value >= 1

    def test_persistent_crash_exhausts_into_serial_fallback(
            self, circuit, charlib_poly_90, clean_obs):
        serial = _reference(circuit, charlib_poly_90)
        victim = circuit.inputs[1]
        # Crash on every pooled attempt: 1 initial + 2 retries, then
        # the in-process fallback (which the fault cannot reach).
        result = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, retry_backoff=0.0,
            fault_plan=FaultPlan(crash_origins=(victim,),
                                 crash_attempts=(0, 1, 2)),
        )
        assert ([_path_identity(p) for p in result.paths]
                == [_path_identity(p) for p in serial])
        assert result.completeness.complete
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("resilience.serial_fallbacks").value == 1

    def test_fallback_disabled_degrades_instead_of_dying(
            self, circuit, charlib_poly_90, clean_obs):
        serial = _reference(circuit, charlib_poly_90)
        victim = circuit.inputs[1]
        result = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, retry_backoff=0.0,
            serial_fallback=False,
            fault_plan=FaultPlan(crash_origins=(victim,),
                                 crash_attempts=(0, 1, 2)),
        )
        outcome = result.completeness.origins[victim]
        assert outcome.status == "failed"
        assert outcome.paths_found == 0
        # Every other origin's paths survive, in declaration order.
        expected = [_path_identity(p) for p in serial
                    if p.nets[0] != victim]
        assert [_path_identity(p) for p in result.paths] == expected
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("resilience.degraded_origins").value == 1


class TestTimeoutRecovery:
    def test_hung_shard_is_killed_and_retried(self, circuit,
                                              charlib_poly_90, clean_obs):
        serial = _reference(circuit, charlib_poly_90)
        victim = circuit.inputs[2]
        result = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, shard_timeout=3.0,
            retry_backoff=0.0,
            fault_plan=FaultPlan(hang_origins=(victim,),
                                 hang_seconds=60.0),
        )
        assert ([_path_identity(p) for p in result.paths]
                == [_path_identity(p) for p in serial])
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("resilience.shard_timeouts").value >= 1


class TestInterrupt:
    def test_interrupt_preserves_completed_shards(
            self, circuit, charlib_poly_90, clean_obs, tmp_path):
        checkpoint = tmp_path / "interrupted.json"
        with pytest.raises(SearchInterrupted) as excinfo:
            supervised_find_paths(
                circuit, charlib_poly_90, jobs=2,
                checkpoint=str(checkpoint),
                fault_plan=FaultPlan(interrupt_after=2),
            )
        partial = excinfo.value.partial
        assert partial.interrupted
        complete = [o for o in partial.completeness.origins.values()
                    if o.status == "complete"]
        assert len(complete) >= 2
        # Satellite (a): merged metrics of completed shards are
        # published before the unwind, and the checkpoint is flushed.
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("pathfinder.extensions_tried").value > 0
        assert checkpoint.exists()
        assert str(checkpoint) in str(excinfo.value)

    def test_exit_code_is_sigint_convention(self):
        assert SearchInterrupted("x").exit_code == 130


class TestMergedMetrics:
    def test_pooled_run_publishes_exact_serial_totals(
            self, circuit, charlib_poly_90, clean_obs):
        """Crash recovery must not double-count: only each shard's
        final successful attempt reaches the merged stats."""
        sta = TruePathSTA(circuit, charlib_poly_90)
        sta.enumerate_paths()
        want = sta.last_stats.as_dict()
        result = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, retry_backoff=0.0,
            fault_plan=FaultPlan(crash_origins=(circuit.inputs[0],)),
        )
        got = result.stats.as_dict()
        for key in ("paths_found", "extensions_tried", "conflicts",
                    "justification_backtracks", "justify_skipped"):
            assert got[key] == want[key], key
