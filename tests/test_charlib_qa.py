"""Tests for the characterization QA checker."""

import pytest

from repro.charlib.qa import QaReport, validate_library
from repro.tech.presets import TECHNOLOGIES


class TestValidateLibrary:
    def test_characterized_library_passes(self, charlib_small_90, tech90):
        report = validate_library(
            charlib_small_90, tech90, arcs_to_check=4, probes_per_arc=2,
            steps_per_window=250, tolerance=0.10, seed=3,
        )
        assert report.checks
        assert report.mean_delay_error < 0.06
        assert report.passed, report.describe()

    def test_deterministic_seed(self, charlib_small_90, tech90):
        a = validate_library(charlib_small_90, tech90, arcs_to_check=2,
                             probes_per_arc=1, steps_per_window=250, seed=7)
        b = validate_library(charlib_small_90, tech90, arcs_to_check=2,
                             probes_per_arc=1, steps_per_window=250, seed=7)
        assert [c.arc_key for c in a.checks] == [c.arc_key for c in b.checks]
        assert a.checks[0].fo == pytest.approx(b.checks[0].fo)

    def test_describe_format(self, charlib_small_90, tech90):
        report = validate_library(charlib_small_90, tech90, arcs_to_check=2,
                                  probes_per_arc=1, steps_per_window=250)
        text = report.describe()
        assert "library QA" in text
        assert "PASS" in text or "FAIL" in text

    def test_corrupted_model_fails(self, charlib_small_90, tech90):
        """Scale one arc's coefficients: QA must flag it."""
        import copy

        broken = copy.deepcopy(charlib_small_90)
        arc = next(a for a in broken.arcs() if a.vector_id != "*")
        arc.delay_model.coeffs *= 2.0
        report = validate_library(
            broken, tech90, arcs_to_check=len(broken.arcs()),
            probes_per_arc=1, steps_per_window=250, seed=1,
        )
        assert not report.passed
        assert any(arc.key == c.arc_key for c in report.failures())

    def test_empty_report_properties(self):
        report = QaReport()
        assert report.worst_delay_error == 0.0
        assert report.mean_delay_error == 0.0
        assert report.passed
