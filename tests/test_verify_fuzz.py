"""The fuzz driver and counterexample shrinker (repro.verify.fuzz/shrink)."""

from __future__ import annotations

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.verilog import write_verilog
from repro.verify import load_seed, run_fuzz, shrink_circuit
from repro.verify.fuzz import check_circuit, generate_case


class TestGenerateCase:
    def test_deterministic(self):
        a = generate_case(seed=0, index=3)
        b = generate_case(seed=0, index=3)
        assert write_verilog(a) == write_verilog(b)

    def test_index_varies_circuit(self):
        a = generate_case(seed=0, index=0)
        b = generate_case(seed=0, index=1)
        assert write_verilog(a) != write_verilog(b)

    def test_sizes_in_range(self):
        for index in range(5):
            circuit = generate_case(seed=1, index=index)
            assert 4 <= len(circuit.inputs) <= 8


class TestCheckCircuit:
    def test_passes_on_generated(self, charlib_poly_90):
        assert check_circuit(generate_case(0, 0), charlib_poly_90) is None

    def test_crash_is_a_finding(self, charlib_small_90, library):
        """A circuit whose cells the library never characterized must
        surface as a crash finding, not kill the fuzz batch."""
        c = Circuit("uncharacterized", library)
        c.add_input("a")
        c.add_input("b")
        c.add_input("c")
        c.add_gate("NAND3", "out", {"A": "a", "B": "b", "C": "c"})
        c.add_output("out")
        c.check()
        failure = check_circuit(c, charlib_small_90)
        assert failure is not None
        assert failure[0] == "crash"


class TestRunFuzz:
    def test_small_batch_passes(self, charlib_poly_90, clean_obs):
        report = run_fuzz(charlib_poly_90, n=3, seed=0)
        assert report.ok, [f.describe() for f in report.failures]
        assert report.checked == 3
        assert "OK" in report.summary()
        # oracle + metamorphic each count every circuit.
        assert clean_obs.snapshot()["verify.circuits_checked"] == 6

    def test_failures_are_shrunk(self, charlib_poly_90, monkeypatch):
        """Force a failure on gate-rich circuits and verify the report
        carries a shrunk counterexample plus serialized Verilog."""
        from repro.verify import fuzz as fuzz_mod

        def fake_check(circuit, charlib, **kwargs):
            if circuit.num_gates >= 3:
                return ("oracle", "forced for the shrinker test")
            return None

        monkeypatch.setattr(fuzz_mod, "check_circuit", fake_check)
        report = run_fuzz(charlib_poly_90, n=1, seed=0)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == "oracle"
        assert failure.shrunk_gates < failure.original_gates
        assert failure.shrink_steps > 0
        assert "module" in failure.verilog


class TestShrink:
    def _wide(self, library):
        """Two independent cones; only the 'keep' cone matters."""
        c = Circuit("wide", library)
        for name in ("a", "b", "p", "q"):
            c.add_input(name)
        c.add_gate("NAND2", "k1", {"A": "a", "B": "b"}, name="KEEP")
        c.add_gate("INV", "keep_out", {"A": "k1"})
        c.add_gate("AND2", "j1", {"A": "p", "B": "q"})
        c.add_gate("OR2", "junk_out", {"A": "j1", "B": "p"})
        c.add_output("keep_out")
        c.add_output("junk_out")
        c.check()
        return c

    def test_drops_unrelated_cone(self, library, clean_obs):
        circuit = self._wide(library)
        shrunk, steps = shrink_circuit(
            circuit, lambda c: "KEEP" in c.instances
        )
        assert "KEEP" in shrunk.instances
        assert shrunk.num_gates < circuit.num_gates
        assert steps > 0
        assert "p" not in shrunk.inputs  # junk cone inputs removed
        shrunk.check()
        assert clean_obs.snapshot()["verify.shrink_steps"] == steps

    def test_result_is_minimal_for_predicate(self, library):
        circuit = self._wide(library)
        shrunk, _steps = shrink_circuit(
            circuit, lambda c: "KEEP" in c.instances
        )
        # Nothing left to remove: KEEP alone (bypassing it would lose
        # the predicate; its output feeds the only remaining PO chain).
        assert shrunk.num_gates <= 2

    def test_requires_failing_input(self, library):
        circuit = self._wide(library)
        with pytest.raises(ValueError, match="does not fail"):
            shrink_circuit(circuit, lambda c: False)

    def test_shrunk_verilog_round_trips(self, library):
        circuit = self._wide(library)
        shrunk, _ = shrink_circuit(circuit, lambda c: "KEEP" in c.instances)
        replayed = load_seed(write_verilog(shrunk))
        assert set(replayed.instances) == set(shrunk.instances)
        assert replayed.inputs == shrunk.inputs
        assert replayed.outputs == shrunk.outputs
