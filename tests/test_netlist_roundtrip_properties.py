"""Property-based round trips through both netlist formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.generate import random_dag
from repro.netlist.techmap import equivalent, techmap, unmap
from repro.netlist.verilog import parse_verilog, write_verilog


class TestRoundTrips:
    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_bench_roundtrip(self, seed):
        circuit = random_dag(f"rtb{seed}", 8, 35, seed=seed)
        again = parse_bench(write_bench(circuit), name="rt")
        assert equivalent(circuit, again, vectors=128, seed=seed)

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_verilog_roundtrip_mapped(self, seed):
        """Mapped circuits (complex + B-variant cells) survive Verilog."""
        circuit = techmap(random_dag(f"rtv{seed}", 8, 35, seed=seed))
        again = parse_verilog(write_verilog(circuit))
        assert equivalent(circuit, again, vectors=128, seed=seed)

    @given(st.integers(0, 5000))
    @settings(max_examples=6, deadline=None)
    def test_map_export_unmap_chain(self, seed):
        """techmap -> verilog -> parse -> unmap -> bench -> parse keeps
        the function through every representation."""
        original = random_dag(f"chain{seed}", 8, 30, seed=seed)
        mapped = techmap(original)
        via_verilog = parse_verilog(write_verilog(mapped))
        primitives = unmap(via_verilog)
        via_bench = parse_bench(write_bench(primitives), name="chain")
        assert equivalent(original, via_bench, vectors=128, seed=seed)

    @given(st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_interfaces_preserved(self, seed):
        circuit = random_dag(f"io{seed}", 8, 30, seed=seed)
        again = parse_bench(write_bench(circuit), name="io")
        assert sorted(again.inputs) == sorted(circuit.inputs)
        assert sorted(again.outputs) == sorted(circuit.outputs)
