"""Tests for SDF export."""

import re

import pytest

from repro.eval.fig4 import fig4_circuit
from repro.netlist.generate import c17
from repro.netlist.sdf import write_sdf


@pytest.fixture(scope="module")
def sdf_c17(charlib_poly_90):
    return write_sdf(c17(), charlib_poly_90)


class TestStructure:
    def test_header(self, sdf_c17):
        assert sdf_c17.startswith("(DELAYFILE")
        assert '(SDFVERSION "3.0")' in sdf_c17
        assert '(DESIGN "c17")' in sdf_c17
        assert "(TIMESCALE 1ns)" in sdf_c17

    def test_one_cell_per_instance(self, sdf_c17):
        cell_lines = [l for l in sdf_c17.splitlines() if l.strip() == "(CELL"]
        assert len(cell_lines) == 6
        assert sdf_c17.count('(CELLTYPE "NAND2")') == 6

    def test_iopaths_per_pin(self, sdf_c17):
        # NAND2 has two input pins -> two IOPATH entries per instance.
        assert sdf_c17.count("(IOPATH A Z") == 6
        assert sdf_c17.count("(IOPATH B Z") == 6

    def test_balanced_parens(self, sdf_c17):
        assert sdf_c17.count("(") == sdf_c17.count(")")

    def test_triples_positive_and_ns_scaled(self, sdf_c17):
        triples = re.findall(r"\(([\d.]+):([\d.]+):([\d.]+)\)", sdf_c17)
        assert triples
        for lo, typ, hi in triples:
            assert 0 < float(lo) <= float(typ) <= float(hi) < 1.0  # ns range


class TestVectorHandling:
    def test_collapsed_minmax_spread(self, charlib_poly_90):
        """AO22 arcs collapse into triples whose min < max (the vector
        dependence shows up as the min:typ:max spread)."""
        text = write_sdf(fig4_circuit(), charlib_poly_90)
        cell_block = text[text.index('(CELLTYPE "AO22")'):]
        match = re.search(
            r"\(IOPATH A Z \(([\d.]+):([\d.]+):([\d.]+)\)", cell_block
        )
        assert match
        lo, _typ, hi = (float(g) for g in match.groups())
        assert hi > lo * 1.02

    def test_conditioned_mode(self, charlib_poly_90):
        text = write_sdf(fig4_circuit(), charlib_poly_90,
                         emit_conditions=True)
        assert "(COND" in text
        assert "B == 1'b1" in text
        assert text.count("(") == text.count(")")

    def test_design_name_override(self, charlib_poly_90):
        text = write_sdf(c17(), charlib_poly_90, design_name="TOP")
        assert '(DESIGN "TOP")' in text
