"""Additional Liberty reader robustness coverage."""

import pytest

from repro.charlib.liberty import LibertyParseError, read_liberty

MINIMAL = """
library (tiny) {
  time_unit : "1ps";
  cell (INV) {
    pin (A) {
      direction : input;
      capacitance : 2.0;
    }
    pin (Z) {
      direction : output;
      timing () {
        related_pin : "A";
        timing_sense : negative_unate;
        cell_fall (delay_template) {
          index_1 ("10.0, 100.0");
          index_2 ("2.0, 8.0");
          values ( "5.0, 9.0" "8.0, 14.0" );
        }
        fall_transition (delay_template) {
          index_1 ("10.0, 100.0");
          index_2 ("2.0, 8.0");
          values ( "12.0, 30.0" "20.0, 45.0" );
        }
      }
    }
  }
}
"""


class TestReaderRobustness:
    def test_minimal_hand_written(self):
        lib = read_liberty(MINIMAL)
        assert lib.cells() == ["INV"]
        arc = lib.blind_arc("INV", "A", True, False)
        # fo axis: cap / mean_cap (2 fF) -> [1, 4]; exact at corners.
        assert arc.delay(1.0, 10e-12, 25.0, 1.0) == pytest.approx(5e-12)
        assert arc.delay(4.0, 100e-12, 25.0, 1.0) == pytest.approx(14e-12)

    def test_comments_stripped(self):
        text = MINIMAL.replace(
            "library (tiny) {", "/* header\ncomment */ library (tiny) {"
        )
        assert read_liberty(text).cells() == ["INV"]

    def test_timing_without_tables_skipped(self):
        text = MINIMAL.replace('related_pin : "A";', 'related_pin : "A";') \
            .replace("cell_fall", "cell_fall_bogus_ignored", 0)
        # Drop the tables entirely: arc is skipped, caps still parse.
        import re

        stripped = re.sub(r"cell_fall.*?\)\s*;?\s*\}", "", text,
                          flags=re.DOTALL, count=1)
        lib = read_liberty(MINIMAL)
        assert lib.pin_cap("INV", "A") == pytest.approx(2e-15)

    def test_unbalanced_detected(self):
        with pytest.raises(LibertyParseError):
            read_liberty(MINIMAL.rstrip().rstrip("}"))
