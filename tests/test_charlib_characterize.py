"""Tests for the characterization pipeline (uses the session cache)."""

import pytest

from repro.charlib.characterize import (
    CharacterizationGrid,
    FAST_GRID,
    _default_vectors,
    characterize_cell,
    characterize_library,
)
from repro.charlib.store import BLIND
from repro.gates.library import default_library
from repro.spice.cellsim import CellSimulator
from repro.tech.presets import TECHNOLOGIES

TINY_GRID = CharacterizationGrid(fo=(1.0, 4.0), t_in=(2e-11, 1.2e-10))


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["90nm"]


class TestGrid:
    def test_points_factorial(self, tech):
        grid = CharacterizationGrid(fo=(1, 2), t_in=(1e-11,), temp=(0, 25),
                                    vdd_scale=(1.0,))
        assert grid.size == 4
        points = grid.points(tech)
        assert len(points) == 4
        assert all(p[3] == pytest.approx(tech.vdd) for p in points)

    def test_describe(self):
        assert "fo" in FAST_GRID.describe()


class TestDefaultVectors:
    def test_one_per_polarity(self, lib):
        ao22 = lib["AO22"]
        chosen = _default_vectors(ao22, "A")
        assert len(chosen) == 1  # AO22 pin A is unate
        assert chosen[0].case == 1

    def test_xor_keeps_both_polarities(self, lib):
        xor = lib["XOR2"]
        chosen = _default_vectors(xor, "A")
        assert len(chosen) == 2
        assert {v.inverting for v in chosen} == {False, True}


class TestCharacterizeCell:
    def test_inv_sweep(self, lib, tech):
        sweeps = characterize_cell(lib["INV"], tech, TINY_GRID,
                                   steps_per_window=250)
        assert set(sweeps) == {("A", "A:", True), ("A", "A:", False)}
        samples = sweeps[("A", "A:", True)]
        assert len(samples) == TINY_GRID.size
        assert all(s["delay"] > 0 and s["out_slew"] > 0 for s in samples)
        assert all(s["out_rising"] is False for s in samples)

    def test_unknown_vector_mode(self, lib, tech):
        with pytest.raises(ValueError, match="vector_mode"):
            characterize_cell(lib["INV"], tech, TINY_GRID, vector_mode="some")


class TestCharacterizeLibrary:
    def test_polynomial_subset(self, lib, tech, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path))
        cl = characterize_library(
            lib, tech, grid=TINY_GRID, cells=["INV"], steps_per_window=250
        )
        assert cl.model_kind == "polynomial"
        assert len(cl.arcs()) == 2
        assert cl.pin_cap("INV", "A") > 0
        # model error vs direct simulation under 6% at a grid point
        sim = CellSimulator(lib["INV"], tech, steps_per_window=250)
        vec = lib["INV"].sensitization_vectors("A")[0]
        golden = sim.propagation("A", vec, True, 2e-11,
                                 1.0 * cl.mean_cap("INV")).delay
        arc = cl.arc("INV", "A", "A:", True, False)
        model = arc.delay(1.0, 2e-11, 25.0, tech.vdd)
        assert abs(model - golden) / golden < 0.06

    def test_cache_hit(self, lib, tech, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path))
        first = characterize_library(lib, tech, grid=TINY_GRID, cells=["INV"],
                                     steps_per_window=250)
        import time

        started = time.perf_counter()
        second = characterize_library(lib, tech, grid=TINY_GRID, cells=["INV"],
                                      steps_per_window=250)
        assert time.perf_counter() - started < 1.0  # disk load, not sims
        assert second.metadata["cache_key"] == first.metadata["cache_key"]

    def test_lut_blind_library(self, lib, tech, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path))
        cl = characterize_library(
            lib, tech, grid=TINY_GRID, model="lut", vector_mode="default",
            cells=["NAND2"], steps_per_window=250,
        )
        assert cl.model_kind == "lut"
        arc = cl.blind_arc("NAND2", "A", True, False)
        assert arc.vector_id == BLIND
        assert arc.delay(1.0, 2e-11, 25.0, tech.vdd) > 0

    def test_orders_metadata(self, lib, tech, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path))
        cl = characterize_library(lib, tech, grid=TINY_GRID, cells=["INV"],
                                  steps_per_window=250)
        assert cl.metadata["orders"]  # adaptive fit recorded its orders
