"""Hot-path layer: pruning soundness, arc cache, justify-skip, streams.

The headline regression here is N-worst admissibility: the pruning
bound used to cap arc delay at a fixed input slew, but propagated slews
on degraded chains exceed any fixed choice, so pruned searches silently
dropped true top-N paths.  The seeds below are circuits where the old
bound provably returned wrong answers.
"""

from __future__ import annotations

import io

import pytest

from repro import obs
from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DelayCalculator, MissingArcsError
from repro.core.engine import EngineCircuit
from repro.core.pathfinder import PathFinder
from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def _degraded_circuit(seed: int):
    """Multi-level circuit whose propagated slews degrade well past the
    primary-input slew -- the regime that broke the old fixed-slew
    pruning bound."""
    return techmap(random_dag(f"dg{seed}", 6, 90, seed=seed, n_outputs=4))


def _key(path):
    return (
        path.nets,
        tuple((s.gate_name, s.pin, s.vector_id) for s in path.steps),
    )


def _run(finder, inputs=None):
    with finder.find_paths(inputs=inputs) as stream:
        return list(stream)


class TestNWorstAdmissibility:
    """Pruned and unpruned searches must agree on the top-N arrivals.

    Seeds are known past failures of the fixed-slew bound (e.g. seed 48
    reported 441.9 ps for the worst path when the true worst is
    449.6 ps); a sharp 5 ps input slew maximizes slew degradation along
    the chains.
    """

    @pytest.mark.parametrize("seed", [2, 4, 26, 44, 45, 48])
    def test_pruned_matches_exhaustive(self, charlib_poly_90, seed):
        sta = TruePathSTA(
            _degraded_circuit(seed), charlib_poly_90, input_slew=5e-12
        )
        exhaustive = sorted(
            (p.worst_arrival for p in sta.enumerate_paths()), reverse=True
        )
        for n in (1, 3):
            pruned = sta.n_worst_paths(n)
            assert [p.worst_arrival for p in pruned] == pytest.approx(
                exhaustive[:n]
            ), f"n_worst={n} diverged from the exhaustive top-{n}"

    def test_bound_dominates_observed_delays(self, charlib_poly_90):
        """worst_gate_delay must dominate every per-gate delay actually
        realized on enumerated paths (the definition of admissible)."""
        circuit = _degraded_circuit(48)
        sta = TruePathSTA(circuit, charlib_poly_90, input_slew=5e-12)
        bound = {
            g.inst.name: sta.calc.worst_gate_delay(g) for g in sta.ec.gates
        }
        for path in sta.enumerate_paths():
            for pol in path.polarities():
                for step, delay in zip(path.steps, pol.gate_delays):
                    assert delay <= bound[step.gate_name] * (1 + 1e-9)

    def test_bound_slews_cover_propagated_slews(self, charlib_poly_90):
        """The fixed-point slew ceiling must bracket every slew the
        search actually propagates."""
        sta = TruePathSTA(
            _degraded_circuit(48), charlib_poly_90, input_slew=5e-12
        )
        ceiling = max(sta.calc.bound_slews())
        worst_seen = max(
            slew
            for path in sta.enumerate_paths()
            for pol in path.polarities()
            for slew in pol.gate_slews
        )
        assert worst_seen <= ceiling


class TestArcCache:
    def test_cache_transparent_and_counted(self, charlib_poly_90):
        circuit = _degraded_circuit(3)
        ec = EngineCircuit(circuit)
        cached = DelayCalculator(ec, charlib_poly_90)
        plain = DelayCalculator(ec, charlib_poly_90, arc_cache=False)

        with_cache = _run(PathFinder(ec, cached))
        without = _run(PathFinder(ec, plain))
        assert [_key(p) for p in with_cache] == [_key(p) for p in without]
        assert [p.worst_arrival for p in with_cache] == pytest.approx(
            [p.worst_arrival for p in without]
        )

        assert cached.arc_cache_hits + cached.arc_cache_misses == (
            cached.arc_evaluations
        )
        assert cached.arc_cache_hits > 0
        # A miss happens at most once per distinct arc in the library.
        assert cached.arc_cache_misses <= len(charlib_poly_90.arcs())
        assert plain.arc_cache_hits == 0 and plain.arc_cache_misses == 0
        assert plain.arc_evaluations == cached.arc_evaluations


class TestJustifySkip:
    @pytest.mark.parametrize("complete", [False, True])
    def test_skip_preserves_path_set(self, charlib_poly_90, complete):
        circuit = _degraded_circuit(11)
        ec = EngineCircuit(circuit)
        calc = DelayCalculator(ec, charlib_poly_90)
        fast = PathFinder(ec, calc, complete=complete)
        slow = PathFinder(ec, calc, complete=complete, justify_skip=False)
        fast_paths = _run(fast)
        slow_paths = _run(slow)
        assert [_key(p) for p in fast_paths] == [_key(p) for p in slow_paths]
        assert [p.worst_arrival for p in fast_paths] == pytest.approx(
            [p.worst_arrival for p in slow_paths]
        )
        assert fast.stats.justify_skipped > 0
        assert slow.stats.justify_skipped == 0
        # Skipping elides whole justification solves, so the skipping
        # search can only do less justification work.
        assert (
            fast.stats.justification_cubes <= slow.stats.justification_cubes
        )


def _drop_arcs(charlib, predicate) -> CharacterizedLibrary:
    """Copy of ``charlib`` without the arcs matching ``predicate``."""
    return CharacterizedLibrary(
        tech_name=charlib.tech_name,
        library_name=charlib.library_name,
        model_kind=charlib.model_kind,
        input_caps=charlib.input_caps,
        arcs=[a for a in charlib.arcs() if not predicate(a)],
        metadata=charlib.metadata,
    )


def _nand_chain() -> Circuit:
    c = Circuit("nchain")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("INV", "n1", {"A": "a"}, name="U1")
    c.add_gate("NAND2", "n2", {"A": "n1", "B": "b"}, name="U2")
    c.add_output("n2")
    return c


class TestMissingArcs:
    def test_all_arcs_missing_raises(self, charlib_small_90, clean_obs):
        gutted = _drop_arcs(charlib_small_90, lambda a: a.cell == "NAND2")
        ec = EngineCircuit(_nand_chain())
        calc = DelayCalculator(ec, gutted)
        nand = next(g for g in ec.gates if g.cell.name == "NAND2")
        buf = io.StringIO()
        obs.configure_logging(level="error", stream=buf)
        with pytest.raises(MissingArcsError, match="U2"):
            calc.worst_gate_delay(nand)
        assert "gate.no_arcs" in buf.getvalue()

    def test_partial_missing_warns_once_and_bounds(
        self, charlib_small_90, clean_obs
    ):
        dropped = _drop_arcs(
            charlib_small_90,
            lambda a: a.cell == "NAND2" and a.pin == "A" and a.input_rising,
        )
        ec = EngineCircuit(_nand_chain())
        calc = DelayCalculator(ec, dropped)
        nand = next(g for g in ec.gates if g.cell.name == "NAND2")
        buf = io.StringIO()
        obs.configure_logging(level="warning", stream=buf)
        assert calc.worst_gate_delay(nand) > 0.0
        assert buf.getvalue().count("gate.arcs_missing") == 1
        # Cached second call must not re-warn.
        calc._gate_arcs_cache.clear()
        calc.gate_arcs(nand)
        assert buf.getvalue().count("gate.arcs_missing") == 1

    def test_vector_blind_misses_stay_quiet(self, charlib_lut_90, clean_obs):
        """The blind library misses vector-resolved arcs by construction
        -- that is debug noise, not a warning."""
        ec = EngineCircuit(_nand_chain())
        calc = DelayCalculator(ec, charlib_lut_90, vector_blind=True)
        nand = next(g for g in ec.gates if g.cell.name == "NAND2")
        buf = io.StringIO()
        obs.configure_logging(level="warning", stream=buf)
        assert calc.worst_gate_delay(nand) > 0.0
        assert "gate.arcs_missing" not in buf.getvalue()


class TestEarlyAbandonPublication:
    def test_close_publishes_immediately(self, charlib_poly_90, clean_obs):
        sta = TruePathSTA(_degraded_circuit(3), charlib_poly_90)
        stream = sta.iter_paths()
        first = next(stream)
        assert first is not None
        # Abandon the search after one path; the snapshot taken right
        # after close() must already carry this run's effort.
        stream.close()
        snap = obs.metrics.snapshot()
        assert snap["pathfinder.paths_found"] == 1
        assert snap["pathfinder.extensions_tried"] > 0
        assert snap["delaycalc.arc_evaluations"] > 0
        assert snap["pathfinder.cpu_seconds"] > 0
        # close() is idempotent: a second close publishes nothing more.
        stream.close()
        assert obs.metrics.snapshot()["pathfinder.paths_found"] == 1

    def test_context_manager_publishes_on_break(
        self, charlib_poly_90, clean_obs
    ):
        sta = TruePathSTA(_degraded_circuit(3), charlib_poly_90)
        with sta.iter_paths() as stream:
            for _ in stream:
                break
        assert obs.metrics.snapshot()["pathfinder.paths_found"] == 1

    def test_exhaustion_publishes_once(self, charlib_poly_90, clean_obs):
        sta = TruePathSTA(_degraded_circuit(3), charlib_poly_90)
        stream = sta.iter_paths()
        paths = list(stream)
        snap = obs.metrics.snapshot()
        assert snap["pathfinder.paths_found"] == len(paths)
        stream.close()
        assert (
            obs.metrics.snapshot()["pathfinder.paths_found"] == len(paths)
        )
