"""Unit tests for the characterized-library container."""

import numpy as np
import pytest

from repro.charlib.lut import LutModel
from repro.charlib.polynomial import PolynomialModel
from repro.charlib.store import (
    BLIND,
    CharacterizedLibrary,
    TimingArc,
    arc_key,
    cache_dir,
)


def poly(const):
    pts = np.array([[1.0, 1e-11, 25.0, 1.1], [2.0, 1e-10, 25.0, 1.1],
                    [4.0, 5e-11, 25.0, 1.1]])
    return PolynomialModel.fit(pts, np.full(3, const), orders=(0, 0, 0, 0))


def make_arc(cell="INV", pin="A", vector_id="A:", rising=True, out_rising=False,
             delay=10e-12):
    return TimingArc(
        cell=cell, pin=pin, vector_id=vector_id, input_rising=rising,
        output_rising=out_rising, delay_model=poly(delay), slew_model=poly(2e-11),
    )


def make_lib(arcs=None):
    return CharacterizedLibrary(
        tech_name="cmos90",
        library_name="test",
        model_kind="polynomial",
        input_caps={"INV": {"A": 2e-15}, "NAND2": {"A": 2e-15, "B": 2.4e-15}},
        arcs=arcs if arcs is not None else [make_arc()],
    )


class TestArcs:
    def test_key_format(self):
        assert arc_key("INV", "A", "A:", True, False) == "INV|A|A:|r|F"

    def test_lookup(self):
        lib = make_lib()
        arc = lib.arc("INV", "A", "A:", True, False)
        assert arc.delay(1.0, 1e-11, 25.0, 1.1) == pytest.approx(10e-12)
        assert arc.slew(1.0, 1e-11, 25.0, 1.1) == pytest.approx(2e-11)

    def test_missing_arc(self):
        with pytest.raises(KeyError, match="no timing arc"):
            make_lib().arc("INV", "A", "A:", False, True)

    def test_blind_lookup(self):
        blind = make_arc(vector_id=BLIND)
        lib = make_lib([blind])
        assert lib.blind_arc("INV", "A", True, False) is not None

    def test_arcs_listing(self):
        assert len(make_lib().arcs()) == 1


class TestCaps:
    def test_pin_cap(self):
        lib = make_lib()
        assert lib.pin_cap("NAND2", "B") == pytest.approx(2.4e-15)

    def test_mean_cap(self):
        lib = make_lib()
        assert lib.mean_cap("NAND2") == pytest.approx(2.2e-15)

    def test_cells(self):
        assert make_lib().cells() == ["INV", "NAND2"]


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        lib = make_lib()
        path = tmp_path / "lib.json"
        lib.save(path)
        again = CharacterizedLibrary.load(path)
        assert again.tech_name == "cmos90"
        arc = again.arc("INV", "A", "A:", True, False)
        assert arc.delay(1.0, 1e-11, 25.0, 1.1) == pytest.approx(10e-12)

    def test_mixed_model_kinds(self, tmp_path):
        lut = LutModel([1e-11, 1e-10], [1.0, 2.0], np.full((2, 2), 7e-12))
        arc = TimingArc("INV", "A", BLIND, True, False, lut, lut)
        lib = make_lib([arc])
        lib.save(tmp_path / "l.json")
        again = CharacterizedLibrary.load(tmp_path / "l.json")
        assert again.blind_arc("INV", "A", True, False).delay(
            1.0, 1e-11, 25.0, 1.1
        ) == pytest.approx(7e-12)

    def test_cache_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path / "cc"))
        assert cache_dir() == tmp_path / "cc"
        assert (tmp_path / "cc").is_dir()
