"""Additional timing-simulator coverage: hazards, horizons, modes."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.timingsim import TimingSimulator


def hazard_circuit():
    """z = AND(a, NOT a): static-0 with a potential dynamic hazard."""
    c = Circuit("hz")
    c.add_input("a")
    c.add_gate("INV", "an", {"A": "a"}, name="U1")
    c.add_gate("AND2", "z", {"A": "a", "B": "an"}, name="U2")
    c.add_output("z")
    c.check()
    return c


def mux_circuit():
    c = Circuit("mx")
    for n in ("a", "b", "s"):
        c.add_input(n)
    c.add_gate("MUX2", "z", {"A": "a", "B": "b", "S": "s"}, name="U1")
    c.add_output("z")
    c.check()
    return c


class TestHazards:
    def test_static_hazard_glitch_visible(self, charlib_poly_90):
        """a rising through AND(a, !a): the direct input arrives before
        the inverted one, so the output may glitch 0->1->0 but must end
        at 0 (the event simulator models the transport of both)."""
        sim = TimingSimulator(hazard_circuit(), charlib_poly_90)
        result = sim.simulate_transition({"a": 0}, "a", rising=True)
        assert result.final_values["z"] == 0
        events = result.events.get("z", [])
        # Either clean (inertial filtering removed the pulse) or a
        # glitch pair; never a dangling 1.
        if events:
            assert events[-1].value == 0

    def test_blocked_select_path(self, charlib_poly_90):
        """Toggling the deselected MUX data input produces no output
        event."""
        sim = TimingSimulator(mux_circuit(), charlib_poly_90)
        result = sim.simulate_transition(
            {"a": 0, "b": 0, "s": 1}, "a", rising=True
        )
        assert not result.toggled("z")

    def test_selected_path_propagates(self, charlib_poly_90):
        sim = TimingSimulator(mux_circuit(), charlib_poly_90)
        result = sim.simulate_transition(
            {"a": 0, "b": 0, "s": 0}, "a", rising=True
        )
        assert result.toggled("z")
        assert result.final_values["z"] == 1


class TestModes:
    def test_horizon_cuts_off(self, charlib_poly_90):
        from repro.netlist.generate import c17

        sim = TimingSimulator(c17(), charlib_poly_90)
        result = sim.simulate_transition(
            {"G1": 0, "G2": 1, "G3": 1, "G6": 1, "G7": 0}, "G1", True,
            horizon=1e-15,
        )
        # Nothing later than the horizon is applied.
        assert all(
            e.time <= 1e-15 for evs in result.events.values() for e in evs
        )

    def test_vector_blind_simulation(self, charlib_lut_90):
        """The simulator also runs on the baseline's LUT library."""
        from repro.netlist.generate import c17

        sim = TimingSimulator(c17(), charlib_lut_90, vector_blind=True)
        result = sim.simulate_transition(
            {"G1": 0, "G2": 1, "G3": 1, "G6": 1, "G7": 0}, "G1", True
        )
        assert result.toggled("G22") or result.toggled("G23")

    def test_select_toggle_uses_mux_vectors(self, charlib_poly_90):
        """Toggling S with A != B propagates (a multi-vector pin)."""
        sim = TimingSimulator(mux_circuit(), charlib_poly_90)
        result = sim.simulate_transition(
            {"a": 0, "b": 1, "s": 0}, "s", rising=True
        )
        assert result.toggled("z")
        assert result.final_values["z"] == 1
