"""Tests for two-pattern delay-test export."""

import pytest

from repro.core.patterns import (
    CoverageSummary,
    coverage,
    generate_tests,
    write_pattern_file,
)
from repro.core.sta import TruePathSTA
from repro.eval.fig4 import fig4_circuit
from repro.netlist.generate import c17


@pytest.fixture(scope="module")
def c17_tests(charlib_poly_90):
    circuit = c17()
    paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
    return circuit, paths, generate_tests(circuit, paths)


class TestGeneration:
    def test_one_test_per_polarity(self, c17_tests):
        _c, paths, tests = c17_tests
        assert len(tests) == sum(len(p.polarities()) for p in paths)

    def test_patterns_differ_only_at_origin(self, c17_tests):
        _c, _p, tests = c17_tests
        for t in tests:
            diff = [k for k in t.v1 if t.v1[k] != t.v2[k]]
            assert diff == [t.origin]

    def test_expected_values_toggle(self, c17_tests):
        _c, _p, tests = c17_tests
        for t in tests:
            assert t.expected[0] != t.expected[1]

    def test_all_inputs_concrete(self, c17_tests):
        circuit, _p, tests = c17_tests
        for t in tests:
            assert set(t.v1) == set(circuit.inputs)
            assert all(v in (0, 1) for v in t.v1.values())

    def test_validation_catches_bad_vector(self, charlib_poly_90):
        circuit = c17()
        paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        broken = paths[0]
        # Corrupt the input vector: force a controlling side value.
        polarity = broken.polarities()[0]
        for key in polarity.input_vector:
            if polarity.input_vector[key] in (0, 1):
                polarity.input_vector[key] = 1 - polarity.input_vector[key]
        with pytest.raises(ValueError, match="non-toggling"):
            generate_tests(circuit, [broken])


class TestPatternFile:
    def test_format(self, c17_tests):
        circuit, _p, tests = c17_tests
        text = write_pattern_file(tests[:3], circuit.inputs)
        assert "test 0" in text and "test 2" in text
        assert text.count("v1 ") == 3
        v1_line = next(l for l in text.splitlines() if l.strip().startswith("v1"))
        assert len(v1_line.split()[1]) == len(circuit.inputs)


class TestCoverage:
    def test_full_coverage_on_c17(self, c17_tests):
        _c, paths, tests = c17_tests
        summary = coverage(paths, tests)
        assert summary.course_coverage == pytest.approx(1.0)
        assert summary.multi_vector_courses == 0
        assert summary.worst_vector_coverage == 1.0

    def test_fig4_worst_vector_coverage(self, charlib_poly_90):
        circuit = fig4_circuit()
        paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        tests = generate_tests(circuit, paths)
        summary = coverage(paths, tests)
        assert summary.multi_vector_courses >= 1
        assert summary.worst_vector_coverage == 1.0

    def test_partial_coverage_detected(self, charlib_poly_90):
        """Dropping the worst-vector variants lowers the coverage the
        way a vector-blind flow would."""
        circuit = fig4_circuit()
        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths()
        worst = sta.worst_vector_per_course(paths)
        easy_only = [p for p in paths if worst[p.course] is not p
                     or not p.multi_vector]
        easy_only = [p for p in easy_only if not p.multi_vector or
                     p is not worst[p.course]]
        tests = generate_tests(circuit, easy_only)
        summary = coverage(paths, tests)
        assert summary.worst_vector_coverage < 1.0
