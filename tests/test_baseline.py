"""Tests for the two-step commercial-tool baseline."""

import pytest

from repro.baseline.sensitize import PathStatus, TwoStepSensitizer
from repro.baseline.structural import StructuralEnumerator
from repro.baseline.sta2step import TwoStepSTA
from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.sta import TruePathSTA
from repro.eval.fig4 import CRITICAL_NETS, fig4_circuit
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap


@pytest.fixture(scope="module")
def c17_setup(charlib_lut_90):
    circuit = c17()
    ec = EngineCircuit(circuit)
    calc = DelayCalculator(ec, charlib_lut_90, vector_blind=True)
    return circuit, ec, calc


class TestStructuralEnumeration:
    def test_c17_count(self, c17_setup):
        _c, ec, calc = c17_setup
        enum = StructuralEnumerator(ec, calc)
        assert enum.count_paths() == 11
        assert len(list(enum.iter_paths())) == 11

    def test_longest_first_order(self, c17_setup):
        _c, ec, calc = c17_setup
        enum = StructuralEnumerator(ec, calc)
        delays = [p.structural_delay for p in enum.iter_paths()]
        assert delays == sorted(delays, reverse=True)

    def test_limit(self, c17_setup):
        _c, ec, calc = c17_setup
        enum = StructuralEnumerator(ec, calc)
        assert len(list(enum.iter_paths(limit=4))) == 4

    def test_count_matches_enumeration_random(self, charlib_lut_90):
        circuit = techmap(random_dag("se", 10, 50, seed=13))
        ec = EngineCircuit(circuit)
        calc = DelayCalculator(ec, charlib_lut_90, vector_blind=True)
        enum = StructuralEnumerator(ec, calc)
        assert enum.count_paths() == len(list(enum.iter_paths()))


class TestSensitizer:
    def test_c17_all_true(self, c17_setup):
        _c, ec, calc = c17_setup
        enum = StructuralEnumerator(ec, calc)
        sens = TwoStepSensitizer(ec, calc)
        outcomes = [sens.check(p) for p in enum.iter_paths()]
        assert all(o.status is PathStatus.TRUE for o in outcomes)
        for o in outcomes:
            assert o.path is not None
            assert o.path.rise and o.path.fall

    def test_false_path_detected(self, charlib_lut_90):
        """z = AND(a, NOT a): both structural paths are false."""
        from repro.netlist.circuit import Circuit

        c = Circuit("fp")
        c.add_input("a")
        c.add_gate("INV", "an", {"A": "a"}, name="U1")
        c.add_gate("AND2", "z", {"A": "a", "B": "an"}, name="U2")
        c.add_output("z")
        ec = EngineCircuit(c)
        calc = DelayCalculator(ec, charlib_lut_90, vector_blind=True)
        enum = StructuralEnumerator(ec, calc)
        sens = TwoStepSensitizer(ec, calc)
        outcomes = [sens.check(p) for p in enum.iter_paths()]
        assert outcomes
        assert all(o.status is PathStatus.FALSE for o in outcomes)

    def test_gate_delays_recorded(self, c17_setup):
        _c, ec, calc = c17_setup
        enum = StructuralEnumerator(ec, calc)
        sens = TwoStepSensitizer(ec, calc)
        outcome = sens.check(next(iter(enum.iter_paths())))
        path = outcome.path
        for pol in path.polarities():
            assert len(pol.gate_delays) == len(path.steps)
            assert sum(pol.gate_delays) == pytest.approx(pol.arrival)


class TestTwoStepSTA:
    def test_report_counters(self, charlib_lut_90):
        circuit = techmap(random_dag("ts", 14, 80, seed=31))
        tool = TwoStepSTA(circuit, charlib_lut_90, backtrack_limit=1000)
        report = tool.run(max_structural_paths=300)
        assert report.paths_explored == min(300, tool.structural_path_count())
        assert (
            report.true_paths + report.declared_false + report.backtrack_limited
            == report.paths_explored
        )
        assert 0.0 <= report.no_vector_ratio <= 1.0
        row = report.as_row()
        assert row["paths"] == report.paths_explored

    def test_baseline_true_courses_subset_of_developed(
        self, charlib_poly_90, charlib_lut_90
    ):
        """Everything the baseline proves true, the developed tool finds."""
        circuit = techmap(random_dag("sub", 12, 70, seed=17))
        dev = TruePathSTA(circuit, charlib_poly_90)
        dev_courses = {p.course for p in dev.enumerate_paths()}
        base = TwoStepSTA(circuit, charlib_lut_90)
        report = base.run(max_structural_paths=1000)
        base_courses = {p.course for p in base.true_paths(report)}
        assert base_courses <= dev_courses

    def test_fig4_baseline_misses_worst_vector(
        self, charlib_poly_90, charlib_lut_90
    ):
        """The paper's headline: the commercial tool reports only the
        easiest vector for the Fig. 4 critical path."""
        circuit = fig4_circuit()
        base = TwoStepSTA(circuit, charlib_lut_90)
        report = base.run(max_structural_paths=100)
        critical = [
            p for p in base.true_paths(report) if p.nets == CRITICAL_NETS
        ]
        assert len(critical) == 1  # one vector only
        # Its AO22 traversal uses case 1 (the easy N6=0 assignment).
        ao22_step = critical[0].steps[2]
        assert ao22_step.cell_name == "AO22"
        assert ao22_step.case == 1
        # The developed tool additionally finds case 2 (the true worst).
        dev = TruePathSTA(circuit, charlib_poly_90)
        cases = {
            p.steps[2].case
            for p in dev.enumerate_paths()
            if p.nets == CRITICAL_NETS
        }
        assert cases == {1, 2, 3}

    def test_worst_true_path(self, charlib_lut_90):
        tool = TwoStepSTA(c17(), charlib_lut_90)
        report = tool.run()
        worst = tool.worst_true_path(report)
        assert worst is not None
        assert worst.worst_arrival == max(
            p.worst_arrival for p in tool.true_paths(report)
        )

    def test_abort_with_tiny_budget(self, charlib_lut_90):
        circuit = techmap(random_dag("ab", 16, 120, seed=41))
        tool = TwoStepSTA(circuit, charlib_lut_90, backtrack_limit=0)
        report = tool.run(max_structural_paths=200)
        # With a zero budget anything needing a single backtrack aborts.
        assert report.backtrack_limited >= 0
        assert report.paths_explored > 0
