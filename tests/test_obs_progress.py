"""Heartbeat publishing and the progress board (repro.obs.progress)."""

from __future__ import annotations

import io

import pytest

from repro.obs.progress import (
    HeartbeatPublisher,
    ProgressBoard,
    ProgressRenderer,
)


class _Finder:
    """Minimal stand-in for PathFinder's progress-facing surface."""

    def __init__(self, extensions=0, paths=0, best=None):
        class _Stats:
            pass

        self.stats = _Stats()
        self.stats.extensions_tried = extensions
        self.stats.paths_found = paths
        self.best_arrival = best


class TestHeartbeatPublisher:
    def test_beats_carry_origin_phase_and_counts(self):
        beats = []
        publisher = HeartbeatPublisher(beats.append, "I4", min_interval=0.0)
        publisher.started()
        publisher(_Finder(extensions=100, paths=3, best=1.5e-10))
        publisher.done(extensions=250, paths=7, best=2.0e-10)

        assert [b["phase"] for b in beats] == ["started", "running", "done"]
        assert all(b["origin"] == "I4" for b in beats)
        assert beats[1]["extensions"] == 100
        done = beats[2]
        assert done["extensions"] == 250
        assert done["paths"] == 7
        assert done["best"] == pytest.approx(2.0e-10)
        assert done["ts"] > 0

    def test_periodic_beats_are_wall_throttled(self):
        beats = []
        publisher = HeartbeatPublisher(beats.append, "I0",
                                       min_interval=3600.0)
        publisher(_Finder(extensions=1))
        publisher(_Finder(extensions=2))
        publisher(_Finder(extensions=3))
        assert len(beats) == 1  # first passes, the rest are throttled

    def test_queue_sink_uses_put(self):
        class Queue:
            def __init__(self):
                self.items = []

            def put(self, item):
                self.items.append(item)

        queue = Queue()
        HeartbeatPublisher(queue, "I0").started()
        assert queue.items[0]["phase"] == "started"

    def test_broken_sink_never_raises(self):
        def sink(_beat):
            raise ConnectionResetError("manager torn down")

        publisher = HeartbeatPublisher(sink, "I0", min_interval=0.0)
        publisher.started()
        publisher(_Finder(extensions=1))
        publisher.done()


class TestProgressBoard:
    def test_done_beat_count_is_authoritative(self):
        """A stale throttled running count must not shadow the final
        extension count in the done beat (regression: the board showed
        ext 87 for a 224-extension run)."""
        board = ProgressBoard(total_origins=2)
        publisher = HeartbeatPublisher(board.update, "I0", min_interval=0.0)
        publisher.started()
        publisher(_Finder(extensions=10))  # stale periodic beat
        publisher.done(extensions=100, paths=4)
        assert board.extensions == 100
        assert board.done == 1
        assert board.paths == 4

    def test_running_counts_sum_live(self):
        board = ProgressBoard(total_origins=3)
        for origin, ext in (("I0", 10), ("I1", 20)):
            HeartbeatPublisher(board.update, origin,
                               min_interval=0.0)(_Finder(extensions=ext))
        assert board.extensions == 30
        assert board.done == 0

    def test_mark_done_banks_given_counts(self):
        board = ProgressBoard(total_origins=1)
        board.mark_done("I0", paths=5, extensions=42)
        assert board.done == 1
        assert board.paths == 5
        assert board.extensions == 42

    def test_mark_done_falls_back_to_live_count(self):
        board = ProgressBoard(total_origins=1)
        board.update({"origin": "I0", "phase": "running", "extensions": 9})
        board.mark_done("I0")
        assert board.extensions == 9

    def test_best_folds_maximum(self):
        board = ProgressBoard(total_origins=2)
        board.update({"origin": "I0", "phase": "running", "best": 1e-10})
        board.update({"origin": "I1", "phase": "running", "best": 3e-10})
        board.update({"origin": "I0", "phase": "running", "best": 2e-10})
        assert board.best == 3e-10

    def test_beat_age_tracks_last_beat(self):
        board = ProgressBoard(total_origins=1)
        assert board.beat_age("I0") is None
        board.update({"origin": "I0", "phase": "started"})
        age = board.beat_age("I0")
        assert age is not None and age >= 0.0

    def test_eta_only_between_first_and_last_origin(self):
        board = ProgressBoard(total_origins=2)
        assert board.eta_seconds() is None
        board.mark_done("I0")
        assert board.eta_seconds() is not None
        board.mark_done("I1")
        assert board.eta_seconds() is None

    def test_summary_mentions_origins_and_extensions(self):
        board = ProgressBoard(total_origins=4)
        board.mark_done("I0", paths=2, extensions=1_500_000)
        line = board.summary()
        assert "origins 1/4" in line
        assert "ext 1.5M" in line
        assert "paths 2" in line


class TestProgressRenderer:
    def test_non_tty_appends_lines(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=0.0)
        board = ProgressBoard(total_origins=1, renderer=renderer)
        board.mark_done("I0")
        board.close()
        text = stream.getvalue()
        assert "\r" not in text
        assert text.endswith("origins 1/1\n")

    def test_renderer_throttles(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, min_interval=3600.0)
        board = ProgressBoard(total_origins=3, renderer=renderer)
        board.mark_done("I0")
        board.mark_done("I1")
        # Only the close() line is guaranteed beyond the first render.
        board.close()
        assert stream.getvalue().count("\n") <= 2
