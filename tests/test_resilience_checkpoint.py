"""Checkpoint/resume: atomic snapshots, fingerprint guard, exact resume.

The pinned acceptance case for ISSUE 5: a run killed mid-flight and
resumed from its checkpoint reproduces the exact path set of an
uninterrupted run.
"""

import json

import pytest

from repro.core.report import path_from_dict, path_to_dict
from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.perf import supervised_find_paths
from repro.resilience.checkpoint import (
    CheckpointWriter,
    config_fingerprint,
    load_checkpoint,
)
from repro.resilience.errors import CheckpointError, SearchInterrupted
from repro.verify.faults import FaultPlan
from repro.verify.metamorphic import _path_identity


def _circuit(seed=31, gates=30):
    return techmap(random_dag(f"ckpt{seed}", 6, gates, seed=seed,
                              n_outputs=3))


class TestFingerprint:
    def test_stable_for_identical_config(self):
        kwargs = {"max_paths": 10, "budgets": None}
        assert (config_fingerprint("c", ["a", "b"], kwargs)
                == config_fingerprint("c", ["a", "b"], dict(kwargs)))

    def test_differs_on_any_axis(self):
        base = config_fingerprint("c", ["a"], {"max_paths": 10})
        assert base != config_fingerprint("d", ["a"], {"max_paths": 10})
        assert base != config_fingerprint("c", ["b"], {"max_paths": 10})
        assert base != config_fingerprint("c", ["a"], {"max_paths": 11})


class TestPathRoundTrip:
    def test_json_round_trip_is_bit_exact(self, charlib_poly_90):
        circuit = _circuit()
        paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        assert paths
        for path in paths:
            # Through dict AND through JSON text: Python floats
            # round-trip exactly via repr, so arrivals stay bit-equal.
            wire = json.loads(json.dumps(path_to_dict(path)))
            clone = path_from_dict(wire)
            assert _path_identity(clone) == _path_identity(path)


class TestCheckpointFile:
    def test_writer_load_round_trip(self, tmp_path, charlib_poly_90):
        circuit = _circuit()
        paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        target = tmp_path / "run.json"
        writer = CheckpointWriter(str(target), circuit.name, "fp123")
        writer.record("I0", "complete", paths[:2], {"paths_found": 2},
                      {"delaycalc.arc_evaluations": 5})
        writer.flush()
        loaded = load_checkpoint(str(target), "fp123")
        assert loaded.completed_origins() == ["I0"]
        status, got, stats, deltas = loaded.shard_result("I0")
        assert status == "complete"
        assert [_path_identity(p) for p in got] \
            == [_path_identity(p) for p in paths[:2]]
        assert stats["paths_found"] == 2
        assert deltas["delaycalc.arc_evaluations"] == 5

    def test_partial_shards_are_not_adoptable(self, tmp_path):
        target = tmp_path / "run.json"
        writer = CheckpointWriter(str(target), "c", "fp")
        writer.record("I0", "partial", [], {}, {})
        writer.flush()
        assert load_checkpoint(str(target), "fp").completed_origins() == []

    def test_no_stale_tmp_file_left(self, tmp_path):
        target = tmp_path / "run.json"
        writer = CheckpointWriter(str(target), "c", "fp")
        writer.record("I0", "complete", [], {}, {})
        writer.flush()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "run.json"]
        assert leftovers == []

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(target), "fp")

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.json"), "fp")

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        target = tmp_path / "run.json"
        writer = CheckpointWriter(str(target), "c", "fp-a")
        writer.record("I0", "complete", [], {}, {})
        writer.flush()
        with pytest.raises(CheckpointError):
            load_checkpoint(str(target), "fp-b")


class TestResumeEquivalence:
    """Pinned: interrupt + resume == uninterrupted run, exactly."""

    def test_killed_run_resumes_to_exact_path_set(
            self, tmp_path, charlib_poly_90):
        circuit = _circuit(seed=33)
        reference = supervised_find_paths(circuit, charlib_poly_90, jobs=2)
        reference_ids = [_path_identity(p) for p in reference.paths]

        checkpoint = tmp_path / "killed.json"
        with pytest.raises(SearchInterrupted):
            supervised_find_paths(
                circuit, charlib_poly_90, jobs=2,
                checkpoint=str(checkpoint),
                fault_plan=FaultPlan(interrupt_after=2),
            )
        resumed = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, resume=str(checkpoint),
        )
        assert [_path_identity(p) for p in resumed.paths] == reference_ids
        assert resumed.resumed_shards >= 2
        assert resumed.completeness.complete

    def test_resume_rejects_different_search_config(
            self, tmp_path, charlib_poly_90):
        circuit = _circuit(seed=33)
        checkpoint = tmp_path / "cfg.json"
        supervised_find_paths(circuit, charlib_poly_90, jobs=1,
                              checkpoint=str(checkpoint))
        with pytest.raises(CheckpointError):
            supervised_find_paths(circuit, charlib_poly_90, jobs=1,
                                  max_paths=3, resume=str(checkpoint))

    def test_resume_then_checkpoint_carries_adopted_shards(
            self, tmp_path, charlib_poly_90):
        """Resuming into a new checkpoint must re-record adopted shards
        so the new snapshot is complete on its own."""
        circuit = _circuit(seed=33)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        with pytest.raises(SearchInterrupted):
            supervised_find_paths(
                circuit, charlib_poly_90, jobs=2, checkpoint=str(first),
                fault_plan=FaultPlan(interrupt_after=2),
            )
        supervised_find_paths(
            circuit, charlib_poly_90, jobs=2,
            resume=str(first), checkpoint=str(second),
        )
        reference = supervised_find_paths(circuit, charlib_poly_90, jobs=2)
        final = supervised_find_paths(
            circuit, charlib_poly_90, jobs=2, resume=str(second),
        )
        assert final.resumed_shards == len(circuit.inputs)
        assert ([_path_identity(p) for p in final.paths]
                == [_path_identity(p) for p in reference.paths])
