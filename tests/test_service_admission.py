"""Admission control: bounded queue, shedding, expiry, preemption.

Unit tests drive :class:`~repro.service.admission.AdmissionController`
directly inside a private event loop (the controller is loop-confined
by design); integration tests boot real servers and certify the two
user-visible behaviors -- queued-state heartbeats carrying the queue
position, and a deadline-bearing request preempting an ``exhaustive``
hog off the worker fleet.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import obs
from repro.service import ServiceClient, ServiceConfig
from repro.service.admission import AdmissionController, Overloaded
from repro.service.server import start_in_thread

# ---------------------------------------------------------------------------
# Controller unit tests


def test_grant_then_queue_then_shed():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=1)
        first = ctrl.submit("a")
        assert first.granted
        second = ctrl.submit("b")
        assert not second.granted
        with pytest.raises(Overloaded) as err:
            ctrl.submit("c")
        assert err.value.code == "overloaded"
        assert err.value.retry_after_s > 0
        assert obs.counter("service.overloaded").value == 1
        ctrl.release(first, service_s=0.2)
        assert second.granted
        ctrl.release(second)
        assert await ctrl.quiesce(timeout=1.0)

    asyncio.run(main())


def test_dispatch_order_is_edf_then_effort_then_fifo():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=10)
        hold = ctrl.submit("hold")
        exhaustive = ctrl.submit("x", effort="exhaustive")
        low = ctrl.submit("l", effort="low")
        urgent = ctrl.submit("d", deadline_at=time.monotonic() + 30.0)
        # A deadline always outranks effort classes; cheap capped
        # probes outrank uncapped hogs; FIFO breaks ties.
        ctrl.release(hold)
        assert urgent.granted and not low.granted
        ctrl.release(urgent)
        assert low.granted and not exhaustive.granted
        ctrl.release(low)
        assert exhaustive.granted
        ctrl.release(exhaustive)
        assert await ctrl.quiesce(timeout=1.0)

    asyncio.run(main())


def test_expired_ticket_dropped_before_dispatch():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=10)
        hold = ctrl.submit("hold")
        doomed = ctrl.submit("doomed",
                             deadline_at=time.monotonic() + 0.01)
        await asyncio.sleep(0.05)
        ctrl.release(hold)  # pump runs: the dead ticket never dispatches
        assert doomed.expired and not doomed.granted
        assert obs.counter("service.deadline_drops").value == 1
        assert await ctrl.quiesce(timeout=1.0)

    asyncio.run(main())


def test_queued_ticket_waits_then_resolves():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=4)
        hold = ctrl.submit("hold")
        queued = ctrl.submit("queued")
        assert not await queued.wait(0.05)  # still waiting: timeout
        assert ctrl.position(queued) == 1
        ctrl.release(hold)
        assert await queued.wait(1.0)
        assert queued.granted
        ctrl.release(queued)

    asyncio.run(main())


def test_abandon_frees_queue_capacity():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=1)
        hold = ctrl.submit("hold")
        walked = ctrl.submit("walked-away")
        ctrl.abandon(walked)
        replacement = ctrl.submit("replacement")  # capacity freed
        ctrl.release(hold)
        assert replacement.granted
        assert not walked.granted  # lazy-deleted, never dispatched
        ctrl.release(replacement)
        assert await ctrl.quiesce(timeout=1.0)

    asyncio.run(main())


def test_retry_hint_tracks_service_time_ewma():
    async def main():
        ctrl = AdmissionController(max_inflight=2, max_queue=4)
        for _ in range(10):
            ctrl.release(ctrl.submit("fast"), service_s=0.01)
        quick_hint = ctrl.retry_after_s()
        for _ in range(10):
            ctrl.release(ctrl.submit("slow"), service_s=30.0)
        assert ctrl.retry_after_s() > quick_hint
        assert ctrl.retry_after_s() <= 60.0  # clamped

    asyncio.run(main())


def test_should_preempt_requires_a_deadline_waiter():
    async def main():
        ctrl = AdmissionController(max_inflight=1, max_queue=4)
        ctrl.submit("hog", effort="exhaustive", hog=True)
        assert not ctrl.should_preempt()  # nothing waiting
        ctrl.submit("plain")
        assert not ctrl.should_preempt()  # no deadline at stake
        ctrl.submit("urgent", deadline_at=time.monotonic() + 10.0)
        assert ctrl.should_preempt()

    asyncio.run(main())


# ---------------------------------------------------------------------------
# Integration: queued heartbeats and hog preemption


def _await_stats(client, predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate(client.call("stats")):
            return True
        time.sleep(0.05)
    return False


def test_queued_heartbeats_carry_state_and_position():
    from repro.service.requests import AnalysisRequest, build_context

    origin = sorted(
        build_context(AnalysisRequest(netlist="iscas:c17"))
        .circuit.inputs)[0]
    handle = start_in_thread(ServiceConfig(
        heartbeat_interval=0.05, max_concurrent=1, max_inflight=1,
        max_queue=4, allow_fault_injection=True))
    slow_box = {}

    def _slow_call():
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as c:
            slow_box["result"] = c.call("analyze", {
                "netlist": "iscas:c17", "jobs": 2,
                "fault": {"hang_origins": [origin],
                          "hang_attempts": [0],
                          "hang_seconds": 1.5}})

    beats = []
    try:
        slow = threading.Thread(target=_slow_call, daemon=True)
        slow.start()
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as probe:
            assert _await_stats(
                probe,
                lambda s: (s["admission"] or {}).get("inflight"))
            result = probe.call("analyze",
                                {"netlist": "iscas:c17", "top": 2},
                                on_heartbeat=beats.append)
        slow.join(60.0)
    finally:
        handle.stop()
    assert result["kind"] == "result"
    assert "result" in slow_box
    queued_beats = [b for b in beats if b.get("queued")]
    assert queued_beats, "no queued-state heartbeat during the wait"
    assert all(b["state"] == "queued" for b in queued_beats)
    assert all(b["position"] >= 1 for b in queued_beats)


def test_deadline_waiter_preempts_exhaustive_hog():
    handle = start_in_thread(ServiceConfig(
        heartbeat_interval=0.1, fleet=1, preempt_after_s=0.2,
        allow_fault_injection=True))
    hog_box = {}

    def _hog_call():
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as c:
            # Attempt 0 hangs (would hold the single worker ~forever);
            # the post-preemption re-run is attempt 1, which computes.
            hog_box["result"] = c.call(
                "analyze",
                {"netlist": "iscas:c17", "top": 4,
                 "fleet_fault": {"hang_attempts": [0], "hang_s": 60.0}},
                effort="exhaustive")

    try:
        hog = threading.Thread(target=_hog_call, daemon=True)
        hog.start()
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as probe:
            assert _await_stats(
                probe,
                lambda s: (s["admission"] or {}).get("inflight"))
            urgent = probe.call("analyze",
                                {"netlist": "iscas:c17", "top": 5},
                                deadline_s=60.0)
            stats = probe.call("stats")
        hog.join(60.0)
        assert not hog.is_alive(), "preempted hog never completed"
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as c:
            plain = c.call("analyze", {"netlist": "iscas:c17",
                                       "top": 4})
    finally:
        handle.stop()
    assert urgent["kind"] == "result"
    assert stats["executor"]["preemptions"] >= 1
    # The preempted request lost its worker, not its answer.
    assert hog_box["result"]["report"] == plain["report"]
