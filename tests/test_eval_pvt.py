"""Tests for the PVT extension (temperature/supply-aware analysis)."""

import pytest

from repro.eval.exp_pvt import CORNERS, characterize_pvt, corner_analysis
from repro.netlist.circuit import Circuit


PVT_CELLS = ["INV", "NAND2", "AO22"]


@pytest.fixture(scope="module")
def pvt_lib(tech90):
    return characterize_pvt(tech90, PVT_CELLS, steps_per_window=250)


def pvt_circuit():
    """A small chain using only the PVT-characterized cells."""
    c = Circuit("pvt_chain")
    for n in ("a", "b", "c", "d", "e"):
        c.add_input(n)
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "n2", {"A": "n1"}, name="U2")
    c.add_gate("AO22", "n3", {"A": "n2", "B": "c", "C": "d", "D": "e"},
               name="U3")
    c.add_gate("INV", "z", {"A": "n3"}, name="U4")
    c.add_output("z")
    c.check()
    return c


class TestPvtModels:
    def test_temperature_term_fitted(self, pvt_lib, tech90):
        arc = pvt_lib.arc("AO22", "A", "A:110", False, False)
        cool = arc.delay(2.0, 5e-11, 25.0, tech90.vdd)
        hot = arc.delay(2.0, 5e-11, 125.0, tech90.vdd)
        assert hot > cool * 1.02  # mobility degradation dominates

    def test_supply_term_fitted(self, pvt_lib, tech90):
        arc = pvt_lib.arc("AO22", "A", "A:110", False, False)
        nominal = arc.delay(2.0, 5e-11, 25.0, tech90.vdd)
        droop = arc.delay(2.0, 5e-11, 25.0, 0.9 * tech90.vdd)
        assert droop > nominal * 1.05

    def test_orders_include_pvt_axes(self, pvt_lib):
        orders = pvt_lib.metadata["orders"]
        assert any(o[2] >= 1 or o[3] >= 1 for o in orders.values())


class TestCornerAnalysis:
    def test_corner_ordering(self, pvt_lib, tech90):
        result = corner_analysis(pvt_circuit(), pvt_lib, tech90)
        arrivals = {r["corner"]: r["worst_arrival"] for r in result["rows"]}
        assert arrivals["typical"] < arrivals["hot"]
        assert arrivals["typical"] < arrivals["low-vdd"]
        assert arrivals["worst"] == max(arrivals.values())

    def test_all_corners_present(self, pvt_lib, tech90):
        result = corner_analysis(pvt_circuit(), pvt_lib, tech90)
        assert {r["corner"] for r in result["rows"]} == set(CORNERS)
        assert "Corner analysis" in result["text"]

    def test_same_paths_every_corner(self, pvt_lib, tech90):
        """Corners change delays, not which paths are true."""
        result = corner_analysis(pvt_circuit(), pvt_lib, tech90)
        counts = {r["paths"] for r in result["rows"]}
        assert len(counts) == 1
