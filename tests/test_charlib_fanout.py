"""Unit tests for equivalent-fanout computation."""

import numpy as np
import pytest

from repro.charlib.fanout import equivalent_fanout, output_load, primary_output_load
from repro.charlib.polynomial import PolynomialModel
from repro.charlib.store import CharacterizedLibrary
from repro.netlist.circuit import Circuit


def fake_charlib():
    return CharacterizedLibrary(
        tech_name="cmos90",
        library_name="fake",
        model_kind="polynomial",
        input_caps={
            "INV": {"A": 2e-15},
            "NAND2": {"A": 3e-15, "B": 5e-15},
        },
        arcs=[],
    )


def small_circuit():
    c = Circuit("f")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("INV", "n1", {"A": "a"}, name="U1")
    c.add_gate("NAND2", "n2", {"A": "n1", "B": "b"}, name="U2")
    c.add_gate("INV", "z", {"A": "n2"}, name="U3")
    c.add_output("z")
    return c


class TestOutputLoad:
    def test_sums_sink_pin_caps(self):
        c = small_circuit()
        cl = fake_charlib()
        # U1 drives NAND2 pin A only
        assert output_load(c, c.instances["U1"], cl) == pytest.approx(3e-15)

    def test_primary_output_gets_default_load(self):
        c = small_circuit()
        cl = fake_charlib()
        load = output_load(c, c.instances["U3"], cl)
        assert load == pytest.approx(primary_output_load(cl))

    def test_explicit_po_load(self):
        c = small_circuit()
        cl = fake_charlib()
        assert output_load(c, c.instances["U3"], cl, po_load=7e-15) == pytest.approx(
            7e-15
        )

    def test_multi_sink(self):
        c = small_circuit()
        c.add_gate("INV", "extra", {"A": "n1"}, name="U4")
        cl = fake_charlib()
        assert output_load(c, c.instances["U1"], cl) == pytest.approx(5e-15)


class TestWireLoadModel:
    def test_net_capacitance(self):
        from repro.charlib.fanout import WireLoadModel

        wire = WireLoadModel(c_fixed=1e-15, c_per_fanout=0.5e-15)
        assert wire.net_capacitance(0) == pytest.approx(1e-15)
        assert wire.net_capacitance(4) == pytest.approx(3e-15)

    def test_adds_to_output_load(self):
        from repro.charlib.fanout import WireLoadModel

        c = small_circuit()
        cl = fake_charlib()
        wire = WireLoadModel(c_fixed=0.0, c_per_fanout=1e-15)
        bare = output_load(c, c.instances["U1"], cl)
        wired = output_load(c, c.instances["U1"], cl, wire=wire)
        assert wired == pytest.approx(bare + 1e-15)

    def test_wire_slows_fanout(self, ):
        from repro.charlib.fanout import WireLoadModel

        c = small_circuit()
        cl = fake_charlib()
        wire = WireLoadModel(c_per_fanout=2e-15)
        assert equivalent_fanout(c, c.instances["U1"], cl, wire=wire) > (
            equivalent_fanout(c, c.instances["U1"], cl)
        )


class TestEquivalentFanout:
    def test_definition(self):
        c = small_circuit()
        cl = fake_charlib()
        fo = equivalent_fanout(c, c.instances["U1"], cl)
        assert fo == pytest.approx(3e-15 / 2e-15)

    def test_nand_mean_cap_denominator(self):
        c = small_circuit()
        cl = fake_charlib()
        fo = equivalent_fanout(c, c.instances["U2"], cl)
        assert fo == pytest.approx(2e-15 / 4e-15)

    def test_primary_output_load_default(self):
        cl = fake_charlib()
        assert primary_output_load(cl) == pytest.approx(4e-15)
        assert primary_output_load(cl, fanout=3.0) == pytest.approx(6e-15)
