"""Wire-protocol contract: framing, malformed input, version handling.

Two layers of coverage:

* pure codec tests on :mod:`repro.service.protocol` (round-trips and
  the error taxonomy), and
* live-server tests proving that every malformed-input class maps to a
  structured ``error`` frame -- and that the server neither crashes nor
  poisons the connection for later well-formed requests.

The live server holds no analysis state (only ``ping`` is exercised),
so these tests are fast.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    BadJson,
    BadRequest,
    FrameTooLarge,
    TruncatedFrame,
    VersionMismatch,
)
from repro.service.server import ServiceConfig, start_in_thread


@pytest.fixture(scope="module")
def server():
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.2))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServiceClient(server.host, server.port, timeout=30.0) as c:
        yield c


# ---------------------------------------------------------------------------
# Codec


def test_frame_roundtrip():
    payload = {"id": "r1", "op": "ping", "v": 1,
               "params": {"x": [1, 2, 3], "nested": {"a": None}}}
    frame = protocol.encode_frame(payload)
    (length,) = protocol.HEADER.unpack(frame[:4])
    assert length == len(frame) - 4
    assert protocol.decode_payload(frame[4:]) == payload


def test_encode_payload_is_canonical():
    a = protocol.encode_payload({"b": 1, "a": 2})
    b = protocol.encode_payload({"a": 2, "b": 1})
    assert a == b  # key order cannot change the bytes


def test_encode_frame_refuses_oversized():
    with pytest.raises(FrameTooLarge):
        protocol.encode_frame({"blob": "x" * 128}, max_bytes=64)


def test_decode_payload_rejects_non_object():
    with pytest.raises(BadJson):
        protocol.decode_payload(b"[1, 2, 3]")
    with pytest.raises(BadJson):
        protocol.decode_payload(b"{not json")
    with pytest.raises(BadJson):
        protocol.decode_payload(b"\xff\xfe")


def _read_from_bytes(data: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_frame(reader, max_bytes=1 << 16)

    return asyncio.run(run())


def test_read_frame_clean_eof_returns_none():
    assert _read_from_bytes(b"") is None


def test_read_frame_truncated_header():
    with pytest.raises(TruncatedFrame):
        _read_from_bytes(b"\x00\x00")


def test_read_frame_truncated_body():
    frame = protocol.encode_frame({"id": 1, "op": "ping", "v": 1})
    with pytest.raises(TruncatedFrame):
        _read_from_bytes(frame[:-3])


def test_read_frame_oversized_declared_length():
    header = protocol.HEADER.pack((1 << 16) + 1)
    with pytest.raises(FrameTooLarge):
        _read_from_bytes(header)


def test_validate_request_version_mismatch():
    with pytest.raises(VersionMismatch) as err:
        protocol.validate_request({"v": 999, "id": "r9", "op": "ping"})
    assert err.value.request_id == "r9"  # correlatable client-side


@pytest.mark.parametrize("payload,fragment", [
    ({"v": 1, "op": "ping"}, "id"),
    ({"v": 1, "id": "r1", "op": "explode"}, "unknown op"),
    ({"v": 1, "id": "r1", "op": "ping", "params": [1]}, "params"),
    ({"v": 1, "id": "r1", "op": "ping", "deadline_s": -2}, "deadline_s"),
    ({"v": 1, "id": "r1", "op": "ping", "effort": 3}, "effort"),
])
def test_validate_request_bad_envelope(payload, fragment):
    with pytest.raises(BadRequest, match=fragment):
        protocol.validate_request(payload)


# ---------------------------------------------------------------------------
# Live server: structured rejection without crashing


def _assert_still_alive(client):
    """The acid test after every rejection: the same connection still
    serves a well-formed request."""
    result = client.call("ping")
    assert result["pong"] is True


def test_malformed_json_rejected_connection_survives(client):
    body = b"{definitely not json"
    client.send_raw(protocol.HEADER.pack(len(body)) + body)
    response = client.read_frame()
    assert response["kind"] == "error"
    assert response["code"] == "bad-json"
    _assert_still_alive(client)


def test_non_object_json_rejected(client):
    body = b'"just a string"'
    client.send_raw(protocol.HEADER.pack(len(body)) + body)
    response = client.read_frame()
    assert response["kind"] == "error"
    assert response["code"] == "bad-json"
    _assert_still_alive(client)


def test_version_mismatch_rejected(client):
    frame = protocol.encode_frame(
        {"v": 99, "id": "r1", "op": "ping", "params": {}})
    client.send_raw(frame)
    response = client.read_frame()
    assert response["kind"] == "error"
    assert response["code"] == "version-mismatch"
    assert response["id"] == "r1"
    assert response["v"] == protocol.PROTOCOL_VERSION
    _assert_still_alive(client)


def test_unknown_op_rejected(client):
    frame = protocol.encode_frame(
        {"v": 1, "id": "r2", "op": "frobnicate", "params": {}})
    client.send_raw(frame)
    response = client.read_frame()
    assert response["kind"] == "error"
    assert response["code"] == "bad-request"
    assert response["id"] == "r2"
    _assert_still_alive(client)


def test_bad_params_rejected_via_client(client):
    with pytest.raises(ServiceError) as err:
        client.call("analyze", {"netlist": "iscas:c17",
                                "definitely_not_a_field": 1})
    assert err.value.code == "bad-request"
    assert "definitely_not_a_field" in err.value.message
    _assert_still_alive(client)


def test_oversized_frame_rejected_and_connection_closed(server):
    # Oversized is the one fatal protocol error: the declared body
    # cannot be safely drained, so the server answers and disconnects.
    with ServiceClient(server.host, server.port, timeout=30.0) as client:
        client.send_raw(protocol.HEADER.pack(protocol.MAX_FRAME_BYTES + 1))
        response = client.read_frame()
        assert response["kind"] == "error"
        assert response["code"] == "oversized-frame"
        with pytest.raises((TruncatedFrame, ConnectionError, OSError)):
            client.send_raw(b"\x00" * 8)
            client.read_frame()
    # ...but the *server* survives for other connections.
    with ServiceClient(server.host, server.port, timeout=30.0) as fresh:
        assert fresh.call("ping")["pong"] is True


def test_truncated_request_does_not_crash_server(server):
    # Disconnect mid-frame: nothing to answer, but the next connection
    # must work.
    with ServiceClient(server.host, server.port, timeout=30.0) as client:
        client.send_raw(struct.pack("!I", 400) + b"partial")
    with ServiceClient(server.host, server.port, timeout=30.0) as fresh:
        assert fresh.call("ping")["pong"] is True


def test_request_ids_correlate_interleaved_kinds(client):
    # A single request id ties together every frame kind it produces.
    result = client.call("stats")
    assert result["kind"] == "result"
    assert result["requests"]["total"] >= 1
