"""Tests for graph-based analysis and its pessimism vs true paths."""

import pytest

from repro.core.graphsta import GbaResult, GraphSTA, gba_pessimism
from repro.core.sta import TruePathSTA
from repro.eval.fig4 import fig4_circuit
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap


@pytest.fixture(scope="module")
def c17_gba(charlib_poly_90):
    circuit = c17()
    gba = GraphSTA(circuit, charlib_poly_90).run()
    sta = TruePathSTA(circuit, charlib_poly_90)
    return circuit, gba, sta.enumerate_paths()


class TestGba:
    def test_inputs_at_zero(self, c17_gba):
        _c, gba, _p = c17_gba
        assert gba.arrivals["G1"] == (0.0, 0.0)

    def test_all_nets_reached(self, c17_gba):
        circuit, gba, _p = c17_gba
        for net in circuit.nets:
            assert gba.worst_arrival(net) >= 0.0

    def test_arrivals_grow_along_levels(self, c17_gba):
        _c, gba, _p = c17_gba
        assert gba.worst_arrival("G22") > gba.worst_arrival("G10")

    def test_never_optimistic(self, c17_gba):
        """GBA is an upper bound on every true path arrival."""
        _c, gba, paths = c17_gba
        comparison = gba_pessimism(gba, paths)
        for endpoint, row in comparison.items():
            assert row["pessimism"] >= -0.01, endpoint  # model noise only

    def test_c17_is_tight(self, c17_gba):
        """All-NAND circuits have one vector per arc: GBA == true paths."""
        _c, gba, paths = c17_gba
        comparison = gba_pessimism(gba, paths)
        for row in comparison.values():
            assert row["pessimism"] == pytest.approx(0.0, abs=0.02)

    def test_unreachable_net_raises(self, charlib_poly_90):
        gba = GbaResult(arrivals={"x": (None, None)}, slews={"x": (None, None)})
        with pytest.raises(ValueError):
            gba.worst_arrival("x")


class TestPessimism:
    def test_fig4_gba_overestimates(self, charlib_poly_90):
        """On the Fig. 4 circuit GBA uses the worst AO22 vector on every
        arc without checking sensitizability jointly; the endpoint bound
        must be at least the true worst (case 2) arrival."""
        circuit = fig4_circuit()
        gba = GraphSTA(circuit, charlib_poly_90).run()
        paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        comparison = gba_pessimism(gba, paths)
        row = comparison["N20"]
        assert row["gba"] >= row["true"] * 0.99

    def test_random_circuits_bounded(self, charlib_poly_90):
        for seed in (3, 11, 29):
            circuit = techmap(random_dag(f"gba{seed}", 12, 60, seed=seed))
            gba = GraphSTA(circuit, charlib_poly_90).run()
            paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths(
                max_paths=2000
            )
            if not paths:
                continue
            comparison = gba_pessimism(gba, paths)
            assert comparison
            for endpoint, row in comparison.items():
                assert row["pessimism"] >= -0.02, (seed, endpoint)

    def test_pessimism_positive_somewhere(self, charlib_poly_90):
        """False paths exist in reconvergent logic, so GBA is strictly
        pessimistic on at least one endpoint of a suitable circuit."""
        found = False
        for seed in range(40):
            circuit = techmap(random_dag(f"pes{seed}", 10, 50, seed=seed))
            paths = TruePathSTA(circuit, charlib_poly_90).enumerate_paths(
                max_paths=2000
            )
            if not paths:
                continue
            gba = GraphSTA(circuit, charlib_poly_90).run()
            comparison = gba_pessimism(gba, paths)
            if any(row["pessimism"] > 0.03 for row in comparison.values()):
                found = True
                break
        assert found
