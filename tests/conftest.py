"""Shared fixtures.

Characterized libraries are expensive (minutes cold), so they are
session-scoped and disk-cached (``~/.cache/repro-charlib`` or
``$REPRO_CHAR_CACHE``); the first full test run pays the cost once.
"""

from __future__ import annotations

import pytest

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture
def clean_obs():
    """Fresh observability state, restored to defaults afterwards."""
    from repro import obs

    obs.reset()
    obs.tracing.enable(False)
    yield obs
    obs.reset()
    obs.tracing.enable(False)
    obs.configure_logging(level="warning")


@pytest.fixture(scope="session")
def tech90():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="session")
def tech130():
    return TECHNOLOGIES["130nm"]


@pytest.fixture(scope="session")
def tech65():
    return TECHNOLOGIES["65nm"]


@pytest.fixture(scope="session")
def charlib_poly_90(library, tech90):
    """Vector-resolved polynomial library (full cell set, fast grid)."""
    return characterize_library(library, tech90, grid=FAST_GRID)


@pytest.fixture(scope="session")
def charlib_lut_90(library, tech90):
    """Vector-blind LUT library (the baseline's models)."""
    return characterize_library(
        library, tech90, grid=FAST_GRID, model="lut", vector_mode="default"
    )


@pytest.fixture(scope="session")
def charlib_small_90(library, tech90):
    """Tiny subset library for tests that build their own circuits."""
    return characterize_library(
        library,
        tech90,
        grid=FAST_GRID,
        cells=["INV", "BUF", "NAND2", "AND2", "OR2", "AO22", "OA12", "XOR2"],
    )
