"""Shared fixtures.

Characterized libraries are expensive (minutes cold), so they are
session-scoped and disk-cached (``~/.cache/repro-charlib`` or
``$REPRO_CHAR_CACHE``); the first full test run pays the cost once.

Every test runs with ``random`` and ``numpy.random`` seeded from a
per-test value derived from one base seed, so property/fuzz tests are
reproducible: the base seed prints in the pytest header, a failing
test's own seed prints in its report, and ``REPRO_TEST_SEED=<base>``
replays the exact run.  The seeding is autouse, so it also covers the
async service tests (``tests/test_service_*``) -- their in-thread
server shares this process's global RNGs; ``service_seed`` hands a
test its derived seed explicitly for seeding scenario harnesses.

Service tests exercise the process-wide ``repro.obs`` registry from
both the client and the in-thread server, so an autouse fixture resets
it around every ``test_service_*`` module's tests: a counter leaked by
one test (or by a non-service test running earlier in the same worker)
can never flip a warm-cache or request-counter assertion.
"""

from __future__ import annotations

import hashlib
import os
import random

import pytest

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


def _derive_seed(base: int, nodeid: str) -> int:
    """Stable per-test seed: independent tests get independent streams,
    and one test's seed does not depend on which other tests ran."""
    digest = hashlib.blake2b(
        f"{base}:{nodeid}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def pytest_configure(config):
    env = os.environ.get("REPRO_TEST_SEED")
    config._repro_base_seed = (
        int(env) if env else int.from_bytes(os.urandom(4), "big")
    )


def pytest_report_header(config):
    return (
        f"repro seed: {config._repro_base_seed} "
        f"(rerun with REPRO_TEST_SEED={config._repro_base_seed})"
    )


@pytest.fixture(autouse=True)
def _seed_rngs(request):
    """Seed the global RNGs per test from the session base seed."""
    seed = _derive_seed(
        request.config._repro_base_seed, request.node.nodeid
    )
    request.node._repro_seed = seed
    random.seed(seed)
    try:
        import numpy
    except ImportError:
        pass
    else:
        numpy.random.seed(seed % (1 << 32))
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        seed = getattr(item, "_repro_seed", None)
        if seed is not None:
            base = item.config._repro_base_seed
            report.sections.append((
                "repro random seed",
                f"per-test seed {seed}; reproduce the whole run with "
                f"REPRO_TEST_SEED={base}",
            ))


@pytest.fixture
def service_seed(request, _seed_rngs) -> int:
    """The per-test derived seed, for harnesses that take an explicit
    seed (e.g. ``run_server_faults``)."""
    return request.node._repro_seed


@pytest.fixture(autouse=True)
def _service_obs_isolation(request):
    """Metrics isolation for the service tests: the server thread and
    the assertions share one process-wide registry, so each test gets a
    clean one (and leaves a clean one behind)."""
    if "test_service" not in request.node.nodeid:
        yield
        return
    from repro import obs

    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture
def clean_obs():
    """Fresh observability state, restored to defaults afterwards."""
    from repro import obs

    obs.reset()
    obs.tracing.enable(False)
    yield obs
    obs.reset()
    obs.tracing.enable(False)
    obs.configure_logging(level="warning")


@pytest.fixture(scope="session")
def tech90():
    return TECHNOLOGIES["90nm"]


@pytest.fixture(scope="session")
def tech130():
    return TECHNOLOGIES["130nm"]


@pytest.fixture(scope="session")
def tech65():
    return TECHNOLOGIES["65nm"]


@pytest.fixture(scope="session")
def charlib_poly_90(library, tech90):
    """Vector-resolved polynomial library (full cell set, fast grid)."""
    return characterize_library(library, tech90, grid=FAST_GRID)


@pytest.fixture(scope="session")
def charlib_lut_90(library, tech90):
    """Vector-blind LUT library (the baseline's models)."""
    return characterize_library(
        library, tech90, grid=FAST_GRID, model="lut", vector_mode="default"
    )


@pytest.fixture(scope="session")
def charlib_small_90(library, tech90):
    """Tiny subset library for tests that build their own circuits."""
    return characterize_library(
        library,
        tech90,
        grid=FAST_GRID,
        cells=["INV", "BUF", "NAND2", "AND2", "OR2", "AO22", "OA12", "XOR2"],
    )
