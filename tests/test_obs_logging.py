"""Structured logger: level filtering, sinks, JSONL round-trip."""

import io
import json

import pytest

from repro.obs import logging as obslog


@pytest.fixture
def stream(clean_obs):
    buffer = io.StringIO()
    obslog.configure(level="debug", stream=buffer)
    yield buffer
    obslog.configure(level="warning")


class TestLevels:
    def test_default_level_is_warning(self, clean_obs):
        obslog.configure(level="warning")
        assert obslog.level() == obslog.WARNING

    def test_below_level_suppressed(self, clean_obs):
        buffer = io.StringIO()
        obslog.configure(level="warning", stream=buffer)
        log = obslog.get_logger("t")
        log.debug("quiet")
        log.info("quiet.too")
        assert buffer.getvalue() == ""
        log.warning("loud")
        assert "loud" in buffer.getvalue()

    def test_unknown_level_rejected(self, clean_obs):
        with pytest.raises(ValueError):
            obslog.configure(level="loudest")

    def test_is_enabled(self, clean_obs):
        obslog.configure(level="info")
        log = obslog.get_logger("t")
        assert log.is_enabled(obslog.INFO)
        assert not log.is_enabled(obslog.DEBUG)


class TestHumanSink:
    def test_line_contains_logger_event_fields(self, stream):
        obslog.get_logger("repro.test").info("cache.hit", key="abc", n=3)
        line = stream.getvalue()
        assert "repro.test" in line
        assert "cache.hit" in line
        assert "key=abc" in line and "n=3" in line
        assert "INFO" in line

    def test_one_line_per_record(self, stream):
        log = obslog.get_logger("t")
        log.info("a")
        log.error("b")
        assert len(stream.getvalue().splitlines()) == 2


class TestJsonlSink:
    def test_round_trip(self, clean_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        obslog.configure(level="debug", stream=io.StringIO(),
                         jsonl_path=str(path))
        log = obslog.get_logger("repro.charlib")
        log.info("cache.miss", tech="90nm", cells=12)
        log.debug("fit.done", cell="AO22", max_rel_error=0.013)
        obslog.configure(level="warning")  # closes the sink

        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        first, second = records
        assert first["event"] == "cache.miss"
        assert first["logger"] == "repro.charlib"
        assert first["level"] == "INFO"
        assert first["tech"] == "90nm" and first["cells"] == 12
        assert isinstance(first["ts"], float)
        assert second["event"] == "fit.done"
        assert second["max_rel_error"] == 0.013

    def test_non_serializable_fields_stringified(self, clean_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        obslog.configure(level="debug", stream=io.StringIO(),
                         jsonl_path=str(path))
        obslog.get_logger("t").info("odd", obj=object())
        obslog.configure(level="warning")
        record = json.loads(path.read_text())
        assert "object" in record["obj"]

    def test_appends_across_configures(self, clean_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        for _ in range(2):
            obslog.configure(level="info", stream=io.StringIO(),
                             jsonl_path=str(path))
            obslog.get_logger("t").info("tick")
        obslog.configure(level="warning")
        assert len(path.read_text().splitlines()) == 2


class TestLoggerRegistry:
    def test_get_logger_memoized(self, clean_obs):
        assert obslog.get_logger("same") is obslog.get_logger("same")
