"""Unit tests for the circuit graph."""

import pytest

from repro.gates.logic import X
from repro.netlist.circuit import Circuit


def tiny():
    c = Circuit("tiny")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "z", {"A": "n1"}, name="U2")
    c.add_output("z")
    return c


class TestConstruction:
    def test_basic(self):
        c = tiny()
        c.check()
        assert c.num_gates == 2
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["z"]

    def test_two_drivers_rejected(self):
        c = tiny()
        with pytest.raises(ValueError, match="two drivers"):
            c.add_gate("INV", "z", {"A": "a"})

    def test_driving_an_input_rejected(self):
        c = tiny()
        with pytest.raises(ValueError, match="primary input"):
            c.add_gate("INV", "a", {"A": "n1"})

    def test_input_on_driven_net_rejected(self):
        c = tiny()
        with pytest.raises(ValueError, match="already driven"):
            c.add_input("n1")

    def test_bad_pin_set(self):
        c = Circuit("x")
        c.add_input("a")
        with pytest.raises(ValueError, match="bad pin set"):
            c.add_gate("NAND2", "n", {"A": "a"})
        with pytest.raises(ValueError, match="bad pin set"):
            c.add_gate("INV", "n", {"A": "a", "B": "a"})

    def test_duplicate_instance_name(self):
        c = tiny()
        with pytest.raises(ValueError, match="duplicate instance"):
            c.add_gate("INV", "q", {"A": "a"}, name="U1")

    def test_undriven_net_detected(self):
        c = Circuit("x")
        c.add_input("a")
        c.add_gate("NAND2", "n", {"A": "a", "B": "ghost"})
        with pytest.raises(ValueError, match="no driver"):
            c.check()

    def test_missing_output_detected(self):
        c = Circuit("x")
        c.add_input("a")
        c.outputs.append("nope")
        with pytest.raises(ValueError, match="does not exist"):
            c.check()

    def test_cycle_detected(self):
        c = Circuit("loop")
        c.add_input("a")
        c.add_gate("NAND2", "p", {"A": "a", "B": "q"})
        c.add_gate("INV", "q", {"A": "p"})
        with pytest.raises(ValueError, match="loop"):
            c.topological()

    def test_auto_instance_names(self):
        c = Circuit("x")
        c.add_input("a")
        inst = c.add_gate("INV", "n", {"A": "a"})
        assert inst.name == "U0"


class TestQueries:
    def test_fanout_and_driver(self):
        c = tiny()
        assert c.driver_of("n1").name == "U1"
        assert c.driver_of("a") is None
        sinks = c.fanout_of("n1")
        assert len(sinks) == 1 and sinks[0][1] == "A"
        assert c.nets["a"].fanout == 1

    def test_complex_instances(self):
        c = tiny()
        assert c.complex_instances() == []
        c.add_gate("AO22", "w", {"A": "a", "B": "b", "C": "n1", "D": "z"})
        assert len(c.complex_instances()) == 1

    def test_cell_histogram(self):
        c = tiny()
        assert c.cell_histogram() == {"INV": 1, "NAND2": 1}

    def test_instance_helpers(self):
        c = tiny()
        u1 = c.instances["U1"]
        assert u1.input_nets() == ["a", "b"]
        assert u1.pin_of_net("a") == ["A"]
        assert "NAND2" in repr(u1)

    def test_stats(self):
        stats = tiny().stats()
        assert stats == {
            "inputs": 2, "outputs": 1, "gates": 2, "complex_gates": 0,
            "nets": 4, "depth": 2,
        }


class TestSimulation:
    def test_simulate(self):
        c = tiny()
        # z = NOT(NAND(a,b)) = a AND b
        for a in (0, 1):
            for b in (0, 1):
                assert c.simulate({"a": a, "b": b})["z"] == (a & b)

    def test_simulate_missing_input(self):
        with pytest.raises(ValueError, match="unassigned"):
            tiny().simulate({"a": 1})

    def test_simulate3_unknowns(self):
        c = tiny()
        values = c.simulate3({"a": 0})
        assert values["n1"] == 1  # NAND with a controlling 0
        assert values["z"] == 0
        values = c.simulate3({"a": 1})
        assert values["n1"] is X
        assert values["z"] is X

    def test_topological_is_cached(self):
        c = tiny()
        first = c.topological()
        assert c.topological() is first
        c.add_gate("INV", "y", {"A": "z"})
        assert c.topological() is not first


class TestExport:
    def test_to_networkx(self):
        graph = tiny().to_networkx()
        assert graph.number_of_nodes() == 4  # 2 inputs + 2 gates
        assert graph.has_edge("a", "U1")
        assert graph.has_edge("U1", "U2")

    def test_repr(self):
        assert "tiny" in repr(tiny())
