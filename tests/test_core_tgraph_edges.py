"""Timing-graph and backward-pass edge cases (repro.core.tgraph,
repro.core.delaycalc.bound_slews).

The bulk forward/backward properties live in test_core_tgraph.py-style
suites; this module pins the degenerate shapes: rejected cyclic and
dangling netlists, the single-gate graph, and the achievable-slew
ceiling fixed point when one round is not enough (or no rounds are).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delaycalc import DelayCalculator, _SLEW_CEILING_ROUNDS
from repro.core.engine import EngineCircuit
from repro.netlist.circuit import Circuit


def _single_gate(library):
    c = Circuit("onegate", library)
    c.add_input("a")
    c.add_gate("INV", "out", {"A": "a"})
    c.add_output("out")
    c.check()
    return c


class TestRejectedShapes:
    def test_combinational_loop_detected(self, library):
        c = Circuit("loopy", library)
        c.add_input("a")
        c.add_gate("NAND2", "n1", {"A": "a", "B": "n2"})
        c.add_gate("INV", "n2", {"A": "n1"})
        c.add_output("n1")
        with pytest.raises(ValueError, match="combinational loop detected"):
            c.check()
        with pytest.raises(ValueError, match="combinational loop detected"):
            c.topological()

    def test_dangling_net_detected(self, library):
        c = Circuit("dangling", library)
        c.add_input("a")
        c.add_gate("NAND2", "out", {"A": "a", "B": "ghost"})
        c.add_output("out")
        with pytest.raises(
            ValueError, match="net ghost has no driver and is not an input"
        ):
            c.check()

    def test_missing_declared_output(self, library):
        c = Circuit("noout", library)
        c.add_input("a")
        c.add_gate("INV", "x", {"A": "a"})
        c.outputs.append("nonexistent")
        with pytest.raises(ValueError, match="declared output nonexistent"):
            c.check()


class TestSingleGateGraph:
    def test_graph_shape(self, library):
        ec = EngineCircuit(_single_gate(library))
        tg = ec.tgraph
        assert len(tg.arcs) == 1
        arc = tg.arcs[0]
        assert arc.src_net == ec.net_id["a"]
        assert arc.dst_net == ec.net_id["out"]
        assert tg.depth == 1
        assert tg.levels[ec.net_id["a"]] == 0
        assert tg.levels[ec.net_id["out"]] == 1

    def test_forward_pass(self, charlib_small_90, library):
        ec = EngineCircuit(_single_gate(library))
        calc = DelayCalculator(ec, charlib_small_90)
        timing = ec.tgraph.forward_arrivals(calc)
        a, out = ec.net_id["a"], ec.net_id["out"]
        assert timing.arrivals[a] == [0.0, 0.0]
        for pol in (0, 1):
            assert timing.arrivals[out][pol] > 0.0
            assert timing.slews[out][pol] > 0.0

    def test_backward_pass_and_dominance(self, charlib_small_90, library):
        ec = EngineCircuit(_single_gate(library))
        calc = DelayCalculator(ec, charlib_small_90)
        bounds = calc.prune_bounds()
        a, out = ec.net_id["a"], ec.net_id["out"]
        assert bounds.required[out] == 0.0  # nothing past a primary output
        assert bounds.required[a] > 0.0
        # With one gate and one pin the arc bound equals the gate bound.
        assert bounds.required[a] == pytest.approx(bounds.suffix[a])
        # Dominance holds on every net (the pruning admissibility pin).
        for req, suf in zip(bounds.required, bounds.suffix):
            assert req <= suf + 1e-18

    def test_backward_bound_covers_forward_arrival(self, charlib_small_90,
                                                   library):
        ec = EngineCircuit(_single_gate(library))
        calc = DelayCalculator(ec, charlib_small_90)
        timing = ec.tgraph.forward_arrivals(calc)
        out = ec.net_id["out"]
        worst = max(t for t in timing.arrivals[out] if t is not None)
        assert calc.required_bounds()[ec.net_id["a"]] >= worst


class _FakeSlewModel:
    """Affine slew response t_out = gain * t_in + offset; the ceiling
    fixed point is offset / (1 - gain) for gain < 1 and diverges for
    gain >= 1."""

    def __init__(self, gain, offset):
        self.gain = gain
        self.offset = offset
        self.calls = 0

    def evaluate_many(self, points):
        self.calls += 1
        points = np.asarray(points, dtype=float)
        return self.gain * points[:, 1] + self.offset


class _FakeArc:
    def __init__(self, slew_model):
        self.slew_model = slew_model


class TestSlewCeilingFixedPoint:
    def _calc_with_fake_slews(self, library, charlib, model):
        ec = EngineCircuit(_single_gate(library))
        calc = DelayCalculator(ec, charlib)
        for gate in ec.gates:
            calc._gate_arcs_cache[gate.index] = (_FakeArc(model),)
        return calc

    def test_multi_round_convergence(self, charlib_small_90, library):
        # Fixed point at 2e-9/(1-0.5) = 4 ns, far above the grid
        # ceiling, so one round cannot settle it.
        model = _FakeSlewModel(gain=0.5, offset=2e-9)
        calc = self._calc_with_fake_slews(library, charlib_small_90, model)
        samples = calc.bound_slews()
        rounds = model.calls
        assert 1 < rounds <= _SLEW_CEILING_ROUNDS
        # The final ceiling brackets the analytic fixed point and every
        # emitted slew is inside the sampled domain.
        ceiling = max(samples)
        assert ceiling >= 4e-9
        assert model.gain * ceiling + model.offset <= ceiling

    def test_single_round_when_grid_suffices(self, charlib_small_90, library):
        model = _FakeSlewModel(gain=0.1, offset=1e-12)
        calc = self._calc_with_fake_slews(library, charlib_small_90, model)
        calc.bound_slews()
        assert model.calls == 1

    def test_unconverged_warns_and_terminates(self, charlib_small_90,
                                              library, capsys):
        # gain > 1: the ceiling recursion has no finite fixed point.
        model = _FakeSlewModel(gain=1.2, offset=1e-12)
        calc = self._calc_with_fake_slews(library, charlib_small_90, model)
        samples = calc.bound_slews()
        assert model.calls == _SLEW_CEILING_ROUNDS
        assert samples == tuple(sorted(samples))
        assert "bound.slew_ceiling_unconverged" in capsys.readouterr().err

    def test_result_is_memoized(self, charlib_small_90, library):
        model = _FakeSlewModel(gain=0.5, offset=2e-9)
        calc = self._calc_with_fake_slews(library, charlib_small_90, model)
        first = calc.bound_slews()
        calls = model.calls
        assert calc.bound_slews() is first
        assert model.calls == calls
