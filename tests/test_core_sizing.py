"""Tests for drive variants and the gate-sizing ECO loop."""

import pytest

from repro.charlib.characterize import FAST_GRID, characterize_library
from repro.core.sizing import replace_cell, upsize_critical_path
from repro.core.sta import TruePathSTA
from repro.gates.library import sized_library
from repro.netlist.circuit import Circuit
from repro.spice.cellsim import CellSimulator, input_capacitance

SIZING_CELLS = ["INV", "INV_X2", "NAND2", "NAND2_X2", "AO22", "AO22_X2"]


@pytest.fixture(scope="module")
def sized_lib():
    return sized_library()


@pytest.fixture(scope="module")
def charlib_sized(sized_lib, tech90):
    return characterize_library(
        sized_lib, tech90, grid=FAST_GRID, cells=SIZING_CELLS,
    )


def chain_circuit(sized_lib):
    c = Circuit("chain", sized_lib)
    for n in ("a", "b", "c", "d"):
        c.add_input(n)
    c.add_gate("NAND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("INV", "n2", {"A": "n1"}, name="U2")
    c.add_gate("AO22", "n3", {"A": "n2", "B": "b", "C": "c", "D": "d"},
               name="U3")
    c.add_gate("INV", "n4", {"A": "n3"}, name="U4")
    # Heavy load on n4 to give the sizer something to fix.
    for k in range(5):
        c.add_gate("INV", f"z{k}", {"A": "n4"}, name=f"UL{k}")
        c.add_output(f"z{k}")
    c.check()
    return c


class TestDriveVariants:
    def test_variants_present(self, sized_lib):
        assert "INV_X2" in sized_lib
        assert sized_lib["INV_X2"].drive == 2.0
        assert sized_lib["INV_X2"].func == sized_lib["INV"].func

    def test_x2_has_double_input_cap(self, sized_lib, tech90):
        c1 = input_capacitance(sized_lib["INV"], "A", tech90)
        c2 = input_capacitance(sized_lib["INV_X2"], "A", tech90)
        assert c2 == pytest.approx(2 * c1, rel=1e-6)

    def test_x2_faster_under_same_load(self, sized_lib, tech90):
        """At a fixed external load the X2 variant is faster."""
        load = 10e-15
        delays = {}
        for name in ("NAND2", "NAND2_X2"):
            cell = sized_lib[name]
            sim = CellSimulator(cell, tech90, steps_per_window=250)
            vec = cell.sensitization_vectors("A")[0]
            delays[name] = sim.propagation("A", vec, True, 40e-12, load).delay
        assert delays["NAND2_X2"] < delays["NAND2"]

    def test_default_library_unchanged(self):
        from repro.gates.library import default_library

        assert "INV_X2" not in default_library()


class TestReplaceCell:
    def test_swap(self, sized_lib):
        c = chain_circuit(sized_lib)
        replace_cell(c, "U2", "INV_X2")
        assert c.instances["U2"].cell.name == "INV_X2"
        c.check()

    def test_incompatible_rejected(self, sized_lib):
        c = chain_circuit(sized_lib)
        with pytest.raises(ValueError, match="pin-compatible"):
            replace_cell(c, "U2", "NAND2")


class TestSizingLoop:
    def test_upsizing_reduces_arrival(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        sta = TruePathSTA(circuit, charlib_sized)
        before = max(p.worst_arrival for p in sta.enumerate_paths())
        result = upsize_critical_path(
            circuit, charlib_sized, required_time=before * 0.9,
            max_iterations=6,
        )
        assert result.initial_arrival == pytest.approx(before, rel=1e-9)
        assert result.final_arrival < before
        assert result.changes

    def test_met_flag(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        result = upsize_critical_path(
            circuit, charlib_sized, required_time=1.0,  # trivially met
        )
        assert result.met and not result.changes

    def test_describe(self, sized_lib, charlib_sized):
        circuit = chain_circuit(sized_lib)
        result = upsize_critical_path(
            circuit, charlib_sized, required_time=1e-12, max_iterations=3,
        )
        text = result.describe()
        assert "sizing:" in text
        assert "NOT MET" in text  # 1 ps is impossible
