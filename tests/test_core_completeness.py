"""Brute-force validation of the path finder.

Ground truth on small circuits: a (course, vector combination, polarity)
is sensitizable iff some primary-input assignment holds every traversed
gate's side values steady across the two-pattern pair.  We enumerate
that set exhaustively and compare:

* **paper mode** -- always sound (never reports a false sensitization);
  may miss a few sensitizations because it commits to the first
  justification per step (the paper's "jump to the last saved point");
* **complete mode** -- exact: sound *and* complete, thanks to the global
  per-polarity re-solve with dynamic (9-valued) justification cubes.
"""

import itertools

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def brute_force_set(circuit):
    found = set()
    inputs = circuit.inputs
    n = len(inputs)

    def paths_from(net, course, steps):
        netobj = circuit.nets[net]
        if netobj.is_output and steps:
            yield tuple(course), tuple(steps)
        for inst, pin in netobj.sinks:
            for vec in inst.cell.sensitization_vectors(pin):
                yield from paths_from(
                    inst.output_net, course + [inst.output_net],
                    steps + [(inst, pin, vec)],
                )

    for origin in inputs:
        for course, steps in paths_from(origin, [origin], []):
            for rising in (True, False):
                for bits in itertools.product((0, 1), repeat=n - 1):
                    others = [i for i in inputs if i != origin]
                    base = dict(zip(others, bits))
                    before = dict(base)
                    after = dict(base)
                    before[origin] = 0 if rising else 1
                    after[origin] = 1 - before[origin]
                    va = circuit.simulate(before)
                    vb = circuit.simulate(after)
                    if all(
                        va[inst.pins[sp]] == sv and vb[inst.pins[sp]] == sv
                        for inst, _pin, vec in steps
                        for sp, sv in vec.side_values.items()
                    ):
                        found.add(
                            (course,
                             tuple(v.vector_id for _, _, v in steps),
                             rising)
                        )
                        break
    return found


def tool_set(paths):
    return {
        (p.course, p.vector_signature, pol.input_rising)
        for p in paths
        for pol in p.polarities()
    }


SEEDS = list(range(14))


@pytest.fixture(scope="module")
def circuits():
    out = []
    for seed in SEEDS:
        c = techmap(random_dag(f"bf{seed}", 6, 14, seed=seed))
        if len(c.inputs) <= 8:
            out.append((seed, c, brute_force_set(c)))
    return out


class TestPaperMode:
    def test_always_sound(self, circuits, charlib_poly_90):
        for seed, circuit, truth in circuits:
            sta = TruePathSTA(circuit, charlib_poly_90)
            reported = tool_set(sta.enumerate_paths())
            assert reported <= truth, f"seed {seed}: unsound report"

    def test_nearly_complete(self, circuits, charlib_poly_90):
        """The documented incompleteness is small (a few percent)."""
        total_truth = total_found = 0
        for _seed, circuit, truth in circuits:
            sta = TruePathSTA(circuit, charlib_poly_90)
            reported = tool_set(sta.enumerate_paths())
            total_truth += len(truth)
            total_found += len(reported & truth)
        assert total_found >= 0.85 * total_truth


class TestCompleteMode:
    def test_exactly_matches_brute_force(self, circuits, charlib_poly_90):
        for seed, circuit, truth in circuits:
            sta = TruePathSTA(circuit, charlib_poly_90)
            reported = tool_set(sta.enumerate_paths(complete=True))
            assert reported == truth, f"seed {seed}"

    def test_complete_superset_of_paper(self, circuits, charlib_poly_90):
        for _seed, circuit, _truth in circuits:
            sta = TruePathSTA(circuit, charlib_poly_90)
            paper = tool_set(sta.enumerate_paths())
            complete = tool_set(sta.enumerate_paths(complete=True))
            assert paper <= complete

    def test_complete_mode_vectors_verify(self, circuits, charlib_poly_90):
        """Input vectors from the dynamic re-solve still toggle the
        output in plain simulation."""
        for _seed, circuit, _truth in circuits[:5]:
            sta = TruePathSTA(circuit, charlib_poly_90)
            for path in sta.enumerate_paths(complete=True):
                for pol in path.polarities():
                    base = {
                        k: (v if v in (0, 1) else 0)
                        for k, v in pol.input_vector.items()
                    }
                    origin = path.nets[0]
                    before = dict(base)
                    after = dict(base)
                    before[origin] = 0 if pol.input_rising else 1
                    after[origin] = 1 - before[origin]
                    va = circuit.simulate(before)
                    vb = circuit.simulate(after)
                    assert va[path.nets[-1]] != vb[path.nets[-1]]


class TestDynamicCubes:
    def test_xnor_opposite_transitions(self, charlib_poly_90):
        """The motivating case: XNOR(R, F) is steady 0."""
        from repro.core.logic_values import CellEvaluator, Value9
        from repro.gates.library import default_library

        xnor = CellEvaluator(default_library()["XNOR2"])
        cubes = xnor.dynamic_cubes(Value9.S0)
        keys = {frozenset(c.items()) for c in cubes}
        assert frozenset({("A", Value9.RISE), ("B", Value9.FALL)}.items()
                         if False else
                         {("A", Value9.RISE), ("B", Value9.FALL)}) in keys

    def test_cubes_force_target(self, charlib_poly_90):
        from repro.core.logic_values import CellEvaluator, Value9
        from repro.gates.library import default_library

        for name in ("NAND2", "XOR2", "AO22", "MUX2"):
            evaluator = CellEvaluator(default_library()[name])
            for target in (Value9.S0, Value9.S1, Value9.RISE, Value9.FALL):
                for cube in evaluator.dynamic_cubes(target):
                    assignment = [
                        cube.get(p, Value9.XX)
                        for p in evaluator.cell.inputs
                    ]
                    assert evaluator.evaluate(assignment) == target
