"""End-to-end observability: instrumented tools publish real metrics.

The load-bearing property: the registry-backed counters must match the
legacy ``SearchStats`` / ``TwoStepReport`` counters exactly, so the
search-effort numbers in a metrics snapshot are the same numbers the
paper's tables are built from.
"""

import pytest

from repro.baseline.sta2step import TwoStepSTA
from repro.core.sta import TruePathSTA
from repro.netlist.generate import c17, random_dag
from repro.netlist.techmap import techmap


class TestPathfinderMetrics:
    def test_counters_match_search_stats_exactly(self, clean_obs,
                                                 charlib_poly_90):
        circuit = c17()
        sta = TruePathSTA(circuit, charlib_poly_90)
        sta.enumerate_paths()
        stats = sta.last_stats.as_dict()
        registry = clean_obs.metrics.REGISTRY
        assert stats["paths_found"] == 11
        for name, value in stats.items():
            unlabeled = registry.counter(f"pathfinder.{name}").value
            labeled = registry.counter(f"pathfinder.{name}",
                                       circuit="c17").value
            if name == "cpu_seconds":
                assert unlabeled == pytest.approx(value)
            else:
                assert unlabeled == value, name
                assert labeled == value, name

    def test_zero_counters_still_registered(self, clean_obs, charlib_poly_90):
        # c17 has no conflicts; the snapshot must still carry the key.
        TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        snap = clean_obs.metrics.snapshot()
        assert snap["pathfinder.conflicts"] == 0
        assert "pathfinder.justification_backtracks" in snap

    def test_two_runs_accumulate(self, clean_obs, charlib_poly_90):
        sta = TruePathSTA(c17(), charlib_poly_90)
        sta.enumerate_paths()
        first = sta.last_stats.extensions_tried
        sta.enumerate_paths()
        second = sta.last_stats.extensions_tried
        counter = clean_obs.metrics.REGISTRY.counter(
            "pathfinder.extensions_tried"
        )
        assert counter.value == first + second

    def test_arc_evaluations_published(self, clean_obs, charlib_poly_90):
        TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        value = clean_obs.metrics.REGISTRY.counter(
            "delaycalc.arc_evaluations"
        ).value
        assert value > 0

    def test_spans_cover_justify_and_delaycalc(self, clean_obs,
                                               charlib_poly_90):
        clean_obs.tracing.enable()
        try:
            TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        finally:
            clean_obs.tracing.enable(False)
        agg = clean_obs.tracing.aggregates()
        for name in ("pathfinder.search", "pathfinder.step",
                     "pathfinder.justify", "pathfinder.delaycalc",
                     "justify.solve"):
            assert name in agg, name
            assert agg[name]["count"] > 0
        # Nested structure: step under search, justify under step.
        root = clean_obs.tracing.tree()
        search = root.children["pathfinder.search"]
        step = search.children["pathfinder.step"]
        assert "pathfinder.justify" in step.children

    def test_complete_mode_publishes_too(self, clean_obs, charlib_poly_90):
        sta = TruePathSTA(c17(), charlib_poly_90)
        sta.enumerate_paths(complete=True)
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("pathfinder.paths_found").value == 11
        assert (registry.counter("pathfinder.justification_cubes").value
                == sta.last_stats.justification_cubes)


class TestBaselineMetrics:
    def test_report_counters_published(self, clean_obs, charlib_lut_90):
        tool = TwoStepSTA(c17(), charlib_lut_90)
        report = tool.run(max_structural_paths=100)
        registry = clean_obs.metrics.REGISTRY
        for name, value in report.as_dict().items():
            metric = registry.counter(f"baseline.{name}").value
            if name == "cpu_seconds":
                assert metric == pytest.approx(value)
            else:
                assert metric == value, name
        assert registry.counter("baseline.paths_explored",
                                circuit="c17").value == report.paths_explored

    def test_vector_counters_published(self, clean_obs, charlib_lut_90):
        circuit = techmap(random_dag("obsb", 10, 40, seed=3))
        tool = TwoStepSTA(circuit, charlib_lut_90)
        tool.run(max_structural_paths=50)
        committed = clean_obs.metrics.REGISTRY.counter(
            "baseline.vectors_committed"
        ).value
        assert committed > 0
        # Zero-valued counters still register: schema stays stable.
        assert "baseline.vectors_rejected" in clean_obs.metrics.snapshot()

    def test_effort_split_spans(self, clean_obs, charlib_lut_90):
        clean_obs.tracing.enable()
        try:
            TwoStepSTA(c17(), charlib_lut_90).run(max_structural_paths=100)
        finally:
            clean_obs.tracing.enable(False)
        agg = clean_obs.tracing.aggregates()
        assert agg["baseline.structural"]["count"] > 0
        assert agg["baseline.sensitize"]["count"] > 0

    def test_developed_vs_baseline_in_one_snapshot(self, clean_obs,
                                                   charlib_poly_90,
                                                   charlib_lut_90):
        circuit = c17()
        TruePathSTA(circuit, charlib_poly_90).enumerate_paths()
        TwoStepSTA(circuit, charlib_lut_90).run(max_structural_paths=100)
        snap = clean_obs.metrics.snapshot()
        assert "pathfinder.extensions_tried" in snap
        assert "baseline.paths_explored" in snap


class TestCharlibMetrics:
    def test_cache_hit_counted(self, clean_obs, library, tech90):
        from repro.charlib.characterize import FAST_GRID, characterize_library

        characterize_library(library, tech90, grid=FAST_GRID)  # warm disk
        clean_obs.metrics.reset()
        characterize_library(library, tech90, grid=FAST_GRID)
        registry = clean_obs.metrics.REGISTRY
        assert registry.counter("charlib.cache_hits").value == 1
        assert registry.counter("charlib.cache_misses").value == 0

    def test_cache_miss_records_fit_metrics(self, clean_obs, library, tech90,
                                            tmp_path, monkeypatch):
        from repro.charlib.characterize import FAST_GRID, characterize_library

        monkeypatch.setenv("REPRO_CHAR_CACHE", str(tmp_path))
        characterize_library(library, tech90, grid=FAST_GRID, cells=["INV"])
        snap = clean_obs.metrics.snapshot()
        assert snap["charlib.cache_misses"] == 1
        assert snap["charlib.cell_seconds{cell=INV}"]["count"] == 1
        assert snap["charlib.fit_seconds{cell=INV}"]["count"] > 0
        assert snap["charlib.fit_max_rel_error{cell=INV}"]["max"] < 0.5


class TestSnapshotHelper:
    def test_combined_snapshot_shape(self, clean_obs, charlib_poly_90):
        clean_obs.tracing.enable()
        try:
            TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        finally:
            clean_obs.tracing.enable(False)
        combined = clean_obs.snapshot()
        assert combined["pathfinder.paths_found"] == 11
        assert combined["spans"]["pathfinder.justify"]["count"] > 0
        import json

        json.dumps(combined)
