"""Tests for the Figure 4 circuit reconstruction."""

import pytest

from repro.eval.fig4 import (
    CRITICAL_NETS,
    PAPER_VECTOR_EASY,
    PAPER_VECTOR_SLOW,
    critical_path_vectors,
    fig4_circuit,
)


@pytest.fixture(scope="module")
def circuit():
    return fig4_circuit()


class TestStructure:
    def test_interface(self, circuit):
        assert circuit.inputs == [f"N{k}" for k in range(1, 8)]
        assert circuit.outputs == ["N20"]

    def test_critical_path_exists(self, circuit):
        # N1 -> U10 -> U11 -> U12(AO22 pin A) -> U20
        u12 = circuit.instances["U12"]
        assert u12.cell.name == "AO22"
        assert u12.pins["A"] == "n11"

    def test_function_under_paper_vectors(self, circuit):
        """Both paper vectors sensitize the path: toggling N1 toggles N20."""
        for vector in (PAPER_VECTOR_SLOW, PAPER_VECTOR_EASY):
            base = {k: (v if v in (0, 1) else 0) for k, v in vector.items()}
            lo = dict(base, N1=0)
            hi = dict(base, N1=1)
            assert (
                circuit.simulate(lo)["N20"] != circuit.simulate(hi)["N20"]
            ), vector

    def test_side_cone_logic(self, circuit):
        """C = N6 & ~N7, D = N6 & N7 (the easy/hard justification split)."""
        v = circuit.simulate({f"N{k}": 1 for k in range(1, 8)})
        assert v["n13"] == 0 and v["n14"] == 1
        v = circuit.simulate({**{f"N{k}": 1 for k in range(1, 8)}, "N7": 0})
        assert v["n13"] == 1 and v["n14"] == 0
        v = circuit.simulate({**{f"N{k}": 1 for k in range(1, 8)}, "N6": 0})
        assert v["n13"] == 0 and v["n14"] == 0


class TestVectorSemantics:
    def test_easy_vector_is_ao22_case1(self, circuit):
        """N6=0 makes both AO22 side inputs C and D zero: case 1."""
        base = {k: (v if v in (0, 1) else 0) for k, v in PAPER_VECTOR_EASY.items()}
        v = circuit.simulate(dict(base, N1=1))
        u12 = circuit.instances["U12"]
        assert v[u12.pins["B"]] == 1
        assert v[u12.pins["C"]] == 0
        assert v[u12.pins["D"]] == 0

    def test_slow_vector_is_ao22_case2(self, circuit):
        """N6=1, N7=0 drives C=1, D=0: case 2, the slow one."""
        base = {k: v for k, v in PAPER_VECTOR_SLOW.items() if v in (0, 1)}
        v = circuit.simulate(dict(base, N1=1))
        u12 = circuit.instances["U12"]
        assert v[u12.pins["C"]] == 1
        assert v[u12.pins["D"]] == 0

    def test_critical_filter(self, charlib_poly_90, circuit):
        from repro.core.sta import TruePathSTA

        sta = TruePathSTA(circuit, charlib_poly_90)
        paths = sta.enumerate_paths()
        critical = critical_path_vectors(paths)
        assert len(critical) == 3
        assert all(p.nets == CRITICAL_NETS for p in critical)
