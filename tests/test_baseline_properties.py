"""Property-based tests of the structural enumerator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.structural import StructuralEnumerator
from repro.core.delaycalc import DelayCalculator
from repro.core.engine import EngineCircuit
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def make_enum(seed, charlib):
    circuit = techmap(random_dag(f"sp{seed}", 10, 45, seed=seed))
    ec = EngineCircuit(circuit)
    calc = DelayCalculator(ec, charlib, vector_blind=True)
    return circuit, ec, StructuralEnumerator(ec, calc)


class TestEnumerationProperties:
    @given(st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_longest_first_and_complete(self, seed, ):
        from repro.charlib.characterize import FAST_GRID, characterize_library
        from repro.gates.library import default_library
        from repro.tech.presets import TECHNOLOGIES

        charlib = characterize_library(
            default_library(), TECHNOLOGIES["90nm"], grid=FAST_GRID,
            model="lut", vector_mode="default",
        )
        circuit, ec, enum = make_enum(seed, charlib)
        paths = list(enum.iter_paths())
        # Complete: matches the DP count.
        assert len(paths) == enum.count_paths()
        # Ordered: non-increasing structural delay.
        delays = [p.structural_delay for p in paths]
        assert all(a >= b - 1e-18 for a, b in zip(delays, delays[1:]))
        # Distinct hop sequences.
        assert len({p.hops for p in paths}) == len(paths)
        # Well-formed: each path starts at an input, ends at an output.
        for p in paths[:50]:
            assert ec.is_input[p.origin_net]
            assert ec.is_output[p.terminal_net]
            # hops are connected
            current = p.origin_net
            for gate_index, pin in p.hops:
                gate = ec.gates[gate_index]
                assert ec.net_id[gate.inst.pins[pin]] == current
                current = gate.output_net

    def test_limit_prefix_property(self, charlib_lut_90):
        """iter_paths(limit=k) is a prefix of the full enumeration."""
        _c, _ec, enum = make_enum(42, charlib_lut_90)
        full = [p.hops for p in enum.iter_paths()]
        short = [p.hops for p in enum.iter_paths(limit=5)]
        assert short == full[:5]
