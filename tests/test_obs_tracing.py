"""Span nesting, aggregation and the disabled-mode no-op path."""

import time

import pytest

from repro.obs import tracing


@pytest.fixture
def enabled(clean_obs):
    tracing.enable()
    yield
    tracing.enable(False)
    tracing.reset()


class TestDisabledMode:
    def test_disabled_by_default(self, clean_obs):
        assert not tracing.enabled()

    def test_noop_is_shared_singleton(self, clean_obs):
        # The no-op path allocates nothing: every disabled span() call
        # hands back the same object regardless of name.
        a = tracing.span("pathfinder.justify")
        b = tracing.span("anything.else")
        assert a is b

    def test_noop_records_nothing(self, clean_obs):
        with tracing.span("ghost"):
            pass
        assert tracing.aggregates() == {}

    def test_noop_does_not_swallow_exceptions(self, clean_obs):
        with pytest.raises(RuntimeError):
            with tracing.span("ghost"):
                raise RuntimeError("boom")


class TestEnabledMode:
    def test_records_count_and_time(self, enabled):
        for _ in range(3):
            with tracing.span("work"):
                time.sleep(0.001)
        agg = tracing.aggregates()
        assert agg["work"]["count"] == 3
        assert agg["work"]["total_s"] >= 0.003
        assert agg["work"]["mean_s"] == pytest.approx(
            agg["work"]["total_s"] / 3
        )

    def test_nesting_builds_tree(self, enabled):
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
            with tracing.span("inner"):
                pass
        root = tracing.tree()
        outer = root.children["outer"]
        assert outer.count == 1
        inner = outer.children["inner"]
        assert inner.count == 2
        assert inner.total <= outer.total

    def test_same_name_same_parent_aggregates(self, enabled):
        for _ in range(5):
            with tracing.span("step"):
                pass
        assert tracing.tree().children["step"].count == 5
        assert len(tracing.tree().children) == 1

    def test_self_total_excludes_children(self, enabled):
        with tracing.span("parent"):
            with tracing.span("child"):
                time.sleep(0.002)
        parent = tracing.tree().children["parent"]
        assert parent.self_total == pytest.approx(
            parent.total - parent.children["child"].total
        )

    def test_exception_still_closes_span(self, enabled):
        with pytest.raises(ValueError):
            with tracing.span("risky"):
                raise ValueError
        assert tracing.aggregates()["risky"]["count"] == 1
        # The stack unwound; a new root-level span is not nested under it.
        with tracing.span("after"):
            pass
        assert "after" in tracing.tree().children

    def test_aggregates_merge_across_positions(self, enabled):
        with tracing.span("a"):
            with tracing.span("shared"):
                pass
        with tracing.span("b"):
            with tracing.span("shared"):
                pass
        assert tracing.aggregates()["shared"]["count"] == 2

    def test_render_mentions_spans(self, enabled):
        with tracing.span("alpha"):
            with tracing.span("beta"):
                pass
        text = tracing.render()
        assert "alpha" in text and "beta" in text
        # Child indented deeper than parent.
        alpha_line = next(l for l in text.splitlines() if "alpha" in l)
        beta_line = next(l for l in text.splitlines() if "beta" in l)
        indent = lambda s: len(s) - len(s.lstrip())
        assert indent(beta_line) > indent(alpha_line)

    def test_reset_drops_spans(self, enabled):
        with tracing.span("x"):
            pass
        tracing.reset()
        assert tracing.aggregates() == {}

    def test_render_empty_tree(self, enabled):
        tracing.reset()
        assert "no spans" in tracing.render()

    def test_span_dict_export(self, enabled):
        with tracing.span("x"):
            with tracing.span("y"):
                pass
        node = tracing.tree().children["x"]
        exported = node.as_dict()
        assert exported["count"] == 1
        assert "y" in exported["children"]
