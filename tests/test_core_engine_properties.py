"""Property-based tests of the engine state machine.

The checkpoint/rollback trail is the foundation the whole search rests
on: after any interleaving of assignments, propagations, requirement
pushes and rollbacks, rolling back to a checkpoint must restore the
exact values, aliveness and obligation list captured at that
checkpoint.  Hypothesis drives random operation sequences against a
reference snapshot model.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineCircuit, EngineState, FALLING, RISING
from repro.core.logic_values import Value9
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap


def snapshot(state: EngineState):
    return (
        [list(state.values[0]), list(state.values[1])],
        list(state.alive),
        list(state.obligations),
    )


@st.composite
def operation_sequences(draw):
    """(circuit seed, list of operations)."""
    seed = draw(st.integers(0, 500))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["assign", "require", "propagate",
                                 "checkpoint", "rollback"]),
                st.integers(0, 10_000),
            ),
            min_size=4,
            max_size=30,
        )
    )
    return seed, ops


class TestTrailIntegrity:
    @given(operation_sequences())
    @settings(max_examples=40, deadline=None)
    def test_rollback_restores_snapshots(self, case):
        seed, ops = case
        circuit = techmap(random_dag(f"prop{seed}", 6, 18, seed=seed))
        ec = EngineCircuit(circuit)
        state = EngineState(ec)
        marks = []  # (trail mark, snapshot)

        values_pool = [Value9.S0, Value9.S1, Value9.RISE, Value9.FALL,
                       Value9.X0, Value9.X1]
        for op, arg in ops:
            if op == "assign":
                net = arg % ec.num_nets
                value = values_pool[arg % len(values_pool)]
                comp = RISING if arg % 2 else FALLING
                state.assign(net, value, comp)
            elif op == "require":
                net = arg % ec.num_nets
                state.require_steady(net, arg % 2)
            elif op == "propagate":
                state.propagate()
            elif op == "checkpoint":
                marks.append((state.checkpoint(), snapshot(state)))
            elif op == "rollback" and marks:
                index = arg % len(marks)
                mark, snap = marks[index]
                state.rollback(mark)
                assert snapshot(state) == snap
                del marks[index:]
        # Finally, unwind everything: state must be pristine.
        state.rollback(0)
        assert all(v == Value9.XX for comp in state.values for v in comp)
        assert state.alive == [True, True]
        assert state.obligations == []

    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_propagation_is_idempotent(self, seed):
        circuit = techmap(random_dag(f"idem{seed}", 6, 16, seed=seed))
        ec = EngineCircuit(circuit)
        state = EngineState(ec)
        origin = ec.input_ids[seed % len(ec.input_ids)]
        state.assign(origin, Value9.RISE, RISING)
        state.assign(origin, Value9.FALL, FALLING)
        state.propagate()
        snap = snapshot(state)
        state.propagate()
        assert snapshot(state) == snap

    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_implication_matches_three_valued_simulation(self, seed):
        """Forward propagation of steady PI values equals simulate3."""
        circuit = techmap(random_dag(f"s3{seed}", 8, 20, seed=seed))
        ec = EngineCircuit(circuit)
        state = EngineState(ec)
        assigned = {}
        for k, name in enumerate(circuit.inputs):
            if (seed >> k) & 1:
                bit = (seed >> (k + 3)) & 1
                assigned[name] = bit
                state.assign(ec.net_id[name], Value9.steady(bit), RISING)
                state.assign(ec.net_id[name], Value9.steady(bit), FALLING)
        assert state.propagate()
        reference = circuit.simulate3(assigned)
        for net_name, expected in reference.items():
            value = state.values[RISING][ec.net_id[net_name]]
            final = Value9.final_of(value)
            if expected is None:
                # The engine may know MORE than plain 3-valued forward
                # simulation never... it cannot: same mechanism.
                assert final is None, net_name
            else:
                assert final == expected, net_name
