"""Tests for the Figures 2-3 transistor-level analysis."""

import pytest

from repro.eval.exp_fig23 import analyses_for, run
from repro.eval.transistor_report import (
    OFF,
    ON,
    TURNS_OFF,
    TURNS_ON,
    analyze_vector,
)
from repro.gates.library import default_library
from repro.tech.presets import TECHNOLOGIES


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def tech():
    return TECHNOLOGIES["130nm"]


class TestAnalyzeVector:
    def test_inverter_states(self, lib, tech):
        inv = lib["INV"]
        vec = inv.sensitization_vectors("A")[0]
        analysis = analyze_vector(inv, tech, vec, input_rising=True)
        states = {d.kind: d.state for d in analysis.devices}
        assert states["n"] == TURNS_ON
        assert states["p"] == TURNS_OFF

    def test_ao22_case1_parallel_pmos_on(self, lib, tech):
        """Fig. 2a: falling A, sides B=1 C=0 D=0 -> pC and pD both ON."""
        ao22 = lib["AO22"]
        case1 = ao22.sensitization_vectors("A")[0]
        analysis = analyze_vector(ao22, tech, case1, input_rising=False)
        pmos_on = [d for d in analysis.devices if d.kind == "p" and d.state == ON]
        assert len(pmos_on) == 2
        assert {d.gate for d in pmos_on} == {"C", "D"}

    def test_ao22_pa_switches_on_fall(self, lib, tech):
        ao22 = lib["AO22"]
        case1 = ao22.sensitization_vectors("A")[0]
        analysis = analyze_vector(ao22, tech, case1, input_rising=False)
        pa = next(
            d for d in analysis.devices if d.kind == "p" and d.gate == "A"
        )
        assert pa.state == TURNS_ON  # falling input turns the PMOS on

    def test_ao22_case2_charge_stealer(self, lib, tech):
        """Fig. 2b: case 2 has the NMOS gated by C ON, touching the core
        output node (the charge-stealing path of the paper's analysis)."""
        ao22 = lib["AO22"]
        case2 = ao22.sensitization_vectors("A")[1]
        analysis = analyze_vector(ao22, tech, case2, input_rising=False)
        nc = next(d for d in analysis.devices if d.kind == "n" and d.gate == "C")
        assert nc.state == ON
        assert "Y" in (nc.a, nc.b)  # adjacent to the switching core node

    def test_ao22_case3_no_stealer_at_output(self, lib, tech):
        """Fig. 2c: case 3's extra ON NMOS (gate D) sits below the stack,
        isolated from the core output -- hence case 3 < case 2 delay."""
        ao22 = lib["AO22"]
        case3 = ao22.sensitization_vectors("A")[2]
        analysis = analyze_vector(ao22, tech, case3, input_rising=False)
        nd = next(d for d in analysis.devices if d.kind == "n" and d.gate == "D")
        assert nd.state == ON
        assert "Y" not in (nd.a, nd.b)

    def test_oa12_case3_parallel_nmos(self, lib, tech):
        """Fig. 3c: rising C with A=B=1 -> nA and nB both ON (fastest)."""
        oa12 = lib["OA12"]
        case3 = oa12.sensitization_vectors("C")[2]
        analysis = analyze_vector(oa12, tech, case3, input_rising=True)
        nmos_on = [d for d in analysis.devices if d.kind == "n" and d.state == ON]
        assert {d.gate for d in nmos_on} == {"A", "B"}


class TestRun:
    def test_summary_counts(self, tech):
        result = run(tech=tech)
        summary = result["summary"]
        assert summary["fig2_pmos_on_per_case"] == {1: 2, 2: 1, 3: 1}
        assert summary["fig3_nmos_on_per_case"][3] == 2
        assert summary["fig3_nmos_on_per_case"][1] == 1

    def test_text_mentions_cases(self, tech):
        result = run(tech=tech)
        assert "case 1" in result["text"]
        assert "Figure 3" in result["text"]

    def test_analyses_for(self, tech):
        analyses = analyses_for("AO22", "A", input_rising=False, tech=tech)
        assert [a.case for a in analyses] == [1, 2, 3]
        assert all(not a.input_rising for a in analyses)
