"""Merge edge cases of the parallel driver (repro.perf.parallel).

test_perf_parallel.py covers bulk serial/parallel equivalence on
generated circuits; this module pins the merge corners: shards that
contribute nothing, a single-origin circuit (jobs clamp), stats
merging across empty shards, and the max_paths truncation point.
"""

from __future__ import annotations

import pytest

from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit
from repro.perf import parallel_find_paths


def _key(path):
    return (path.nets, path.vector_signature,
            tuple(pytest.approx(p.arrival) for p in path.polarities()))


def _dead_input_circuit(library):
    """b's cone is blocked: NAND2(m, !m) is constantly 1, so the shard
    for origin b finds zero paths while a's shard is live."""
    c = Circuit("deadshard", library)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("INV", "x", {"A": "a"})
    c.add_gate("INV", "m", {"A": "b"})
    c.add_gate("INV", "mn", {"A": "m"})
    c.add_gate("NAND2", "blocked", {"A": "m", "B": "mn"})
    c.add_gate("AND2", "out", {"A": "x", "B": "blocked"})
    c.add_output("out")
    c.check()
    return c


class TestEmptyShard:
    def test_merge_skips_empty_shard(self, charlib_small_90, library):
        circuit = _dead_input_circuit(library)
        serial = TruePathSTA(circuit, charlib_small_90).enumerate_paths()
        assert serial, "sanity: the live origin must yield paths"
        assert all(p.nets[0] == "a" for p in serial)
        paths, stats = parallel_find_paths(
            circuit, charlib_small_90, jobs=2
        )
        assert [_key(p) for p in paths] == [_key(p) for p in serial]
        assert stats.paths_found == len(serial)

    def test_stats_merge_counts_empty_shard_effort(self, charlib_small_90,
                                                   library):
        """The blocked origin's search effort (extensions, conflicts)
        still lands in the merged stats even though it found nothing."""
        circuit = _dead_input_circuit(library)
        sta = TruePathSTA(circuit, charlib_small_90)
        sta.enumerate_paths()
        serial_stats = sta.last_stats
        _paths, merged = parallel_find_paths(circuit, charlib_small_90,
                                             jobs=2)
        assert merged.extensions_tried == serial_stats.extensions_tried
        assert merged.conflicts == serial_stats.conflicts

    def test_no_live_origin_at_all(self, charlib_small_90, library):
        c = Circuit("allblocked", library)
        c.add_input("b")
        c.add_gate("INV", "m", {"A": "b"})
        c.add_gate("INV", "mn", {"A": "m"})
        c.add_gate("NAND2", "out", {"A": "m", "B": "mn"})
        c.add_output("out")
        c.check()
        paths, stats = parallel_find_paths(c, charlib_small_90, jobs=2)
        assert paths == []
        assert stats.paths_found == 0


class TestSingleOrigin:
    def _chain(self, library):
        c = Circuit("mono", library)
        c.add_input("a")
        c.add_gate("INV", "x", {"A": "a"})
        c.add_gate("INV", "y", {"A": "x"})
        c.add_gate("BUF", "out", {"A": "y"})
        c.add_output("out")
        c.check()
        return c

    def test_jobs_clamped_to_origin_count(self, charlib_small_90, library):
        circuit = self._chain(library)
        serial = TruePathSTA(circuit, charlib_small_90).enumerate_paths()
        # jobs=8 on a one-input circuit must clamp, not spawn idle
        # workers or duplicate the shard.
        paths, stats = parallel_find_paths(circuit, charlib_small_90, jobs=8)
        assert [_key(p) for p in paths] == [_key(p) for p in serial]
        assert stats.paths_found == len(serial)

    def test_jobs_zero_rejected(self, charlib_small_90, library):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            parallel_find_paths(self._chain(library), charlib_small_90,
                                jobs=0)


class TestOrderAndTruncation:
    def test_merge_preserves_origin_declaration_order(self, charlib_poly_90):
        from repro.netlist.generate import c17

        serial = TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        paths, _stats = parallel_find_paths(c17(), charlib_poly_90, jobs=3)
        assert [_key(p) for p in paths] == [_key(p) for p in serial]

    def test_max_paths_truncates_merged_stream(self, charlib_poly_90):
        from repro.netlist.generate import c17

        serial = TruePathSTA(c17(), charlib_poly_90).enumerate_paths()
        limit = max(1, len(serial) // 2)
        paths, _stats = parallel_find_paths(
            c17(), charlib_poly_90, jobs=2, max_paths=limit
        )
        assert len(paths) == limit
        # The kept prefix is origin-ordered like an early-stopped
        # serial run (per-shard streams are serial-identical).
        serial_by_key = {(_p.nets, _p.vector_signature) for _p in serial}
        assert all((p.nets, p.vector_signature) in serial_by_key
                   for p in paths)
