// Shrunk fuzz counterexample (run_fuzz seed=3, index=25, gate_range 20-60).
// Techmap tied I0 to the A and C pins of an AO21 (Z = A*B + C), so a
// toggle on I0 is multi-pin switching: dynamically the output follows,
// but no single pin is statically sensitized with its side inputs held.
// Exercises the oracle's same-net multi-pin cleanliness exclusion.
module multipin_ao21 (I0, I4, n46);
  input I0, I4;
  output n46;
  AO21 U49 (.A(I0), .B(I4), .C(I0), .Z(n46));
endmodule
