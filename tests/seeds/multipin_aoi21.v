// Shrunk fuzz counterexample (run_fuzz seed=3, index=41, gate_range 20-60).
// Inverting variant of the AO21 case: I2 drives the A and C pins of an
// AOI21 (Z = !(A*B + C)).  Same multi-pin-switching corner, opposite
// output polarity, so both inverting and non-inverting complex cells
// stay covered.
module multipin_aoi21 (I2, I4, n33);
  input I2, I4;
  output n33;
  AOI21 U34 (.A(I2), .B(I4), .C(I2), .Z(n33));
endmodule
