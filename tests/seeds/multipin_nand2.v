// Shrunk fuzz counterexample (run_fuzz seed=3, index=21, gate_range 20-60).
// One net tied to both pins of a NAND2: toggling I1 switches A and B
// simultaneously, which no single-input-switching static sensitization
// covers.  The oracle originally hard-failed this ("cleanly sensitizable
// but no true path") because its cleanliness proof ignored side pins
// sharing the causing net; pinned so the corrected multi-pin check never
// regresses.
module multipin_nand2 (I1, n32);
  input I1;
  output n32;
  NAND2 U27 (.A(I1), .B(I1), .Z(n32));
endmodule
