"""Unit tests for the ISCAS .bench reader/writer."""

import itertools

import pytest

from repro.netlist.bench import (
    C17_BENCH,
    BenchParseError,
    parse_bench,
    write_bench,
)
from repro.netlist.techmap import equivalent


class TestParse:
    def test_c17(self):
        c = parse_bench(C17_BENCH, name="c17")
        assert c.num_gates == 6
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert all(i.cell.name == "NAND2" for i in c.instances.values())

    def test_c17_function(self):
        c = parse_bench(C17_BENCH)
        # Published c17 logic: G22 = NAND(G10,G16), G23 = NAND(G16,G19)
        v = c.simulate({"G1": 0, "G2": 0, "G3": 1, "G6": 1, "G7": 1})
        g10 = 1 - (0 & 1)
        g11 = 1 - (1 & 1)
        g16 = 1 - (0 & g11)
        g19 = 1 - (g11 & 1)
        assert v["G22"] == 1 - (g10 & g16)
        assert v["G23"] == 1 - (g16 & g19)

    def test_comments_and_blank_lines(self):
        text = """
        # comment
        INPUT(a)  # trailing
        INPUT(b)
        OUTPUT(z)
        z = AND(a, b)
        """
        c = parse_bench(text)
        assert c.simulate({"a": 1, "b": 1})["z"] == 1

    def test_not_and_buff(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = BUFF(a)\n")
        assert c.simulate({"a": 1}) == {"a": 1, "y": 0, "z": 1}

    def test_file_object(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        with open(path) as handle:
            c = parse_bench(handle, name="c17")
        assert c.num_gates == 6

    @pytest.mark.parametrize(
        "keyword,fn",
        [
            ("AND", lambda bits: all(bits)),
            ("OR", lambda bits: any(bits)),
            ("NAND", lambda bits: not all(bits)),
            ("NOR", lambda bits: not any(bits)),
            ("XOR", lambda bits: sum(bits) % 2 == 1),
            ("XNOR", lambda bits: sum(bits) % 2 == 0),
        ],
    )
    @pytest.mark.parametrize("width", [2, 3, 5, 7])
    def test_wide_gate_decomposition(self, keyword, fn, width):
        """Fan-in beyond the library maximum decomposes exactly."""
        nets = [f"i{k}" for k in range(width)]
        text = "\n".join(
            [f"INPUT({n})" for n in nets]
            + ["OUTPUT(z)", f"z = {keyword}({', '.join(nets)})"]
        )
        c = parse_bench(text)
        for bits in itertools.product((0, 1), repeat=width):
            values = dict(zip(nets, bits))
            assert c.simulate(values)["z"] == (1 if fn(bits) else 0), (keyword, bits)

    def test_errors(self):
        with pytest.raises(BenchParseError, match="cannot parse"):
            parse_bench("INPUT(a)\nz AND(a)\n")
        with pytest.raises(BenchParseError, match="unknown gate"):
            parse_bench("INPUT(a)\nINPUT(b)\nz = FROB(a, b)\n")
        with pytest.raises(BenchParseError, match="one operand"):
            parse_bench("INPUT(a)\nINPUT(b)\nz = NOT(a, b)\n")
        with pytest.raises(BenchParseError, match=">= 2"):
            parse_bench("INPUT(a)\nz = AND(a)\n")


class TestWrite:
    def test_roundtrip_c17(self):
        c = parse_bench(C17_BENCH, name="c17")
        again = parse_bench(write_bench(c), name="c17rt")
        assert equivalent(c, again)

    def test_complex_cell_rejected(self):
        from repro.netlist.circuit import Circuit

        c = Circuit("x")
        for n in ("a", "b", "c", "d"):
            c.add_input(n)
        c.add_gate("AO22", "z", {"A": "a", "B": "b", "C": "c", "D": "d"})
        c.add_output("z")
        with pytest.raises(ValueError, match="unmap"):
            write_bench(c)
