"""Warm-state persistence: snapshots are verified, never trusted.

Unit tests cover the :class:`WarmStateStore` trust model -- atomic
round-trip, and a discard (plus counter) for every corruption class:
unreadable bytes, version skew, digest mismatch, malformed shapes,
staleness.  Integration tests certify the daemon-level story: a
drained server re-warms its result memo on reboot, and ``repro serve``
under SIGTERM drains gracefully (snapshot written, exit code 0).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.service import ServiceClient, ServiceConfig, WarmStateStore
from repro.service.cache import ResultMemo
from repro.service.persistence import SNAPSHOT_VERSION, _digest
from repro.service.server import start_in_thread

MEMO_ITEMS = [
    ("fp-1", {"kind": "result", "op": "analyze", "report": "first"}),
    ("fp-2", {"kind": "result", "op": "analyze", "report": "second"}),
]
CONTEXT_KEYS = [
    ("analyze", "iscas:c17", False, "90nm", "pathfinder", "error", True),
]


def _store(tmp_path, **kwargs) -> WarmStateStore:
    return WarmStateStore(tmp_path / "warm.json", **kwargs)


# ---------------------------------------------------------------------------
# Store unit tests


def test_snapshot_round_trip(tmp_path):
    store = _store(tmp_path)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    state = store.load()
    assert state is not None
    assert state["memo"] == MEMO_ITEMS
    assert state["contexts"] == CONTEXT_KEYS
    assert state["saved_at"] <= time.time()
    assert obs.counter("service.snapshots_written").value == 1
    assert obs.counter("service.snapshot_restores").value == 1
    assert obs.counter("service.snapshot_restored_entries").value == 2
    assert obs.counter("service.snapshot_discarded").value == 0


def test_missing_snapshot_is_a_silent_cold_start(tmp_path):
    assert _store(tmp_path).load() is None
    assert obs.counter("service.snapshot_discarded").value == 0


def _assert_discarded(store):
    assert store.load() is None
    assert obs.counter("service.snapshot_discarded").value >= 1
    assert obs.counter("service.snapshot_restores").value == 0


def test_truncated_snapshot_discarded(tmp_path):
    store = _store(tmp_path)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    text = store.path.read_text()
    store.path.write_text(text[:len(text) // 2])
    _assert_discarded(store)


def test_version_skew_discarded(tmp_path):
    store = _store(tmp_path)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    document = json.loads(store.path.read_text())
    document["version"] = SNAPSHOT_VERSION + 1
    store.path.write_text(json.dumps(document))
    _assert_discarded(store)


def test_digest_mismatch_discarded(tmp_path):
    store = _store(tmp_path)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    document = json.loads(store.path.read_text())
    # Well-formed JSON, tampered payload: only the digest guard can
    # catch this.
    document["payload"]["memo"][0][1]["report"] = "poisoned"
    store.path.write_text(json.dumps(document))
    _assert_discarded(store)


def test_malformed_memo_entries_discarded(tmp_path):
    store = _store(tmp_path)
    payload = {"memo": [["fp-1", "not-a-dict"]], "contexts": [],
               "saved_at": time.time()}
    document = {"version": SNAPSHOT_VERSION, "digest": _digest(payload),
                "payload": payload}
    store.path.write_text(json.dumps(document))
    _assert_discarded(store)


def test_stale_snapshot_discarded(tmp_path):
    store = _store(tmp_path, max_age_s=0.05)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    time.sleep(0.1)
    _assert_discarded(store)


def test_atomic_write_leaves_no_temporary(tmp_path):
    store = _store(tmp_path)
    store.save(MEMO_ITEMS, CONTEXT_KEYS)
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.name != store.path.name]
    assert not leftovers, f"non-atomic write artifacts: {leftovers}"


# ---------------------------------------------------------------------------
# Memo restore semantics


def test_memo_restore_never_clobbers_live_entries():
    memo = ResultMemo(max_entries=8)
    memo.put("fp-1", {"report": "live"})
    restored = memo.restore([("fp-1", {"report": "snapshotted"}),
                             ("fp-2", {"report": "second"})])
    assert restored == 1
    assert memo.get("fp-1") == {"report": "live"}
    assert memo.get("fp-2") == {"report": "second"}


def test_memo_restore_respects_capacity():
    memo = ResultMemo(max_entries=2)
    kept = memo.restore([(f"fp-{i}", {"i": i}) for i in range(5)])
    assert kept == 5  # all were new ...
    assert len(memo) == 2  # ... but capacity still rules


# ---------------------------------------------------------------------------
# Daemon-level warm restart


def test_drained_server_rewarns_memo_on_reboot(tmp_path):
    snapshot = str(tmp_path / "warm.json")
    config = dict(heartbeat_interval=0.1, snapshot_path=snapshot,
                  snapshot_interval_s=3600.0)
    first = start_in_thread(ServiceConfig(**config))
    try:
        with ServiceClient(first.host, first.port, timeout=120.0) as c:
            cold = c.call("analyze", {"netlist": "iscas:c17", "top": 3})
    finally:
        first.drain()  # graceful: writes the exit snapshot
    assert os.path.exists(snapshot)

    second = start_in_thread(ServiceConfig(**config))
    try:
        with ServiceClient(second.host, second.port, timeout=120.0) as c:
            warm = c.call("analyze", {"netlist": "iscas:c17", "top": 3})
    finally:
        second.stop()
    assert warm["cached"] is True, \
        "reboot did not restore the result memo"
    assert warm["report"] == cold["report"]


def test_shutdown_op_snapshots_like_a_drain(tmp_path):
    snapshot = str(tmp_path / "warm.json")
    handle = start_in_thread(ServiceConfig(
        heartbeat_interval=0.1, snapshot_path=snapshot,
        snapshot_interval_s=3600.0))
    with ServiceClient(handle.host, handle.port, timeout=120.0) as c:
        c.call("analyze", {"netlist": "iscas:c17"})
        reply = c.call("shutdown")
    assert reply["stopping"] is True
    handle.thread.join(30.0)
    assert not handle.thread.is_alive()
    assert os.path.exists(snapshot)


# ---------------------------------------------------------------------------
# SIGTERM on `repro serve`: the graceful drain path


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigterm_drains_snapshots_and_exits_zero(tmp_path):
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]]
                      if env.get("PYTHONPATH") else []))
    port_file = tmp_path / "port"
    snapshot = tmp_path / "warm.json"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--port-file", str(port_file),
         "--snapshot", str(snapshot), "--heartbeat-interval", "0.2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    try:
        deadline = time.monotonic() + 60.0
        while not port_file.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        with ServiceClient("127.0.0.1", port, timeout=120.0) as c:
            result = c.call("analyze", {"netlist": "iscas:c17"})
            assert result["kind"] == "result"
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60.0)
    except BaseException:
        proc.kill()
        raise
    assert proc.returncode == 0, \
        f"serve exited {proc.returncode}; stderr:\n{stderr}"
    assert "SIGTERM: draining" in stderr
    assert snapshot.exists(), "drain wrote no warm-state snapshot"
    state = WarmStateStore(snapshot).load()
    assert state is not None and state["memo"], \
        "snapshot restored empty after a served request"
