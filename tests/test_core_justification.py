"""Unit tests for backward justification."""

import pytest

from repro.core.engine import EngineCircuit, EngineState
from repro.core.justification import Justifier, JustifyResult
from repro.netlist.circuit import Circuit


def build(fn):
    c = Circuit("j")
    fn(c)
    c.check()
    return EngineCircuit(c)


def two_level(c):
    c.add_input("a")
    c.add_input("b")
    c.add_input("d")
    c.add_gate("AND2", "n1", {"A": "a", "B": "b"}, name="U1")
    c.add_gate("OR2", "n2", {"A": "n1", "B": "d"}, name="U2")
    c.add_output("n2")


def reconvergent(c):
    """z = AND(a, NOT a) is constant 0: requiring z=1 is unsatisfiable."""
    c.add_input("a")
    c.add_gate("INV", "an", {"A": "a"}, name="U1")
    c.add_gate("AND2", "z", {"A": "a", "B": "an"}, name="U2")
    c.add_output("z")


class TestSimple:
    def test_trivial_no_obligations(self):
        ec = build(two_level)
        state = EngineState(ec)
        assert Justifier(state).justify() is JustifyResult.SAT

    def test_justify_and_output(self):
        ec = build(two_level)
        state = EngineState(ec)
        assert state.require_steady(ec.net_id["n1"], 1)
        state.propagate()
        result = Justifier(state).justify()
        assert result is JustifyResult.SAT
        # AND2 = 1 forces both inputs to 1.
        from repro.core.logic_values import Value9

        assert state.values[0][ec.net_id["a"]] == Value9.S1
        assert state.values[0][ec.net_id["b"]] == Value9.S1

    def test_justify_chain(self):
        ec = build(two_level)
        state = EngineState(ec)
        assert state.require_steady(ec.net_id["n2"], 1)
        state.propagate()
        assert Justifier(state).justify() is JustifyResult.SAT
        # some PI assignment now forces n2=1
        assert state.first_unjustified() is None

    def test_easiest_cube_first(self):
        """OR2 = 1 should justify with a single-literal cube."""
        ec = build(two_level)
        state = EngineState(ec)
        state.require_steady(ec.net_id["n2"], 1)
        state.propagate()
        Justifier(state).justify()
        # easiest-first picks n1=1 (cube of size 1 on the first pin)...
        # either way exactly one extra chain is assigned; verify the
        # circuit implies the requirement with the final PI values.
        vec = state.input_vector(0)
        known = {k: v for k, v in vec.items() if v in (0, 1)}
        sim = ec.circuit.simulate3(known)
        assert sim["n2"] == 1


class TestUnsat:
    def test_constant_zero_node(self):
        ec = build(reconvergent)
        state = EngineState(ec)
        mark = state.checkpoint()
        assert state.require_steady(ec.net_id["z"], 1)
        state.propagate()
        result = Justifier(state).justify()
        assert result is JustifyResult.UNSAT

    def test_state_restored_after_unsat(self):
        ec = build(reconvergent)
        state = EngineState(ec)
        state.require_steady(ec.net_id["z"], 1)
        state.propagate()
        trail_before = state.checkpoint()
        Justifier(state).justify()
        assert state.checkpoint() == trail_before  # rolled back cleanly


class TestBacktracking:
    def build_xor_like(self):
        """n = OR(AND(a, b), AND(a', c)); justifying specific deeper
        requirements forces cube backtracking."""

        def fn(c):
            c.add_input("a")
            c.add_input("b")
            c.add_input("c")
            c.add_gate("INV", "an", {"A": "a"}, name="U0")
            c.add_gate("AND2", "p", {"A": "a", "B": "b"}, name="U1")
            c.add_gate("AND2", "q", {"A": "an", "B": "c"}, name="U2")
            c.add_gate("OR2", "z", {"A": "p", "B": "q"}, name="U3")
            c.add_output("z")

        return build(fn)

    def test_conflicting_requirements_need_backtrack(self):
        ec = self.build_xor_like()
        state = EngineState(ec)
        # Force p=0 first, then require z=1: the easy cube p=1 clashes,
        # so justification must fall back to q=1.
        assert state.require_steady(ec.net_id["p"], 0)
        state.propagate()
        assert Justifier(state).justify() is JustifyResult.SAT
        state.require_steady(ec.net_id["z"], 1)
        state.propagate()
        justifier = Justifier(state)
        assert justifier.justify() is JustifyResult.SAT
        vec = state.input_vector(0)
        known = {k: v for k, v in vec.items() if v in (0, 1)}
        assert ec.circuit.simulate3(known)["z"] == 1

    def test_backtrack_limit_aborts(self):
        ec = self.build_xor_like()
        state = EngineState(ec)
        state.require_steady(ec.net_id["p"], 0)
        state.propagate()
        Justifier(state).justify()
        state.require_steady(ec.net_id["z"], 1)
        state.propagate()
        justifier = Justifier(state, backtrack_limit=0)
        assert justifier.justify() in (JustifyResult.ABORTED, JustifyResult.SAT)

    def test_backtracks_counted(self):
        ec = build(reconvergent)
        state = EngineState(ec)
        state.require_steady(ec.net_id["z"], 1)
        state.propagate()
        justifier = Justifier(state)
        justifier.justify()
        assert justifier.backtracks >= 1
