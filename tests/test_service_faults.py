"""Served requests under injected pool-worker faults.

Certifies the server-side recovery story end to end via
:func:`repro.verify.faults.run_server_faults`: a request whose workers
are hard-killed mid-search must either recover to a byte-identical
report (retry path) or degrade honestly with sound GBA bounds
(fallback disabled).  The victim origins are drawn from the per-test
seed (``REPRO_TEST_SEED`` replays the exact kill schedule).
"""

from __future__ import annotations

import pytest

from repro.service import ServiceClient, ServiceError, ServiceConfig
from repro.service.server import start_in_thread
from repro.verify import SERVER_FAULT_SCENARIOS, run_server_faults


def test_server_fault_scenarios_recover(service_seed):
    # One server boot covers both scenarios (each spawns jobs=2 pools).
    report = run_server_faults(
        "iscas:c432@0.1", seed=service_seed % (1 << 16), jobs=2)
    assert [s.name for s in report.scenarios] == \
        list(SERVER_FAULT_SCENARIOS)
    assert report.ok, report.describe()

    crash = report.scenarios[0]
    assert crash.recovery.get("resilience.worker_crashes", 0) >= 1
    assert crash.recovery.get("resilience.shard_retries", 0) >= 1

    degraded = report.scenarios[1]
    assert degraded.recovery.get("resilience.degraded_origins", 0) >= 1
    assert "sound bound" in degraded.detail

    fleet_kill = report.scenarios[2]
    assert fleet_kill.recovery.get("service.worker_crashes", 0) >= 1
    assert fleet_kill.recovery.get("service.request_retries", 0) >= 1

    restart = report.scenarios[3]
    assert restart.recovery.get("service.snapshot_restores", 0) >= 1

    corruption = report.scenarios[4]
    assert corruption.recovery.get("service.snapshot_discarded", 0) >= 1
    assert not corruption.recovery.get("service.snapshot_restores", 0)

    overflow = report.scenarios[5]
    assert overflow.recovery.get("service.overloaded", 0) >= 1
    assert overflow.recovery.get("service.queued", 0) >= 1


def test_unknown_server_scenario_rejected():
    with pytest.raises(ValueError, match="unknown server fault"):
        run_server_faults(scenarios=["meteor_strike"])


def test_fault_injection_refused_unless_enabled():
    # A production server (the default) must reject the fault param
    # outright -- fault injection is a harness capability, not an op.
    handle = start_in_thread(ServiceConfig(heartbeat_interval=0.2))
    try:
        with ServiceClient(handle.host, handle.port, timeout=60.0) as c:
            with pytest.raises(ServiceError) as err:
                c.call("analyze", {"netlist": "iscas:c17",
                                   "fault": {"crash_origins": ["N1"]}})
    finally:
        handle.stop()
    assert err.value.code == "bad-request"
    assert "disabled" in err.value.message
