"""ISCAS-85 ``.bench`` reader and writer.

The ``.bench`` dialect::

    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

Gate keywords: ``AND OR NAND NOR XOR XNOR NOT BUFF`` with arbitrary
fan-in.  The default library tops out at four inputs, so wider gates are
decomposed into balanced trees on import (a NAND5 becomes an AND tree
feeding a final NAND; the logic function is preserved exactly).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.gates.library import Library, default_library
from repro.netlist.circuit import Circuit

_LINE_RE = re.compile(r"^\s*(\w+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w.\[\]]+)\s*\)\s*$", re.IGNORECASE)

#: bench keyword -> (library family prefix, wide-tree combiner family,
#: whether the final stage inverts)
_FAMILIES = {
    "AND": ("AND", "AND", False),
    "OR": ("OR", "OR", False),
    "NAND": ("NAND", "AND", True),
    "NOR": ("NOR", "OR", True),
    "XOR": ("XOR", "XOR", False),
    "XNOR": ("XNOR", "XOR", True),
}

_MAX_FANIN = 4
_PIN_NAMES = "ABCD"


class BenchParseError(ValueError):
    """Raised on malformed ``.bench`` input."""


def parse_bench(
    source: Union[str, TextIO],
    name: str = "bench",
    library: Optional[Library] = None,
) -> Circuit:
    """Parse ``.bench`` text (a string or a file object) into a Circuit."""
    if hasattr(source, "read"):
        text = source.read()
    else:
        text = source
    library = library or default_library()
    circuit = Circuit(name, library)
    gate_lines: List[Tuple[int, str, str, List[str]]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.groups()
            if kind.upper() == "INPUT":
                circuit.add_input(net)
            else:
                circuit.add_output(net)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")
        out, kind, args = gate_match.groups()
        operands = [a.strip() for a in args.split(",") if a.strip()]
        gate_lines.append((lineno, out, kind.upper(), operands))

    for lineno, out, kind, operands in gate_lines:
        _emit_gate(circuit, out, kind, operands, lineno)

    circuit.check()
    return circuit


def _emit_gate(
    circuit: Circuit, out: str, kind: str, operands: List[str], lineno: int
) -> None:
    if kind in ("NOT", "INV"):
        if len(operands) != 1:
            raise BenchParseError(f"line {lineno}: NOT takes one operand")
        circuit.add_gate("INV", out, {"A": operands[0]})
        return
    if kind in ("BUFF", "BUF"):
        if len(operands) != 1:
            raise BenchParseError(f"line {lineno}: BUFF takes one operand")
        circuit.add_gate("BUF", out, {"A": operands[0]})
        return
    family = _FAMILIES.get(kind)
    if family is None:
        raise BenchParseError(f"line {lineno}: unknown gate keyword {kind!r}")
    prefix, combiner, inverting = family
    if len(operands) < 2:
        raise BenchParseError(f"line {lineno}: {kind} needs >= 2 operands")
    max_width = 2 if combiner == "XOR" else _MAX_FANIN
    if len(operands) <= max_width:
        cell = f"{prefix}{len(operands)}"
        pins = {p: n for p, n in zip(_PIN_NAMES, operands)}
        circuit.add_gate(cell, out, pins)
        return
    # Decompose a wide gate: reduce with the non-inverting combiner and
    # finish with one final (possibly inverting) stage.
    stage = list(operands)
    counter = 0
    while len(stage) > max_width:
        next_stage: List[str] = []
        for i in range(0, len(stage), max_width):
            chunk = stage[i : i + max_width]
            if len(chunk) == 1:
                next_stage.append(chunk[0])
                continue
            mid = f"{out}__w{counter}"
            counter += 1
            cell = f"{combiner}{len(chunk)}"
            circuit.add_gate(cell, mid, dict(zip(_PIN_NAMES, chunk)))
            next_stage.append(mid)
        stage = next_stage
    final_prefix = prefix if inverting else combiner
    cell = f"{final_prefix}{len(stage)}"
    circuit.add_gate(cell, out, dict(zip(_PIN_NAMES, stage)))


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
_CELL_TO_BENCH = {
    "INV": "NOT",
    "BUF": "BUFF",
    "AND2": "AND",
    "AND3": "AND",
    "AND4": "AND",
    "OR2": "OR",
    "OR3": "OR",
    "OR4": "OR",
    "NAND2": "NAND",
    "NAND3": "NAND",
    "NAND4": "NAND",
    "NOR2": "NOR",
    "NOR3": "NOR",
    "NOR4": "NOR",
    "XOR2": "XOR",
    "XNOR2": "XNOR",
}


def write_bench(circuit: Circuit) -> str:
    """Serialize a primitive-gate circuit to ``.bench`` text.

    Complex gates (AO22 and friends) have no ``.bench`` keyword; callers
    should unmap them first (:func:`repro.netlist.techmap.unmap`).
    """
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({n})" for n in circuit.inputs)
    lines.extend(f"OUTPUT({n})" for n in circuit.outputs)
    for inst in circuit.topological():
        keyword = _CELL_TO_BENCH.get(inst.cell.name)
        if keyword is None:
            raise ValueError(
                f"cell {inst.cell.name} has no .bench equivalent; unmap first"
            )
        operands = ", ".join(inst.pins[p] for p in inst.cell.inputs)
        lines.append(f"{inst.output_net} = {keyword}({operands})")
    return "\n".join(lines) + "\n"


#: The genuine ISCAS-85 c17 netlist (the one circuit small enough to be
#: universally published verbatim).
C17_BENCH = """
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""
