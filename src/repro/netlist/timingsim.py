"""Event-driven gate-level timing simulation.

An independent dynamic check of the STA results: apply a primary-input
transition under a chosen input vector, propagate *events* through the
netlist with per-arc delays from the characterized library, and observe
when (and whether) each output settles.  A true path reported by the
STA must materialize here: simulating its input vector produces an
output event at (approximately) the reported arrival time, computed
through the very same vector-resolved arcs but by a completely
different mechanism (event propagation vs path search).

The simulator models each net as a waveform of (time, value) change
events, uses inertial filtering (a gate output change that would be
overtaken by a newer evaluation is cancelled), and resolves each gate
evaluation delay from the arc of the *causing* input pin under the
sensitization vector formed by the other pins' current values.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.netlist.circuit import Circuit


@dataclass
class NetEvent:
    """One recorded value change on a net."""

    time: float
    value: int
    slew: float
    #: (net name, event index) of the input-pin event whose gate
    #: evaluation scheduled this change; None for the stimulus event.
    cause: Optional[Tuple[str, int]] = None


@dataclass
class SimulationResult:
    """Outcome of one transition simulation."""

    #: net name -> chronological value-change events (excluding t=0 init).
    events: Dict[str, List[NetEvent]]
    #: net name -> final settled value.
    final_values: Dict[str, int]
    #: total scheduled gate evaluations (activity measure).
    evaluations: int

    def last_event(self, net: str) -> Optional[NetEvent]:
        changes = self.events.get(net)
        return changes[-1] if changes else None

    def settled_time(self, net: str) -> float:
        event = self.last_event(net)
        return event.time if event else 0.0

    def toggled(self, net: str) -> bool:
        return bool(self.events.get(net))

    def causal_chain(self, net: str) -> List[Tuple[str, NetEvent]]:
        """The chain of events that produced ``net``'s final change,
        stimulus first: follow each event's ``cause`` pointer back to
        the primary-input toggle.  Empty when the net never toggled."""
        chain: List[Tuple[str, NetEvent]] = []
        event = self.last_event(net)
        current = net
        while event is not None:
            chain.append((current, event))
            if event.cause is None:
                break
            current, index = event.cause
            event = self.events[current][index]
        chain.reverse()
        return chain


class TimingSimulator:
    """Event-driven simulation bound to one circuit and library corner."""

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_slew: float = DEFAULT_INPUT_SLEW,
        vector_blind: bool = False,
    ):
        circuit.check()
        self.circuit = circuit
        self.ec = EngineCircuit(circuit)
        self.calc = DelayCalculator(
            self.ec, charlib, temp=temp, vdd=vdd, input_slew=input_slew,
            vector_blind=vector_blind,
        )

    # ------------------------------------------------------------------
    def simulate_transition(
        self,
        input_vector: Dict[str, int],
        toggle_input: str,
        rising: bool,
        horizon: float = 1e-8,
    ) -> SimulationResult:
        """Apply ``input_vector``, then flip ``toggle_input`` at t=0.

        ``input_vector`` holds the pre-transition values of every
        primary input (don't-care inputs may be omitted and default 0).
        """
        values: Dict[str, int] = {}
        slews: Dict[str, float] = {}
        for name in self.circuit.inputs:
            values[name] = int(input_vector.get(name, 0))
            slews[name] = self.calc.input_slew
        start = dict(values)
        start[toggle_input] = 0 if rising else 1
        # Settle the pre-transition state combinationally.
        settled = self.circuit.simulate(start)
        values.update(settled)
        for net in settled:
            slews.setdefault(net, self.calc.input_slew)

        counter = itertools.count()
        #: (time, tiebreak, net, new_value, slew, cause)
        queue: List[Tuple[float, int, str, int, float, Optional[Tuple[str, int]]]] = []
        #: net -> (scheduled time, stamp); an event is live only while
        #: its stamp is the net's current pending stamp (inertial
        #: cancellation and supersession both just replace the stamp).
        pending: Dict[str, Tuple[float, int]] = {}
        first = next(counter)
        pending[toggle_input] = (0.0, first)
        heapq.heappush(
            queue,
            (0.0, first, toggle_input, 1 if rising else 0,
             self.calc.input_slew, None),
        )
        events: Dict[str, List[NetEvent]] = {}
        evaluations = 0

        while queue:
            time, tie, net, new_value, slew, cause = heapq.heappop(queue)
            if time > horizon:
                break
            stamp = pending.get(net)
            if stamp is None or stamp[1] != tie:
                continue  # cancelled or superseded (inertial model)
            pending.pop(net, None)
            if values[net] == new_value:
                continue
            values[net] = new_value
            slews[net] = slew
            events.setdefault(net, []).append(
                NetEvent(time, new_value, slew, cause)
            )
            source = (net, len(events[net]) - 1)
            for gate_index, pin in self.ec.sinks[self.ec.net_id[net]]:
                gate = self.ec.gates[gate_index]
                evaluations += 1
                inst = gate.inst
                inputs = {p: values[inst.pins[p]] for p in gate.cell.inputs}
                out_new = gate.cell.func.eval(
                    [inputs[p] for p in gate.cell.inputs]
                )
                out_net = inst.output_net
                scheduled = pending.get(out_net)
                target = out_new
                if values[out_net] == target and scheduled is None:
                    continue
                delay, out_slew = self._arc_delay(
                    gate, pin, inputs, causing_value=new_value,
                    causing_slew=slew,
                )
                event_time = time + delay
                stamp = next(counter)
                if target == values[out_net]:
                    # The new evaluation cancels a pending change.
                    pending.pop(out_net, None)
                    continue
                pending[out_net] = (event_time, stamp)
                heapq.heappush(
                    queue,
                    (event_time, stamp, out_net, target, out_slew, source),
                )

        final = dict(values)
        return SimulationResult(events=events, final_values=final,
                                evaluations=evaluations)

    # ------------------------------------------------------------------
    def _arc_delay(
        self,
        gate,
        pin: str,
        inputs: Dict[str, int],
        causing_value: int,
        causing_slew: float,
    ) -> Tuple[float, float]:
        """Delay of the arc from ``pin`` under the side values currently
        on the other pins; falls back to the worst arc of the pin when
        the side combination does not statically sensitize it."""
        cell = gate.cell
        side = {p: v for p, v in inputs.items() if p != pin}
        chosen = None
        for vec in cell.sensitization_vectors(pin):
            if all(side.get(p) == v for p, v in vec.side_values.items()):
                chosen = vec
                break
        input_rising = causing_value == 1
        if chosen is None:
            # Non-sensitized evaluation (multi-input switching window):
            # approximate with the pin's first vector of the polarity.
            out_now = cell.func.eval([inputs[p] for p in cell.inputs])
            for vec in cell.sensitization_vectors(pin):
                chosen = vec
                break
        output_rising = input_rising ^ chosen.inverting
        try:
            return self.calc.arc_timing(
                gate, pin, chosen.vector_id, input_rising, output_rising,
                causing_slew,
            )
        except KeyError:
            # Library subset without this arc: use the worst gate delay.
            worst = self.calc.worst_gate_delay(gate)
            return worst, causing_slew


def measure_path_delay(
    simulator: TimingSimulator,
    input_vector: Dict[str, Optional[object]],
    origin: str,
    rising: bool,
    endpoint: str,
) -> Optional[float]:
    """Dynamic delay of one sensitized path: simulate its input vector
    and return the settle time of the endpoint (None if it never
    toggles -- which for a reported true path would be a bug)."""
    concrete = {
        k: (v if v in (0, 1) else 0) for k, v in input_vector.items()
    }
    result = simulator.simulate_transition(concrete, origin, rising)
    if not result.toggled(endpoint):
        return None
    return result.settled_time(endpoint)
