"""Structural Verilog reader and writer (gate-level subset).

Supports the netlist style synthesis tools emit::

    module top (N1, N2, Z);
      input N1, N2;
      output Z;
      wire n10;
      NAND2 U1 (.A(N1), .B(N2), .Z(n10));
      INV U2 (.A(n10), .Z(Z));
    endmodule

Only named port connections are accepted (positional connections are
ambiguous across vendor libraries and are rejected with a clear error).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, TextIO, Union

from repro.gates.library import Library, default_library
from repro.netlist.circuit import Circuit

_MODULE_RE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.DOTALL)
_DECL_RE = re.compile(r"(input|output|wire)\s+([^;]+);")
_INST_RE = re.compile(r"(\w+)\s+(\w+)\s*\(([^;]*)\)\s*;", re.DOTALL)
_PORT_RE = re.compile(r"\.(\w+)\s*\(\s*([\w.\[\]]+)\s*\)")


class VerilogParseError(ValueError):
    """Raised on unsupported or malformed structural Verilog."""


def parse_verilog(
    source: Union[str, TextIO], library: Optional[Library] = None
) -> Circuit:
    """Parse one structural module into a :class:`Circuit`."""
    text = source.read() if hasattr(source, "read") else source
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    library = library or default_library()

    module = _MODULE_RE.search(text)
    if module is None:
        raise VerilogParseError("no module declaration found")
    name = module.group(1)
    body_start = module.end()
    body_end = text.find("endmodule", body_start)
    if body_end < 0:
        raise VerilogParseError("missing endmodule")
    body = text[body_start:body_end]

    circuit = Circuit(name, library)
    consumed_spans = []
    for decl in _DECL_RE.finditer(body):
        kind, nets = decl.groups()
        consumed_spans.append(decl.span())
        for net in (n.strip() for n in nets.split(",")):
            if not net:
                continue
            if kind == "input":
                circuit.add_input(net)
            elif kind == "output":
                circuit.add_output(net)
            # wires are created implicitly on first use

    # Remove declarations so the instance regex cannot match them.
    chars = list(body)
    for start, end in consumed_spans:
        for k in range(start, end):
            chars[k] = " "
    body = "".join(chars)

    for inst_match in _INST_RE.finditer(body):
        cell_name, inst_name, ports = inst_match.groups()
        if cell_name == "module":
            continue
        if cell_name not in library:
            raise VerilogParseError(f"unknown cell {cell_name!r} (instance {inst_name})")
        cell = library[cell_name]
        if "." not in ports:
            raise VerilogParseError(
                f"instance {inst_name}: positional connections are not supported"
            )
        conns: Dict[str, str] = {}
        output_net = None
        for port, net in _PORT_RE.findall(ports):
            if port == cell.output:
                output_net = net
            else:
                conns[port] = net
        if output_net is None:
            raise VerilogParseError(f"instance {inst_name}: output pin not connected")
        circuit.add_gate(cell, output_net, conns, name=inst_name)

    circuit.check()
    return circuit


def write_verilog(circuit: Circuit) -> str:
    """Serialize a circuit (any cells of its library) to structural Verilog."""
    ports = circuit.inputs + circuit.outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    wires = [
        n
        for n, net in circuit.nets.items()
        if not net.is_input and not net.is_output
    ]
    if wires:
        lines.append(f"  wire {', '.join(sorted(wires))};")
    for inst in circuit.topological():
        conns = [f".{p}({inst.pins[p]})" for p in inst.cell.inputs]
        conns.append(f".{inst.cell.output}({inst.output_net})")
        lines.append(f"  {inst.cell.name} {inst.name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
