"""SDF (Standard Delay Format) annotation export.

Writes an SDF 3.0 file with one ``IOPATH`` per instance timing arc,
evaluated at the instance's actual equivalent fanout and a nominal
input slew.  Vector-resolved arcs are collapsed per (pin, output edge)
into (min:typ:max) triples over the sensitization vectors -- the honest
way to express the paper's vector dependence in a format that has no
condition syntax hook in most consumers (the ``COND`` construct is
also emitted for consumers that support it).

This lets any external SDF-annotated simulator replay the delays this
tool computed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.netlist.circuit import Circuit

_NS = 1e9  # SDF numbers below are in nanoseconds


def _triple(values: List[float]) -> str:
    lo, hi = min(values), max(values)
    typ = sorted(values)[len(values) // 2]
    return f"({lo * _NS:.6f}:{typ * _NS:.6f}:{hi * _NS:.6f})"


def write_sdf(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    temp: float = 25.0,
    vdd: Optional[float] = None,
    input_slew: float = DEFAULT_INPUT_SLEW,
    design_name: Optional[str] = None,
    emit_conditions: bool = False,
) -> str:
    """Serialize per-instance IOPATH delays to SDF text.

    With ``emit_conditions=True`` each sensitization vector becomes its
    own ``(COND <side values> (IOPATH ...))`` entry; otherwise vectors
    collapse into min:typ:max triples.
    """
    circuit.check()
    ec = EngineCircuit(circuit)
    calc = DelayCalculator(ec, charlib, temp=temp, vdd=vdd,
                           input_slew=input_slew)
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        f'  (DESIGN "{design_name or circuit.name}")',
        f'  (VOLTAGE {calc.vdd:.2f})',
        f'  (TEMPERATURE {temp:.1f})',
        '  (TIMESCALE 1ns)',
    ]
    for gate in ec.gates:
        inst = gate.inst
        lines.append("  (CELL")
        lines.append(f'    (CELLTYPE "{gate.cell.name}")')
        lines.append(f"    (INSTANCE {inst.name})")
        lines.append("    (DELAY (ABSOLUTE")
        for pin in gate.cell.inputs:
            if emit_conditions:
                lines.extend(
                    _conditioned_entries(calc, gate, pin)
                )
            else:
                entry = _collapsed_entry(calc, gate, pin)
                if entry:
                    lines.append(entry)
        lines.append("    ))")
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


def _arc_delays(calc: DelayCalculator, gate, pin: str):
    """(rise delays, fall delays, per-vector detail) for one pin."""
    rise: List[float] = []
    fall: List[float] = []
    detail: List[Tuple[str, bool, float]] = []
    for option in gate.options[pin]:
        vector = option.vector
        for input_rising in (True, False):
            output_rising = input_rising ^ vector.inverting
            try:
                delay, _slew = calc.arc_timing(
                    gate, pin, vector.vector_id, input_rising, output_rising,
                    calc.input_slew,
                )
            except KeyError:
                continue
            (rise if output_rising else fall).append(delay)
            detail.append((vector.vector_id, output_rising, delay))
    return rise, fall, detail


def _collapsed_entry(calc: DelayCalculator, gate, pin: str) -> Optional[str]:
    rise, fall, _detail = _arc_delays(calc, gate, pin)
    if not rise and not fall:
        return None
    rise_str = _triple(rise) if rise else "()"
    fall_str = _triple(fall) if fall else "()"
    return (
        f"      (IOPATH {pin} {gate.cell.output} {rise_str} {fall_str})"
    )


def _conditioned_entries(calc: DelayCalculator, gate, pin: str) -> List[str]:
    lines: List[str] = []
    for option in gate.options[pin]:
        vector = option.vector
        rise: List[float] = []
        fall: List[float] = []
        for input_rising in (True, False):
            output_rising = input_rising ^ vector.inverting
            try:
                delay, _ = calc.arc_timing(
                    gate, pin, vector.vector_id, input_rising, output_rising,
                    calc.input_slew,
                )
            except KeyError:
                continue
            (rise if output_rising else fall).append(delay)
        if not rise and not fall:
            continue
        condition = " && ".join(
            f"{p} == 1'b{v}" for p, v in sorted(vector.side_values.items())
        )
        rise_str = _triple(rise) if rise else "()"
        fall_str = _triple(fall) if fall else "()"
        body = f"(IOPATH {pin} {gate.cell.output} {rise_str} {fall_str})"
        if condition:
            lines.append(f"      (COND {condition} {body})")
        else:
            lines.append(f"      {body}")
    return lines
