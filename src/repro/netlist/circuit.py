"""Gate-level circuit graph.

A :class:`Circuit` is a DAG of cell :class:`Instance` objects connected
by named :class:`Net` objects.  Primary inputs and outputs are nets.
The structure is deliberately simple -- dictionaries and lists -- because
the STA engines walk it millions of times; heavier graph libraries are
only used for offline analysis (:meth:`Circuit.to_networkx`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.gates.cell import Cell
from repro.gates.library import Library, default_library
from repro.gates.logic import TriValue, X


class Net:
    """A named wire with one driver and any number of sinks."""

    __slots__ = ("name", "driver", "sinks", "is_input", "is_output")

    def __init__(self, name: str):
        self.name = name
        #: The driving :class:`Instance`, or None for primary inputs.
        self.driver: Optional["Instance"] = None
        #: ``(instance, pin)`` pairs reading this net.
        self.sinks: List[Tuple["Instance", str]] = []
        self.is_input = False
        self.is_output = False

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def __repr__(self) -> str:
        kind = "PI" if self.is_input else ("PO" if self.is_output else "net")
        return f"Net({self.name}, {kind}, fanout={self.fanout})"


class Instance:
    """One placed cell."""

    __slots__ = ("name", "cell", "pins", "output_net")

    def __init__(self, name: str, cell: Cell, pins: Dict[str, str], output_net: str):
        self.name = name
        self.cell = cell
        #: input pin name -> net name
        self.pins = dict(pins)
        self.output_net = output_net

    def input_nets(self) -> List[str]:
        """Input net names in cell pin order."""
        return [self.pins[p] for p in self.cell.inputs]

    def pin_of_net(self, net_name: str) -> List[str]:
        """All input pins connected to ``net_name`` (usually one)."""
        return [p for p, n in self.pins.items() if n == net_name]

    def __repr__(self) -> str:
        conns = ", ".join(f".{p}({n})" for p, n in self.pins.items())
        return f"{self.cell.name} {self.name} ({conns}) -> {self.output_net}"


class Circuit:
    """A combinational gate-level netlist.

    Instances must be added in any order; :meth:`check` validates that
    the result is a single-driver acyclic network with all sinks driven.
    """

    def __init__(self, name: str, library: Optional[Library] = None):
        self.name = name
        self.library = library or default_library()
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self._topo_cache: Optional[List[Instance]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _net(self, name: str) -> Net:
        net = self.nets.get(name)
        if net is None:
            net = Net(name)
            self.nets[name] = net
        return net

    def add_input(self, name: str) -> Net:
        net = self._net(name)
        if net.driver is not None:
            raise ValueError(f"net {name} already driven; cannot be a primary input")
        if not net.is_input:
            net.is_input = True
            self.inputs.append(name)
        return net

    def add_output(self, name: str) -> Net:
        net = self._net(name)
        if not net.is_output:
            net.is_output = True
            self.outputs.append(name)
        return net

    def add_gate(
        self,
        cell: str | Cell,
        output: str,
        connections: Dict[str, str],
        name: Optional[str] = None,
    ) -> Instance:
        """Place a cell instance.

        Parameters
        ----------
        cell:
            Cell object or library cell name.
        output:
            Net name driven by the instance.
        connections:
            Mapping from input pin name to net name; must cover every
            input pin of the cell exactly.
        name:
            Instance name (defaults to ``U<k>``).
        """
        if isinstance(cell, str):
            cell = self.library[cell]
        missing = set(cell.inputs) - set(connections)
        extra = set(connections) - set(cell.inputs)
        if missing or extra:
            raise ValueError(
                f"{cell.name}: bad pin set (missing={sorted(missing)}, extra={sorted(extra)})"
            )
        if name is None:
            k = len(self.instances)
            while f"U{k}" in self.instances:
                k += 1
            name = f"U{k}"
        if name in self.instances:
            raise ValueError(f"duplicate instance name {name}")
        out_net = self._net(output)
        if out_net.driver is not None:
            raise ValueError(f"net {output} has two drivers")
        if out_net.is_input:
            raise ValueError(f"net {output} is a primary input; cannot be driven")
        inst = Instance(name, cell, connections, output)
        out_net.driver = inst
        for pin, net_name in connections.items():
            self._net(net_name).sinks.append((inst, pin))
        self.instances[name] = inst
        self._topo_cache = None
        return inst

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.instances)

    def driver_of(self, net_name: str) -> Optional[Instance]:
        return self.nets[net_name].driver

    def fanout_of(self, net_name: str) -> List[Tuple[Instance, str]]:
        return self.nets[net_name].sinks

    def complex_instances(self) -> List[Instance]:
        """Instances of cells with multi-vector pins."""
        return [inst for inst in self.instances.values() if inst.cell.is_complex]

    def cell_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for inst in self.instances.values():
            hist[inst.cell.name] = hist.get(inst.cell.name, 0) + 1
        return dict(sorted(hist.items()))

    # ------------------------------------------------------------------
    # Validation and ordering
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`ValueError` on structural problems."""
        for net in self.nets.values():
            if net.driver is None and not net.is_input:
                raise ValueError(f"net {net.name} has no driver and is not an input")
        for out in self.outputs:
            if out not in self.nets:
                raise ValueError(f"declared output {out} does not exist")
        self.topological()  # raises on cycles

    def topological(self) -> List[Instance]:
        """Instances in topological order (inputs first); cached."""
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: Dict[str, int] = {}
        for inst in self.instances.values():
            deps = 0
            for net_name in inst.pins.values():
                drv = self.nets[net_name].driver
                if drv is not None:
                    deps += 1
            indegree[inst.name] = deps
        ready = [i for i in self.instances.values() if indegree[i.name] == 0]
        order: List[Instance] = []
        while ready:
            inst = ready.pop()
            order.append(inst)
            for sink, _pin in self.nets[inst.output_net].sinks:
                indegree[sink.name] -= 1
                if indegree[sink.name] == 0:
                    ready.append(sink)
        if len(order) != len(self.instances):
            raise ValueError(f"{self.name}: combinational loop detected")
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Two-valued simulation; every primary input must be assigned."""
        missing = [n for n in self.inputs if n not in input_values]
        if missing:
            raise ValueError(f"unassigned inputs: {missing}")
        values: Dict[str, int] = {n: input_values[n] for n in self.inputs}
        for inst in self.topological():
            ins = [values[inst.pins[p]] for p in inst.cell.inputs]
            values[inst.output_net] = inst.cell.func.eval(ins)
        return values

    def simulate3(self, input_values: Dict[str, TriValue]) -> Dict[str, TriValue]:
        """Three-valued simulation; unassigned inputs default to X."""
        values: Dict[str, TriValue] = {n: input_values.get(n, X) for n in self.inputs}
        for inst in self.topological():
            ins = [values[inst.pins[p]] for p in inst.cell.inputs]
            values[inst.output_net] = inst.cell.func.eval3(ins)
        return values

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Directed instance graph for offline analysis (networkx)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for net_name in self.inputs:
            graph.add_node(net_name, kind="input")
        for inst in self.instances.values():
            graph.add_node(inst.name, kind="gate", cell=inst.cell.name)
            for net_name in inst.pins.values():
                net = self.nets[net_name]
                src = net_name if net.driver is None else net.driver.name
                graph.add_edge(src, inst.name, net=net_name)
        return graph

    def stats(self) -> Dict[str, int]:
        """Headline size statistics."""
        from repro.netlist.levelize import logic_depth

        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.num_gates,
            "complex_gates": len(self.complex_instances()),
            "nets": len(self.nets),
            "depth": logic_depth(self),
        }

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name}: {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{self.num_gates} gates)"
        )
