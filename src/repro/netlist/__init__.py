"""Netlist infrastructure.

Circuit graphs (:mod:`repro.netlist.circuit`), ISCAS ``.bench`` and
structural-Verilog I/O (:mod:`repro.netlist.bench`,
:mod:`repro.netlist.verilog`), levelization utilities
(:mod:`repro.netlist.levelize`), technology mapping onto complex gates
(:mod:`repro.netlist.techmap`) and benchmark-circuit generators
(:mod:`repro.netlist.generate`).
"""

from repro.netlist.circuit import Circuit, Instance, Net
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.levelize import levelize, logic_depth

__all__ = [
    "Circuit",
    "Instance",
    "Net",
    "levelize",
    "logic_depth",
    "parse_bench",
    "write_bench",
]
