"""Levelization and depth utilities.

The level computation itself lives in :mod:`repro.core.tgraph` (the
timing-graph substrate shared by all analysis engines); this module
keeps the name-keyed convenience wrappers for plain netlist work.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netlist.circuit import Circuit, Instance


def levelize(circuit: Circuit) -> Dict[str, int]:
    """Level of every net: primary inputs are 0, a gate output is one
    more than its deepest input net.  Delegates to the timing graph's
    :func:`repro.core.tgraph.net_levels`."""
    # Imported lazily: the netlist package must stay importable without
    # pulling the whole analysis core in at import time.
    from repro.core.tgraph import net_levels

    return net_levels(circuit)


def logic_depth(circuit: Circuit) -> int:
    """Maximum gate count on any input-to-output topological path."""
    if not circuit.instances:
        return 0
    levels = levelize(circuit)
    return max((levels.get(out, 0) for out in circuit.outputs), default=0)


def instances_by_level(circuit: Circuit) -> List[List[Instance]]:
    """Instances grouped by output-net level (level 1 first)."""
    levels = levelize(circuit)
    depth = max((levels[i.output_net] for i in circuit.instances.values()), default=0)
    groups: List[List[Instance]] = [[] for _ in range(depth)]
    for inst in circuit.instances.values():
        groups[levels[inst.output_net] - 1].append(inst)
    return groups


def fanin_cone(circuit: Circuit, net_name: str) -> List[str]:
    """All net names in the transitive fanin of ``net_name`` (inclusive)."""
    seen = set()
    stack = [net_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        driver = circuit.nets[current].driver
        if driver is not None:
            stack.extend(driver.pins.values())
    return sorted(seen)


def fanout_cone(circuit: Circuit, net_name: str) -> List[str]:
    """All net names in the transitive fanout of ``net_name`` (inclusive)."""
    seen = set()
    stack = [net_name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for inst, _pin in circuit.nets[current].sinks:
            stack.append(inst.output_net)
    return sorted(seen)
