"""Technology mapping between primitive and complex gates.

:func:`techmap` rewrites a primitive-gate netlist (as parsed from
``.bench``) onto the complex-gate cells of the library -- two-level
AND-OR / OR-AND clusters with single-fanout internal nets collapse into
AO / OA / AOI / OAI cells, and inverter pairs merge.  This mirrors what
a synthesis tool does and is what puts multi-sensitization-vector gates
onto circuit paths, the situation the paper studies.

:func:`unmap` is the inverse: every complex gate is decomposed back into
primitives following its declared pull-down network structure.  The
paper cites decomposition-before-analysis as a known source of timing
inaccuracy; ``unmap`` lets the benchmarks quantify that (ablation).

Both directions preserve the boolean function of every primary output;
:func:`equivalent` spot-checks this.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Tuple

from repro.gates.cell import NetworkExpr
from repro.gates.library import Library
from repro.netlist.circuit import Circuit

#: Internal mutable netlist node: output net -> (cell name, pin -> net).
_Node = Tuple[str, Dict[str, str]]

# (outer cell, inner cell) -> replacement for INV-absorption rewrites.
_INV_MERGE = {
    "AND2": "NAND2",
    "AND3": "NAND3",
    "AND4": "NAND4",
    "OR2": "NOR2",
    "OR3": "NOR3",
    "OR4": "NOR4",
    "NAND2": "AND2",
    "NAND3": "AND3",
    "NAND4": "AND4",
    "NOR2": "OR2",
    "NOR3": "OR3",
    "NOR4": "OR4",
    "XOR2": "XNOR2",
    "XNOR2": "XOR2",
    "AO21": "AOI21",
    "AO22": "AOI22",
    "OA12": "OAI12",
    "OA22": "OAI22",
    "AOI21": "AO21",
    "AOI22": "AO22",
    "OAI12": "OA12",
    "OAI22": "OA22",
    "INV": "BUF",
    "BUF": "INV",
}

# Two-level patterns: (outer cell, inner cell) -> complex replacement.
# The inner gate feeds pin A of the outer gate (the matcher tries both
# outer pin orders).  Pin conventions of the replacement cells:
#   AO22/AOI22: Z = f(A*B + C*D)   AO21/AOI21: Z = f(A*B + C)
#   OA22/OAI22: Z = f((A+B)*(C+D)) OA12/OAI12: Z = f((A+B)*C)
_TWO_LEVEL = {
    ("OR2", "AND2", "AND2"): "AO22",
    ("OR2", "AND2", None): "AO21",
    ("NOR2", "AND2", "AND2"): "AOI22",
    ("NOR2", "AND2", None): "AOI21",
    ("AND2", "OR2", "OR2"): "OA22",
    ("AND2", "OR2", None): "OA12",
    ("NAND2", "OR2", "OR2"): "OAI22",
    ("NAND2", "OR2", None): "OAI12",
    # All-NAND / all-NOR forms (what NAND-level netlists such as the
    # original c1355 are made of):
    #   NAND(NAND(a,b), NAND(c,d)) = ab + cd  -> AO22
    #   NOR(NOR(a,b), NOR(c,d)) = (a+b)(c+d)  -> OA22
    ("NAND2", "NAND2", "NAND2"): "AO22",
    ("NOR2", "NOR2", "NOR2"): "OA22",
}


def techmap(circuit: Circuit, library: Optional[Library] = None) -> Circuit:
    """Map a netlist onto complex gates; returns a new circuit.

    The rewrite is a fixpoint of two local rules applied over single-
    fanout internal nets: inverter absorption (``INV(AND2) -> NAND2``)
    and two-level cluster collapse (``OR2(AND2, AND2) -> AO22``).
    """
    library = library or circuit.library
    nodes, fanout = _extract(circuit)
    changed = True
    while changed:
        changed = _pass_inv_merge(circuit, nodes, fanout, library)
        changed = _pass_two_level(circuit, nodes, fanout, library) or changed
        # Bubble absorption runs last so it only eats inverters the
        # higher-value cluster patterns left behind.
        if not changed:
            changed = _pass_bubble(circuit, nodes, fanout, library)
    return _rebuild(circuit, nodes, library, suffix="mapped")


def unmap(circuit: Circuit, library: Optional[Library] = None) -> Circuit:
    """Decompose every complex gate into primitives; returns a new circuit."""
    library = library or circuit.library
    out = Circuit(f"{circuit.name}_unmapped", library)
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.outputs:
        out.add_output(net)
    counter = itertools.count()
    primitives = {
        "INV", "BUF",
        "AND2", "AND3", "AND4", "OR2", "OR3", "OR4",
        "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
        "XOR2", "XNOR2",
    }
    for inst in circuit.topological():
        cell = inst.cell
        if cell.name in primitives:
            out.add_gate(cell.name, inst.output_net, dict(inst.pins))
            continue
        _decompose(out, inst.pins, inst.output_net, cell.pdn,
                   cell.output_inverter, counter)
    out.check()
    return out


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def expand_xor(circuit: Circuit, library: Optional[Library] = None) -> Circuit:
    """Replace every XOR2/XNOR2 with the classic four-NAND2 structure.

    This is exactly the relationship between ISCAS-85 c499 (XOR-level)
    and c1355 (NAND-level): same function, the XORs expanded.  The
    resulting netlist has no XOR cells, so a later :func:`techmap` pass
    yields a genuinely different mapped circuit.
    """
    library = library or circuit.library
    out = Circuit(f"{circuit.name}_xorexp", library)
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.outputs:
        out.add_output(net)
    counter = itertools.count()
    for inst in circuit.topological():
        if inst.cell.name not in ("XOR2", "XNOR2"):
            out.add_gate(inst.cell.name, inst.output_net, dict(inst.pins))
            continue
        a, b = inst.pins["A"], inst.pins["B"]
        tag = f"{inst.output_net}__x{next(counter)}"
        n1, n2, n3 = f"{tag}a", f"{tag}b", f"{tag}c"
        out.add_gate("NAND2", n1, {"A": a, "B": b})
        out.add_gate("NAND2", n2, {"A": a, "B": n1})
        out.add_gate("NAND2", n3, {"A": b, "B": n1})
        if inst.cell.name == "XOR2":
            out.add_gate("NAND2", inst.output_net, {"A": n2, "B": n3})
        else:
            mid = f"{tag}d"
            out.add_gate("NAND2", mid, {"A": n2, "B": n3})
            out.add_gate("INV", inst.output_net, {"A": mid})
    out.check()
    return out


def _extract(circuit: Circuit):
    nodes: Dict[str, _Node] = {}
    fanout: Dict[str, int] = {name: 0 for name in circuit.nets}
    for inst in circuit.instances.values():
        nodes[inst.output_net] = (inst.cell.name, dict(inst.pins))
        for net in inst.pins.values():
            fanout[net] += 1
    return nodes, fanout


def _absorbable(circuit: Circuit, nodes, fanout, net: str) -> bool:
    """Whether the gate driving ``net`` can be swallowed by its one sink."""
    return (
        net in nodes
        and fanout.get(net, 0) == 1
        and not circuit.nets[net].is_output
    )


def _remove(nodes, fanout, net: str) -> None:
    _cell, pins = nodes.pop(net)
    for src in pins.values():
        fanout[src] -= 1


def _pass_inv_merge(circuit: Circuit, nodes, fanout, library: Library) -> bool:
    changed = False
    for out_net in list(nodes):
        if out_net not in nodes:
            continue
        cell_name, pins = nodes[out_net]
        if cell_name != "INV":
            continue
        src = pins["A"]
        if not _absorbable(circuit, nodes, fanout, src):
            continue
        inner_cell, inner_pins = nodes[src]
        replacement = _INV_MERGE.get(inner_cell)
        if replacement is None or replacement not in library:
            continue
        _remove(nodes, fanout, out_net)
        _remove(nodes, fanout, src)
        nodes[out_net] = (replacement, dict(inner_pins))
        for net in inner_pins.values():
            fanout[net] += 1
        changed = True
    return changed


#: outer cell -> bubbled-input replacement when pin A is driven by an
#: absorbable inverter.
_BUBBLE = {
    "NAND2": "NAND2B",
    "NOR2": "NOR2B",
    "AND2": "AND2B",
    "OR2": "OR2B",
}


def _pass_bubble(circuit: Circuit, nodes, fanout, library: Library) -> bool:
    """Absorb a fanout-1 inverter into a bubbled-input gate variant."""
    changed = False
    for out_net in list(nodes):
        if out_net not in nodes:
            continue
        cell_name, pins = nodes[out_net]
        replacement = _BUBBLE.get(cell_name)
        if replacement is None or replacement not in library:
            continue
        for pin in ("A", "B"):
            src = pins[pin]
            if not _absorbable(circuit, nodes, fanout, src):
                continue
            inner_cell, inner_pins = nodes[src]
            if inner_cell != "INV":
                continue
            new_pins = dict(pins)
            new_pins[pin] = inner_pins["A"]
            if pin == "B":  # B-variants invert pin A by convention
                new_pins = {"A": new_pins["B"], "B": new_pins["A"]}
            _remove(nodes, fanout, out_net)
            _remove(nodes, fanout, src)
            nodes[out_net] = (replacement, new_pins)
            for net in new_pins.values():
                fanout[net] += 1
            changed = True
            break
    return changed


def _pass_two_level(circuit: Circuit, nodes, fanout, library: Library) -> bool:
    changed = False
    for out_net in list(nodes):
        if out_net not in nodes:
            continue
        cell_name, pins = nodes[out_net]
        if cell_name not in ("AND2", "OR2", "NAND2", "NOR2"):
            continue
        in_a, in_b = pins["A"], pins["B"]
        match = _match_cluster(circuit, nodes, fanout, cell_name, in_a, in_b, library)
        if match is None:
            match = _match_cluster(circuit, nodes, fanout, cell_name, in_b, in_a, library)
        if match is None:
            continue
        replacement, new_pins, absorbed = match
        _remove(nodes, fanout, out_net)
        for net in absorbed:
            _remove(nodes, fanout, net)
        nodes[out_net] = (replacement, new_pins)
        for net in new_pins.values():
            fanout[net] += 1
        changed = True
    return changed


def _match_cluster(circuit, nodes, fanout, outer: str, first: str, second: str,
                   library: Library):
    """Try to collapse ``outer(first, second)`` with ``first`` (and
    possibly ``second``) being absorbable inner AND2/OR2 gates."""
    if not _absorbable(circuit, nodes, fanout, first):
        return None
    inner_cell, inner_pins = nodes[first]
    both = None
    if _absorbable(circuit, nodes, fanout, second):
        second_cell, second_pins = nodes[second]
        key = (outer, inner_cell, second_cell)
        both = _TWO_LEVEL.get(key)
        if both is not None and both in library:
            if outer in ("AND2", "NAND2"):
                new_pins = {
                    "A": inner_pins["A"], "B": inner_pins["B"],
                    "C": second_pins["A"], "D": second_pins["B"],
                }
            else:
                new_pins = {
                    "A": inner_pins["A"], "B": inner_pins["B"],
                    "C": second_pins["A"], "D": second_pins["B"],
                }
            return both, new_pins, [first, second]
    single = _TWO_LEVEL.get((outer, inner_cell, None))
    if single is not None and single in library:
        new_pins = {"A": inner_pins["A"], "B": inner_pins["B"], "C": second}
        return single, new_pins, [first]
    return None


def _rebuild(circuit: Circuit, nodes, library: Library, suffix: str) -> Circuit:
    out = Circuit(f"{circuit.name}_{suffix}", library)
    for net in circuit.inputs:
        out.add_input(net)
    for net in circuit.outputs:
        out.add_output(net)
    for out_net, (cell_name, pins) in nodes.items():
        out.add_gate(cell_name, out_net, pins)
    out.check()
    return out


def _decompose(out: Circuit, pin_map: Dict[str, str], target: str,
               expr: NetworkExpr, buffered: bool, counter) -> None:
    """Emit primitive gates computing the cell function onto ``target``.

    The cell function is the PDN conduction condition when the cell has
    an output inverter, and its complement otherwise; we synthesize the
    condition tree with AND/OR gates and invert at the end if needed.
    """

    def fresh() -> str:
        return f"{target}__d{next(counter)}"

    def emit(node: NetworkExpr, into: str) -> None:
        if isinstance(node, str):
            if node.startswith("!"):
                out.add_gate("INV", into, {"A": pin_map[node[1:]]})
            else:
                out.add_gate("BUF", into, {"A": pin_map[node]})
            return
        kind = node[0]
        children = node[1:]
        child_nets: List[str] = []
        for child in children:
            if isinstance(child, str) and not child.startswith("!"):
                child_nets.append(pin_map[child])
            else:
                mid = fresh()
                emit(child, mid)
                child_nets.append(mid)
        family = "AND" if kind == "s" else "OR"
        cell = f"{family}{len(child_nets)}"
        out.add_gate(cell, into, dict(zip("ABCD", child_nets)))

    if buffered:
        emit(expr, target)
    else:
        mid = fresh()
        emit(expr, mid)
        out.add_gate("INV", target, {"A": mid})


# ----------------------------------------------------------------------
# Equivalence checking
# ----------------------------------------------------------------------
def equivalent(
    a: Circuit,
    b: Circuit,
    vectors: int = 256,
    seed: int = 0,
    exhaustive_limit: int = 12,
) -> bool:
    """Functional equivalence spot check on shared primary outputs.

    Exhaustive when the circuits have at most ``exhaustive_limit``
    inputs; random sampling (``vectors`` patterns) otherwise.
    """
    if sorted(a.inputs) != sorted(b.inputs) or sorted(a.outputs) != sorted(b.outputs):
        return False
    n = len(a.inputs)
    if n <= exhaustive_limit:
        patterns = (
            {name: (i >> k) & 1 for k, name in enumerate(a.inputs)}
            for i in range(1 << n)
        )
    else:
        rng = random.Random(seed)
        patterns = (
            {name: rng.randint(0, 1) for name in a.inputs} for _ in range(vectors)
        )
    for pattern in patterns:
        va = a.simulate(pattern)
        vb = b.simulate(pattern)
        for out in a.outputs:
            if va[out] != vb[out]:
                return False
    return True
