"""Benchmark-circuit generators.

The paper evaluates on the ISCAS-85 suite synthesized onto complex-gate
libraries.  The original synthesized netlists are not redistributable,
so this module provides (see DESIGN.md section 4):

* the genuine ``c17`` (:func:`c17`);
* structural generators for circuits whose function is documented --
  a carry-save **array multiplier** (c6288 is a 16x16 one), **ripple
  adders**, **parity/ECC trees** (c499/c1355 are 32-bit SEC circuits)
  and a small **ALU slice** (c880 is an 8-bit ALU);
* a seeded **random mapped DAG** generator calibrated to arbitrary
  gate/IO counts for the remaining circuits.

All generators return primitive-gate circuits; callers run
:func:`repro.netlist.techmap.techmap` to obtain the complex-gate
versions used in the experiments (the ISCAS suite wrapper in
:mod:`repro.eval.iscas` does this automatically).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gates.library import Library, default_library
from repro.netlist.bench import C17_BENCH, parse_bench
from repro.netlist.circuit import Circuit


def c17(library: Optional[Library] = None) -> Circuit:
    """The genuine ISCAS-85 c17 netlist (6 NAND2 gates)."""
    return parse_bench(C17_BENCH, name="c17", library=library)


# ----------------------------------------------------------------------
# Arithmetic building blocks
# ----------------------------------------------------------------------
def _half_adder(c: Circuit, a: str, b: str, s: str, cout: str) -> None:
    c.add_gate("XOR2", s, {"A": a, "B": b})
    c.add_gate("AND2", cout, {"A": a, "B": b})


def _full_adder(c: Circuit, a: str, b: str, cin: str, s: str, cout: str,
                tag: str) -> None:
    p = f"{tag}_p"
    g = f"{tag}_g"
    t = f"{tag}_t"
    c.add_gate("XOR2", p, {"A": a, "B": b})
    c.add_gate("XOR2", s, {"A": p, "B": cin})
    c.add_gate("AND2", g, {"A": a, "B": b})
    c.add_gate("AND2", t, {"A": p, "B": cin})
    c.add_gate("OR2", cout, {"A": g, "B": t})


def ripple_adder(width: int, library: Optional[Library] = None) -> Circuit:
    """``width``-bit ripple-carry adder: A + B + Cin -> S, Cout."""
    c = Circuit(f"rca{width}", library or default_library())
    for i in range(width):
        c.add_input(f"A{i}")
        c.add_input(f"B{i}")
    c.add_input("CIN")
    carry = "CIN"
    for i in range(width):
        s, cout = f"S{i}", f"C{i + 1}"
        _full_adder(c, f"A{i}", f"B{i}", carry, s, cout, tag=f"fa{i}")
        c.add_output(s)
        carry = cout
    c.add_output(carry)
    c.check()
    return c


def array_multiplier(width: int, library: Optional[Library] = None) -> Circuit:
    """Carry-save array multiplier (c6288 is the 16x16 instance).

    Row ``j`` adds partial products ``A_i * B_j`` into a running sum with
    half/full adders; the final row carries ripple out.  Gate count for
    width ``w`` is roughly ``6*w**2``, i.e. ~1,500 gates at w=16 before
    mapping, with the long multiplier-style carry chains that make c6288
    the classic deep-path benchmark.
    """
    w = width
    c = Circuit(f"mul{w}x{w}", library or default_library())
    for i in range(w):
        c.add_input(f"A{i}")
    for j in range(w):
        c.add_input(f"B{j}")

    def pp(i: int, j: int) -> str:
        name = f"pp_{i}_{j}"
        if name not in c.nets or c.nets[name].driver is None:
            c.add_gate("AND2", name, {"A": f"A{i}", "B": f"B{j}"})
        return name

    # sums[i] holds the running sum bit of weight i for the current row.
    sums: List[Optional[str]] = [None] * (2 * w)
    carries: List[Optional[str]] = [None] * (2 * w)
    for i in range(w):  # row 0: raw partial products A_i * B_0
        sums[i] = pp(i, 0)
    c.add_output("P0")
    c.add_gate("BUF", "P0", {"A": sums[0]})

    for j in range(1, w):
        new_sums: List[Optional[str]] = [None] * (2 * w)
        new_carries: List[Optional[str]] = [None] * (2 * w)
        for i in range(w):
            weight = i + j
            product = pp(i, j)
            prev_sum = sums[weight] if weight < 2 * w else None
            prev_carry = carries[weight - 1] if weight >= 1 else None
            operands = [x for x in (product, prev_sum, prev_carry) if x]
            tag = f"r{j}_w{weight}"
            if len(operands) == 1:
                new_sums[weight] = operands[0]
            elif len(operands) == 2:
                s, co = f"{tag}_s", f"{tag}_c"
                _half_adder(c, operands[0], operands[1], s, co)
                new_sums[weight], new_carries[weight] = s, co
            else:
                s, co = f"{tag}_s", f"{tag}_c"
                _full_adder(c, operands[0], operands[1], operands[2], s, co, tag)
                new_sums[weight], new_carries[weight] = s, co
        # Weights below the current row pass through unchanged.
        for weight in range(j):
            new_sums[weight] = sums[weight]
            new_carries[weight] = carries[weight]
        sums, carries = new_sums, new_carries
        c.add_gate("BUF", f"P{j}", {"A": sums[j]})
        c.add_output(f"P{j}")

    # Final ripple merge of remaining sums and carries.
    carry: Optional[str] = None
    for weight in range(w, 2 * w):
        operands = [
            x
            for x in (sums[weight], carries[weight - 1], carry)
            if x is not None
        ]
        tag = f"fin_w{weight}"
        out = f"P{weight}"
        if not operands:
            break
        if len(operands) == 1:
            c.add_gate("BUF", out, {"A": operands[0]})
            carry = None
        elif len(operands) == 2:
            co = f"{tag}_c"
            _half_adder(c, operands[0], operands[1], out, co)
            carry = co
        else:
            co = f"{tag}_c"
            _full_adder(c, operands[0], operands[1], operands[2], out, co, tag)
            carry = co
        c.add_output(out)
    c.check()
    return c


def parity_tree(width: int, library: Optional[Library] = None) -> Circuit:
    """Balanced XOR parity tree over ``width`` inputs."""
    c = Circuit(f"parity{width}", library or default_library())
    nets = []
    for i in range(width):
        c.add_input(f"D{i}")
        nets.append(f"D{i}")
    counter = 0
    while len(nets) > 1:
        next_nets = []
        for i in range(0, len(nets) - 1, 2):
            out = f"x{counter}"
            counter += 1
            c.add_gate("XOR2", out, {"A": nets[i], "B": nets[i + 1]})
            next_nets.append(out)
        if len(nets) % 2:
            next_nets.append(nets[-1])
        nets = next_nets
    c.add_gate("BUF", "PARITY", {"A": nets[0]})
    c.add_output("PARITY")
    c.check()
    return c


def ecc_corrector(data_bits: int = 32, library: Optional[Library] = None) -> Circuit:
    """Single-error-correcting checker in the style of c499/c1355.

    Inputs are ``data_bits`` data bits plus ``r`` Hamming check bits;
    outputs are the corrected data bits.  Syndrome bits are XOR parity
    trees; the corrector XORs each data bit with an AND-decode of the
    syndrome -- the same two-level parity/decode structure as the ISCAS
    originals.
    """
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    c = Circuit(f"ecc{data_bits}", library or default_library())
    for i in range(data_bits):
        c.add_input(f"D{i}")
    for j in range(r):
        c.add_input(f"P{j}")

    # Hamming positions 1..n, data in non-power-of-two slots.
    positions: Dict[int, str] = {}
    data_index = 0
    pos = 1
    while data_index < data_bits:
        if pos & (pos - 1):  # not a power of two
            positions[pos] = f"D{data_index}"
            data_index += 1
        pos += 1

    syndrome_nets = []
    for j in range(r):
        members = [net for p, net in positions.items() if p & (1 << j)]
        members.append(f"P{j}")
        nets = members
        counter = 0
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                out = f"s{j}_x{counter}"
                counter += 1
                c.add_gate("XOR2", out, {"A": nets[i], "B": nets[i + 1]})
                nxt.append(out)
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        syn = f"SYN{j}"
        c.add_gate("BUF", syn, {"A": nets[0]})
        syndrome_nets.append(syn)

    # Inverted syndrome bits for the decoders.
    for j, syn in enumerate(syndrome_nets):
        c.add_gate("INV", f"{syn}_n", {"A": syn})

    for p, net in positions.items():
        literals = [
            syndrome_nets[j] if p & (1 << j) else f"{syndrome_nets[j]}_n"
            for j in range(r)
        ]
        # AND-tree decode of this position's syndrome pattern.
        nets = literals
        counter = 0
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets), 4):
                chunk = nets[i : i + 4]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                out = f"dec{p}_a{counter}"
                counter += 1
                c.add_gate(f"AND{len(chunk)}", out, dict(zip("ABCD", chunk)))
                nxt.append(out)
            nets = nxt
        flip = nets[0]
        out = f"Q{net[1:]}"
        c.add_gate("XOR2", out, {"A": net, "B": flip})
        c.add_output(out)
    c.check()
    return c


def alu_slice(width: int = 8, library: Optional[Library] = None) -> Circuit:
    """A small ALU in the spirit of c880: add / AND / OR / XOR selected
    by two control bits through MUX trees, with a ripple carry chain."""
    c = Circuit(f"alu{width}", library or default_library())
    for i in range(width):
        c.add_input(f"A{i}")
        c.add_input(f"B{i}")
    c.add_input("CIN")
    c.add_input("S0")
    c.add_input("S1")
    carry = "CIN"
    for i in range(width):
        a, b = f"A{i}", f"B{i}"
        c.add_gate("AND2", f"and{i}", {"A": a, "B": b})
        c.add_gate("OR2", f"or{i}", {"A": a, "B": b})
        c.add_gate("XOR2", f"xor{i}", {"A": a, "B": b})
        # adder bit
        s, cout = f"sum{i}", f"c{i + 1}"
        _full_adder(c, a, b, carry, s, cout, tag=f"fa{i}")
        carry = cout
        # result mux: S1 picks (arith, logic), S0 picks within
        c.add_gate("MUX2", f"mlo{i}", {"A": s, "B": f"and{i}", "S": "S0"})
        c.add_gate("MUX2", f"mhi{i}", {"A": f"or{i}", "B": f"xor{i}", "S": "S0"})
        c.add_gate("MUX2", f"F{i}", {"A": f"mlo{i}", "B": f"mhi{i}", "S": "S1"})
        c.add_output(f"F{i}")
    c.add_gate("BUF", "COUT", {"A": carry})
    c.add_output("COUT")
    c.check()
    return c


# ----------------------------------------------------------------------
# Random mapped DAGs
# ----------------------------------------------------------------------
#: (cell family, weight) per fan-in, loosely following ISCAS-85 cell mixes.
_FANIN_WEIGHTS: Dict[int, List[Tuple[str, float]]] = {
    1: [("INV", 0.85), ("BUF", 0.15)],
    2: [
        ("NAND2", 0.35),
        ("NOR2", 0.2),
        ("AND2", 0.15),
        ("OR2", 0.15),
        ("XOR2", 0.15),
    ],
    3: [("NAND3", 0.4), ("NOR3", 0.25), ("AND3", 0.2), ("OR3", 0.15)],
    4: [("NAND4", 0.4), ("NOR4", 0.25), ("AND4", 0.2), ("OR4", 0.15)],
}

_FANIN_DIST = [(1, 0.25), (2, 0.55), (3, 0.13), (4, 0.07)]


def _weighted(rng: random.Random, table: Sequence[Tuple[object, float]]):
    total = sum(w for _v, w in table)
    pick = rng.random() * total
    for value, weight in table:
        pick -= weight
        if pick <= 0:
            return value
    return table[-1][0]


def random_dag(
    name: str,
    n_inputs: int,
    n_gates: int,
    seed: int,
    n_outputs: Optional[int] = None,
    locality: int = 64,
    library: Optional[Library] = None,
) -> Circuit:
    """Seeded random combinational DAG with an ISCAS-like cell mix.

    Gates are created in topological order; each input is drawn either
    from the most recent ``locality`` nets (builds depth) or, with some
    probability, from the pool of not-yet-read nets (bounds the number
    of dangling nets).  Every net left unread at the end becomes a
    primary output, so the circuit has no dead logic; ``n_outputs`` is a
    soft target controlling how aggressively the generator consumes the
    unread pool.
    """
    rng = random.Random(seed)
    c = Circuit(name, library or default_library())
    nets: List[str] = []
    unread: set = set()
    for i in range(n_inputs):
        net = f"I{i}"
        c.add_input(net)
        nets.append(net)
        unread.add(net)
    target_outputs = n_outputs if n_outputs is not None else max(1, n_inputs // 2)

    for g in range(n_gates):
        fanin = _weighted(rng, _FANIN_DIST)
        fanin = min(fanin, len(nets))
        remaining = n_gates - g
        # Consume unread nets more aggressively as the surplus grows.
        surplus = len(unread) - target_outputs
        p_consume = min(0.9, max(0.1, surplus / max(remaining, 1)))
        chosen: List[str] = []
        for _ in range(fanin):
            pool = [n for n in unread if n not in chosen]
            if pool and rng.random() < p_consume:
                chosen.append(rng.choice(sorted(pool)))
            else:
                lo = max(0, len(nets) - locality)
                candidate = nets[rng.randrange(lo, len(nets))]
                if candidate in chosen:
                    candidate = nets[rng.randrange(lo, len(nets))]
                if candidate not in chosen:
                    chosen.append(candidate)
        fanin = len(chosen)
        cell = _weighted(rng, _FANIN_WEIGHTS[fanin])
        out = f"n{g}"
        c.add_gate(cell, out, dict(zip("ABCD", chosen)))
        nets.append(out)
        unread.add(out)
        for net in chosen:
            unread.discard(net)

    for net in sorted(unread):
        c.add_output(net)
    c.check()
    return c
