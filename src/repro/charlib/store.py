"""Characterized-library container with JSON persistence.

A :class:`CharacterizedLibrary` holds one :class:`TimingArc` per
*(cell, pin, sensitization vector, input edge)* -- the vector-resolved
arcs the paper's tool uses -- or, for the commercial baseline, one
vector-blind arc per *(cell, pin, input edge, output edge)* keyed with
vector id ``"*"``.  Each arc carries a delay model and an output-slew
model (the slew is needed to propagate ``t_in`` down a path).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.charlib.model import DelayModel, model_from_dict

#: Every stored model satisfies the :class:`DelayModel` protocol; the
#: alias survives for callers that imported the old union type.
Model = DelayModel

#: Vector id of vector-blind (baseline) arcs.
BLIND = "*"


@dataclass
class TimingArc:
    """One characterized propagation arc of a cell."""

    cell: str
    pin: str
    vector_id: str
    input_rising: bool
    output_rising: bool
    delay_model: Model
    slew_model: Model

    def delay(self, fo: float, t_in: float, temp: float, vdd: float) -> float:
        return self.delay_model.evaluate(fo, t_in, temp, vdd)

    def slew(self, fo: float, t_in: float, temp: float, vdd: float) -> float:
        return self.slew_model.evaluate(fo, t_in, temp, vdd)

    @property
    def key(self) -> str:
        return arc_key(self.cell, self.pin, self.vector_id, self.input_rising,
                       self.output_rising)

    def to_dict(self) -> Dict:
        return {
            "cell": self.cell,
            "pin": self.pin,
            "vector_id": self.vector_id,
            "input_rising": self.input_rising,
            "output_rising": self.output_rising,
            "delay_model": self.delay_model.to_dict(),
            "slew_model": self.slew_model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TimingArc":
        return cls(
            cell=data["cell"],
            pin=data["pin"],
            vector_id=data["vector_id"],
            input_rising=data["input_rising"],
            output_rising=data["output_rising"],
            delay_model=model_from_dict(data["delay_model"]),
            slew_model=model_from_dict(data["slew_model"]),
        )


def arc_key(cell: str, pin: str, vector_id: str, input_rising: bool,
            output_rising: bool) -> str:
    return "|".join(
        (cell, pin, vector_id, "r" if input_rising else "f",
         "R" if output_rising else "F")
    )


class CharacterizedLibrary:
    """All timing arcs and pin capacitances of a library under one
    technology."""

    def __init__(
        self,
        tech_name: str,
        library_name: str,
        model_kind: str,
        input_caps: Dict[str, Dict[str, float]],
        arcs: List[TimingArc],
        metadata: Optional[Dict] = None,
    ):
        self.tech_name = tech_name
        self.library_name = library_name
        self.model_kind = model_kind
        self.input_caps = input_caps
        self.metadata = metadata or {}
        self._arcs: Dict[str, TimingArc] = {}
        for arc in arcs:
            self._arcs[arc.key] = arc

    # ------------------------------------------------------------------
    def arc(self, cell: str, pin: str, vector_id: str, input_rising: bool,
            output_rising: bool) -> TimingArc:
        key = arc_key(cell, pin, vector_id, input_rising, output_rising)
        try:
            return self._arcs[key]
        except KeyError:
            raise KeyError(f"no timing arc {key}") from None

    def blind_arc(self, cell: str, pin: str, input_rising: bool,
                  output_rising: bool) -> TimingArc:
        """Vector-blind lookup used by the commercial baseline."""
        return self.arc(cell, pin, BLIND, input_rising, output_rising)

    def arcs(self) -> List[TimingArc]:
        return list(self._arcs.values())

    def pin_cap(self, cell: str, pin: str) -> float:
        return self.input_caps[cell][pin]

    def mean_cap(self, cell: str) -> float:
        caps = self.input_caps[cell]
        return sum(caps.values()) / len(caps)

    def cells(self) -> List[str]:
        return sorted(self.input_caps)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "tech_name": self.tech_name,
            "library_name": self.library_name,
            "model_kind": self.model_kind,
            "input_caps": self.input_caps,
            "metadata": self.metadata,
            "arcs": [arc.to_dict() for arc in self._arcs.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CharacterizedLibrary":
        return cls(
            tech_name=data["tech_name"],
            library_name=data["library_name"],
            model_kind=data["model_kind"],
            input_caps=data["input_caps"],
            arcs=[TimingArc.from_dict(a) for a in data["arcs"]],
            metadata=data.get("metadata", {}),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Atomic write (temp file + rename) so concurrent processes
        sharing the characterization cache never read a partial file."""
        target = Path(path)
        temporary = target.with_suffix(f".tmp{os.getpid()}")
        temporary.write_text(json.dumps(self.to_dict()))
        temporary.replace(target)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CharacterizedLibrary":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"CharacterizedLibrary({self.library_name}@{self.tech_name}, "
            f"{self.model_kind}, {len(self._arcs)} arcs)"
        )


def cache_dir() -> Path:
    """On-disk cache location (characterization is minutes of CPU)."""
    root = os.environ.get("REPRO_CHAR_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro-charlib"
    path.mkdir(parents=True, exist_ok=True)
    return path
