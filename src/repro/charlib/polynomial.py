"""The analytical polynomial delay model (paper equation (3)).

.. math::

    f(Fo, t_{in}, T, V_{DD}) =
        \\sum_{i=0}^{m}\\sum_{j=0}^{n}\\sum_{k=0}^{o}\\sum_{l=0}^{p}
        P_{ijkl} \\; Fo^i \\; t_{in}^j \\; T^k \\; V_{DD}^l

Variables are affinely normalized before fitting (``t_in`` is ~1e-11 s;
raw powers would make the normal equations hopelessly ill-conditioned).
The normalization is an internal representation detail: evaluation takes
physical units and the model still is a polynomial of exactly the
declared orders in the physical variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Variable order in every sample tuple: (Fo, t_in, T, VDD).
VARIABLES = ("fo", "t_in", "temp", "vdd")


@dataclass(frozen=True)
class Normalization:
    """Affine map ``x -> (x - center) / scale`` per variable."""

    centers: Tuple[float, float, float, float]
    scales: Tuple[float, float, float, float]

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Normalization":
        centers = points.mean(axis=0)
        spans = points.max(axis=0) - points.min(axis=0)
        scales = np.where(spans > 0, spans / 2.0, np.maximum(np.abs(centers), 1.0))
        return cls(tuple(float(c) for c in centers), tuple(float(s) for s in scales))

    def apply(self, points: np.ndarray) -> np.ndarray:
        return (points - np.asarray(self.centers)) / np.asarray(self.scales)


class PolynomialModel:
    """A fitted polynomial ``f(Fo, t_in, T, VDD)`` returning seconds."""

    def __init__(
        self,
        orders: Tuple[int, int, int, int],
        coeffs: np.ndarray,
        norm: Normalization,
    ):
        expected = tuple(o + 1 for o in orders)
        if coeffs.shape != expected:
            raise ValueError(f"coeff shape {coeffs.shape} != orders+1 {expected}")
        self.orders = tuple(orders)
        self.coeffs = np.asarray(coeffs, dtype=float)
        self.norm = norm

    # ------------------------------------------------------------------
    @staticmethod
    def design_matrix(points: np.ndarray, orders: Sequence[int]) -> np.ndarray:
        """Rows of monomials ``x0^i * x1^j * x2^k * x3^l`` for each point."""
        n_pts = points.shape[0]
        powers = []
        for v, order in enumerate(orders):
            col = points[:, v]
            powers.append(np.vander(col, order + 1, increasing=True))
        cols = []
        for i in range(orders[0] + 1):
            for j in range(orders[1] + 1):
                for k in range(orders[2] + 1):
                    for l in range(orders[3] + 1):
                        cols.append(
                            powers[0][:, i]
                            * powers[1][:, j]
                            * powers[2][:, k]
                            * powers[3][:, l]
                        )
        return np.column_stack(cols) if cols else np.ones((n_pts, 1))

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        values: np.ndarray,
        orders: Tuple[int, int, int, int],
        norm: Normalization = None,
    ) -> "PolynomialModel":
        """Least-squares fit on (n_pts, 4) sample points."""
        points = np.asarray(points, dtype=float)
        values = np.asarray(values, dtype=float)
        if norm is None:
            norm = Normalization.from_points(points)
        design = cls.design_matrix(norm.apply(points), orders)
        solution, *_ = np.linalg.lstsq(design, values, rcond=None)
        shape = tuple(o + 1 for o in orders)
        return cls(orders, solution.reshape(shape), norm)

    # ------------------------------------------------------------------
    @staticmethod
    def _power_ladder(x, order: int) -> List:
        """``[1.0, x, x*x, ...]`` by repeated multiplication.

        Shared by the scalar and batch evaluators: ``x`` may be an
        ``np.float64`` scalar or a column of points.  Repeated IEEE
        multiplication is the same elementwise operation either way,
        which is what makes ``evaluate_many(batch)[i]`` bitwise-equal
        to ``evaluate(batch[i])`` (``x ** n`` would not be: numpy
        routes scalar and array integer powers through different pow
        kernels that can disagree in the last ulp).
        """
        powers = [1.0]
        for _ in range(order):
            powers.append(powers[-1] * x)
        return powers

    def evaluate(self, fo: float, t_in: float, temp: float, vdd: float) -> float:
        point = np.array([[fo, t_in, temp, vdd]], dtype=float)
        x = self.norm.apply(point)[0]
        acc = 0.0
        # Horner-free direct accumulation; arrays are tiny.
        pow0 = self._power_ladder(x[0], self.orders[0])
        pow1 = self._power_ladder(x[1], self.orders[1])
        pow2 = self._power_ladder(x[2], self.orders[2])
        pow3 = self._power_ladder(x[3], self.orders[3])
        c = self.coeffs
        for i, p0 in enumerate(pow0):
            for j, p1 in enumerate(pow1):
                for k, p2 in enumerate(pow2):
                    for l, p3 in enumerate(pow3):
                        acc += c[i, j, k, l] * p0 * p1 * p2 * p3
        return float(acc)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Batch :meth:`evaluate` over ``(n, 4)`` rows.

        Row ``i`` of the result is bitwise-equal to
        ``evaluate(*points[i])``: the kernel replays the scalar
        evaluator's exact operation sequence (power ladder, term
        product order, term accumulation order) elementwise across
        rows, so the vectorized timing sweeps in
        :mod:`repro.core.tarrays` reproduce the scalar engines'
        results byte for byte (see :class:`repro.charlib.model.DelayModel`).
        """
        pts = self.norm.apply(np.asarray(points, dtype=float))
        pow0 = self._power_ladder(pts[:, 0], self.orders[0])
        pow1 = self._power_ladder(pts[:, 1], self.orders[1])
        pow2 = self._power_ladder(pts[:, 2], self.orders[2])
        pow3 = self._power_ladder(pts[:, 3], self.orders[3])
        c = self.coeffs
        acc = np.zeros(pts.shape[0])
        for i, p0 in enumerate(pow0):
            for j, p1 in enumerate(pow1):
                for k, p2 in enumerate(pow2):
                    for l, p3 in enumerate(pow3):
                        acc += c[i, j, k, l] * p0 * p1 * p2 * p3
        return acc

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return int(np.prod([o + 1 for o in self.orders]))

    def to_dict(self) -> Dict:
        return {
            "kind": "polynomial",
            "orders": list(self.orders),
            "coeffs": self.coeffs.reshape(-1).tolist(),
            "centers": list(self.norm.centers),
            "scales": list(self.norm.scales),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PolynomialModel":
        orders = tuple(data["orders"])
        shape = tuple(o + 1 for o in orders)
        coeffs = np.asarray(data["coeffs"], dtype=float).reshape(shape)
        norm = Normalization(tuple(data["centers"]), tuple(data["scales"]))
        return cls(orders, coeffs, norm)

    def __repr__(self) -> str:
        return f"PolynomialModel(orders={self.orders}, params={self.num_parameters})"
