"""Characterized-library quality assurance.

Spot-checks a characterized library against fresh electrical
simulations at randomly drawn off-grid points -- the regression test a
production characterization flow runs before releasing a library.
Reports per-arc worst relative error for delay and slew, and flags
arcs exceeding a tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.store import BLIND, CharacterizedLibrary
from repro.gates.library import Library, default_library
from repro.spice.cellsim import CellSimulator
from repro.tech.technology import Technology


@dataclass
class ArcCheck:
    """Validation result for one arc at one probe point."""

    arc_key: str
    fo: float
    t_in: float
    model_delay: float
    golden_delay: float
    model_slew: float
    golden_slew: float

    @property
    def delay_error(self) -> float:
        return abs(self.model_delay - self.golden_delay) / self.golden_delay

    @property
    def slew_error(self) -> float:
        return abs(self.model_slew - self.golden_slew) / self.golden_slew


@dataclass
class QaReport:
    checks: List[ArcCheck] = field(default_factory=list)
    tolerance: float = 0.08

    @property
    def worst_delay_error(self) -> float:
        return max((c.delay_error for c in self.checks), default=0.0)

    @property
    def mean_delay_error(self) -> float:
        if not self.checks:
            return 0.0
        return sum(c.delay_error for c in self.checks) / len(self.checks)

    def failures(self) -> List[ArcCheck]:
        return [c for c in self.checks if c.delay_error > self.tolerance]

    @property
    def passed(self) -> bool:
        return not self.failures()

    def describe(self) -> str:
        lines = [
            f"library QA: {len(self.checks)} probes, mean delay error "
            f"{self.mean_delay_error * 100:.2f}%, worst "
            f"{self.worst_delay_error * 100:.2f}% "
            f"({'PASS' if self.passed else 'FAIL'} at "
            f"{self.tolerance * 100:.0f}%)"
        ]
        for c in self.failures():
            lines.append(
                f"  FAIL {c.arc_key} @ fo={c.fo:.2f} t_in={c.t_in * 1e12:.0f}ps: "
                f"model {c.model_delay * 1e12:.2f}ps vs golden "
                f"{c.golden_delay * 1e12:.2f}ps"
            )
        return "\n".join(lines)


def validate_library(
    charlib: CharacterizedLibrary,
    tech: Technology,
    library: Optional[Library] = None,
    arcs_to_check: int = 6,
    probes_per_arc: int = 2,
    fo_range: Tuple[float, float] = (0.7, 6.0),
    t_in_range: Tuple[float, float] = (1.5e-11, 2.5e-10),
    tolerance: float = 0.08,
    steps_per_window: int = 300,
    seed: int = 0,
) -> QaReport:
    """Probe random arcs at random off-grid points against fresh
    transistor-level simulations."""
    library = library or default_library()
    rng = random.Random(seed)
    candidates = [a for a in charlib.arcs() if a.vector_id != BLIND
                  and a.cell in library]
    if not candidates:
        raise ValueError("library has no vector-resolved arcs to validate")
    chosen = rng.sample(candidates, min(arcs_to_check, len(candidates)))

    report = QaReport(tolerance=tolerance)
    simulators: Dict[str, CellSimulator] = {}
    for arc in chosen:
        cell = library[arc.cell]
        sim = simulators.get(arc.cell)
        if sim is None:
            sim = CellSimulator(cell, tech, steps_per_window=steps_per_window)
            simulators[arc.cell] = sim
        vector = cell.vector_by_id(arc.vector_id)
        mean_cap = charlib.mean_cap(arc.cell)
        for _ in range(probes_per_arc):
            fo = rng.uniform(*fo_range)
            t_in = rng.uniform(*t_in_range)
            golden = sim.propagation(
                arc.pin, vector, arc.input_rising, t_in=t_in,
                c_load=fo * mean_cap,
            )
            report.checks.append(
                ArcCheck(
                    arc_key=arc.key,
                    fo=fo,
                    t_in=t_in,
                    model_delay=arc.delay(fo, t_in, 25.0, tech.vdd),
                    golden_delay=golden.delay,
                    model_slew=arc.slew(fo, t_in, 25.0, tech.vdd),
                    golden_slew=golden.out_slew,
                )
            )
    return report
