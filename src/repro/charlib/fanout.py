"""Equivalent fanout computation inside a circuit.

The paper defines the equivalent fanout of a gate G as the ratio of the
capacitance seen at G's output (all connected gate inputs) to G's own
input capacitance -- "the number of gates of the same type as G that
should be connected to G's output to obtain Cout".  We use the mean of
G's per-pin input capacitances as the denominator and the sum of the
actual sink-pin capacitances (plus an optional primary-output load) as
the numerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.charlib.store import CharacterizedLibrary
from repro.netlist.circuit import Circuit, Instance


@dataclass(frozen=True)
class WireLoadModel:
    """Fanout-based wire capacitance estimate (pre-layout style).

    ``load = c_fixed + c_per_fanout * n_sinks`` is added to the pin
    capacitance sum of every net.  The default model is zero (pin caps
    only), matching the paper's equivalent-fanout definition; pass a
    model to both the STA and the golden path simulation to study wire
    effects consistently.
    """

    c_fixed: float = 0.0
    c_per_fanout: float = 0.5e-15

    def net_capacitance(self, n_sinks: int) -> float:
        return self.c_fixed + self.c_per_fanout * n_sinks


def primary_output_load(charlib: CharacterizedLibrary, fanout: float = 2.0) -> float:
    """Default load on primary outputs: ``fanout`` inverter inputs."""
    if "INV" in charlib.input_caps:
        return fanout * charlib.pin_cap("INV", "A")
    any_cell = charlib.cells()[0]
    return fanout * charlib.mean_cap(any_cell)


def output_load(
    circuit: Circuit,
    inst: Instance,
    charlib: CharacterizedLibrary,
    po_load: Optional[float] = None,
    wire: Optional[WireLoadModel] = None,
) -> float:
    """Capacitance (F) at the instance's output net."""
    net = circuit.nets[inst.output_net]
    load = 0.0
    for sink, pin in net.sinks:
        load += charlib.pin_cap(sink.cell.name, pin)
    if wire is not None:
        load += wire.net_capacitance(len(net.sinks))
    if net.is_output:
        load += primary_output_load(charlib) if po_load is None else po_load
    return load


def equivalent_fanout(
    circuit: Circuit,
    inst: Instance,
    charlib: CharacterizedLibrary,
    po_load: Optional[float] = None,
    wire: Optional[WireLoadModel] = None,
) -> float:
    """The paper's Fo for one placed instance."""
    return output_load(circuit, inst, charlib, po_load, wire) / charlib.mean_cap(
        inst.cell.name
    )
