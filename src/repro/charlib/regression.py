"""Recursive polynomial regression with adaptive order selection.

The paper extracts model parameters with a "recursive polynomial
regression procedure" where "the maximum order for each variable ... is
adjusted during the extraction process to provide the desired accuracy".

:func:`fit_adaptive` implements that: starting from first order in the
variables that actually vary in the sweep, it repeatedly refits with one
variable's order incremented -- choosing the increment that reduces the
maximum relative error the most -- until the error target is met or the
order caps are reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.charlib.polynomial import Normalization, PolynomialModel


@dataclass
class FitReport:
    """Diagnostics of one adaptive fit."""

    orders: Tuple[int, int, int, int]
    max_rel_error: float
    rms_rel_error: float
    iterations: int
    target_met: bool


def _relative_errors(model: PolynomialModel, points: np.ndarray,
                     values: np.ndarray) -> np.ndarray:
    predicted = model.evaluate_many(points)
    floor = max(1e-15, 0.05 * float(np.median(np.abs(values))))
    return np.abs(predicted - values) / np.maximum(np.abs(values), floor)


def fit_adaptive(
    points: np.ndarray,
    values: np.ndarray,
    target_rel_error: float = 0.02,
    max_orders: Tuple[int, int, int, int] = (3, 3, 2, 2),
    min_order: int = 1,
) -> Tuple[PolynomialModel, FitReport]:
    """Fit with the smallest per-variable orders meeting the target.

    Variables that do not vary across the sweep are pinned to order 0
    (their monomials would be collinear with the constant term).
    """
    points = np.asarray(points, dtype=float)
    values = np.asarray(values, dtype=float)
    norm = Normalization.from_points(points)
    varies = [len(np.unique(points[:, v])) > 1 for v in range(4)]

    orders = [min_order if varies[v] else 0 for v in range(4)]
    capped = [max_orders[v] if varies[v] else 0 for v in range(4)]

    def fit(order_tuple):
        model = PolynomialModel.fit(points, values, tuple(order_tuple), norm)
        errors = _relative_errors(model, points, values)
        return model, float(errors.max()), float(np.sqrt(np.mean(errors**2)))

    model, max_err, rms_err = fit(orders)
    iterations = 1
    while max_err > target_rel_error:
        candidates = []
        for v in range(4):
            if orders[v] >= capped[v]:
                continue
            trial = list(orders)
            trial[v] += 1
            # Never fit more parameters than sample points.
            if int(np.prod([o + 1 for o in trial])) > len(values):
                continue
            candidates.append((v, fit(trial)))
            iterations += 1
        if not candidates:
            break
        best_v, (best_model, best_max, best_rms) = min(
            candidates, key=lambda item: item[1][1]
        )
        if best_max >= max_err - 1e-12:
            break  # no candidate helps; stop rather than loop forever
        orders[best_v] += 1
        model, max_err, rms_err = best_model, best_max, best_rms

    report = FitReport(
        orders=tuple(orders),
        max_rel_error=max_err,
        rms_rel_error=rms_err,
        iterations=iterations,
        target_met=max_err <= target_rel_error,
    )
    return model, report


def fit_fixed(
    points: np.ndarray,
    values: np.ndarray,
    orders: Tuple[int, int, int, int],
) -> Tuple[PolynomialModel, FitReport]:
    """Plain least-squares fit at fixed orders (ablation: the paper notes
    even a first-order model beats the LUT baseline)."""
    points = np.asarray(points, dtype=float)
    values = np.asarray(values, dtype=float)
    varies = [len(np.unique(points[:, v])) > 1 for v in range(4)]
    effective = tuple(o if varies[v] else 0 for v, o in enumerate(orders))
    model = PolynomialModel.fit(points, values, effective)
    errors = _relative_errors(model, points, values)
    report = FitReport(
        orders=effective,
        max_rel_error=float(errors.max()),
        rms_rel_error=float(np.sqrt(np.mean(errors**2))),
        iterations=1,
        target_met=True,
    )
    return model, report
