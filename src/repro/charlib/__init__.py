"""Cell characterization and delay models.

* :mod:`repro.charlib.polynomial` -- the paper's SPDM-like analytical
  model ``f(Fo, t_in, T, VDD)`` (equation (3));
* :mod:`repro.charlib.regression` -- recursive polynomial regression
  with adaptive per-variable order;
* :mod:`repro.charlib.lut` -- NLDM-style lookup tables with bilinear
  interpolation (the commercial baseline's model);
* :mod:`repro.charlib.characterize` -- automatic electrical sweeps per
  (cell, pin, sensitization vector, edge);
* :mod:`repro.charlib.store` -- the characterized library container with
  JSON persistence and an on-disk cache;
* :mod:`repro.charlib.fanout` -- equivalent-fanout computation inside a
  circuit.
"""

from repro.charlib.polynomial import PolynomialModel
from repro.charlib.lut import LutModel
from repro.charlib.store import CharacterizedLibrary, TimingArc
from repro.charlib.characterize import CharacterizationGrid, characterize_library
from repro.charlib.fanout import equivalent_fanout, output_load

__all__ = [
    "CharacterizationGrid",
    "CharacterizedLibrary",
    "LutModel",
    "PolynomialModel",
    "TimingArc",
    "characterize_library",
    "equivalent_fanout",
    "output_load",
]
