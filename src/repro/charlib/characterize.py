"""Automatic library characterization.

For every cell, every input pin, every sensitization vector of that pin
and both input edges, the characterizer runs the electrical testbench of
:mod:`repro.spice.cellsim` over a grid of (equivalent fanout, input
transition time, temperature, supply) points, then fits the delay and
output-slew models:

* ``model="polynomial"`` -- the paper's tool: adaptive-order polynomial
  per *vector-resolved* arc (``vector_mode="all"``);
* ``model="lut"`` -- the commercial baseline: NLDM tables per pin/edge
  characterized under a *single* default vector (``vector_mode="default"``),
  which is precisely the simplification whose cost Tables 7-9 measure.

Characterization output is cached on disk keyed by a hash of everything
that affects the numbers (technology, grid, cell list, model settings).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.charlib.lut import LutModel
from repro.charlib.regression import fit_adaptive, fit_fixed
from repro.charlib.store import BLIND, CharacterizedLibrary, TimingArc, cache_dir
from repro.gates.cell import Cell, SensitizationVector
from repro.gates.library import Library
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.spice.cellsim import CellSimulator, input_capacitance
from repro.tech.technology import Technology

_PS = 1e-12

_log = get_logger("repro.charlib")


@dataclass(frozen=True)
class CharacterizationGrid:
    """Full-factorial sweep specification.

    ``vdd_scale`` entries multiply the technology's nominal supply so a
    single grid works across nodes.
    """

    fo: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0)
    t_in: Tuple[float, ...] = (10 * _PS, 40 * _PS, 120 * _PS, 300 * _PS)
    temp: Tuple[float, ...] = (25.0,)
    vdd_scale: Tuple[float, ...] = (1.0,)

    def points(self, tech: Technology) -> List[Tuple[float, float, float, float]]:
        return [
            (fo, t_in, temp, scale * tech.vdd)
            for fo in self.fo
            for t_in in self.t_in
            for temp in self.temp
            for scale in self.vdd_scale
        ]

    @property
    def size(self) -> int:
        return len(self.fo) * len(self.t_in) * len(self.temp) * len(self.vdd_scale)

    def describe(self) -> Dict:
        return {
            "fo": list(self.fo),
            "t_in": list(self.t_in),
            "temp": list(self.temp),
            "vdd_scale": list(self.vdd_scale),
        }


#: Grid with temperature and supply variation (PVT studies / ablation).
EXTENDED_GRID = CharacterizationGrid(
    temp=(0.0, 25.0, 75.0, 125.0),
    vdd_scale=(0.9, 1.0, 1.1),
)

#: Small grid for unit tests.
FAST_GRID = CharacterizationGrid(
    fo=(1.0, 3.0, 6.0),
    t_in=(20 * _PS, 80 * _PS, 240 * _PS),
)


def _default_vectors(cell: Cell, pin: str) -> List[SensitizationVector]:
    """The single vector per output polarity a vector-blind tool would
    characterize with (the first -- "easiest" -- case of each polarity)."""
    chosen: Dict[bool, SensitizationVector] = {}
    for vec in cell.sensitization_vectors(pin):
        if vec.inverting not in chosen:
            chosen[vec.inverting] = vec
    return list(chosen.values())


def characterize_cell(
    cell: Cell,
    tech: Technology,
    grid: CharacterizationGrid,
    vector_mode: str = "all",
    steps_per_window: int = 400,
) -> Dict[Tuple[str, str, bool], List[Dict]]:
    """Raw sweep data per (pin, vector_id, input_rising).

    Every sample dict carries the grid point, the measured ``delay`` and
    ``out_slew`` (seconds) and the output polarity.
    """
    sim = CellSimulator(cell, tech, steps_per_window=steps_per_window)
    mean_cap = sum(
        input_capacitance(cell, p, tech) for p in cell.inputs
    ) / len(cell.inputs)
    out: Dict[Tuple[str, str, bool], List[Dict]] = {}
    for pin in cell.inputs:
        if vector_mode == "all":
            vectors = cell.sensitization_vectors(pin)
        elif vector_mode == "default":
            vectors = _default_vectors(cell, pin)
        else:
            raise ValueError(f"unknown vector_mode {vector_mode!r}")
        for vec in vectors:
            for input_rising in (True, False):
                samples: List[Dict] = []
                for fo, t_in, temp, vdd in grid.points(tech):
                    result = sim.propagation(
                        pin,
                        vec,
                        input_rising,
                        t_in=t_in,
                        c_load=fo * mean_cap,
                        temp=temp,
                        vdd=vdd,
                    )
                    samples.append(
                        {
                            "fo": fo,
                            "t_in": t_in,
                            "temp": temp,
                            "vdd": vdd,
                            "delay": result.delay,
                            "out_slew": result.out_slew,
                            "out_rising": result.out_rising,
                        }
                    )
                out[(pin, vec.vector_id, input_rising)] = samples
    return out


def _fit_models(samples: List[Dict], model: str, grid: CharacterizationGrid,
                tech: Technology, target_rel_error: float,
                fixed_orders: Optional[Tuple[int, int, int, int]]):
    points = np.array([[s["fo"], s["t_in"], s["temp"], s["vdd"]] for s in samples])
    delays = np.array([s["delay"] for s in samples])
    slews = np.array([s["out_slew"] for s in samples])
    if model == "polynomial":
        if fixed_orders is not None:
            delay_model, delay_report = fit_fixed(points, delays, fixed_orders)
            slew_model, _ = fit_fixed(points, slews, fixed_orders)
        else:
            delay_model, delay_report = fit_adaptive(
                points, delays, target_rel_error=target_rel_error
            )
            slew_model, _ = fit_adaptive(
                points, slews, target_rel_error=target_rel_error
            )
        return delay_model, slew_model, delay_report.orders, delay_report
    if model == "lut":
        ref_temp = grid.temp[len(grid.temp) // 2]
        ref_vdd = grid.vdd_scale[len(grid.vdd_scale) // 2] * tech.vdd
        delay_model = LutModel.from_samples(
            samples, grid.t_in, grid.fo, "delay", ref_temp, ref_vdd
        )
        slew_model = LutModel.from_samples(
            samples, grid.t_in, grid.fo, "out_slew", ref_temp, ref_vdd
        )
        return delay_model, slew_model, None, None
    raise ValueError(f"unknown model {model!r}")


def characterize_library(
    library: Library,
    tech: Technology,
    grid: Optional[CharacterizationGrid] = None,
    model: str = "polynomial",
    vector_mode: str = "all",
    target_rel_error: float = 0.02,
    fixed_orders: Optional[Tuple[int, int, int, int]] = None,
    cells: Optional[Iterable[str]] = None,
    steps_per_window: int = 400,
    use_cache: bool = True,
) -> CharacterizedLibrary:
    """Characterize (a subset of) a library under one technology.

    Results are cached on disk; a cache hit costs one JSON load.
    """
    grid = grid or CharacterizationGrid()
    cell_names = sorted(cells) if cells is not None else sorted(
        c.name for c in library
    )
    key_blob = json.dumps(
        {
            "tech": repr(tech),
            "grid": grid.describe(),
            "model": model,
            "vector_mode": vector_mode,
            "target": target_rel_error,
            "fixed_orders": fixed_orders,
            "cells": cell_names,
            "steps": steps_per_window,
            "version": 3,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(key_blob.encode()).hexdigest()[:20]
    cache_path = cache_dir() / f"charlib_{digest}.json"
    if use_cache and cache_path.exists():
        obs_metrics.counter("charlib.cache_hits").inc()
        _log.info("cache.hit", key=digest, path=str(cache_path),
                  tech=tech.name, model=model, vector_mode=vector_mode)
        return CharacterizedLibrary.load(cache_path)
    if use_cache:
        obs_metrics.counter("charlib.cache_misses").inc()
        _log.info("cache.miss", key=digest, tech=tech.name, model=model,
                  vector_mode=vector_mode, cells=len(cell_names))

    arcs: List[TimingArc] = []
    input_caps: Dict[str, Dict[str, float]] = {}
    orders_meta: Dict[str, List[int]] = {}
    blind = vector_mode == "default"
    for name in cell_names:
        cell = library[name]
        input_caps[name] = {
            pin: input_capacitance(cell, pin, tech) for pin in cell.inputs
        }
        cell_started = time.perf_counter()
        with span("charlib.characterize_cell"):
            sweeps = characterize_cell(
                cell, tech, grid, vector_mode=vector_mode,
                steps_per_window=steps_per_window,
            )
        sim_seconds = time.perf_counter() - cell_started
        fit_seconds = 0.0
        for (pin, vector_id, input_rising), samples in sweeps.items():
            fit_started = time.perf_counter()
            with span("charlib.fit"):
                delay_model, slew_model, orders, report = _fit_models(
                    samples, model, grid, tech, target_rel_error, fixed_orders
                )
            fit_elapsed = time.perf_counter() - fit_started
            fit_seconds += fit_elapsed
            obs_metrics.histogram("charlib.fit_seconds", cell=name).observe(
                fit_elapsed
            )
            if report is not None:
                obs_metrics.histogram(
                    "charlib.fit_max_rel_error", cell=name
                ).observe(report.max_rel_error)
                _log.debug(
                    "fit.done", cell=name, pin=pin, vector=vector_id,
                    input_rising=input_rising, orders=list(report.orders),
                    max_rel_error=round(report.max_rel_error, 5),
                    seconds=round(fit_elapsed, 4),
                )
            out_rising = samples[0]["out_rising"]
            arc = TimingArc(
                cell=name,
                pin=pin,
                vector_id=BLIND if blind else vector_id,
                input_rising=input_rising,
                output_rising=out_rising,
                delay_model=delay_model,
                slew_model=slew_model,
            )
            arcs.append(arc)
            if orders is not None:
                orders_meta[arc.key] = list(orders)
        obs_metrics.histogram("charlib.cell_seconds", cell=name).observe(
            sim_seconds + fit_seconds
        )
        _log.info("cell.characterized", cell=name,
                  sim_s=round(sim_seconds, 3), fit_s=round(fit_seconds, 3),
                  arcs=len(sweeps))

    result = CharacterizedLibrary(
        tech_name=tech.name,
        library_name=library.name,
        model_kind=model,
        input_caps=input_caps,
        arcs=arcs,
        metadata={
            "grid": grid.describe(),
            "vector_mode": vector_mode,
            "orders": orders_meta,
            "cache_key": digest,
        },
    )
    if use_cache:
        result.save(cache_path)
    return result
