"""The delay-model protocol shared by every characterized library.

A characterized arc carries two models (delay and output slew).  The
STA engines never care which fitting family produced them -- the
polynomial SPDM (:class:`~repro.charlib.polynomial.PolynomialModel`)
and the NLDM lookup table (:class:`~repro.charlib.lut.LutModel`) are
interchangeable behind :class:`DelayModel`:

* ``evaluate(fo, t_in, temp, vdd)`` -- one point, in seconds;
* ``evaluate_many(points)`` -- a batch of ``(fo, t_in, temp, vdd)``
  rows (the bound sweeps in :mod:`repro.core.delaycalc` and the
  structure-of-arrays timing sweeps in :mod:`repro.core.tarrays`
  evaluate whole level/model groups in one call);
* ``to_dict()`` / ``from_dict`` -- JSON persistence, dispatched through
  :data:`MODEL_KINDS`.

**The batch-equivalence law.**  ``evaluate_many`` must be *row
independent* and *bitwise-equal* to the scalar evaluator:
``evaluate_many(points)[i] == evaluate(*points[i])`` exactly, for any
batch composition.  The vectorized timing core relies on it to produce
byte-identical arrivals, slews and pruning bounds whether a model is
evaluated one traversal at a time (scalar engines, ``--no-vectorize``)
or once per (level, model group).  Implementations must therefore
replay the scalar operation sequence elementwise (see
:meth:`PolynomialModel._power_ladder
<repro.charlib.polynomial.PolynomialModel._power_ladder>`) rather than
reassociating the arithmetic (e.g. a BLAS ``design @ coeffs`` product
is *not* bitwise-equal to sequential accumulation).
``tests/test_core_tarrays.py`` pins the law for both built-in
families.

New model families register their ``kind`` tag in :data:`MODEL_KINDS`
and automatically work everywhere: arc resolution, the arc cache, the
pruning bounds and library persistence all go through this protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class DelayModel(Protocol):
    """What the delay calculator requires of a fitted timing model."""

    def evaluate(self, fo: float, t_in: float, temp: float, vdd: float) -> float:
        """Model value (seconds) at one ``(Fo, t_in, T, VDD)`` point."""
        ...

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Model values for an ``(n, 4)`` array of points."""
        ...

    def to_dict(self) -> Dict:
        """JSON-serializable form carrying a ``kind`` tag."""
        ...


#: kind tag -> deserializer, the single dispatch point for persistence.
MODEL_KINDS: Dict[str, Callable[[Dict], DelayModel]] = {}


def register_model_kind(kind: str, loader: Callable[[Dict], DelayModel]) -> None:
    MODEL_KINDS[kind] = loader


def model_from_dict(data: Dict) -> DelayModel:
    """Reconstruct a model from its :meth:`DelayModel.to_dict` form."""
    try:
        loader = MODEL_KINDS[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown model kind {data['kind']!r}") from None
    return loader(data)


def _register_builtin_kinds() -> None:
    from repro.charlib.lut import LutModel
    from repro.charlib.polynomial import PolynomialModel

    register_model_kind("polynomial", PolynomialModel.from_dict)
    register_model_kind("lut", LutModel.from_dict)


_register_builtin_kinds()
