"""NLDM-style two-dimensional lookup-table model.

This is the commercial baseline's delay model: a (input slew x output
load) table per timing arc, evaluated with bilinear interpolation and
clamped extrapolation at the table edges, plus linear temperature and
supply derating factors.  Unlike the polynomial model it is
characterized for a *single* sensitization vector per pin, which is
exactly the inaccuracy the paper quantifies in Tables 7-9.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class LutModel:
    """Bilinear-interpolated table ``value(t_in, fo)`` with derating."""

    def __init__(
        self,
        t_in_axis: Sequence[float],
        fo_axis: Sequence[float],
        table: np.ndarray,
        ref_temp: float = 25.0,
        ref_vdd: float = 1.0,
        k_temp: float = 0.0,
        k_vdd: float = 0.0,
    ):
        self.t_in_axis = np.asarray(t_in_axis, dtype=float)
        self.fo_axis = np.asarray(fo_axis, dtype=float)
        self.table = np.asarray(table, dtype=float)
        if self.table.shape != (len(self.t_in_axis), len(self.fo_axis)):
            raise ValueError("table shape does not match axes")
        if np.any(np.diff(self.t_in_axis) <= 0) or np.any(np.diff(self.fo_axis) <= 0):
            raise ValueError("axes must be strictly increasing")
        self.ref_temp = ref_temp
        self.ref_vdd = ref_vdd
        #: Relative derating per Kelvin / per Volt (commercial k-factors).
        self.k_temp = k_temp
        self.k_vdd = k_vdd

    # ------------------------------------------------------------------
    @staticmethod
    def _bracket(axis: np.ndarray, x: float):
        """Clamped segment index and interpolation weight."""
        idx = int(np.searchsorted(axis, x) - 1)
        idx = min(max(idx, 0), len(axis) - 2)
        x0, x1 = axis[idx], axis[idx + 1]
        w = (x - x0) / (x1 - x0)
        w = min(max(w, 0.0), 1.0)  # clamp: no extrapolation beyond corners
        return idx, w

    def evaluate(self, fo: float, t_in: float, temp: float, vdd: float) -> float:
        i, wi = self._bracket(self.t_in_axis, t_in)
        j, wj = self._bracket(self.fo_axis, fo)
        t = self.table
        base = (
            t[i, j] * (1 - wi) * (1 - wj)
            + t[i + 1, j] * wi * (1 - wj)
            + t[i, j + 1] * (1 - wi) * wj
            + t[i + 1, j + 1] * wi * wj
        )
        derate = 1.0 + self.k_temp * (temp - self.ref_temp) + self.k_vdd * (
            vdd - self.ref_vdd
        )
        return float(base * derate)

    def evaluate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate` over ``(n, 4)`` rows of
        ``(fo, t_in, temp, vdd)`` -- same variable order as
        :meth:`PolynomialModel.evaluate_many <repro.charlib.polynomial.PolynomialModel.evaluate_many>`.

        Row ``i`` is bitwise-equal to ``evaluate(*points[i])`` (the
        :class:`~repro.charlib.model.DelayModel` batch-equivalence
        law): searchsorted bracketing, clamped weights, the bilinear
        expression tree and the derate factor are the same elementwise
        operations in the same order as the scalar path.
        """
        points = np.asarray(points, dtype=float)
        fo, t_in, temp, vdd = points.T
        i = np.clip(np.searchsorted(self.t_in_axis, t_in) - 1, 0,
                    len(self.t_in_axis) - 2)
        j = np.clip(np.searchsorted(self.fo_axis, fo) - 1, 0,
                    len(self.fo_axis) - 2)
        ti0, ti1 = self.t_in_axis[i], self.t_in_axis[i + 1]
        fj0, fj1 = self.fo_axis[j], self.fo_axis[j + 1]
        wi = np.clip((t_in - ti0) / (ti1 - ti0), 0.0, 1.0)
        wj = np.clip((fo - fj0) / (fj1 - fj0), 0.0, 1.0)
        t = self.table
        base = (
            t[i, j] * (1 - wi) * (1 - wj)
            + t[i + 1, j] * wi * (1 - wj)
            + t[i, j + 1] * (1 - wi) * wj
            + t[i + 1, j + 1] * wi * wj
        )
        derate = (1.0 + self.k_temp * (temp - self.ref_temp)
                  + self.k_vdd * (vdd - self.ref_vdd))
        return base * derate

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "kind": "lut",
            "t_in_axis": self.t_in_axis.tolist(),
            "fo_axis": self.fo_axis.tolist(),
            "table": self.table.tolist(),
            "ref_temp": self.ref_temp,
            "ref_vdd": self.ref_vdd,
            "k_temp": self.k_temp,
            "k_vdd": self.k_vdd,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LutModel":
        return cls(
            data["t_in_axis"],
            data["fo_axis"],
            np.asarray(data["table"], dtype=float),
            ref_temp=data["ref_temp"],
            ref_vdd=data["ref_vdd"],
            k_temp=data["k_temp"],
            k_vdd=data["k_vdd"],
        )

    @classmethod
    def from_samples(
        cls,
        samples: List[Dict],
        t_in_axis: Sequence[float],
        fo_axis: Sequence[float],
        value_key: str,
        ref_temp: float,
        ref_vdd: float,
    ) -> "LutModel":
        """Assemble a table from nominal-corner characterization samples.

        Samples must cover the full (t_in x fo) factorial at the
        reference temperature and supply.
        """
        table = np.full((len(t_in_axis), len(fo_axis)), np.nan)
        for s in samples:
            if abs(s["temp"] - ref_temp) > 1e-9 or abs(s["vdd"] - ref_vdd) > 1e-12:
                continue
            try:
                i = list(t_in_axis).index(s["t_in"])
                j = list(fo_axis).index(s["fo"])
            except ValueError:
                continue
            table[i, j] = s[value_key]
        if np.any(np.isnan(table)):
            raise ValueError("incomplete factorial for LUT construction")
        return cls(t_in_axis, fo_axis, table, ref_temp=ref_temp, ref_vdd=ref_vdd)

    def __repr__(self) -> str:
        return f"LutModel({len(self.t_in_axis)}x{len(self.fo_axis)})"
