"""Standard-cell library substrate.

Boolean functions (:mod:`repro.gates.logic`), cell definitions with
per-pin sensitization-vector enumeration (:mod:`repro.gates.cell`,
:mod:`repro.gates.sensitization`) and the default library of primitive
and complex gates (:mod:`repro.gates.library`).
"""

from repro.gates.logic import BoolFunc, X
from repro.gates.cell import Cell, SensitizationVector
from repro.gates.library import Library, default_library, sized_library

__all__ = [
    "BoolFunc",
    "Cell",
    "Library",
    "SensitizationVector",
    "X",
    "default_library",
    "sized_library",
]
