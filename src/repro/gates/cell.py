"""Standard-cell definitions.

A :class:`Cell` bundles a boolean function, its pin names, and the
transistor-level structure of its CMOS implementation (the pull-down
network of the inverting core plus an optional output inverter).  From
the function the cell derives, once, everything the STA engines need:

* the per-pin **sensitization vectors** -- every assignment of the side
  inputs that lets a transition on the pin reach the output (the rows of
  the paper's propagation tables);
* the **justification cubes** -- minimal partial input assignments that
  force the output to a given value, ordered easiest-first;
* the **arc polarity** (inverting or not) of each sensitized pin under
  each vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.gates.logic import BoolFunc

#: Series/parallel expression tree for a transistor network.  Leaves are
#: pin names, optionally prefixed with ``!`` for an internally inverted
#: input; internal nodes are ``("s", ...)`` (series) or ``("p", ...)``
#: (parallel) tuples.
NetworkExpr = Union[str, Tuple]


@dataclass(frozen=True)
class SensitizationVector:
    """One way to sensitize one input pin of a cell.

    Attributes
    ----------
    cell_name:
        Owning cell.
    pin:
        The sensitized input pin (the one carrying the transition "T").
    case:
        1-based index matching the paper's "Case n" nomenclature; cases
        are ordered by the canonical minterm index of the side values.
    side_values:
        Steady logic values required on every other input pin.
    inverting:
        Whether the output transition has opposite polarity to the input
        transition under this vector.
    """

    cell_name: str
    pin: str
    case: int
    side_values: Dict[str, int] = field(hash=False)
    inverting: bool

    @property
    def vector_id(self) -> str:
        """Stable key such as ``"A:100"`` (side pins in cell pin order)."""
        bits = "".join(str(self.side_values[p]) for p in sorted(self.side_values))
        return f"{self.pin}:{bits}"

    def __hash__(self) -> int:  # side_values is tiny and immutable by use
        return hash((self.cell_name, self.pin, self.case))

    def __repr__(self) -> str:
        sides = ",".join(f"{p}={v}" for p, v in sorted(self.side_values.items()))
        pol = "inv" if self.inverting else "non-inv"
        return f"<{self.cell_name} {self.pin} case{self.case} [{sides}] {pol}>"


class Cell:
    """A combinational standard cell.

    Parameters
    ----------
    name:
        Library name, e.g. ``"AO22"``.
    inputs:
        Ordered input pin names.
    func:
        Boolean function of the cell output in terms of ``inputs``.
    pdn:
        Series/parallel expression of the pull-down network of the
        *inverting core* (series = AND, parallel = OR of the pulled-down
        condition).  ``None`` for cells without a transistor model.
    output_inverter:
        True when the CMOS implementation is an inverting core followed
        by an output inverter (AND/OR/AO/OA cells); the cell function is
        then the core condition itself rather than its complement.
    drive:
        Relative drive strength (width multiplier for every device).
    """

    output = "Z"

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        func: BoolFunc,
        pdn: Optional[NetworkExpr] = None,
        output_inverter: bool = False,
        drive: float = 1.0,
    ):
        if func.num_inputs != len(inputs):
            raise ValueError(f"{name}: function arity {func.num_inputs} != {len(inputs)} pins")
        if len(set(inputs)) != len(inputs):
            raise ValueError(f"{name}: duplicate input pin names")
        self.name = name
        self.inputs = tuple(inputs)
        self.func = func
        self.pdn = pdn
        self.output_inverter = output_inverter
        self.drive = drive
        self._pin_index = {p: k for k, p in enumerate(self.inputs)}
        self._vectors: Optional[Dict[str, List[SensitizationVector]]] = None
        self._cubes: Dict[int, List[Dict[str, int]]] = {}

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def pin_index(self, pin: str) -> int:
        try:
            return self._pin_index[pin]
        except KeyError:
            raise KeyError(f"{self.name} has no input pin {pin!r}") from None

    def evaluate(self, values: Dict[str, int]) -> int:
        """Evaluate the cell under a full pin-name -> 0/1 assignment."""
        return self.func.eval([values[p] for p in self.inputs])

    # ------------------------------------------------------------------
    # Sensitization
    # ------------------------------------------------------------------
    def sensitization_vectors(self, pin: Optional[str] = None):
        """Sensitization vectors, per pin or for one pin.

        The enumeration is exhaustive: every full assignment of the side
        pins under which the output toggles with the pin.  Matches the
        paper's Tables 1 and 2 for AO22 and OA12.
        """
        if self._vectors is None:
            self._vectors = self._compute_vectors()
        if pin is None:
            return self._vectors
        if pin not in self._pin_index:
            raise KeyError(f"{self.name} has no input pin {pin!r}")
        return self._vectors[pin]

    def _compute_vectors(self) -> Dict[str, List[SensitizationVector]]:
        out: Dict[str, List[SensitizationVector]] = {}
        for pin in self.inputs:
            idx = self.pin_index(pin)
            vectors = []
            for case, assignment in enumerate(self.func.sensitizing_assignments(idx), start=1):
                # Assignment keys are original input indices (pin omitted).
                side = {self.inputs[k]: v for k, v in assignment.items()}
                side_by_index = dict(assignment)
                inverting = self.func.is_inverting_at(idx, side_by_index)
                vectors.append(
                    SensitizationVector(self.name, pin, case, side, inverting)
                )
            out[pin] = vectors
        return out

    def vector_by_id(self, vector_id: str) -> SensitizationVector:
        """Look a vector up by its stable :attr:`~SensitizationVector.vector_id`."""
        pin = vector_id.split(":", 1)[0]
        for vec in self.sensitization_vectors(pin):
            if vec.vector_id == vector_id:
                return vec
        raise KeyError(f"{self.name}: no sensitization vector {vector_id!r}")

    @property
    def is_complex(self) -> bool:
        """Whether any pin has more than one sensitization vector."""
        return any(len(v) > 1 for v in self.sensitization_vectors().values())

    # ------------------------------------------------------------------
    # Justification
    # ------------------------------------------------------------------
    def justification_cubes(self, value: int) -> List[Dict[str, int]]:
        """Minimal pin assignments forcing the output to ``value``.

        Returned smallest-first; the first cube is the "easiest" choice a
        lazy sensitizer would take.
        """
        if value not in self._cubes:
            cubes = self.func.justification_cubes(value)
            self._cubes[value] = [
                {self.inputs[k]: v for k, v in cube.items()} for cube in cubes
            ]
        return self._cubes[value]

    # ------------------------------------------------------------------
    def core_function(self) -> BoolFunc:
        """Function of the inverting core output (before any inverter)."""
        return self.func.compose_not() if self.output_inverter else self.func

    def transistor_count(self) -> int:
        """Device count of the CMOS implementation (2 per PDN leaf, +2
        per output inverter, +2 per internally inverted input)."""
        if self.pdn is None:
            return 0
        leaves = _expr_leaves(self.pdn)
        inverted = {leaf for leaf in leaves if leaf.startswith("!")}
        count = 2 * len(leaves) + 2 * len(inverted)
        if self.output_inverter:
            count += 2
        return count

    def __repr__(self) -> str:
        return f"Cell({self.name}, pins={list(self.inputs)})"


def _expr_leaves(expr: NetworkExpr) -> List[str]:
    """All leaf literals of a series/parallel expression."""
    if isinstance(expr, str):
        return [expr]
    return [leaf for child in expr[1:] for leaf in _expr_leaves(child)]


def expr_function(expr: NetworkExpr, pins: Sequence[str]) -> BoolFunc:
    """Boolean condition of a series/parallel network being conductive.

    Series composes with AND, parallel with OR; a ``!pin`` leaf conducts
    when the pin is 0.  Used to validate that a cell's declared PDN
    matches its logic function.
    """
    pin_list = list(pins)

    def conducts(*bits: int) -> int:
        values = dict(zip(pin_list, bits))

        def walk(node: NetworkExpr) -> int:
            if isinstance(node, str):
                if node.startswith("!"):
                    return 1 - values[node[1:]]
                return values[node]
            kind = node[0]
            results = [walk(child) for child in node[1:]]
            if kind == "s":
                return int(all(results))
            if kind == "p":
                return int(any(results))
            raise ValueError(f"bad network node {node!r}")

        return walk(expr)

    return BoolFunc.from_callable(len(pin_list), conducts)
