"""The default standard-cell library.

Cells are defined by the pull-down network of their inverting core (the
ground truth of a static CMOS implementation); the logic function is
derived from it, which guarantees that the transistor-level model used
by :mod:`repro.spice` and the boolean model used by the STA engines can
never disagree.

The library contains the primitive gates (INV..NOR4, XOR/XNOR) and the
complex-gate families the paper studies (AO/OA/AOI/OAI, including AO22
and OA12 of Tables 1-4, plus MUX2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.gates.cell import Cell, NetworkExpr, expr_function


class Library:
    """An immutable-by-convention collection of :class:`Cell` objects."""

    def __init__(self, name: str, cells: Iterable[Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate cell {cell.name}")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cell_names(self) -> List[str]:
        return list(self._cells)

    def complex_cells(self) -> List[Cell]:
        """Cells with at least one multi-vector pin."""
        return [c for c in self if c.is_complex]

    def subset(self, names: Iterable[str]) -> "Library":
        """A sub-library (useful to keep characterization cheap in tests)."""
        return Library(f"{self.name}-subset", [self[n] for n in names])

    def get(self, name: str, default: Optional[Cell] = None) -> Optional[Cell]:
        return self._cells.get(name, default)


# ----------------------------------------------------------------------
# Cell construction helpers
# ----------------------------------------------------------------------
def _series(*children: NetworkExpr) -> NetworkExpr:
    return ("s",) + children if len(children) > 1 else children[0]


def _parallel(*children: NetworkExpr) -> NetworkExpr:
    return ("p",) + children if len(children) > 1 else children[0]


def _inverting(name: str, pins: List[str], pdn: NetworkExpr) -> Cell:
    """A natively inverting cell: Z = NOT(pdn conducts)."""
    func = expr_function(pdn, pins).compose_not()
    return Cell(name, pins, func, pdn=pdn, output_inverter=False)


def _buffered(name: str, pins: List[str], pdn: NetworkExpr) -> Cell:
    """An inverting core plus output inverter: Z = (pdn conducts)."""
    func = expr_function(pdn, pins)
    return Cell(name, pins, func, pdn=pdn, output_inverter=True)


def _build_cells() -> List[Cell]:
    ab = ["A", "B"]
    abc = ["A", "B", "C"]
    abcd = ["A", "B", "C", "D"]
    cells = [
        # Inverter / buffer
        _inverting("INV", ["A"], "A"),
        _buffered("BUF", ["A"], "A"),
        # NAND family: PDN = series of inputs
        _inverting("NAND2", ab, _series("A", "B")),
        _inverting("NAND3", abc, _series("A", "B", "C")),
        _inverting("NAND4", abcd, _series("A", "B", "C", "D")),
        # NOR family: PDN = parallel of inputs
        _inverting("NOR2", ab, _parallel("A", "B")),
        _inverting("NOR3", abc, _parallel("A", "B", "C")),
        _inverting("NOR4", abcd, _parallel("A", "B", "C", "D")),
        # AND / OR: inverting core + output inverter
        _buffered("AND2", ab, _series("A", "B")),
        _buffered("AND3", abc, _series("A", "B", "C")),
        _buffered("AND4", abcd, _series("A", "B", "C", "D")),
        _buffered("OR2", ab, _parallel("A", "B")),
        _buffered("OR3", abc, _parallel("A", "B", "C")),
        _buffered("OR4", abcd, _parallel("A", "B", "C", "D")),
        # XOR / XNOR: complex PDN with internally inverted inputs.
        # XNOR core pulls down when A xor B: PDN = A!B + !AB, so the
        # inverting core is XNOR' = XOR ... Z(XOR) = core condition.
        _buffered(
            "XOR2", ab, _parallel(_series("A", "!B"), _series("!A", "B"))
        ),
        _buffered(
            "XNOR2", ab, _parallel(_series("A", "B"), _series("!A", "!B"))
        ),
        # AOI / OAI complex inverting gates
        _inverting("AOI21", abc, _parallel(_series("A", "B"), "C")),
        _inverting(
            "AOI22", abcd, _parallel(_series("A", "B"), _series("C", "D"))
        ),
        _inverting("OAI12", abc, _series(_parallel("A", "B"), "C")),
        _inverting("OAI21", abc, _series(_parallel("A", "B"), "C")),
        _inverting(
            "OAI22", abcd, _series(_parallel("A", "B"), _parallel("C", "D"))
        ),
        # AO / OA: complex inverting core + output inverter (the paper's
        # Section III notes the output inverter explicitly).
        _buffered("AO21", abc, _parallel(_series("A", "B"), "C")),
        _buffered(
            "AO22", abcd, _parallel(_series("A", "B"), _series("C", "D"))
        ),
        _buffered("OA12", abc, _series(_parallel("A", "B"), "C")),
        _buffered("OA21", abc, _series(_parallel("A", "B"), "C")),
        _buffered(
            "OA22", abcd, _series(_parallel("A", "B"), _parallel("C", "D"))
        ),
        # 2:1 multiplexer: Z = A!S + BS
        _buffered(
            "MUX2", ["A", "B", "S"], _parallel(_series("A", "!S"), _series("B", "S"))
        ),
        # Bubbled-input ("B") variants: one inverted input realized with
        # an internal inverter, as in vendor libraries.
        _inverting("NAND2B", ab, _series("!A", "B")),   # Z = !(!A & B)
        _inverting("NOR2B", ab, _parallel("!A", "B")),  # Z = !(!A | B)
        _buffered("AND2B", ab, _series("!A", "B")),     # Z = !A & B
        _buffered("OR2B", ab, _parallel("!A", "B")),    # Z = !A | B
    ]
    # OAI21/OA21 are aliases of OAI12/OA12 in some vendor libraries; we
    # keep both names but drop exact duplicates of (pins, function).
    seen = {}
    unique = []
    for cell in cells:
        key = cell.name
        if key in seen:
            continue
        seen[key] = cell
        unique.append(cell)
    return unique


def drive_variant(cell: Cell, drive: float, suffix: str) -> Cell:
    """A drive-strength variant: same function and pins, scaled device
    widths (lower output resistance, proportionally higher input cap)."""
    return Cell(f"{cell.name}{suffix}", cell.inputs, cell.func, pdn=cell.pdn,
                output_inverter=cell.output_inverter, drive=drive)


#: Cells that get X2 variants in :func:`sized_library`.
SIZABLE_CELLS = ("INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
                 "AO22", "OA12", "AOI22", "OAI12", "MUX2")

_SIZED: Optional[Library] = None


def sized_library() -> Library:
    """The default library plus X2 drive variants (gate-sizing flows).

    Kept separate from :func:`default_library` so that characterization
    caches keyed on the default cell list stay valid.
    """
    global _SIZED
    if _SIZED is None:
        cells = list(_build_cells())
        base = {c.name: c for c in cells}
        cells.extend(
            drive_variant(base[name], 2.0, "_X2") for name in SIZABLE_CELLS
        )
        _SIZED = Library("repro-sized", cells)
    return _SIZED


_DEFAULT: Optional[Library] = None


def default_library() -> Library:
    """The library used throughout the reproduction (cached singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Library("repro-default", _build_cells())
    return _DEFAULT
