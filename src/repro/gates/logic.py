"""Boolean functions represented as truth-table bitmasks.

A :class:`BoolFunc` over ``n`` inputs stores its truth table as an
integer bitmask: bit ``i`` holds ``f(b)`` where ``b`` is the input tuple
whose bit ``k`` is ``(i >> k) & 1`` (input 0 is the least significant
position).  With at most a handful of inputs per standard cell this
representation makes cofactoring, boolean difference, sensitization
analysis and cube (partial assignment) enumeration trivial and exact.

The module also provides three-valued evaluation, where the third value
``X`` (encoded as :data:`X`, i.e. ``None``) means *unknown*.  Three-valued
evaluation is the workhorse of the implication engine in
:mod:`repro.core`: ``f`` evaluates to 0 or 1 under partial inputs exactly
when every completion of the unknowns agrees.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: The unknown value of three-valued logic.
X = None

#: A three-valued logic level: ``0``, ``1`` or :data:`X` (``None``).
TriValue = Optional[int]


class BoolFunc:
    """An ``n``-input boolean function backed by a truth-table bitmask.

    Parameters
    ----------
    num_inputs:
        Number of inputs (0 to 6; standard cells use at most 4 or 5).
    table:
        Bitmask with ``2**num_inputs`` significant bits; bit ``i`` is the
        function value for the input minterm ``i``.
    """

    __slots__ = ("num_inputs", "table", "_minterm_count")

    MAX_INPUTS = 6

    def __init__(self, num_inputs: int, table: int):
        if not 0 <= num_inputs <= self.MAX_INPUTS:
            raise ValueError(f"num_inputs must be in [0, {self.MAX_INPUTS}], got {num_inputs}")
        size = 1 << num_inputs
        if not 0 <= table < (1 << size):
            raise ValueError(f"table 0x{table:x} out of range for {num_inputs} inputs")
        self.num_inputs = num_inputs
        self.table = table
        self._minterm_count = size

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_callable(cls, num_inputs: int, fn: Callable[..., int]) -> "BoolFunc":
        """Build a function by evaluating ``fn`` on every input minterm."""
        table = 0
        for i in range(1 << num_inputs):
            bits = tuple((i >> k) & 1 for k in range(num_inputs))
            if fn(*bits):
                table |= 1 << i
        return cls(num_inputs, table)

    @classmethod
    def constant(cls, num_inputs: int, value: int) -> "BoolFunc":
        """The constant-0 or constant-1 function of ``num_inputs`` inputs."""
        size = 1 << num_inputs
        return cls(num_inputs, (1 << size) - 1 if value else 0)

    @classmethod
    def projection(cls, num_inputs: int, index: int) -> "BoolFunc":
        """The function ``f(x) = x[index]``."""
        if not 0 <= index < num_inputs:
            raise ValueError("projection index out of range")
        return cls.from_callable(num_inputs, lambda *bits: bits[index])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval(self, inputs: Sequence[int]) -> int:
        """Evaluate under fully-specified binary ``inputs``."""
        if len(inputs) != self.num_inputs:
            raise ValueError(f"expected {self.num_inputs} inputs, got {len(inputs)}")
        index = 0
        for k, bit in enumerate(inputs):
            if bit not in (0, 1):
                raise ValueError(f"input {k} is {bit!r}; use eval3 for unknowns")
            index |= bit << k
        return (self.table >> index) & 1

    def eval3(self, inputs: Sequence[TriValue]) -> TriValue:
        """Three-valued evaluation under possibly-unknown inputs.

        Returns 0 or 1 when every completion of the unknown inputs yields
        that value, and :data:`X` otherwise.
        """
        if len(inputs) != self.num_inputs:
            raise ValueError(f"expected {self.num_inputs} inputs, got {len(inputs)}")
        unknown = [k for k, v in enumerate(inputs) if v is X]
        base = 0
        for k, v in enumerate(inputs):
            if v is not X and v:
                base |= 1 << k
        if not unknown:
            return (self.table >> base) & 1
        # Fold over completions; bail out as soon as both values are seen.
        seen0 = seen1 = False
        for combo in range(1 << len(unknown)):
            index = base
            for j, k in enumerate(unknown):
                if (combo >> j) & 1:
                    index |= 1 << k
            if (self.table >> index) & 1:
                seen1 = True
            else:
                seen0 = True
            if seen0 and seen1:
                return X
        return 1 if seen1 else 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def cofactor(self, index: int, value: int) -> "BoolFunc":
        """Restrict input ``index`` to ``value`` (result keeps arity ``n-1``)."""
        if not 0 <= index < self.num_inputs:
            raise ValueError("cofactor index out of range")
        n = self.num_inputs - 1
        table = 0
        for i in range(1 << n):
            low = i & ((1 << index) - 1)
            high = i >> index
            full = low | (value << index) | (high << (index + 1))
            if (self.table >> full) & 1:
                table |= 1 << i
        return BoolFunc(n, table)

    def boolean_difference(self, index: int) -> "BoolFunc":
        """``df/dx = f(x=0) XOR f(x=1)`` as a function of the other inputs."""
        f0 = self.cofactor(index, 0)
        f1 = self.cofactor(index, 1)
        return BoolFunc(f0.num_inputs, f0.table ^ f1.table)

    def depends_on(self, index: int) -> bool:
        """Whether the function actually depends on input ``index``."""
        return self.boolean_difference(index).table != 0

    def support(self) -> List[int]:
        """Indices of inputs the function depends on."""
        return [k for k in range(self.num_inputs) if self.depends_on(k)]

    def is_inverting_at(self, index: int, side_values: Dict[int, int]) -> bool:
        """Polarity of the sensitized arc from input ``index`` to the output.

        Given side-input ``side_values`` that sensitize ``index`` (i.e. the
        boolean difference is 1 for every completion consistent with them),
        returns ``True`` when the output is the *complement* of the input.

        Raises :class:`ValueError` if the assignment does not sensitize the
        input or leaves the polarity ambiguous.
        """
        polarity = None
        others = [k for k in range(self.num_inputs) if k != index]
        free = [k for k in others if k not in side_values]
        for combo in range(1 << len(free)):
            assign = dict(side_values)
            for j, k in enumerate(free):
                assign[k] = (combo >> j) & 1
            lo = [0] * self.num_inputs
            hi = [0] * self.num_inputs
            for k in others:
                lo[k] = hi[k] = assign[k]
            lo[index], hi[index] = 0, 1
            v0, v1 = self.eval(lo), self.eval(hi)
            if v0 == v1:
                raise ValueError("assignment does not sensitize the input")
            inv = v0 == 1  # input 0 -> output 1 means inverting
            if polarity is None:
                polarity = inv
            elif polarity != inv:
                raise ValueError("ambiguous polarity under free side inputs")
        assert polarity is not None
        return polarity

    # ------------------------------------------------------------------
    # Sensitization and justification support
    # ------------------------------------------------------------------
    def sensitizing_assignments(self, index: int) -> List[Dict[int, int]]:
        """All full side-input assignments that sensitize input ``index``.

        Each returned dict maps every *other* input index to 0/1 such that
        toggling input ``index`` toggles the output.  These are exactly the
        rows of the paper's "propagation tables" (Tables 1 and 2).
        """
        diff = self.boolean_difference(index)
        others = [k for k in range(self.num_inputs) if k != index]
        result = []
        for i in range(1 << diff.num_inputs):
            if (diff.table >> i) & 1:
                result.append({k: (i >> j) & 1 for j, k in enumerate(others)})
        return result

    def justification_cubes(self, value: int) -> List[Dict[int, int]]:
        """Minimal partial assignments forcing the output to ``value``.

        A cube is a dict ``{input_index: 0/1}`` such that the function
        evaluates to ``value`` for every completion, and no proper subset
        of the cube has that property.  Cubes are returned smallest first
        (fewest literals), which is the "easiest to justify" order.
        """
        cubes: List[Dict[int, int]] = []
        n = self.num_inputs
        indices = list(range(n))
        for size in range(n + 1):
            for subset in itertools.combinations(indices, size):
                for bits in itertools.product((0, 1), repeat=size):
                    cube = dict(zip(subset, bits))
                    if any(self._subsumes(prev, cube) for prev in cubes):
                        continue
                    inputs: List[TriValue] = [cube.get(k, X) for k in range(n)]
                    if self.eval3(inputs) == value:
                        cubes.append(cube)
        return cubes

    @staticmethod
    def _subsumes(small: Dict[int, int], big: Dict[int, int]) -> bool:
        """Whether cube ``small`` covers cube ``big`` (is a sub-assignment)."""
        return all(k in big and big[k] == v for k, v in small.items())

    # ------------------------------------------------------------------
    # Combinators (used by the technology mapper and the tests)
    # ------------------------------------------------------------------
    def compose_not(self) -> "BoolFunc":
        """The complement function."""
        mask = (1 << self._minterm_count) - 1
        return BoolFunc(self.num_inputs, self.table ^ mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolFunc):
            return NotImplemented
        return self.num_inputs == other.num_inputs and self.table == other.table

    def __hash__(self) -> int:
        return hash((self.num_inputs, self.table))

    def __repr__(self) -> str:
        digits = max(1, (self._minterm_count + 3) // 4)
        return f"BoolFunc({self.num_inputs}, 0x{self.table:0{digits}x})"


# ----------------------------------------------------------------------
# Three-valued helpers used across the package
# ----------------------------------------------------------------------
def and3(values: Iterable[TriValue]) -> TriValue:
    """Three-valued AND: 0 dominates, X propagates otherwise."""
    out: TriValue = 1
    for v in values:
        if v == 0:
            return 0
        if v is X:
            out = X
    return out


def or3(values: Iterable[TriValue]) -> TriValue:
    """Three-valued OR: 1 dominates, X propagates otherwise."""
    out: TriValue = 0
    for v in values:
        if v == 1:
            return 1
        if v is X:
            out = X
    return out


def not3(value: TriValue) -> TriValue:
    """Three-valued NOT."""
    if value is X:
        return X
    return 1 - value


def merge3(a: TriValue, b: TriValue) -> Tuple[bool, TriValue]:
    """Combine two pieces of knowledge about the same node.

    Returns ``(ok, merged)`` where ``ok`` is False on a 0/1 conflict.
    """
    if a is X:
        return True, b
    if b is X or a == b:
        return True, a
    return False, a
