"""Chained electrical simulation of a full circuit path.

The paper verifies every reported path with Spectre; this module is the
equivalent here.  Each stage of the path is simulated at transistor
level with the *measured output waveform of the previous stage* as its
input (not an idealized ramp), side inputs held at the stage's
sensitization vector, and the stage's real circuit load.  Per-gate and
whole-path delays are returned, which feeds the gate/path error columns
of Tables 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gates.cell import Cell, SensitizationVector
from repro.spice.cellsim import CellSimulator, PropagationResult
from repro.tech.technology import Technology


@dataclass(frozen=True)
class PathStage:
    """One gate traversal: which cell, through which pin, under which
    sensitization vector, driving what load (F)."""

    cell: Cell
    pin: str
    vector: SensitizationVector
    c_load: float


@dataclass
class PathSimResult:
    """Electrical measurement of one path under one vector assignment."""

    path_delay: float
    gate_delays: List[float]
    gate_slews: List[float]
    input_rising: bool
    output_rising: bool


def _crop_edge(times: np.ndarray, wave: np.ndarray, vdd: float,
               margin: int = 4) -> Dict[str, np.ndarray]:
    """Trim a waveform to its active edge (re-zeroed time axis).

    Without cropping, each chained stage would inherit the previous
    stage's whole window and simulation spans would grow geometrically
    along the path, destroying time resolution.
    """
    tol = 0.02 * vdd
    active = np.flatnonzero(np.abs(wave - wave[0]) > tol)
    if active.size == 0:
        return {"times": times, "values": wave}
    start = max(0, int(active[0]) - margin)
    settled_from = np.flatnonzero(np.abs(wave - wave[-1]) > tol)
    end = min(len(wave) - 1, int(settled_from[-1]) + margin) if settled_from.size else len(wave) - 1
    t = times[start : end + 1] - times[start]
    return {"times": t, "values": wave[start : end + 1]}


class PathSimulator:
    """Simulates stage chains; caches one :class:`CellSimulator` per cell."""

    def __init__(self, tech: Technology, steps_per_window: int = 400,
                 temp: float = 25.0, vdd: Optional[float] = None):
        self.tech = tech
        self.temp = temp
        self.vdd = vdd
        self.steps = steps_per_window
        self._sims: Dict[str, CellSimulator] = {}

    def _sim(self, cell: Cell) -> CellSimulator:
        sim = self._sims.get(cell.name)
        if sim is None:
            sim = CellSimulator(cell, self.tech, steps_per_window=self.steps)
            self._sims[cell.name] = sim
        return sim

    def run(
        self,
        stages: Sequence[PathStage],
        input_rising: bool,
        t_in_first: float,
    ) -> PathSimResult:
        """Simulate the chain; the first stage sees a linear ramp of
        10-90% transition time ``t_in_first``."""
        if not stages:
            raise ValueError("empty path")
        gate_delays: List[float] = []
        gate_slews: List[float] = []
        rising = input_rising
        waveform: Optional[Dict[str, np.ndarray]] = None
        t_in = t_in_first
        for stage in stages:
            sim = self._sim(stage.cell)
            result: PropagationResult = sim.propagation(
                stage.pin,
                stage.vector,
                rising,
                t_in=t_in,
                c_load=stage.c_load,
                temp=self.temp,
                vdd=self.vdd,
                input_waveform=waveform,
            )
            gate_delays.append(result.delay)
            gate_slews.append(result.out_slew)
            rising = result.out_rising
            t_in = result.out_slew
            waveform = _crop_edge(
                result.times, result.out_wave, self.vdd or self.tech.vdd
            )
        return PathSimResult(
            path_delay=float(sum(gate_delays)),
            gate_delays=gate_delays,
            gate_slews=gate_slews,
            input_rising=input_rising,
            output_rising=rising,
        )
