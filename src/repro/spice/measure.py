"""Waveform measurements: threshold crossings, delay, transition time.

Conventions (documented for the whole package):

* **propagation delay** -- time between the 50%-VDD crossing of the
  input and the 50%-VDD crossing of the output;
* **transition time (slew)** -- time between the 10% and 90% VDD
  crossings of a waveform (the value the delay model receives as
  ``t_in``), so a full linear ramp of span S has slew 0.8*S.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

LOW_FRACTION = 0.1
HIGH_FRACTION = 0.9


class MeasurementError(RuntimeError):
    """A waveform never crossed the requested threshold."""


def cross_time(
    times: np.ndarray,
    wave: np.ndarray,
    level: float,
    rising: bool,
    after: float = 0.0,
) -> float:
    """First time ``wave`` crosses ``level`` in the given direction,
    linearly interpolated, at or after time ``after``."""
    t = np.asarray(times)
    v = np.asarray(wave)
    if rising:
        mask = (v[:-1] < level) & (v[1:] >= level)
    else:
        mask = (v[:-1] > level) & (v[1:] <= level)
    mask &= t[1:] >= after
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        direction = "rising" if rising else "falling"
        raise MeasurementError(f"no {direction} crossing of {level:.3g} V")
    k = idx[0]
    frac = (level - v[k]) / (v[k + 1] - v[k])
    return float(t[k] + frac * (t[k + 1] - t[k]))


def transition_time(times: np.ndarray, wave: np.ndarray, rising: bool,
                    vdd: float, after: float = 0.0) -> float:
    """10%-90% transition time of the first edge in the given direction."""
    lo = LOW_FRACTION * vdd
    hi = HIGH_FRACTION * vdd
    if rising:
        t_lo = cross_time(times, wave, lo, True, after)
        t_hi = cross_time(times, wave, hi, True, t_lo)
        return t_hi - t_lo
    t_hi = cross_time(times, wave, hi, False, after)
    t_lo = cross_time(times, wave, lo, False, t_hi)
    return t_lo - t_hi


def propagation_delay(
    times: np.ndarray,
    wave_in: np.ndarray,
    wave_out: np.ndarray,
    in_rising: bool,
    out_rising: bool,
    vdd: float,
) -> float:
    """50%-to-50% input-to-output delay of the first edges."""
    mid = 0.5 * vdd
    t_in = cross_time(times, wave_in, mid, in_rising)
    t_out = cross_time(times, wave_out, mid, out_rising, after=0.0)
    return t_out - t_in


def settled(wave: np.ndarray, target: float, tolerance: float,
            tail: int = 10) -> bool:
    """Whether the last ``tail`` samples sit within ``tolerance`` of
    ``target`` (used to auto-extend simulation windows)."""
    tail_slice = np.asarray(wave)[-tail:]
    return bool(np.all(np.abs(tail_slice - target) <= tolerance))
