"""Transistor-level electrical simulation substrate.

This package stands in for the commercial SPICE (Spectre) runs of the
paper: it builds the full static-CMOS transistor network of each cell
(:mod:`repro.spice.topology`), integrates the nonlinear RC system with
backward Euler and Newton iterations (:mod:`repro.spice.simulator`),
measures delays and slews (:mod:`repro.spice.measure`) and chains cell
simulations along circuit paths (:mod:`repro.spice.pathsim`).
"""

from repro.spice.topology import CellTopology, build_topology
from repro.spice.cellsim import CellSimulator, PropagationResult, input_capacitance
from repro.spice.pathsim import PathSimulator

__all__ = [
    "CellSimulator",
    "CellTopology",
    "PathSimulator",
    "PropagationResult",
    "build_topology",
    "input_capacitance",
]
