"""Cell-level delay measurement (the electrical "testbench").

:class:`CellSimulator` applies a transition to one pin of a cell under a
chosen sensitization vector, with every side input held at the vector's
steady value, and measures propagation delay and output transition time.
This is exactly the experiment behind the paper's Tables 3 and 4 and the
source of all characterization data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.gates.cell import Cell, SensitizationVector
from repro.spice import measure
from repro.spice.simulator import TransientSolver, Waveform, constant, ramp, sampled
from repro.spice.topology import CellTopology, build_topology
from repro.tech.technology import Technology

#: A full linear ramp of span S has a 10-90% transition time of 0.8*S.
_RAMP_FULL_OVER_SLEW = 1.0 / 0.8


@dataclass
class PropagationResult:
    """Outcome of one cell transition measurement."""

    delay: float
    out_slew: float
    out_rising: bool
    times: np.ndarray
    out_wave: np.ndarray
    in_wave: np.ndarray

    def output_waveform(self) -> Dict[str, np.ndarray]:
        return {"times": self.times, "values": self.out_wave}


def input_capacitance(cell: Cell, pin: str, tech: Technology) -> float:
    """Equivalent input capacitance of ``pin`` (F).

    Computed as the total gate capacitance tied to the pin -- identical
    to the paper's method of integrating the input current over a
    transition and dividing by VDD, because the input current of an
    ideal-gate MOS model is exactly ``C_gate_total * dV/dt``.
    """
    topo = build_topology(cell, tech)
    total = 0.0
    for t in topo.transistors:
        if t.gate == pin:
            params = tech.nmos if t.kind == "n" else tech.pmos
            total += params.c_gate * t.width
    if total == 0.0:
        raise ValueError(f"{cell.name}.{pin} gates no transistor")
    return total


def mean_input_capacitance(cell: Cell, tech: Technology) -> float:
    """Average input capacitance over the cell's pins (used as the
    denominator of the equivalent fanout, DESIGN.md S9)."""
    return sum(input_capacitance(cell, p, tech) for p in cell.inputs) / len(cell.inputs)


class CellSimulator:
    """Measures cell propagation delays electrically.

    One instance caches the cell topology; each call builds stimuli and
    runs a fresh transient.  The simulation window auto-extends until
    the output settles at its final rail.
    """

    def __init__(self, cell: Cell, tech: Technology, steps_per_window: int = 400):
        self.cell = cell
        self.tech = tech
        self.steps = steps_per_window
        self.topo: CellTopology = build_topology(cell, tech)

    # ------------------------------------------------------------------
    def propagation(
        self,
        pin: str,
        vector: SensitizationVector,
        input_rising: bool,
        t_in: float,
        c_load: float,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        input_waveform: Optional[Dict[str, np.ndarray]] = None,
    ) -> PropagationResult:
        """Measure a single transition.

        Parameters
        ----------
        pin / vector:
            The sensitized pin and which side-input vector to apply.
        input_rising:
            Direction of the input transition.
        t_in:
            10-90% input transition time (ignored when an explicit
            ``input_waveform`` is supplied).
        c_load:
            Output load (F).
        input_waveform:
            Optional ``{"times", "values"}`` sampled waveform (used by
            the path simulator to chain stages with real edges).
        """
        vdd_v = self.tech.vdd if vdd is None else vdd
        if vector.pin != pin:
            raise ValueError(f"vector {vector} does not sensitize pin {pin}")

        forced: Dict[str, Waveform] = {}
        for side_pin, value in vector.side_values.items():
            forced[side_pin] = constant(vdd_v * value)

        if input_waveform is not None:
            times_in = np.asarray(input_waveform["times"])
            values_in = np.asarray(input_waveform["values"])
            forced[pin] = sampled(times_in, values_in)
            ramp_end = float(times_in[-1])
        else:
            span = t_in * _RAMP_FULL_OVER_SLEW
            start = 0.05 * span + 1e-12
            v_from = 0.0 if input_rising else vdd_v
            v_to = vdd_v - v_from
            forced[pin] = ramp(v_from, v_to, start, span)
            ramp_end = start + span

        out_rising = input_rising ^ vector.inverting
        target = vdd_v if out_rising else 0.0

        window = max(4.0 * ramp_end, 2e-10)
        for _attempt in range(6):
            solver = TransientSolver(
                self.topo, self.tech, forced, c_load=c_load, temp=temp, vdd=vdd_v
            )
            times, traces = solver.run(
                window, dt=window / self.steps, record=[self.topo.output, pin]
            )
            out_wave = traces[self.topo.output]
            if measure.settled(out_wave, target, 0.02 * vdd_v):
                try:
                    delay = measure.propagation_delay(
                        times, traces[pin], out_wave, input_rising, out_rising, vdd_v
                    )
                    out_slew = measure.transition_time(
                        times, out_wave, out_rising, vdd_v
                    )
                except measure.MeasurementError:
                    window *= 2.0
                    continue
                return PropagationResult(
                    delay=delay,
                    out_slew=out_slew,
                    out_rising=out_rising,
                    times=times,
                    out_wave=out_wave,
                    in_wave=traces[pin],
                )
            window *= 2.0
        raise measure.MeasurementError(
            f"{self.cell.name}.{pin} {vector.vector_id}: output never settled"
        )

    # ------------------------------------------------------------------
    def same_gate_load(self, pin: Optional[str] = None) -> float:
        """Load presented by one instance of the same cell (Tables 3-4
        load the gate "with a gate of the same type")."""
        load_pin = pin or self.cell.inputs[0]
        return input_capacitance(self.cell, load_pin, self.tech)
