"""Transistor network construction for standard cells.

Each cell is expanded into its full static-CMOS structure:

* the **pull-down network** follows the cell's series/parallel PDN
  expression literally (series chains introduce the internal stack
  nodes whose parasitic charging causes the Case-2-vs-Case-3 delay
  differences of the paper's Section III);
* the **pull-up network** is the series/parallel dual;
* internally inverted inputs (XOR/MUX ``!pin`` literals) get a local
  inverter; non-inverting cells get their output inverter.

Every non-rail node carries a grounded capacitance: diffusion caps of
every attached source/drain terminal plus the gate caps of any internal
transistor gates tied to it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gates.cell import Cell, NetworkExpr
from repro.tech.technology import Technology

VDD_NODE = "VDD"
GND_NODE = "GND"


@dataclass(frozen=True)
class Transistor:
    """One MOS device; ``a``/``b`` are interchangeable source/drain."""

    name: str
    kind: str  # "n" or "p"
    gate: str
    a: str
    b: str
    width: float  # multiplier over the technology unit width


@dataclass
class CellTopology:
    """The flattened transistor network of one cell."""

    cell_name: str
    #: External input pin -> internal node it drives (identity unless the
    #: pin only feeds internal inverters).
    pins: Tuple[str, ...]
    output: str
    transistors: List[Transistor] = field(default_factory=list)
    #: Nodes other than rails and input pins, in creation order.
    internal_nodes: List[str] = field(default_factory=list)

    def nodes(self) -> List[str]:
        seen = dict.fromkeys(
            itertools.chain.from_iterable((t.a, t.b, t.gate) for t in self.transistors)
        )
        return list(seen)

    def gate_width_on_pin(self, pin: str) -> float:
        """Total transistor width whose gate is tied to ``pin``."""
        return sum(t.width for t in self.transistors if t.gate == pin)

    def capacitances(self, tech: Technology, c_load: float = 0.0) -> Dict[str, float]:
        """Grounded capacitance of every non-rail node.

        ``c_load`` is added at the cell output.  Input pins are included
        (their caps matter for input-capacitance extraction, not for the
        transient solve, where pins are forced sources).
        """
        caps: Dict[str, float] = {}

        def add(node: str, value: float) -> None:
            if node in (VDD_NODE, GND_NODE):
                return
            caps[node] = caps.get(node, 0.0) + value

        for t in self.transistors:
            params = tech.nmos if t.kind == "n" else tech.pmos
            add(t.a, params.c_diff * t.width)
            add(t.b, params.c_diff * t.width)
            add(t.gate, params.c_gate * t.width)
        add(self.output, tech.c_wire + c_load)
        return caps


class _Builder:
    def __init__(self, cell: Cell, tech: Technology):
        self.cell = cell
        self.tech = tech
        self.topo = CellTopology(cell.name, cell.inputs, output="Z")
        self._counter = itertools.count()
        self._inverted_pins: Dict[str, str] = {}

    def fresh(self, prefix: str) -> str:
        node = f"{prefix}{next(self._counter)}"
        self.topo.internal_nodes.append(node)
        return node

    def device(self, kind: str, gate: str, a: str, b: str, width: float) -> None:
        name = f"{'MN' if kind == 'n' else 'MP'}{len(self.topo.transistors)}"
        self.topo.transistors.append(Transistor(name, kind, gate, a, b, width))

    def gate_node(self, literal: str) -> str:
        """Internal node carrying the (possibly inverted) pin signal."""
        if not literal.startswith("!"):
            return literal
        pin = literal[1:]
        if pin not in self._inverted_pins:
            node = self.fresh(f"{pin}_n")
            self._emit_inverter(pin, node, width=self.cell.drive)
            self._inverted_pins[pin] = node
        return self._inverted_pins[pin]

    def _emit_inverter(self, inp: str, out: str, width: float) -> None:
        self.device("n", inp, out, GND_NODE, width)
        self.device("p", inp, VDD_NODE, out, width * self.tech.pmos_ratio)

    # -- network emission ------------------------------------------------
    def emit_network(self, expr: NetworkExpr, kind: str, top: str, bottom: str,
                     width: float) -> None:
        """Emit transistors realizing ``expr`` between ``top`` and
        ``bottom``.  For PMOS networks the expression must already be the
        dual; literal polarity is unchanged (gates see the pin signal)."""
        if isinstance(expr, str):
            self.device(kind, self.gate_node(expr), top, bottom, width)
            return
        tag, children = expr[0], expr[1:]
        if tag == "s":
            # Series chain: effective resistance grows with length, so
            # widen devices proportionally, as real cells do.
            stack_width = width * len(children)
            current_top = top
            for i, child in enumerate(children):
                current_bottom = (
                    bottom if i == len(children) - 1 else self.fresh("x")
                )
                self.emit_network(child, kind, current_top, current_bottom, stack_width)
                current_top = current_bottom
        elif tag == "p":
            for child in children:
                self.emit_network(child, kind, top, bottom, width)
        else:
            raise ValueError(f"bad network expression node {expr!r}")


def _dual(expr: NetworkExpr) -> NetworkExpr:
    if isinstance(expr, str):
        return expr
    tag = "p" if expr[0] == "s" else "s"
    return (tag,) + tuple(_dual(child) for child in expr[1:])


def build_topology(cell: Cell, tech: Technology) -> CellTopology:
    """Expand ``cell`` into its transistor network under ``tech``."""
    if cell.pdn is None:
        raise ValueError(f"cell {cell.name} has no transistor-level description")
    builder = _Builder(cell, tech)
    core_out = "Y" if cell.output_inverter else "Z"
    if cell.output_inverter:
        builder.topo.internal_nodes.append("Y")
    # Every device scales with the cell's drive strength (X1/X2/...).
    drive = cell.drive
    builder.emit_network(cell.pdn, "n", core_out, GND_NODE, width=drive)
    builder.emit_network(_dual(cell.pdn), "p", VDD_NODE, core_out,
                         width=tech.pmos_ratio * drive)
    if cell.output_inverter:
        # The output inverter is upsized; it drives the external load.
        builder._emit_inverter("Y", "Z", width=tech.out_inv_width * drive)
    return builder.topo
