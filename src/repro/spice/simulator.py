"""Nonlinear transient solver for cell transistor networks.

Nodal analysis with backward-Euler integration and Newton iterations.
The networks are tiny (a dozen devices, fewer than ten unknowns), so a
dense numpy solve per Newton step is both simple and fast.

The device model is a symmetric long-channel quadratic MOSFET with a
small channel-length-modulation term and a ``gmin`` leak for numerical
conditioning.  PMOS devices reuse the NMOS equations through voltage
mirroring.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.spice.topology import CellTopology, GND_NODE, VDD_NODE
from repro.tech.technology import Technology

#: Conditioning conductance from every unknown node to ground (S).
GMIN = 1e-9
#: Channel-length modulation.
LAMBDA = 0.06
#: Newton convergence threshold (V).
NEWTON_TOL = 1e-4
NEWTON_MAX_ITER = 25

Waveform = Callable[[float], float]


def ramp(v_from: float, v_to: float, t_start: float, span: float) -> Waveform:
    """A linear ramp waveform (constant before/after)."""

    def wave(t: float) -> float:
        if t <= t_start:
            return v_from
        if t >= t_start + span:
            return v_to
        return v_from + (v_to - v_from) * (t - t_start) / span

    return wave


def constant(value: float) -> Waveform:
    return lambda _t: value


def sampled(times: Sequence[float], values: Sequence[float]) -> Waveform:
    """Piecewise-linear waveform through sample points (clamped ends)."""
    t_arr = np.asarray(times, dtype=float)
    v_arr = np.asarray(values, dtype=float)

    def wave(t: float) -> float:
        return float(np.interp(t, t_arr, v_arr))

    return wave


class _Device:
    """Pre-resolved transistor: node indices and evaluated parameters."""

    __slots__ = ("kind", "gate_idx", "a_idx", "b_idx", "beta", "vt", "sign")

    def __init__(self, kind: str, gate_idx: int, a_idx: int, b_idx: int,
                 beta: float, vt: float):
        self.kind = kind
        self.gate_idx = gate_idx
        self.a_idx = a_idx
        self.b_idx = b_idx
        self.beta = beta
        self.vt = vt


def _nmos_iv(vg: float, va: float, vb: float, beta: float, vt: float):
    """Drain current a->b and partial derivatives (d/dvg, d/dva, d/dvb)."""
    if va >= vb:
        vd, vs, swap = va, vb, False
    else:
        vd, vs, swap = vb, va, True
    vgs = vg - vs
    vds = vd - vs
    vov = vgs - vt
    if vov <= 0.0:
        ids = gm = gds = 0.0
    elif vds <= vov:
        ids = beta * (vov * vds - 0.5 * vds * vds) * (1.0 + LAMBDA * vds)
        gds = beta * (vov - vds) * (1.0 + LAMBDA * vds) + beta * (
            vov * vds - 0.5 * vds * vds
        ) * LAMBDA
        gm = beta * vds * (1.0 + LAMBDA * vds)
    else:
        base = 0.5 * beta * vov * vov
        ids = base * (1.0 + LAMBDA * vds)
        gds = base * LAMBDA
        gm = beta * vov * (1.0 + LAMBDA * vds)
    # Current flows from drain to source inside the device.
    if not swap:
        # a is drain: I(a->b) = ids ; dva==dvd, dvb==dvs
        return (
            ids,
            gm,  # d/dvg
            gds,  # d/dva
            -(gm + gds),  # d/dvb
        )
    # b is drain: I(a->b) = -ids ; va is source
    return (
        -ids,
        -gm,
        gm + gds,
        -gds,
    )


class TransientSolver:
    """Backward-Euler transient simulation of one cell network.

    Parameters
    ----------
    topo:
        Transistor network from :func:`repro.spice.topology.build_topology`.
    tech:
        Process parameters.
    forced:
        Waveforms for every input pin (rails are implicit).
    c_load:
        Load capacitance at the cell output (F).
    temp:
        Junction temperature (Celsius).
    vdd:
        Supply override; defaults to the technology nominal.
    """

    def __init__(
        self,
        topo: CellTopology,
        tech: Technology,
        forced: Dict[str, Waveform],
        c_load: float = 0.0,
        temp: float = 25.0,
        vdd: Optional[float] = None,
    ):
        self.topo = topo
        self.tech = tech
        self.vdd = tech.vdd if vdd is None else vdd
        self.temp = temp
        missing = [p for p in topo.pins if p not in forced]
        if missing:
            raise ValueError(f"unforced input pins: {missing}")

        all_nodes = topo.nodes()
        self.unknown_nodes = [
            n
            for n in all_nodes
            if n not in (VDD_NODE, GND_NODE) and n not in forced
        ]
        self._index = {n: i for i, n in enumerate(self.unknown_nodes)}
        self._forced = dict(forced)

        caps = topo.capacitances(tech, c_load)
        self._c = np.array([caps.get(n, 0.0) for n in self.unknown_nodes])
        if np.any(self._c <= 0):
            raise ValueError("every unknown node needs nonzero capacitance")

        self._devices: List[_Device] = []
        for t in topo.transistors:
            params = tech.nmos if t.kind == "n" else tech.pmos
            self._devices.append(
                _Device(
                    t.kind,
                    self._node_ref(t.gate),
                    self._node_ref(t.a),
                    self._node_ref(t.b),
                    params.k_at(temp) * t.width,
                    params.vt_at(temp),
                )
            )

    # Node references: unknowns get index >= 0; forced nodes get -1-k
    # into a per-step forced-voltage table.
    def _node_ref(self, node: str) -> int:
        if node in self._index:
            return self._index[node]
        if not hasattr(self, "_forced_order"):
            self._forced_order: List[str] = []
            self._forced_index: Dict[str, int] = {}
        if node not in self._forced_index:
            self._forced_index[node] = len(self._forced_order)
            self._forced_order.append(node)
        return -1 - self._forced_index[node]

    def _forced_voltages(self, t: float) -> np.ndarray:
        out = np.empty(len(self._forced_order))
        for k, node in enumerate(self._forced_order):
            if node == VDD_NODE:
                out[k] = self.vdd
            elif node == GND_NODE:
                out[k] = 0.0
            else:
                out[k] = self._forced[node](t)
        return out

    def _voltage(self, ref: int, v: np.ndarray, forced_v: np.ndarray) -> float:
        return v[ref] if ref >= 0 else forced_v[-1 - ref]

    def _stamp(self, v: np.ndarray, forced_v: np.ndarray):
        """Device currents leaving each unknown node, and conductance matrix."""
        n = len(v)
        current = GMIN * v.copy()
        jac = np.eye(n) * GMIN
        for dev in self._devices:
            vg = self._voltage(dev.gate_idx, v, forced_v)
            va = self._voltage(dev.a_idx, v, forced_v)
            vb = self._voltage(dev.b_idx, v, forced_v)
            if dev.kind == "n":
                i_ab, dg, da, db = _nmos_iv(vg, va, vb, dev.beta, dev.vt)
            else:
                i_mirror, dgm, dam, dbm = _nmos_iv(-vg, -va, -vb, dev.beta, dev.vt)
                # I_pmos(a->b) = -I_nmos(-v); chain rule flips both signs.
                i_ab, dg, da, db = -i_mirror, dgm, dam, dbm
            ia, ib = dev.a_idx, dev.b_idx
            if ia >= 0:
                current[ia] += i_ab
                if ia >= 0:
                    jac[ia, ia] += da
                if ib >= 0:
                    jac[ia, ib] += db
                if dev.gate_idx >= 0:
                    jac[ia, dev.gate_idx] += dg
            if ib >= 0:
                current[ib] -= i_ab
                if ia >= 0:
                    jac[ib, ia] -= da
                jac[ib, ib] -= db
                if dev.gate_idx >= 0:
                    jac[ib, dev.gate_idx] -= dg
        return current, jac

    def _newton_step(self, v: np.ndarray, v_prev: np.ndarray, dt: float,
                     forced_v: np.ndarray) -> Tuple[np.ndarray, float]:
        current, jac = self._stamp(v, forced_v)
        g_c = self._c / dt
        residual = g_c * (v - v_prev) + current
        a = jac + np.diag(g_c)
        delta = np.linalg.solve(a, -residual)
        # Damp very large steps to keep Newton stable around source swaps.
        max_step = np.max(np.abs(delta))
        if max_step > 0.5 * max(self.vdd, 1.0):
            delta *= 0.5 * self.vdd / max_step
        return v + delta, max_step

    def solve_dc(self, t: float = 0.0, guess: Optional[np.ndarray] = None) -> np.ndarray:
        """Operating point via pseudo-transient continuation."""
        v = np.full(len(self.unknown_nodes), 0.5 * self.vdd) if guess is None else guess.copy()
        forced_v = self._forced_voltages(t)
        # Large-but-finite pseudo timesteps walk v to the DC solution even
        # from a poor guess; the final steps are effectively pure Newton.
        for dt in (1e-10, 1e-9, 1e-8, 1e-6, 1e-3, 1e-3, 1e-3):
            for _ in range(NEWTON_MAX_ITER):
                v_new, step = self._newton_step(v, v, dt, forced_v)
                v = np.clip(v_new, -0.5, self.vdd + 0.5)
                if step < NEWTON_TOL:
                    break
        return v

    def run(
        self,
        t_end: float,
        dt: float,
        v0: Optional[np.ndarray] = None,
        record: Optional[Sequence[str]] = None,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Integrate from 0 to ``t_end``; returns times and waveforms.

        ``record`` selects nodes to store (default: all unknowns plus
        forced input pins, so callers can measure input-referenced
        delays without regenerating stimuli).
        """
        steps = max(2, int(round(t_end / dt)))
        times = np.linspace(0.0, t_end, steps + 1)
        v = self.solve_dc(0.0) if v0 is None else v0.copy()

        if record is None:
            record = list(self.unknown_nodes) + list(self.topo.pins)
        traces = {n: np.empty(len(times)) for n in record}
        self._store(traces, 0, v, self._forced_voltages(0.0))

        for k in range(1, len(times)):
            t = times[k]
            forced_v = self._forced_voltages(t)
            v_prev = v
            v_guess = v.copy()
            for _ in range(NEWTON_MAX_ITER):
                v_guess, step = self._newton_step(v_guess, v_prev, dt, forced_v)
                if step < NEWTON_TOL:
                    break
            v = v_guess
            self._store(traces, k, v, forced_v)
        return times, traces

    def _store(self, traces, k: int, v: np.ndarray, forced_v: np.ndarray) -> None:
        for node, arr in traces.items():
            if node in self._index:
                arr[k] = v[self._index[node]]
            else:
                ref = self._forced_index.get(node)
                arr[k] = forced_v[ref] if ref is not None else 0.0
