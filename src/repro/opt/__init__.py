"""Timing-driven optimization loops built on the incremental STA core."""

from repro.opt.sizer import SizerMove, SizerResult, TimingDrivenSizer

__all__ = ["SizerMove", "SizerResult", "TimingDrivenSizer"]
