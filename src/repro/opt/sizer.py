"""Timing-driven gate sizing: the incremental STA core's first consumer.

The legacy :func:`repro.core.sizing.upsize_critical_path` rebuilt the
entire analysis pipeline -- engine indexing, arc resolution, slew fixed
point, SoA compilation -- for *every* candidate swap, including the
reverted ones.  :class:`TimingDrivenSizer` drives the same decisions
through one persistent :class:`~repro.core.incremental.IncrementalSTA`
session, so each move costs a dirty-cone repair plus one pruned
worst-path query instead of a from-scratch run.  Accept/reject is on
the true-path delay (vector-resolved, like the legacy loop), never on
a GBA estimate.

Two strategies:

* ``greedy`` -- round-based critical-path upsizing with the exact
  legacy semantics: each round takes the worst true path, tries its
  gates in descending delay-contribution order, keeps the first swap
  that strictly improves the worst arrival and reverts the rest.  A
  round that accepts nothing ends the loop.  ``max_moves`` caps rounds,
  matching the legacy ``max_iterations``.
* ``anneal`` -- seeded simulated annealing over the same move set plus
  *downsizing* (back to the base cell), with Metropolis acceptance on
  the worst-arrival delta and a geometric temperature schedule.  Useful
  when greedy stalls on self-loading plateaus; deterministic for a
  fixed seed.

Both honor :class:`~repro.resilience.budgets.SearchBudgets`: the wall
cap bounds the whole loop (checked before every move, and the remaining
wall is forwarded to each per-move path search), the extension /
backtrack caps bound each per-move search.  ``scratch=True`` runs the
identical loop on a full-rebuild session -- the CI smoke job diffs the
two reports at 0% drift.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.charlib.store import CharacterizedLibrary
from repro.core.incremental import IncrementalSTA
from repro.core.path import TimedPath
from repro.core.sizing import SizingChange, SizingResult
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.resilience.budgets import SearchBudgets

_log = get_logger("repro.sizer")

STRATEGIES = ("greedy", "anneal")


@dataclass
class SizerMove:
    """One attempted swap, accepted or not."""

    gate_name: str
    from_cell: str
    to_cell: str
    arrival_before: float
    arrival_after: float
    accepted: bool


@dataclass
class SizerResult:
    met: bool
    required_time: float
    initial_arrival: float
    final_arrival: float
    strategy: str
    #: Why the loop ended: ``met`` | ``budget`` | ``no_candidate`` |
    #: ``converged`` | ``max_moves``.
    stop_reason: str
    moves: List[SizerMove] = field(default_factory=list)

    @property
    def accepted_moves(self) -> List[SizerMove]:
        return [m for m in self.moves if m.accepted]

    def to_sizing_result(self) -> SizingResult:
        """Legacy :class:`SizingResult` view (accepted moves only)."""
        result = SizingResult(
            met=self.met,
            required_time=self.required_time,
            initial_arrival=self.initial_arrival,
            final_arrival=self.final_arrival,
        )
        for move in self.moves:
            if move.accepted:
                result.changes.append(SizingChange(
                    gate_name=move.gate_name,
                    from_cell=move.from_cell,
                    to_cell=move.to_cell,
                    arrival_before=move.arrival_before,
                    arrival_after=move.arrival_after,
                ))
        return result

    def describe(self) -> str:
        lines = [self.to_sizing_result().describe()]
        lines.append(
            f"  strategy {self.strategy}, stop: {self.stop_reason}, "
            f"{len(self.accepted_moves)}/{len(self.moves)} moves accepted"
        )
        return "\n".join(lines)


class TimingDrivenSizer:
    """Critical-path gate sizing against a live incremental session.

    The circuit is modified in place; its ``library`` must contain the
    drive variants (``sized_library()``) and ``charlib`` must cover
    them.
    """

    def __init__(
        self,
        circuit: Circuit,
        charlib: CharacterizedLibrary,
        required_time: float,
        strategy: str = "greedy",
        seed: int = 0,
        max_moves: int = 20,
        variant_suffix: str = "_X2",
        max_paths: Optional[int] = 5000,
        temp: float = 25.0,
        vdd: Optional[float] = None,
        vectorize: bool = True,
        budgets: Optional[SearchBudgets] = None,
        scratch: bool = False,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown sizing strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        self.circuit = circuit
        self.required_time = required_time
        self.strategy = strategy
        self.seed = seed
        self.max_moves = max_moves
        self.variant_suffix = variant_suffix
        self.max_paths = max_paths
        self.budgets = budgets
        self.sta = IncrementalSTA(
            circuit, charlib, temp=temp, vdd=vdd, vectorize=vectorize,
            full_rebuild=scratch,
        )
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    def run(self) -> SizerResult:
        registry = obs_metrics.REGISTRY
        if self.budgets is not None and self.budgets.wall_seconds is not None:
            self._deadline = time.monotonic() + self.budgets.wall_seconds
        worst = self._worst_path()
        initial = worst.worst_arrival
        result = SizerResult(
            met=initial <= self.required_time,
            required_time=self.required_time,
            initial_arrival=initial,
            final_arrival=initial,
            strategy=self.strategy,
            stop_reason="met" if initial <= self.required_time else "max_moves",
        )
        if result.met:
            return result
        if self.strategy == "greedy":
            self._run_greedy(result, worst)
        else:
            self._run_anneal(result, worst)
        result.met = result.final_arrival <= self.required_time
        registry.counter("sizer.moves_tried").inc(len(result.moves))
        registry.counter("sizer.moves_accepted").inc(
            len(result.accepted_moves)
        )
        registry.counter("sizer.moves_rejected").inc(
            len(result.moves) - len(result.accepted_moves)
        )
        _log.info(
            "sizer.done",
            strategy=self.strategy,
            stop=result.stop_reason,
            moves=len(result.moves),
            accepted=len(result.accepted_moves),
            initial_ps=result.initial_arrival * 1e12,
            final_ps=result.final_arrival * 1e12,
            met=result.met,
        )
        return result

    # ------------------------------------------------------------------
    def _out_of_wall(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    def _move_budgets(self) -> Optional[SearchBudgets]:
        if self.budgets is None:
            return None
        remaining = None
        if self._deadline is not None:
            remaining = max(0.0, self._deadline - time.monotonic())
        return SearchBudgets(
            wall_seconds=remaining,
            max_extensions=self.budgets.max_extensions,
            max_backtracks=self.budgets.max_backtracks,
        )

    def _worst_path(self) -> TimedPath:
        return self.sta.worst_path(
            max_paths=self.max_paths, budgets=self._move_budgets()
        )

    def _no_candidate(self, path: TimedPath) -> None:
        """Satellite fix: the legacy loop silently returned an empty
        result when no gate on the critical path had a drive variant;
        surface it as a structured warning plus a counter."""
        obs_metrics.REGISTRY.counter("sizer.no_candidate").inc()
        _log.warning(
            "sizer.no_candidate",
            circuit=self.circuit.name,
            suffix=self.variant_suffix,
            path_gates=[s.gate_name for s in path.steps],
            cells=[s.cell_name for s in path.steps],
        )

    # ------------------------------------------------------------------
    def _run_greedy(self, result: SizerResult, worst: TimedPath) -> None:
        for _ in range(self.max_moves):
            if result.final_arrival <= self.required_time:
                result.stop_reason = "met"
                return
            if self._out_of_wall():
                result.stop_reason = "budget"
                return
            polarity = max(worst.polarities(), key=lambda p: p.arrival)
            candidates = sorted(
                zip(worst.steps, polarity.gate_delays),
                key=lambda item: -item[1],
            )
            swapped = False
            had_variant = False
            for step, _delay in candidates:
                variant_name = f"{step.cell_name}{self.variant_suffix}"
                if variant_name not in self.circuit.library:
                    continue
                had_variant = True
                if self._out_of_wall():
                    result.stop_reason = "budget"
                    return
                before = result.final_arrival
                self.sta.replace_cell(step.gate_name, variant_name)
                worst = self._worst_path()
                after = worst.worst_arrival
                if after >= before:  # upsizing hurt (self-loading); revert
                    result.moves.append(SizerMove(
                        gate_name=step.gate_name,
                        from_cell=step.cell_name,
                        to_cell=variant_name,
                        arrival_before=before,
                        arrival_after=after,
                        accepted=False,
                    ))
                    self.sta.replace_cell(step.gate_name, step.cell_name)
                    worst = self._worst_path()
                    continue
                result.moves.append(SizerMove(
                    gate_name=step.gate_name,
                    from_cell=step.cell_name,
                    to_cell=variant_name,
                    arrival_before=before,
                    arrival_after=after,
                    accepted=True,
                ))
                result.final_arrival = after
                swapped = True
                break
            if not swapped:
                if not had_variant:
                    self._no_candidate(worst)
                    result.stop_reason = "no_candidate"
                else:
                    result.stop_reason = "converged"
                return
        result.stop_reason = "max_moves"

    # ------------------------------------------------------------------
    def _run_anneal(self, result: SizerResult, worst: TimedPath) -> None:
        rng = random.Random(self.seed)
        # Seed the schedule off the initial arrival so acceptance odds
        # are scale-free in the circuit's time unit.
        t0 = max(result.initial_arrival * 0.02, 1e-12)
        alpha = 0.85
        suffix = self.variant_suffix
        for move_index in range(self.max_moves):
            if result.final_arrival <= self.required_time:
                result.stop_reason = "met"
                return
            if self._out_of_wall():
                result.stop_reason = "budget"
                return
            # Candidate moves: for each distinct gate on the current
            # worst path, upsize (base cell -> variant) or downsize
            # (variant -> base).  Downsizing lets the walk escape
            # self-loading plateaus greedy gets stuck on.
            moves = []
            seen = set()
            for step in worst.steps:
                if step.gate_name in seen:
                    continue
                seen.add(step.gate_name)
                upsized = f"{step.cell_name}{suffix}"
                if upsized in self.circuit.library:
                    moves.append((step.gate_name, step.cell_name, upsized))
                if step.cell_name.endswith(suffix):
                    base = step.cell_name[: -len(suffix)]
                    if base in self.circuit.library:
                        moves.append((step.gate_name, step.cell_name, base))
            if not moves:
                self._no_candidate(worst)
                result.stop_reason = "no_candidate"
                return
            gate_name, from_cell, to_cell = moves[rng.randrange(len(moves))]
            before = result.final_arrival
            self.sta.replace_cell(gate_name, to_cell)
            worst_new = self._worst_path()
            after = worst_new.worst_arrival
            temperature = t0 * (alpha ** move_index)
            delta = after - before
            accept = delta < 0 or rng.random() < math.exp(
                -delta / temperature
            ) if temperature > 0 else delta < 0
            result.moves.append(SizerMove(
                gate_name=gate_name,
                from_cell=from_cell,
                to_cell=to_cell,
                arrival_before=before,
                arrival_after=after,
                accepted=accept,
            ))
            if accept:
                result.final_arrival = after
                worst = worst_new
            else:
                self.sta.replace_cell(gate_name, from_cell)
                worst = self._worst_path()
        result.stop_reason = (
            "met" if result.final_arrival <= self.required_time
            else "max_moves"
        )


def size_circuit(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    required_time: float,
    **kwargs,
) -> SizerResult:
    """One-call convenience wrapper around :class:`TimingDrivenSizer`."""
    return TimingDrivenSizer(circuit, charlib, required_time, **kwargs).run()
