"""Sensitization-vector-aware static timing analysis.

Reproduction of *"An efficient and scalable STA tool with direct path
estimation and exhaustive sensitization vector exploration for optimal
delay computation"* (Barcelo, Gili, Bota, Segura -- DATE 2011).

The package provides:

* :mod:`repro.gates` -- a standard-cell library of primitive and complex
  gates with per-pin sensitization-vector enumeration.
* :mod:`repro.netlist` -- circuit graphs, ISCAS ``.bench`` / structural
  Verilog parsers, technology mapping and benchmark-circuit generators.
* :mod:`repro.spice` -- a transistor-level electrical simulator used both
  as the golden delay reference and for cell characterization.
* :mod:`repro.tech` -- 130 nm / 90 nm / 65 nm technology presets.
* :mod:`repro.charlib` -- automatic cell characterization, the SPDM-like
  polynomial delay model and the NLDM-style LUT model.
* :mod:`repro.core` -- the paper's contribution: a single-pass true-path
  finder that explores every sensitization vector of every complex gate
  while it traverses the circuit.
* :mod:`repro.baseline` -- a two-step "commercial tool" emulation used as
  the comparison baseline.
* :mod:`repro.eval` -- experiment runners that regenerate every table of
  the paper's evaluation.
* :mod:`repro.obs` -- observability substrate: structured logging, the
  process-wide metrics registry and near-zero-overhead span tracing.

Top-level names are resolved lazily (PEP 562) so that importing one
subsystem does not pull in the whole package.
"""

import importlib

__version__ = "1.0.0"

#: Public name -> defining module.
_EXPORTS = {
    "BoolFunc": "repro.gates.logic",
    "Cell": "repro.gates.cell",
    "SensitizationVector": "repro.gates.cell",
    "Library": "repro.gates.library",
    "default_library": "repro.gates.library",
    "Circuit": "repro.netlist.circuit",
    "Instance": "repro.netlist.circuit",
    "Net": "repro.netlist.circuit",
    "Technology": "repro.tech.technology",
    "TECHNOLOGIES": "repro.tech.presets",
    "technology": "repro.tech.presets",
    "CharacterizedLibrary": "repro.charlib.store",
    "characterize_library": "repro.charlib.characterize",
    "TruePathSTA": "repro.core.sta",
    "TimedPath": "repro.core.path",
    "TwoStepSTA": "repro.baseline.sta2step",
    "GraphSTA": "repro.core.graphsta",
    "TimingSimulator": "repro.netlist.timingsim",
    "sized_library": "repro.gates.library",
    "slack_report": "repro.core.report",
    "hold_report": "repro.core.report",
    "paths_to_json": "repro.core.report",
    "write_liberty": "repro.charlib.liberty",
    "read_liberty": "repro.charlib.liberty",
    "write_sdf": "repro.netlist.sdf",
    "get_logger": "repro.obs.logging",
    "span": "repro.obs.tracing",
    "MetricsRegistry": "repro.obs.metrics",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
