"""Command-line STA driver.

Analyze a netlist file with either tool::

    python -m repro.cli analyze circuit.bench --tech 90nm --top 10
    python -m repro.cli analyze design.v --tool baseline --required 500
    python -m repro.cli analyze iscas:c432 --tool gba --compare
    python -m repro.cli analyze iscas:c880a --n-worst 10 --metrics-json m.json
    python -m repro.cli analyze iscas:c432 --jobs 4 --progress --trace-json t.json
    python -m repro.cli obs diff before.json after.json --fail-on 'pathfinder\.:10'
    python -m repro.cli stats circuit.bench

``.bench`` files are parsed as ISCAS benchmarks (and technology-mapped
onto the complex-gate library unless ``--no-map``); ``.v`` files as
structural Verilog using library cell names directly; ``iscas:<name>``
builds a circuit from the bundled evaluation suite.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import obs
from repro.charlib.characterize import (
    CharacterizationGrid,
    FAST_GRID,
    characterize_library,
)
from repro.charlib.store import CharacterizedLibrary
from repro.core.report import format_slack_report, paths_to_json, slack_report
from repro.gates.library import default_library
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.techmap import techmap
from repro.netlist.verilog import parse_verilog
from repro.resilience.errors import (
    EXIT_CONFIG,
    EXIT_INTERRUPTED,
    OutputWriteError,
    ResilienceError,
    SearchInterrupted,
    classify,
)
from repro.tech.presets import TECHNOLOGIES

_log = obs.get_logger("repro.cli")

#: In-process characterization memo: repeat ``main()`` invocations (or
#: analyzing several netlists in one process) skip even the JSON load
#: of the on-disk cache.  Keyed on everything that selects a library.
_CharlibKey = Tuple[str, str, CharacterizationGrid, str, str]
_CHARLIB_MEMO: Dict[_CharlibKey, CharacterizedLibrary] = {}


def load_circuit(path: str, map_to_complex: bool = True) -> Circuit:
    """Load a ``.bench`` or ``.v`` netlist, or build an evaluation-suite
    circuit from an ``iscas:<name>[@scale]`` spec (e.g. ``iscas:c432``,
    ``iscas:c6288@0.25``)."""
    if path.startswith("iscas:"):
        from repro.eval.iscas import build_circuit

        spec = path[len("iscas:"):]
        name, _, scale = spec.partition("@")
        return build_circuit(name, scale=float(scale) if scale else 1.0)
    file_path = Path(path)
    text = file_path.read_text()
    if file_path.suffix == ".v":
        return parse_verilog(text)
    circuit = parse_bench(text, name=file_path.stem)
    return techmap(circuit) if map_to_complex else circuit


def cached_charlib(
    library,
    tech,
    grid: CharacterizationGrid = FAST_GRID,
    model: str = "polynomial",
    vector_mode: str = "all",
) -> CharacterizedLibrary:
    """Memoized :func:`characterize_library` for CLI invocations."""
    key = (library.name, tech.name, grid, model, vector_mode)
    cached = _CHARLIB_MEMO.get(key)
    if cached is not None:
        obs.counter("cli.charlib_memo_hits").inc()
        _log.info("charlib_memo.hit", library=library.name, tech=tech.name,
                  model=model, vector_mode=vector_mode)
        return cached
    obs.counter("cli.charlib_memo_misses").inc()
    _log.info("charlib_memo.miss", library=library.name, tech=tech.name,
              model=model, vector_mode=vector_mode)
    charlib = characterize_library(
        library, tech, grid=grid, model=model, vector_mode=vector_mode
    )
    _CHARLIB_MEMO[key] = charlib
    return charlib


def _setup_obs(args) -> None:
    if getattr(args, "log_level", None):
        obs.configure_logging(level=args.log_level,
                              jsonl_path=getattr(args, "log_json", None))
    if getattr(args, "profile", False):
        obs.tracing.enable()
    if getattr(args, "trace_json", None):
        obs.export.enable()


def _write_artifact(path: str, text: str, what: str) -> None:
    """Write a user-requested output file, mapping any OS failure into
    the error taxonomy (the analysis succeeded; silently dropping the
    artifact and exiting 0 would hide the loss from scripts)."""
    try:
        Path(path).write_text(text)
    except OSError as exc:
        raise OutputWriteError(f"cannot write {what} to {path}: {exc}",
                               cause=exc)


def _finish_obs(args) -> int:
    obs.aggregate.record_resource_usage()
    if getattr(args, "profile", False):
        print()
        print(obs.tracing.render())
        snapshot = obs.metrics.snapshot()
        if snapshot:
            print("\nmetrics:")
            for key, value in snapshot.items():
                if isinstance(value, dict):
                    value = (f"count={value['count']} sum={value['sum']:.4g} "
                             f"mean={value['mean']:.4g} max={value['max']:.4g}")
                print(f"  {key:<48s} {value}")
    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        _write_artifact(metrics_json, json.dumps(obs.snapshot(), indent=2),
                        "metrics snapshot")
        print(f"\nwrote metrics snapshot to {metrics_json}")
    trace_json = getattr(args, "trace_json", None)
    if trace_json:
        try:
            n_events = obs.export.collector().write(trace_json)
        except OSError as exc:
            raise OutputWriteError(
                f"cannot write trace to {trace_json}: {exc}", cause=exc)
        print(f"wrote {n_events} trace events to {trace_json} "
              "(load in ui.perfetto.dev or chrome://tracing)")
    return 0


def _budgets_from_args(args):
    """A :class:`SearchBudgets` from the ``--*-budget`` flags, or None
    when no axis is capped."""
    from repro.resilience.budgets import SearchBudgets

    budgets = SearchBudgets(
        wall_seconds=args.wall_budget,
        max_extensions=args.extension_budget,
        max_backtracks=args.backtrack_budget,
    )
    return budgets if budgets.bounded() else None


def _wants_supervision(args, budgets) -> bool:
    """Whether any resilience feature was requested -- the plain serial
    search stays on its historical in-process path otherwise."""
    return (budgets is not None
            or args.jobs > 1
            or args.checkpoint is not None
            or args.resume is not None
            or args.shard_timeout is not None
            or args.heartbeat_timeout is not None
            or args.progress
            or args.missing_arc_policy != "error")


def _analyze(args) -> int:
    from repro.resilience.errors import ConfigError

    if args.jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {args.jobs}")
    _setup_obs(args)
    vectorize = not args.no_vectorize
    circuit = load_circuit(args.netlist, map_to_complex=not args.no_map)
    tech = TECHNOLOGIES[args.tech]
    library = default_library()
    if args.tool == "developed":
        charlib = cached_charlib(library, tech)
        from repro.core.sta import TruePathSTA

        sta = TruePathSTA(circuit, charlib,
                          missing_arc_policy=args.missing_arc_policy,
                          vectorize=vectorize)
        budgets = _budgets_from_args(args)
        if _wants_supervision(args, budgets):
            analysis = sta.analyze(
                jobs=args.jobs,
                budgets=budgets,
                max_paths=args.max_paths,
                n_worst=args.n_worst,
                shard_timeout=args.shard_timeout,
                shard_retries=args.shard_retries,
                checkpoint=args.checkpoint,
                resume=args.resume,
                progress=args.progress,
                heartbeat_timeout=args.heartbeat_timeout,
            )
            paths = analysis.paths
            if args.n_worst is not None:
                paths = sorted(paths, key=lambda p: p.worst_arrival,
                               reverse=True)[:args.n_worst]
            print(sta.report(paths, limit=args.top))
            if analysis.degraded:
                print()
                print(analysis.describe_completeness())
                print("(GBA bound = sound upper limit on any arrival "
                      "the budgeted search did not reach)")
        elif args.n_worst is not None:
            paths = sta.n_worst_paths(
                args.n_worst, max_paths=args.max_paths, jobs=args.jobs
            )
            print(sta.report(paths, limit=args.top))
        else:
            paths = sta.enumerate_paths(
                max_paths=args.max_paths, jobs=args.jobs
            )
            print(sta.report(paths, limit=args.top))
    elif args.tool == "gba":
        charlib = cached_charlib(library, tech)
        from repro.core.graphsta import GraphSTA, gba_pessimism
        from repro.core.sta import TruePathSTA

        gba = GraphSTA(circuit, charlib, vectorize=vectorize).run()
        print(f"GBA endpoint arrivals for {circuit.name} "
              f"({charlib.tech_name}, one topological pass)")
        for endpoint in circuit.outputs:
            rise, fall = gba.arrivals.get(endpoint, (None, None))
            cells = " ".join(
                f"{pol}={arr * 1e12:8.1f} ps" if arr is not None else f"{pol}=    n/a"
                for pol, arr in (("rise", rise), ("fall", fall))
            )
            print(f"  {endpoint:<12s} {cells}")
        paths = []
        if args.compare:
            sta = TruePathSTA(circuit, charlib, vectorize=vectorize)
            paths = sta.enumerate_paths(max_paths=args.max_paths,
                                        jobs=args.jobs)
            comparison = gba_pessimism(gba, paths)
            print(f"\ngba_pessimism vs {len(paths)} true paths "
                  "(GBA/true - 1; >= 0 up to model noise):")
            for endpoint, row in sorted(comparison.items()):
                print(f"  {endpoint:<12s} gba={row['gba'] * 1e12:8.1f} ps  "
                      f"true={row['true'] * 1e12:8.1f} ps  "
                      f"pessimism={row['pessimism'] * 100:+6.2f}%")
    else:
        charlib = cached_charlib(library, tech, model="lut",
                                 vector_mode="default")
        from repro.baseline.sta2step import TwoStepSTA

        tool = TwoStepSTA(circuit, charlib,
                          backtrack_limit=args.backtrack_limit)
        report = tool.run(max_structural_paths=args.max_paths or 1000)
        paths = tool.true_paths(report)
        print(f"two-step baseline: {report.as_row()}")
        for k, p in enumerate(
            sorted(paths, key=lambda q: -q.worst_arrival)[: args.top], 1
        ):
            print(f"{k:3d}. {p.worst_arrival * 1e12:8.1f} ps  {p.describe()}")
    if args.required is not None:
        entries = slack_report(paths, args.required * 1e-12)
        print()
        print(format_slack_report(entries[: args.top]))
    if args.json:
        _write_artifact(args.json, paths_to_json(paths, indent=2),
                        "path list")
        print(f"\nwrote {len(paths)} paths to {args.json}")
    return _finish_obs(args)


def _size(args) -> int:
    from repro.gates.library import sized_library
    from repro.opt.sizer import TimingDrivenSizer

    _setup_obs(args)
    circuit = load_circuit(args.netlist, map_to_complex=not args.no_map)
    tech = TECHNOLOGIES[args.tech]
    library = sized_library()
    circuit.library = library
    # Characterize only what the loop can actually touch: the cells in
    # the netlist plus their drive variants (or bases, for a netlist
    # that already carries sized cells).  The on-disk characterization
    # cache makes repeat invocations cheap.
    used = sorted({inst.cell.name for inst in circuit.instances.values()})
    cells = set(used)
    for name in used:
        variant = f"{name}{args.variant_suffix}"
        if variant in library:
            cells.add(variant)
        if name.endswith(args.variant_suffix):
            base = name[: -len(args.variant_suffix)]
            if base in library:
                cells.add(base)
    charlib = characterize_library(
        library, tech, grid=FAST_GRID, cells=sorted(cells)
    )
    budgets = _budgets_from_args(args)
    sizer = TimingDrivenSizer(
        circuit, charlib, args.required * 1e-12,
        strategy=args.strategy,
        seed=args.seed,
        max_moves=args.max_moves,
        variant_suffix=args.variant_suffix,
        max_paths=args.max_paths,
        vectorize=not args.no_vectorize,
        budgets=budgets,
        scratch=args.scratch,
    )
    result = sizer.run()
    print(result.describe())
    if args.json:
        payload = {
            "circuit": circuit.name,
            "strategy": result.strategy,
            "stop_reason": result.stop_reason,
            "met": result.met,
            "required_ps": result.required_time * 1e12,
            "initial_ps": result.initial_arrival * 1e12,
            "final_ps": result.final_arrival * 1e12,
            "moves": [
                {
                    "gate": m.gate_name,
                    "from": m.from_cell,
                    "to": m.to_cell,
                    "before_ps": m.arrival_before * 1e12,
                    "after_ps": m.arrival_after * 1e12,
                    "accepted": m.accepted,
                }
                for m in result.moves
            ],
        }
        _write_artifact(args.json, json.dumps(payload, indent=2),
                        "sizing report")
        print(f"\nwrote sizing report to {args.json}")
    return _finish_obs(args)


def _verify(args) -> int:
    _setup_obs(args)
    library = default_library()
    tech = TECHNOLOGIES[args.tech]
    charlib = cached_charlib(library, tech)
    failed = False

    if args.oracle or args.metamorphic:
        specs = args.circuit or ["iscas:c17", "iscas:c432@0.05"]
        for spec in specs:
            circuit = load_circuit(spec)
            if args.oracle:
                from repro.verify import run_oracle

                report = run_oracle(circuit, charlib,
                                    max_inputs=args.max_inputs)
                print(report.summary())
                for mismatch in report.mismatches:
                    print(f"  {mismatch.describe()}")
                failed = failed or not report.ok
            if args.metamorphic:
                from repro.verify import run_metamorphic

                results = run_metamorphic(circuit, charlib, jobs=args.jobs)
                print(f"metamorphic {circuit.name}:")
                for result in results:
                    print(f"  {result.describe()}")
                failed = failed or any(not r.ok for r in results)

    if args.faults:
        from repro.verify import run_faults

        specs = args.circuit or ["iscas:c432@0.1"]
        for spec in specs:
            circuit = load_circuit(spec)
            report = run_faults(
                circuit, charlib, seed=args.seed,
                jobs=max(args.jobs, 2), max_paths=args.max_paths,
            )
            print(report.describe())
            failed = failed or not report.ok

    if args.fuzz is not None:
        from repro.verify import run_fuzz

        report = run_fuzz(charlib, n=args.fuzz, seed=args.seed,
                          jobs=args.jobs)
        print(report.summary())
        for failure in report.failures:
            print(f"  {failure.describe()}")
            if args.artifact_dir:
                out_dir = Path(args.artifact_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                out = out_dir / (
                    f"counterexample_s{failure.seed}_i{failure.index}.v"
                )
                out.write_text(failure.verilog)
                print(f"  wrote {out}")
        failed = failed or not report.ok

    obs_rc = _finish_obs(args)
    return 1 if failed else obs_rc


def _obs_diff(args) -> int:
    """Compare two ``--metrics-json`` snapshots; exit
    :data:`~repro.obs.diff.EXIT_REGRESSION` when a ``--fail-on`` rule is
    violated (the regression-gate building block for CI)."""
    from repro.obs.diff import (
        EXIT_REGRESSION,
        diff_snapshots,
        format_diff,
        load_snapshot,
        parse_fail_rule,
        violations,
    )

    try:
        rules = [parse_fail_rule(spec) for spec in args.fail_on]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    before = load_snapshot(args.before)
    after = load_snapshot(args.after)
    entries = diff_snapshots(before, after)
    print(f"metrics diff: {args.before} -> {args.after}")
    print(format_diff(entries, only_changed=not args.all,
                      key_filter=args.filter))
    failed = violations(entries, rules)
    if failed:
        print(f"\n{len(failed)} regression(s) over threshold:",
              file=sys.stderr)
        for entry, rule in failed:
            print(f"  {entry.describe()}  (rule {rule.pattern.pattern}:"
                  f"{rule.threshold_pct:g})", file=sys.stderr)
        return EXIT_REGRESSION
    if rules:
        print("\nall --fail-on rules passed")
    return 0


def _stats(args) -> int:
    circuit = load_circuit(args.netlist, map_to_complex=not args.no_map)
    for key, value in circuit.stats().items():
        print(f"{key:>14s}: {value}")
    print(f"{'cells':>14s}: {circuit.cell_histogram()}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run STA on a netlist")
    analyze.add_argument("netlist")
    analyze.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    analyze.add_argument("--tool", default="developed",
                         choices=["developed", "baseline", "gba"])
    analyze.add_argument("--top", type=int, default=10)
    analyze.add_argument("--n-worst", type=int, default=None, metavar="N",
                         help="developed tool only: report the N worst "
                              "true paths using the backward required-time "
                              "bound to prune the search")
    analyze.add_argument("--compare", action="store_true",
                         help="with --tool gba: also run the true-path "
                              "search and print the per-endpoint "
                              "gba_pessimism delta")
    analyze.add_argument("--max-paths", type=int, default=20000)
    analyze.add_argument("--backtrack-limit", type=int, default=1000)
    analyze.add_argument("--required", type=float, default=None,
                         help="required time in ps for a slack report")
    analyze.add_argument("--json", default=None,
                         help="dump the path list to this JSON file")
    analyze.add_argument("--no-map", action="store_true",
                         help="skip technology mapping of .bench input")
    analyze.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="shard the developed tool's search across "
                              "primary inputs in N worker processes")
    # No argparse choices=: an unknown policy must exit through the
    # resilience taxonomy (ConfigError, EX_CONFIG=78) with a one-line
    # message naming the valid values, not argparse's usage dump.
    analyze.add_argument("--missing-arc-policy", default="error",
                         metavar="POLICY",
                         help="on a library gap: abort (error) or fall "
                              "back to the nearest characterized arc of "
                              "the same cell (warn-substitute)")
    analyze.add_argument("--no-vectorize", action="store_true",
                         help="run the scalar reference sweeps instead "
                              "of the structure-of-arrays batched "
                              "kernels (results are byte-identical; "
                              "this is an escape hatch / A-B switch)")
    analyze.add_argument("--wall-budget", type=float, default=None,
                         metavar="SECONDS",
                         help="anytime mode: stop searching after this "
                              "much wall-clock time and report partial "
                              "paths with per-origin completeness + GBA "
                              "bounds")
    analyze.add_argument("--extension-budget", type=int, default=None,
                         metavar="N",
                         help="anytime mode: cap search extensions")
    analyze.add_argument("--backtrack-budget", type=int, default=None,
                         metavar="N",
                         help="anytime mode: cap justification backtracks")
    analyze.add_argument("--checkpoint", default=None, metavar="PATH",
                         help="stream completed origins to this JSON "
                              "snapshot (atomic writes; survives crashes "
                              "and Ctrl-C)")
    analyze.add_argument("--resume", default=None, metavar="PATH",
                         help="adopt completed origins from a checkpoint "
                              "written by an identical configuration")
    analyze.add_argument("--shard-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock deadline per parallel shard "
                              "attempt (hung workers are terminated and "
                              "the shard retried)")
    analyze.add_argument("--shard-retries", type=int, default=2,
                         metavar="N",
                         help="retry attempts per failed shard before "
                              "the in-process serial fallback "
                              "(default 2)")
    analyze.add_argument("--log-level", default=None,
                         choices=["debug", "info", "warning", "error"],
                         help="enable structured logging at this level")
    analyze.add_argument("--log-json", default=None, metavar="PATH",
                         help="also write JSONL log records to PATH")
    analyze.add_argument("--profile", action="store_true",
                         help="trace spans and print a span/metric tree")
    analyze.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write the metrics+span snapshot to PATH")
    analyze.add_argument("--trace-json", default=None, metavar="PATH",
                         help="write a Chrome trace-event / Perfetto "
                              "timeline (one lane per worker process, "
                              "instant markers for resilience incidents) "
                              "to PATH")
    analyze.add_argument("--progress", action="store_true",
                         help="developed tool: live per-origin progress "
                              "line on stderr (heartbeats from worker "
                              "processes under --jobs)")
    analyze.add_argument("--heartbeat-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="treat a parallel shard as stalled when its "
                              "workers send no heartbeat for this long "
                              "(terminate + retry, like --shard-timeout "
                              "but distinguishing silent hangs from slow "
                              "progress)")
    analyze.set_defaults(func=_analyze)

    size = sub.add_parser(
        "size",
        help="timing-driven gate sizing against the incremental STA "
             "session (repro.opt.sizer)",
    )
    size.add_argument("netlist")
    size.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    size.add_argument("--required", type=float, required=True,
                      metavar="PS", help="required time in ps")
    size.add_argument("--strategy", default="greedy",
                      choices=["greedy", "anneal"])
    size.add_argument("--seed", type=int, default=0,
                      help="anneal move-selection seed (default 0)")
    size.add_argument("--max-moves", type=int, default=20,
                      help="greedy: sizing rounds; anneal: attempted "
                           "moves (default 20)")
    size.add_argument("--variant-suffix", default="_X2", metavar="SUFFIX",
                      help="drive-variant cell-name suffix (default _X2)")
    size.add_argument("--max-paths", type=int, default=5000,
                      help="cap per worst-path query (default 5000)")
    size.add_argument("--no-map", action="store_true",
                      help="skip technology mapping of .bench input")
    size.add_argument("--no-vectorize", action="store_true",
                      help="scalar reference sweeps (byte-identical)")
    size.add_argument("--scratch", action="store_true",
                      help="rebuild all analysis state from scratch per "
                           "move instead of dirty-cone repair (A/B "
                           "reference; results are identical)")
    size.add_argument("--wall-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop the sizing loop after this much "
                           "wall-clock time")
    size.add_argument("--extension-budget", type=int, default=None,
                      metavar="N", help="cap extensions per path search")
    size.add_argument("--backtrack-budget", type=int, default=None,
                      metavar="N", help="cap backtracks per path search")
    size.add_argument("--json", default=None, metavar="PATH",
                      help="write the move-by-move sizing report to PATH")
    size.add_argument("--log-level", default=None,
                      choices=["debug", "info", "warning", "error"])
    size.add_argument("--log-json", default=None, metavar="PATH")
    size.add_argument("--profile", action="store_true",
                      help="trace spans and print a span/metric tree")
    size.add_argument("--metrics-json", default=None, metavar="PATH",
                      help="write the metrics+span snapshot to PATH")
    size.add_argument("--trace-json", default=None, metavar="PATH",
                      help="write a Chrome trace-event timeline to PATH")
    size.set_defaults(func=_size)

    verify = sub.add_parser(
        "verify",
        help="differential verification: exhaustive oracle, metamorphic "
             "invariants, seeded fuzzing (repro.verify)",
    )
    verify.add_argument("--oracle", action="store_true",
                        help="exhaustively sweep each --circuit through "
                             "event simulation and cross-check the "
                             "pathfinder's delay/course/vector")
    verify.add_argument("--metamorphic", action="store_true",
                        help="check the cross-engine invariant catalog "
                             "on each --circuit")
    verify.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="fuzz N random mapped circuits, shrinking "
                             "any failure to a minimal counterexample")
    verify.add_argument("--faults", action="store_true",
                        help="inject deterministic faults (worker crash, "
                             "shard hang, corrupted charlib, mid-run "
                             "interrupt) into each --circuit and assert "
                             "every recovery reproduces the fault-free "
                             "output (default circuit: iscas:c432@0.1)")
    verify.add_argument("--max-paths", type=int, default=None, metavar="N",
                        help="cap paths per fault-scenario run (keeps "
                             "--faults cheap on large circuits)")
    verify.add_argument("--circuit", action="append", default=None,
                        metavar="SPEC",
                        help="netlist file or iscas:<name>[@scale] spec "
                             "for --oracle/--metamorphic (repeatable; "
                             "default: iscas:c17 iscas:c432@0.05)")
    verify.add_argument("--seed", type=int, default=0,
                        help="fuzz batch seed (default 0)")
    verify.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the parallel-identical "
                             "invariant (1 = in-process shard/merge)")
    verify.add_argument("--max-inputs", type=int, default=18,
                        help="refuse oracle sweeps beyond this many "
                             "primary inputs (n * 2**n simulations)")
    verify.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="write shrunk fuzz counterexamples (.v) here")
    verify.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    verify.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"])
    verify.add_argument("--log-json", default=None, metavar="PATH")
    verify.add_argument("--profile", action="store_true")
    verify.add_argument("--metrics-json", default=None, metavar="PATH")
    verify.set_defaults(func=_verify)

    obs_parser = sub.add_parser(
        "obs",
        help="observability utilities over --metrics-json snapshots",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two metrics snapshots; with --fail-on, exit "
             "nonzero when a counter regresses past a threshold",
    )
    obs_diff.add_argument("before", help="baseline --metrics-json file")
    obs_diff.add_argument("after", help="candidate --metrics-json file")
    obs_diff.add_argument("--fail-on", action="append", default=[],
                          metavar="REGEX:PCT",
                          help="fail (exit 4) when any metric key matching "
                               "REGEX grew by more than PCT percent "
                               "(repeatable; e.g. 'pathfinder\\.:10')")
    obs_diff.add_argument("--filter", default=None, metavar="REGEX",
                          help="only show keys matching REGEX")
    obs_diff.add_argument("--all", action="store_true",
                          help="show unchanged keys too")
    obs_diff.set_defaults(func=_obs_diff)

    stats = sub.add_parser("stats", help="print netlist statistics")
    stats.add_argument("netlist")
    stats.add_argument("--no-map", action="store_true")
    stats.set_defaults(func=_stats)

    args = parser.parse_args(argv)
    debug = getattr(args, "log_level", None) == "debug"
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream pager/head closed our stdout: the Unix convention
        # is a quiet death, not an error report (which could not be
        # written anyway).  128 + SIGPIPE, like the shell reports it.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13
    except SearchInterrupted as exc:
        # Completed shards were merged and (if --checkpoint) snapshotted
        # before the unwind; say so instead of printing a stack.
        if debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except ResilienceError as exc:
        if debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except Exception as exc:
        # Foreign exceptions (bad paths, parse errors...) map into the
        # taxonomy for a one-line message and a distinct exit status;
        # --log-level debug keeps the full traceback.
        if debug:
            raise
        err = classify(exc, context=args.command)
        print(f"error: {err}", file=sys.stderr)
        return err.exit_code


if __name__ == "__main__":
    sys.exit(main())
