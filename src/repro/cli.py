"""Command-line STA driver.

Analyze a netlist file with either tool::

    python -m repro.cli analyze circuit.bench --tech 90nm --top 10
    python -m repro.cli analyze design.v --tool baseline --required 500
    python -m repro.cli analyze iscas:c432 --tool gba --compare
    python -m repro.cli analyze iscas:c880a --n-worst 10 --metrics-json m.json
    python -m repro.cli analyze iscas:c432 --jobs 4 --progress --trace-json t.json
    python -m repro.cli obs diff before.json after.json --fail-on 'pathfinder\.:10'
    python -m repro.cli stats circuit.bench

Or keep the expensive state hot in a long-running server::

    python -m repro.cli serve --port 7487
    python -m repro.cli client 127.0.0.1:7487 analyze iscas:c432 --n-worst 5
    python -m repro.cli client 127.0.0.1:7487 stats

``.bench`` files are parsed as ISCAS benchmarks (and technology-mapped
onto the complex-gate library unless ``--no-map``); ``.v`` files as
structural Verilog using library cell names directly; ``iscas:<name>``
builds a circuit from the bundled evaluation suite.

A served analysis is byte-identical to the one-shot CLI for the same
configuration: both run :func:`repro.service.requests.execute_analysis`
(see docs/SERVICE.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

from repro import obs
from repro.core.report import paths_to_json
from repro.gates.library import default_library
from repro.resilience.errors import (
    EXIT_CONFIG,
    EXIT_INTERRUPTED,
    EXIT_UNAVAILABLE,
    OutputWriteError,
    ResilienceError,
    SearchInterrupted,
    classify,
)
# Re-exported for backward compatibility: these lived here before the
# service split and are part of the de-facto public surface
# (tests and scripts import them from repro.cli).
from repro.service.requests import (  # noqa: F401
    _CHARLIB_MEMO,
    AnalysisRequest,
    cached_charlib,
    execute_analysis,
    execute_size,
    execute_verify,
    load_circuit,
)
from repro.tech.presets import TECHNOLOGIES

_log = obs.get_logger("repro.cli")


def _setup_obs(args) -> None:
    if getattr(args, "log_level", None):
        obs.configure_logging(level=args.log_level,
                              jsonl_path=getattr(args, "log_json", None))
    if getattr(args, "profile", False):
        obs.tracing.enable()
    if getattr(args, "trace_json", None):
        obs.export.enable()


def _write_artifact(path: str, text: str, what: str) -> None:
    """Write a user-requested output file, mapping any OS failure into
    the error taxonomy (the analysis succeeded; silently dropping the
    artifact and exiting 0 would hide the loss from scripts)."""
    try:
        Path(path).write_text(text)
    except OSError as exc:
        raise OutputWriteError(f"cannot write {what} to {path}: {exc}",
                               cause=exc)


def _finish_obs(args) -> int:
    obs.aggregate.record_resource_usage()
    if getattr(args, "profile", False):
        print()
        print(obs.tracing.render())
        snapshot = obs.metrics.snapshot()
        if snapshot:
            print("\nmetrics:")
            for key, value in snapshot.items():
                if isinstance(value, dict):
                    value = (f"count={value['count']} sum={value['sum']:.4g} "
                             f"mean={value['mean']:.4g} max={value['max']:.4g}")
                print(f"  {key:<48s} {value}")
    metrics_json = getattr(args, "metrics_json", None)
    if metrics_json:
        _write_artifact(metrics_json, json.dumps(obs.snapshot(), indent=2),
                        "metrics snapshot")
        print(f"\nwrote metrics snapshot to {metrics_json}")
    trace_json = getattr(args, "trace_json", None)
    if trace_json:
        try:
            n_events = obs.export.collector().write(trace_json)
        except OSError as exc:
            raise OutputWriteError(
                f"cannot write trace to {trace_json}: {exc}", cause=exc)
        print(f"wrote {n_events} trace events to {trace_json} "
              "(load in ui.perfetto.dev or chrome://tracing)")
    return 0


def _analyze_params(args) -> dict:
    """The result-affecting ``analyze`` flags as
    :class:`~repro.service.requests.AnalysisRequest` fields -- the one
    mapping both the one-shot path and ``repro client analyze`` use."""
    return {
        "netlist": args.netlist,
        "tech": args.tech,
        "tool": args.tool,
        "top": args.top,
        "n_worst": args.n_worst,
        "compare": args.compare,
        "max_paths": args.max_paths,
        "backtrack_limit": args.backtrack_limit,
        "required_ps": args.required,
        "no_map": args.no_map,
        "jobs": args.jobs,
        "missing_arc_policy": args.missing_arc_policy,
        "vectorize": not args.no_vectorize,
        "wall_budget": args.wall_budget,
        "extension_budget": args.extension_budget,
        "backtrack_budget": args.backtrack_budget,
        "shard_timeout": args.shard_timeout,
        "shard_retries": args.shard_retries,
        "checkpoint": args.checkpoint,
        "resume": args.resume,
        "progress": args.progress,
        "heartbeat_timeout": args.heartbeat_timeout,
    }


def _analyze(args) -> int:
    _setup_obs(args)
    outcome = execute_analysis(AnalysisRequest(**_analyze_params(args)))
    print(outcome.report)
    if args.json:
        _write_artifact(args.json, paths_to_json(outcome.paths, indent=2),
                        "path list")
        print(f"\nwrote {len(outcome.paths)} paths to {args.json}")
    return _finish_obs(args)


def _size(args) -> int:
    _setup_obs(args)
    outcome = execute_size(
        args.netlist,
        args.required,
        tech=args.tech,
        strategy=args.strategy,
        seed=args.seed,
        max_moves=args.max_moves,
        variant_suffix=args.variant_suffix,
        max_paths=args.max_paths,
        no_map=args.no_map,
        vectorize=not args.no_vectorize,
        scratch=args.scratch,
        wall_budget=args.wall_budget,
        extension_budget=args.extension_budget,
        backtrack_budget=args.backtrack_budget,
    )
    print(outcome.report)
    if args.json:
        _write_artifact(args.json, json.dumps(outcome.payload, indent=2),
                        "sizing report")
        print(f"\nwrote sizing report to {args.json}")
    return _finish_obs(args)


def _verify(args) -> int:
    _setup_obs(args)
    failed = False

    if args.oracle or args.metamorphic:
        specs = args.circuit or ["iscas:c17", "iscas:c432@0.05"]
        outcome = execute_verify(
            specs, oracle=args.oracle, metamorphic=args.metamorphic,
            max_inputs=args.max_inputs, jobs=args.jobs, tech=args.tech,
        )
        print(outcome.report)
        failed = failed or not outcome.ok

    if args.faults:
        from repro.verify import run_faults

        charlib = cached_charlib(default_library(),
                                 TECHNOLOGIES[args.tech])
        specs = args.circuit or ["iscas:c432@0.1"]
        for spec in specs:
            circuit = load_circuit(spec)
            report = run_faults(
                circuit, charlib, seed=args.seed,
                jobs=max(args.jobs, 2), max_paths=args.max_paths,
            )
            print(report.describe())
            failed = failed or not report.ok

    if args.server_faults:
        from repro.verify import run_server_faults

        specs = args.circuit or ["iscas:c432@0.1"]
        for spec in specs:
            report = run_server_faults(
                spec, seed=args.seed, jobs=max(args.jobs, 2),
                max_paths=args.max_paths,
            )
            print(report.describe())
            failed = failed or not report.ok

    if args.fuzz is not None:
        from repro.verify import run_fuzz

        charlib = cached_charlib(default_library(),
                                 TECHNOLOGIES[args.tech])
        report = run_fuzz(charlib, n=args.fuzz, seed=args.seed,
                          jobs=args.jobs)
        print(report.summary())
        for failure in report.failures:
            print(f"  {failure.describe()}")
            if args.artifact_dir:
                out_dir = Path(args.artifact_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                out = out_dir / (
                    f"counterexample_s{failure.seed}_i{failure.index}.v"
                )
                out.write_text(failure.verilog)
                print(f"  wrote {out}")
        failed = failed or not report.ok

    obs_rc = _finish_obs(args)
    return 1 if failed else obs_rc


def _obs_diff(args) -> int:
    """Compare two ``--metrics-json`` snapshots; exit
    :data:`~repro.obs.diff.EXIT_REGRESSION` when a ``--fail-on`` rule is
    violated (the regression-gate building block for CI)."""
    from repro.obs.diff import (
        EXIT_REGRESSION,
        diff_snapshots,
        format_diff,
        load_snapshot,
        parse_fail_rule,
        violations,
    )

    try:
        rules = [parse_fail_rule(spec) for spec in args.fail_on]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    before = load_snapshot(args.before)
    after = load_snapshot(args.after)
    entries = diff_snapshots(before, after)
    print(f"metrics diff: {args.before} -> {args.after}")
    print(format_diff(entries, only_changed=not args.all,
                      key_filter=args.filter))
    failed = violations(entries, rules)
    if failed:
        print(f"\n{len(failed)} regression(s) over threshold:",
              file=sys.stderr)
        for entry, rule in failed:
            print(f"  {entry.describe()}  (rule {rule.pattern.pattern}:"
                  f"{rule.threshold_pct:g})", file=sys.stderr)
        return EXIT_REGRESSION
    if rules:
        print("\nall --fail-on rules passed")
    return 0


def _stats(args) -> int:
    circuit = load_circuit(args.netlist, map_to_complex=not args.no_map)
    for key, value in circuit.stats().items():
        print(f"{key:>14s}: {value}")
    print(f"{'cells':>14s}: {circuit.cell_histogram()}")
    return 0


def _serve(args) -> int:
    import signal

    from repro.service import ServiceConfig, start_in_thread

    _setup_obs(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        result_cache_size=args.result_cache_size,
        max_concurrent=args.max_concurrent,
        heartbeat_interval=args.heartbeat_interval,
        allow_fault_injection=args.allow_fault_injection,
        fleet=args.fleet,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_retries=args.request_retries,
        preempt_after_s=args.preempt_after,
        snapshot_path=args.snapshot,
        snapshot_interval_s=args.snapshot_interval,
        snapshot_max_age_s=args.snapshot_max_age,
    )
    handle = start_in_thread(config)
    print(f"listening on {handle.host}:{handle.port}", flush=True)
    if args.port_file:
        _write_artifact(args.port_file, f"{handle.port}\n", "port file")

    def _on_sigterm(signum, frame):
        # Same graceful drain as the wire `shutdown` op: finish
        # in-flight work, refuse new requests with `unavailable`,
        # snapshot warm state, exit 0.
        print("SIGTERM: draining", file=sys.stderr)
        handle.server.begin_drain()

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        # Until a `shutdown` request / SIGTERM drain finishes (or Ctrl-C).
        handle.thread.join()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        handle.stop()
    return 0


def _client(args) -> int:
    from repro.service import ServiceClient

    host, sep, port = args.server.rpartition(":")
    if not sep or not port.isdigit():
        from repro.resilience.errors import ConfigError

        raise ConfigError(f"server must be HOST:PORT, got {args.server!r}")
    command = args.client_command
    with ServiceClient(host, int(port), timeout=args.timeout) as client:

        def _call(op, params, **kwargs):
            retries = getattr(args, "retries", 0) or 0
            if retries > 0:
                return client.call_with_retry(op, params, retries=retries,
                                              **kwargs)
            return client.call(op, params, **kwargs)

        if command == "analyze":
            result = _call(
                "analyze", _analyze_params(args),
                deadline_s=args.deadline, effort=args.effort,
            )
            print(result["report"])
            if args.metrics_json:
                _write_artifact(
                    args.metrics_json,
                    json.dumps(result.get("metrics", {}), indent=2),
                    "request metrics")
                print(f"\nwrote request metrics to {args.metrics_json}")
            return 0
        if command == "verify":
            specs = args.circuit or ["iscas:c17", "iscas:c432@0.05"]
            result = _call("verify", {
                "circuits": specs,
                "oracle": args.oracle,
                "metamorphic": args.metamorphic,
                "max_inputs": args.max_inputs,
                "jobs": args.jobs,
                "tech": args.tech,
            }, deadline_s=args.deadline)
            print(result["report"])
            return 0 if result.get("ok") else 1
        if command == "size":
            result = _call("size", {
                "netlist": args.netlist,
                "required_ps": args.required,
                "tech": args.tech,
                "strategy": args.strategy,
                "seed": args.seed,
                "max_moves": args.max_moves,
            }, deadline_s=args.deadline)
            print(result["report"])
            return 0
        if command == "stats":
            result = client.call("stats")
            payload = {key: value for key, value in result.items()
                       if key not in ("kind", "id")}
            text = json.dumps(payload, indent=2, sort_keys=True)
            if args.json:
                _write_artifact(args.json, text, "server stats")
                print(f"wrote server stats to {args.json}")
            else:
                print(text)
            return 0
        if command == "ping":
            result = client.call("ping")
            print(f"pong from {args.server} "
                  f"(uptime {result['uptime_s']:g}s)")
            return 0
        # shutdown
        client.call("shutdown")
        print(f"server at {args.server} stopping")
        return 0


def _add_analyze_flags(parser) -> None:
    """The result-affecting ``analyze`` flags, shared verbatim between
    ``repro analyze`` and ``repro client HOST:PORT analyze`` so a served
    request is specified exactly like a one-shot run."""
    parser.add_argument("netlist")
    parser.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    parser.add_argument("--tool", default="developed",
                        choices=["developed", "baseline", "gba"])
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--n-worst", type=int, default=None, metavar="N",
                        help="developed tool only: report the N worst "
                             "true paths using the backward required-time "
                             "bound to prune the search")
    parser.add_argument("--compare", action="store_true",
                        help="with --tool gba: also run the true-path "
                             "search and print the per-endpoint "
                             "gba_pessimism delta")
    parser.add_argument("--max-paths", type=int, default=20000)
    parser.add_argument("--backtrack-limit", type=int, default=1000)
    parser.add_argument("--required", type=float, default=None,
                        help="required time in ps for a slack report")
    parser.add_argument("--no-map", action="store_true",
                        help="skip technology mapping of .bench input")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard the developed tool's search across "
                             "primary inputs in N worker processes")
    # No argparse choices=: an unknown policy must exit through the
    # resilience taxonomy (ConfigError, EX_CONFIG=78) with a one-line
    # message naming the valid values, not argparse's usage dump.
    parser.add_argument("--missing-arc-policy", default="error",
                        metavar="POLICY",
                        help="on a library gap: abort (error) or fall "
                             "back to the nearest characterized arc of "
                             "the same cell (warn-substitute)")
    parser.add_argument("--no-vectorize", action="store_true",
                        help="run the scalar reference sweeps instead "
                             "of the structure-of-arrays batched "
                             "kernels (results are byte-identical; "
                             "this is an escape hatch / A-B switch)")
    parser.add_argument("--wall-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="anytime mode: stop searching after this "
                             "much wall-clock time and report partial "
                             "paths with per-origin completeness + GBA "
                             "bounds")
    parser.add_argument("--extension-budget", type=int, default=None,
                        metavar="N",
                        help="anytime mode: cap search extensions")
    parser.add_argument("--backtrack-budget", type=int, default=None,
                        metavar="N",
                        help="anytime mode: cap justification backtracks")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="stream completed origins to this JSON "
                             "snapshot (atomic writes; survives crashes "
                             "and Ctrl-C)")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="adopt completed origins from a checkpoint "
                             "written by an identical configuration")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per parallel shard "
                             "attempt (hung workers are terminated and "
                             "the shard retried)")
    parser.add_argument("--shard-retries", type=int, default=2,
                        metavar="N",
                        help="retry attempts per failed shard before "
                             "the in-process serial fallback "
                             "(default 2)")
    parser.add_argument("--progress", action="store_true",
                        help="developed tool: live per-origin progress "
                             "line on stderr (heartbeats from worker "
                             "processes under --jobs)")
    parser.add_argument("--heartbeat-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="treat a parallel shard as stalled when its "
                             "workers send no heartbeat for this long "
                             "(terminate + retry, like --shard-timeout "
                             "but distinguishing silent hangs from slow "
                             "progress)")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run STA on a netlist")
    _add_analyze_flags(analyze)
    analyze.add_argument("--json", default=None,
                         help="dump the path list to this JSON file")
    analyze.add_argument("--log-level", default=None,
                         choices=["debug", "info", "warning", "error"],
                         help="enable structured logging at this level")
    analyze.add_argument("--log-json", default=None, metavar="PATH",
                         help="also write JSONL log records to PATH")
    analyze.add_argument("--profile", action="store_true",
                         help="trace spans and print a span/metric tree")
    analyze.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write the metrics+span snapshot to PATH")
    analyze.add_argument("--trace-json", default=None, metavar="PATH",
                         help="write a Chrome trace-event / Perfetto "
                              "timeline (one lane per worker process, "
                              "instant markers for resilience incidents) "
                              "to PATH")
    analyze.set_defaults(func=_analyze)

    size = sub.add_parser(
        "size",
        help="timing-driven gate sizing against the incremental STA "
             "session (repro.opt.sizer)",
    )
    size.add_argument("netlist")
    size.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    size.add_argument("--required", type=float, required=True,
                      metavar="PS", help="required time in ps")
    size.add_argument("--strategy", default="greedy",
                      choices=["greedy", "anneal"])
    size.add_argument("--seed", type=int, default=0,
                      help="anneal move-selection seed (default 0)")
    size.add_argument("--max-moves", type=int, default=20,
                      help="greedy: sizing rounds; anneal: attempted "
                           "moves (default 20)")
    size.add_argument("--variant-suffix", default="_X2", metavar="SUFFIX",
                      help="drive-variant cell-name suffix (default _X2)")
    size.add_argument("--max-paths", type=int, default=5000,
                      help="cap per worst-path query (default 5000)")
    size.add_argument("--no-map", action="store_true",
                      help="skip technology mapping of .bench input")
    size.add_argument("--no-vectorize", action="store_true",
                      help="scalar reference sweeps (byte-identical)")
    size.add_argument("--scratch", action="store_true",
                      help="rebuild all analysis state from scratch per "
                           "move instead of dirty-cone repair (A/B "
                           "reference; results are identical)")
    size.add_argument("--wall-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop the sizing loop after this much "
                           "wall-clock time")
    size.add_argument("--extension-budget", type=int, default=None,
                      metavar="N", help="cap extensions per path search")
    size.add_argument("--backtrack-budget", type=int, default=None,
                      metavar="N", help="cap backtracks per path search")
    size.add_argument("--json", default=None, metavar="PATH",
                      help="write the move-by-move sizing report to PATH")
    size.add_argument("--log-level", default=None,
                      choices=["debug", "info", "warning", "error"])
    size.add_argument("--log-json", default=None, metavar="PATH")
    size.add_argument("--profile", action="store_true",
                      help="trace spans and print a span/metric tree")
    size.add_argument("--metrics-json", default=None, metavar="PATH",
                      help="write the metrics+span snapshot to PATH")
    size.add_argument("--trace-json", default=None, metavar="PATH",
                      help="write a Chrome trace-event timeline to PATH")
    size.set_defaults(func=_size)

    verify = sub.add_parser(
        "verify",
        help="differential verification: exhaustive oracle, metamorphic "
             "invariants, seeded fuzzing (repro.verify)",
    )
    verify.add_argument("--oracle", action="store_true",
                        help="exhaustively sweep each --circuit through "
                             "event simulation and cross-check the "
                             "pathfinder's delay/course/vector")
    verify.add_argument("--metamorphic", action="store_true",
                        help="check the cross-engine invariant catalog "
                             "on each --circuit")
    verify.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="fuzz N random mapped circuits, shrinking "
                             "any failure to a minimal counterexample")
    verify.add_argument("--faults", action="store_true",
                        help="inject deterministic faults (worker crash, "
                             "shard hang, corrupted charlib, mid-run "
                             "interrupt) into each --circuit and assert "
                             "every recovery reproduces the fault-free "
                             "output (default circuit: iscas:c432@0.1)")
    verify.add_argument("--server-faults", action="store_true",
                        help="run the analysis-server fault scenarios: "
                             "kill pool workers behind a served request "
                             "and assert retry recovery / sound degraded "
                             "GBA bounds (default circuit: iscas:c432@0.1)")
    verify.add_argument("--max-paths", type=int, default=None, metavar="N",
                        help="cap paths per fault-scenario run (keeps "
                             "--faults cheap on large circuits)")
    verify.add_argument("--circuit", action="append", default=None,
                        metavar="SPEC",
                        help="netlist file or iscas:<name>[@scale] spec "
                             "for --oracle/--metamorphic (repeatable; "
                             "default: iscas:c17 iscas:c432@0.05)")
    verify.add_argument("--seed", type=int, default=0,
                        help="fuzz batch seed (default 0)")
    verify.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the parallel-identical "
                             "invariant (1 = in-process shard/merge)")
    verify.add_argument("--max-inputs", type=int, default=18,
                        help="refuse oracle sweeps beyond this many "
                             "primary inputs (n * 2**n simulations)")
    verify.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="write shrunk fuzz counterexamples (.v) here")
    verify.add_argument("--tech", default="90nm", choices=list(TECHNOLOGIES))
    verify.add_argument("--log-level", default=None,
                        choices=["debug", "info", "warning", "error"])
    verify.add_argument("--log-json", default=None, metavar="PATH")
    verify.add_argument("--profile", action="store_true")
    verify.add_argument("--metrics-json", default=None, metavar="PATH")
    verify.set_defaults(func=_verify)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived analysis server (repro.service): hot "
             "library/circuit/session caches behind a length-prefixed "
             "JSON socket protocol",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = OS-assigned; the "
                            "bound port is printed and, with "
                            "--port-file, written to a file)")
    serve.add_argument("--cache-size", type=int, default=8,
                       help="LRU capacity for hot analysis contexts "
                            "(default 8)")
    serve.add_argument("--result-cache-size", type=int, default=64,
                       help="LRU capacity for memoized deterministic "
                            "results (default 64)")
    serve.add_argument("--max-concurrent", type=int, default=4,
                       help="requests computed concurrently (default 4)")
    serve.add_argument("--heartbeat-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="liveness beat period while a request "
                            "computes (default 5)")
    serve.add_argument("--allow-fault-injection", action="store_true",
                       help="honor the 'fault' request param (test/CI "
                            "harnesses only)")
    serve.add_argument("--fleet", type=int, default=0, metavar="N",
                       help="compute in N supervised worker processes "
                            "(a worker crash kills one request, not the "
                            "daemon); 0 = in-process thread pool "
                            "(default)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admission slots (default: fleet size, or "
                            "--max-concurrent at --fleet 0)")
    serve.add_argument("--max-queue", type=int, default=32, metavar="N",
                       help="waiting requests beyond which new arrivals "
                            "are shed with 'overloaded' + retry_after_s "
                            "(default 32)")
    serve.add_argument("--request-retries", type=int, default=2,
                       metavar="N",
                       help="crash retries per request before giving up "
                            "(fleet mode; default 2)")
    serve.add_argument("--preempt-after", type=float, default=2.0,
                       metavar="SECONDS",
                       help="queue wait after which a deadline-bearing "
                            "request may preempt an exhaustive hog "
                            "(fleet mode; default 2)")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="persist warm state (result memo + hot "
                            "context keys) to PATH periodically and on "
                            "drain; re-warm from it on boot")
    serve.add_argument("--snapshot-interval", type=float, default=30.0,
                       metavar="SECONDS",
                       help="period between warm-state snapshots "
                            "(default 30)")
    serve.add_argument("--snapshot-max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="discard boot snapshots older than this "
                            "(default: no horizon)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port to PATH once listening")
    serve.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"])
    serve.add_argument("--log-json", default=None, metavar="PATH")
    serve.set_defaults(func=_serve)

    client = sub.add_parser(
        "client",
        help="send one request to a running `repro serve` daemon",
    )
    client.add_argument("server", metavar="HOST:PORT")
    client_sub = client.add_subparsers(dest="client_command", required=True)

    c_analyze = client_sub.add_parser(
        "analyze", help="served STA run (byte-identical to `repro "
                        "analyze` for the same flags)")
    _add_analyze_flags(c_analyze)
    c_analyze.add_argument("--deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="QoS: whole-request wall-clock promise; "
                                "maps onto SearchBudgets.wall_seconds "
                                "net of queue wait")
    c_analyze.add_argument("--effort", default=None,
                           choices=["low", "medium", "high", "exhaustive"],
                           help="QoS: named extension-budget tier")
    c_analyze.add_argument("--timeout", type=float, default=600.0,
                           help="client socket timeout (default 600)")
    c_analyze.add_argument("--retries", type=int, default=0, metavar="N",
                           help="retry 'overloaded'/'unavailable' "
                                "refusals and transport failures up to N "
                                "times with jittered exponential backoff "
                                "(idempotent re-send; default 0)")
    c_analyze.add_argument("--metrics-json", default=None, metavar="PATH",
                           help="write the server-side per-request "
                                "counter delta to PATH")
    c_analyze.set_defaults(func=_client)

    c_verify = client_sub.add_parser("verify", help="served verification")
    c_verify.add_argument("--circuit", action="append", default=None,
                          metavar="SPEC")
    c_verify.add_argument("--oracle", action="store_true")
    c_verify.add_argument("--metamorphic", action="store_true")
    c_verify.add_argument("--max-inputs", type=int, default=18)
    c_verify.add_argument("--jobs", type=int, default=1, metavar="N")
    c_verify.add_argument("--tech", default="90nm",
                          choices=list(TECHNOLOGIES))
    c_verify.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS")
    c_verify.add_argument("--timeout", type=float, default=600.0)
    c_verify.add_argument("--retries", type=int, default=0, metavar="N")
    c_verify.set_defaults(func=_client)

    c_size = client_sub.add_parser("size", help="served gate sizing")
    c_size.add_argument("netlist")
    c_size.add_argument("--required", type=float, required=True,
                        metavar="PS")
    c_size.add_argument("--tech", default="90nm",
                        choices=list(TECHNOLOGIES))
    c_size.add_argument("--strategy", default="greedy",
                        choices=["greedy", "anneal"])
    c_size.add_argument("--seed", type=int, default=0)
    c_size.add_argument("--max-moves", type=int, default=20)
    c_size.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS")
    c_size.add_argument("--timeout", type=float, default=600.0)
    c_size.add_argument("--retries", type=int, default=0, metavar="N")
    c_size.set_defaults(func=_client)

    c_stats = client_sub.add_parser(
        "stats", help="server uptime, request counts, cache and metrics "
                      "state")
    c_stats.add_argument("--json", default=None, metavar="PATH",
                         help="write the stats payload to PATH instead "
                              "of stdout")
    c_stats.add_argument("--timeout", type=float, default=60.0)
    c_stats.set_defaults(func=_client)

    c_ping = client_sub.add_parser("ping", help="liveness check")
    c_ping.add_argument("--timeout", type=float, default=60.0)
    c_ping.set_defaults(func=_client)

    c_shutdown = client_sub.add_parser("shutdown",
                                       help="stop the server cleanly")
    c_shutdown.add_argument("--timeout", type=float, default=60.0)
    c_shutdown.set_defaults(func=_client)

    obs_parser = sub.add_parser(
        "obs",
        help="observability utilities over --metrics-json snapshots",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two metrics snapshots; with --fail-on, exit "
             "nonzero when a counter regresses past a threshold",
    )
    obs_diff.add_argument("before", help="baseline --metrics-json file")
    obs_diff.add_argument("after", help="candidate --metrics-json file")
    obs_diff.add_argument("--fail-on", action="append", default=[],
                          metavar="REGEX:PCT",
                          help="fail (exit 4) when any metric key matching "
                               "REGEX grew by more than PCT percent "
                               "(repeatable; e.g. 'pathfinder\\.:10')")
    obs_diff.add_argument("--filter", default=None, metavar="REGEX",
                          help="only show keys matching REGEX")
    obs_diff.add_argument("--all", action="store_true",
                          help="show unchanged keys too")
    obs_diff.set_defaults(func=_obs_diff)

    stats = sub.add_parser("stats", help="print netlist statistics")
    stats.add_argument("netlist")
    stats.add_argument("--no-map", action="store_true")
    stats.set_defaults(func=_stats)

    args = parser.parse_args(argv)
    debug = getattr(args, "log_level", None) == "debug"
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream pager/head closed our stdout: the Unix convention
        # is a quiet death, not an error report (which could not be
        # written anyway).  128 + SIGPIPE, like the shell reports it.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13
    except SearchInterrupted as exc:
        # Completed shards were merged and (if --checkpoint) snapshotted
        # before the unwind; say so instead of printing a stack.
        if debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except ResilienceError as exc:
        if debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except Exception as exc:
        from repro.service.client import ServiceError

        if isinstance(exc, (ServiceError, ConnectionError, OSError)) \
                and getattr(args, "command", None) == "client":
            # The server refused, failed, or is simply not there: a
            # service-availability failure, not a local software error.
            if debug:
                raise
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNAVAILABLE
        # Foreign exceptions (bad paths, parse errors...) map into the
        # taxonomy for a one-line message and a distinct exit status;
        # --log-level debug keeps the full traceback.
        if debug:
            raise
        err = classify(exc, context=args.command)
        print(f"error: {err}", file=sys.stderr)
        return err.exit_code


if __name__ == "__main__":
    sys.exit(main())
