"""Process-pool parallel driver for the path search.

The single-pass search visits one primary input at a time and never
shares state between origins, so the natural partition is one shard per
origin.  Each worker process builds the indexed circuit and delay
calculator once (pool initializer), then serves origin shards; the
parent concatenates the per-origin path lists *in origin declaration
order* -- which makes the merged stream identical to the serial one --
and folds the per-shard :class:`SearchStats` and ``delaycalc.*``
counter deltas into its own metrics registry (worker registries are
per-process and die with the pool; only the merged totals surface).

Merge semantics under the search limits:

* ``max_paths``: each shard is capped at ``max_paths`` (a single origin
  can never contribute more), and the merged stream is truncated after
  concatenation -- byte-identical to the serial early stop.
* ``n_worst``: each shard prunes against its *own* top-N heap, which is
  at most as aggressive as the serial global heap, so the merged stream
  is a superset of the serial one that provably contains the true top-N
  set; callers keep the N worst of the merge exactly as they would keep
  the N worst of a serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.fanout import WireLoadModel
from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.core.pathfinder import PathFinder, SearchStats
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span

_log = get_logger("repro.perf")

#: Per-process search context: (indexed circuit, calculator, finder kwargs).
_WORKER: Optional[Tuple[EngineCircuit, DelayCalculator, Dict]] = None

#: One shard's results: paths, SearchStats.as_dict(), delaycalc deltas.
_ShardResult = Tuple[List[TimedPath], Dict[str, float], Dict[str, int]]


def _init_worker(circuit: Circuit, charlib: CharacterizedLibrary,
                 calc_kwargs: Dict, finder_kwargs: Dict) -> None:
    global _WORKER
    ec = EngineCircuit(circuit)
    calc = DelayCalculator(ec, charlib, **calc_kwargs)
    _WORKER = (ec, calc, finder_kwargs)


def _run_shard(ec: EngineCircuit, calc: DelayCalculator, finder_kwargs: Dict,
               origins: Sequence[str]) -> _ShardResult:
    before = (calc.arc_evaluations, calc.arc_cache_hits, calc.arc_cache_misses)
    finder = PathFinder(ec, calc, **finder_kwargs)
    with finder.find_paths(inputs=origins) as stream:
        paths = list(stream)
    deltas = {
        "delaycalc.arc_evaluations": calc.arc_evaluations - before[0],
        "delaycalc.arc_cache_hits": calc.arc_cache_hits - before[1],
        "delaycalc.arc_cache_misses": calc.arc_cache_misses - before[2],
    }
    return paths, finder.stats.as_dict(), deltas


def _search_shard(origins: Sequence[str]) -> _ShardResult:
    ec, calc, finder_kwargs = _WORKER
    return _run_shard(ec, calc, finder_kwargs, origins)


def parallel_find_paths(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    jobs: int = 2,
    inputs: Optional[Sequence[str]] = None,
    temp: float = 25.0,
    vdd: Optional[float] = None,
    input_slew: float = DEFAULT_INPUT_SLEW,
    vector_blind: bool = False,
    wire: Optional[WireLoadModel] = None,
    max_paths: Optional[int] = None,
    n_worst: Optional[int] = None,
    justify_backtrack_limit: Optional[int] = None,
    single_polarity: Optional[int] = None,
    complete: bool = False,
) -> Tuple[List[TimedPath], SearchStats]:
    """Run the true-path search sharded across primary inputs.

    Returns ``(paths, merged_stats)``; the merged stats and the
    ``delaycalc.*`` counter totals are also published to this process's
    metrics registry, exactly like a serial
    :meth:`PathFinder.find_paths` run.  ``jobs=1`` runs the same
    shard/merge pipeline in-process (no pool), which is the reference
    for the equivalence tests.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    origins = list(inputs) if inputs is not None else list(circuit.inputs)
    calc_kwargs = dict(temp=temp, vdd=vdd, input_slew=input_slew,
                       vector_blind=vector_blind, wire=wire)
    finder_kwargs = dict(
        max_paths=max_paths,
        n_worst=n_worst,
        justify_backtrack_limit=justify_backtrack_limit,
        single_polarity=single_polarity,
        complete=complete,
    )
    jobs = min(jobs, max(len(origins), 1))
    with span("perf.parallel_find_paths"):
        parent_ec = parent_calc = None
        if n_worst is not None:
            # The backward required-time bounds depend only on the
            # circuit and corner: compute them once here and ship the
            # plain float tuples to every shard, instead of paying the
            # backward pass (and its model sweeps) once per worker.
            parent_ec = EngineCircuit(circuit)
            parent_calc = DelayCalculator(parent_ec, charlib, **calc_kwargs)
            finder_kwargs["bounds"] = parent_calc.prune_bounds()
        if jobs == 1:
            ec = parent_ec if parent_ec is not None else EngineCircuit(circuit)
            calc = (
                parent_calc
                if parent_calc is not None
                else DelayCalculator(ec, charlib, **calc_kwargs)
            )
            shards = [
                _run_shard(ec, calc, finder_kwargs, [name])
                for name in origins
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(circuit, charlib, calc_kwargs, finder_kwargs),
            ) as pool:
                futures = [
                    pool.submit(_search_shard, [name]) for name in origins
                ]
                shards = [future.result() for future in futures]

    paths: List[TimedPath] = []
    merged = SearchStats()
    totals: Dict[str, int] = {}
    for shard_paths, stats_dict, deltas in shards:
        if max_paths is None or len(paths) < max_paths:
            paths.extend(shard_paths)
        merged.merge(stats_dict)
        for key, value in deltas.items():
            totals[key] = totals.get(key, 0) + value
    if max_paths is not None:
        del paths[max_paths:]

    name = circuit.name
    merged.publish(name)
    registry = obs_metrics.REGISTRY
    for key in ("delaycalc.arc_evaluations", "delaycalc.arc_cache_hits",
                "delaycalc.arc_cache_misses"):
        value = totals.get(key, 0)
        registry.counter(key).inc(value)
        registry.counter(key, circuit=name).inc(value)
    registry.counter("perf.parallel_runs").inc()
    registry.counter("perf.parallel_shards").inc(len(origins))
    registry.gauge("perf.parallel_jobs").set(jobs)
    _log.debug("parallel.done", circuit=name, jobs=jobs,
               shards=len(origins), paths=len(paths))
    return paths, merged
