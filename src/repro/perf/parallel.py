"""Process-pool parallel driver for the path search.

The single-pass search visits one primary input at a time and never
shares state between origins, so the natural partition is one shard per
origin.  Supervision (worker-crash retry, shard timeouts, serial
fallback, checkpoint/resume, clean SIGINT unwinding) lives in
:class:`repro.resilience.supervisor.ShardSupervisor`; this module is
the thin public face that assembles the search configuration, ships the
precomputed pruning bounds to the shards, and preserves the historical
``(paths, merged_stats)`` return shape.

Merge semantics under the search limits (unchanged from the plain
driver):

* ``max_paths``: each shard is capped at ``max_paths`` (a single origin
  can never contribute more), and the merged stream is truncated after
  concatenation -- byte-identical to the serial early stop.
* ``n_worst``: each shard prunes against its *own* top-N heap, which is
  at most as aggressive as the serial global heap, so the merged stream
  is a superset of the serial one that provably contains the true top-N
  set; callers keep the N worst of the merge exactly as they would keep
  the N worst of a serial run.

On SIGINT the supervisor shuts the pool down cleanly (workers ignore
SIGINT, so no child traceback storm), publishes the merged metrics of
every completed shard, flushes the checkpoint if one is being written,
and raises :class:`~repro.resilience.errors.SearchInterrupted` whose
``partial`` attribute carries the merged partial result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.charlib.fanout import WireLoadModel
from repro.charlib.store import CharacterizedLibrary
from repro.core.delaycalc import DEFAULT_INPUT_SLEW, DelayCalculator
from repro.core.engine import EngineCircuit
from repro.core.path import TimedPath
from repro.core.pathfinder import SearchStats
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience.budgets import SearchBudgets
from repro.resilience.errors import ConfigError
from repro.resilience.supervisor import (
    ShardSupervisor,
    SupervisedResult,
    SupervisorConfig,
)

_log = get_logger("repro.perf")


def supervised_find_paths(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    jobs: int = 2,
    inputs: Optional[Sequence[str]] = None,
    temp: float = 25.0,
    vdd: Optional[float] = None,
    input_slew: float = DEFAULT_INPUT_SLEW,
    vector_blind: bool = False,
    wire: Optional[WireLoadModel] = None,
    max_paths: Optional[int] = None,
    n_worst: Optional[int] = None,
    justify_backtrack_limit: Optional[int] = None,
    single_polarity: Optional[int] = None,
    complete: bool = False,
    budgets: Optional[SearchBudgets] = None,
    missing_arc_policy: str = "error",
    vectorize: bool = True,
    shard_timeout: Optional[float] = None,
    shard_retries: int = 2,
    retry_backoff: float = 0.05,
    serial_fallback: bool = True,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    fault_plan: object = None,
    progress: bool = False,
    heartbeat_timeout: Optional[float] = None,
) -> SupervisedResult:
    """Run the true-path search sharded across primary inputs, under
    supervision, and return the full
    :class:`~repro.resilience.supervisor.SupervisedResult` (paths,
    merged stats, per-origin completeness, resume accounting).

    The merged stats and the ``delaycalc.*`` counter totals are
    published to this process's metrics registry, exactly like a serial
    :meth:`PathFinder.find_paths` run.  ``jobs=1`` runs the same
    shard/merge pipeline in-process (no pool), which is the reference
    for the equivalence tests.  ``budgets`` apply *per shard*: each
    origin's sub-search gets the full allowance, and exhausted shards
    come back tagged ``partial`` in the completeness report.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    origins = list(inputs) if inputs is not None else list(circuit.inputs)
    calc_kwargs = dict(temp=temp, vdd=vdd, input_slew=input_slew,
                       vector_blind=vector_blind, wire=wire,
                       missing_arc_policy=missing_arc_policy,
                       vectorize=vectorize)
    finder_kwargs = dict(
        max_paths=max_paths,
        n_worst=n_worst,
        justify_backtrack_limit=justify_backtrack_limit,
        single_polarity=single_polarity,
        complete=complete,
        budgets=budgets,
    )
    jobs = min(jobs, max(len(origins), 1))
    config = SupervisorConfig(
        jobs=jobs,
        shard_timeout=shard_timeout,
        shard_retries=shard_retries,
        retry_backoff=retry_backoff,
        serial_fallback=serial_fallback,
        checkpoint_path=checkpoint,
        resume_path=resume,
        progress=progress,
        heartbeat_timeout=heartbeat_timeout,
    )
    supervisor = ShardSupervisor(
        circuit, charlib, calc_kwargs, finder_kwargs, config,
        fault_plan=fault_plan,
    )
    with span("perf.parallel_find_paths"):
        if n_worst is not None:
            # The backward required-time bounds depend only on the
            # circuit and corner: compute them once here and ship the
            # plain float tuples to every shard, instead of paying the
            # backward pass (and its model sweeps) once per worker.
            parent_ec = EngineCircuit(circuit)
            parent_calc = DelayCalculator(parent_ec, charlib, **calc_kwargs)
            supervisor.finder_kwargs["bounds"] = parent_calc.prune_bounds()
            # Ship the full compiled tables (slew fixed point, worst-arc
            # delays, both bounds) alongside: worker calculators seed
            # them instead of re-deriving the sweeps per process.  Kept
            # out of calc_kwargs -- the worst-arc table has tuple keys,
            # which the JSON checkpoint fingerprint cannot encode (and
            # the tables are derived state, not configuration).
            supervisor.compiled_tables = parent_calc.export_tables()
            obs_metrics.REGISTRY.counter("perf.compiled_tables_shipped").inc()
            supervisor.attach_parent_context(parent_ec, parent_calc)
        result = supervisor.run(origins)

    registry = obs_metrics.REGISTRY
    registry.counter("perf.parallel_runs").inc()
    registry.counter("perf.parallel_shards").inc(len(origins))
    registry.gauge("perf.parallel_jobs").set(jobs)
    _log.debug("parallel.done", circuit=circuit.name, jobs=jobs,
               shards=len(origins), paths=len(result.paths),
               degraded=result.degraded)
    return result


def parallel_find_paths(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    jobs: int = 2,
    **kwargs,
) -> Tuple[List[TimedPath], SearchStats]:
    """Historical entry point: :func:`supervised_find_paths` narrowed to
    the ``(paths, merged_stats)`` pair."""
    result = supervised_find_paths(circuit, charlib, jobs=jobs, **kwargs)
    return result.paths, result.stats
