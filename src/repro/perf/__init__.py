"""Hot-path performance layer for the single-pass search.

Currently one public entry point: :func:`parallel_find_paths`, a
process-pool driver that shards the search across primary inputs (each
origin's search is independent -- the paper's natural partition) and
merges the resulting :class:`~repro.core.path.TimedPath` streams and
:class:`~repro.core.pathfinder.SearchStats` back into the calling
process, including its metrics registry.  The serial hot-path pieces
(arc-resolution memoization, justify-skip) live directly in
:mod:`repro.core.delaycalc` and :mod:`repro.core.pathfinder`; see
``docs/PERFORMANCE.md`` for how to measure them.
"""

from repro.perf.parallel import parallel_find_paths

__all__ = ["parallel_find_paths"]
