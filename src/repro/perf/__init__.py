"""Hot-path performance layer for the single-pass search.

Two public entry points: :func:`parallel_find_paths`, the historical
``(paths, stats)`` process-pool driver that shards the search across
primary inputs (each origin's search is independent -- the paper's
natural partition) and merges the per-origin streams back into the
calling process, including its metrics registry; and
:func:`supervised_find_paths`, the same pipeline returning the full
:class:`~repro.resilience.supervisor.SupervisedResult` (per-origin
completeness, resume accounting).  Both run under the
:mod:`repro.resilience.supervisor` -- worker crashes, shard timeouts
and SIGINT degrade or retry instead of killing the run.  The serial
hot-path pieces (arc-resolution memoization, justify-skip) live
directly in :mod:`repro.core.delaycalc` and
:mod:`repro.core.pathfinder`; see ``docs/PERFORMANCE.md`` for how to
measure them and ``docs/ROBUSTNESS.md`` for the supervision knobs.
"""

from repro.perf.parallel import parallel_find_paths, supervised_find_paths

__all__ = ["parallel_find_paths", "supervised_find_paths"]
