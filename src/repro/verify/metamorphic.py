"""Cross-engine metamorphic invariants.

Where exhaustive sweeping is infeasible (more than ~18 inputs) the
engines still certify each other: the repo carries three analysis modes
plus several search configurations that must relate in provable ways.
Each invariant below is an executable statement of one such relation;
a violation on *any* circuit is a bug, so the fuzz driver can assert
them on arbitrarily large random netlists.

The catalog (see docs/TESTING.md):

``gba_bounds``
    GraphSTA's forward worst-arrival pass maximizes per gate over every
    sensitization vector with no joint-sensitizability check, so its
    endpoint arrival upper-bounds every pathfinder true path at the
    same endpoint (up to model noise from slew selection at
    reconvergence).
``structural_superset``
    The baseline's structural enumeration ignores logic, so its course
    set is a superset of the pathfinder's sensitizable course set.
``parallel_identical``
    The parallel driver shards by origin and merges in declaration
    order; its output must be identical to the serial search -- same
    paths, same order, bit-equal arrivals.
``pruning_identical``
    N-worst pruning uses admissible bounds, so the pruned search's
    top-N multiset of arrivals equals the exhaustive search's, and
    every pruned path is one of the exhaustive paths.
``incremental_identical``
    After every edit in a randomized pin-compatible cell-swap sequence,
    the incremental session's dirty-cone repair (arrivals, slews,
    required/suffix bounds, N-worst report) is byte-identical to a
    from-scratch analysis of the mutated circuit, on both the scalar
    and vectorized paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baseline.structural import StructuralEnumerator
from repro.charlib.store import CharacterizedLibrary
from repro.core.graphsta import GraphSTA
from repro.core.path import TimedPath
from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger

_log = get_logger("repro.verify")

#: Invariant names, in execution order.
INVARIANTS = (
    "gba_bounds",
    "structural_superset",
    "parallel_identical",
    "pruning_identical",
    "incremental_identical",
)

#: Model-noise allowance for the GBA dominance check: GBA propagates
#: the slew of the worst-arrival predecessor, which at reconvergence
#: can differ slightly from the slew the true path actually sees.
GBA_REL_TOL = 0.02


@dataclass
class InvariantResult:
    """Outcome of one invariant on one circuit."""

    name: str
    ok: bool
    checked: int
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        tail = f" -- {self.detail}" if self.detail else ""
        return f"{self.name}: {status} ({self.checked} comparisons){tail}"


def _path_identity(path: TimedPath) -> Tuple:
    """Full output identity of a path: course, vectors, and bit-exact
    per-polarity arrivals/slews."""
    timing = tuple(
        (pol.input_rising, pol.output_rising, pol.arrival, pol.slew)
        for pol in path.polarities()
    )
    return (path.nets, path.vector_signature, timing)


def check_gba_bounds(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    paths: Optional[Sequence[TimedPath]] = None,
    max_paths: Optional[int] = 5000,
    rel_tol: float = GBA_REL_TOL,
) -> InvariantResult:
    if paths is None:
        paths = TruePathSTA(circuit, charlib).enumerate_paths(
            max_paths=max_paths
        )
    gba = GraphSTA(circuit, charlib).run()
    checked = 0
    for path in paths:
        endpoint = path.nets[-1]
        try:
            bound = gba.worst_arrival(endpoint)
        except (KeyError, ValueError):
            return InvariantResult(
                "gba_bounds", False, checked,
                f"endpoint {endpoint} has a true path but no GBA arrival",
            )
        checked += 1
        if path.worst_arrival > bound * (1.0 + rel_tol):
            return InvariantResult(
                "gba_bounds", False, checked,
                (f"true path {path.worst_arrival * 1e12:.1f}ps exceeds GBA "
                 f"bound {bound * 1e12:.1f}ps at {endpoint}: "
                 f"{path.describe()}"),
            )
    return InvariantResult("gba_bounds", True, checked)


def check_structural_superset(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    paths: Optional[Sequence[TimedPath]] = None,
    max_structural: int = 200_000,
) -> InvariantResult:
    sta = TruePathSTA(circuit, charlib)
    if paths is None:
        paths = sta.enumerate_paths(max_paths=5000)
    enumerator = StructuralEnumerator(sta.ec, sta.calc)
    total = enumerator.count_paths()
    if total > max_structural:
        return InvariantResult(
            "structural_superset", True, 0,
            f"skipped: {total} structural paths exceed the "
            f"{max_structural} enumeration cap",
        )
    structural = set()
    names = sta.ec.net_names
    gates = sta.ec.gates
    for spath in enumerator.iter_paths(limit=total):
        nets = [names[spath.origin_net]]
        for gate_index, _pin in spath.hops:
            nets.append(names[gates[gate_index].output_net])
        structural.add(tuple(nets))
    checked = 0
    for path in paths:
        checked += 1
        if path.course not in structural:
            return InvariantResult(
                "structural_superset", False, checked,
                f"sensitized course missing structurally: {path.describe()}",
            )
    return InvariantResult("structural_superset", True, checked)


def check_parallel_identical(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    jobs: int = 2,
    max_paths: Optional[int] = 2000,
    n_worst: Optional[int] = None,
) -> InvariantResult:
    from repro.perf import parallel_find_paths

    serial = TruePathSTA(circuit, charlib).enumerate_paths(
        max_paths=max_paths, n_worst=n_worst
    )
    parallel, _stats = parallel_find_paths(
        circuit, charlib, jobs=jobs, max_paths=max_paths, n_worst=n_worst
    )
    if n_worst is None:
        serial_ids = [_path_identity(p) for p in serial]
        parallel_ids = [_path_identity(p) for p in parallel]
        if serial_ids != parallel_ids:
            return InvariantResult(
                "parallel_identical", False, len(serial),
                (f"serial ({len(serial)} paths) and jobs={jobs} "
                 f"({len(parallel)} paths) streams differ"),
            )
    else:
        # Per-shard heaps prune at most as hard as the global heap, so
        # the merge is a superset whose top-N equals the serial top-N.
        keep = sorted(parallel, key=lambda p: p.worst_arrival,
                      reverse=True)[:n_worst]
        want = sorted(serial, key=lambda p: p.worst_arrival,
                      reverse=True)[:n_worst]
        if ([p.worst_arrival for p in keep]
                != [p.worst_arrival for p in want]):
            return InvariantResult(
                "parallel_identical", False, len(want),
                f"jobs={jobs} top-{n_worst} arrivals differ from serial",
            )
    return InvariantResult("parallel_identical", True, len(serial),
                           f"jobs={jobs}")


def check_pruning_identical(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    n_worst: int = 5,
    exhaustive: Optional[Sequence[TimedPath]] = None,
) -> InvariantResult:
    sta = TruePathSTA(circuit, charlib)
    if exhaustive is None:
        exhaustive = sta.enumerate_paths()
    pruned = sta.n_worst_paths(n_worst)
    want = sorted(exhaustive, key=lambda p: p.worst_arrival,
                  reverse=True)[:n_worst]
    if [p.worst_arrival for p in pruned] != [p.worst_arrival for p in want]:
        return InvariantResult(
            "pruning_identical", False, len(want),
            (f"pruned top-{n_worst} arrivals "
             f"{[round(p.worst_arrival * 1e12, 2) for p in pruned]} != "
             f"exhaustive {[round(p.worst_arrival * 1e12, 2) for p in want]}"),
        )
    exhaustive_ids = {_path_identity(p) for p in exhaustive}
    for path in pruned:
        if _path_identity(path) not in exhaustive_ids:
            return InvariantResult(
                "pruning_identical", False, len(want),
                f"pruned path absent from exhaustive run: {path.describe()}",
            )
    return InvariantResult("pruning_identical", True, len(want))


def check_incremental_identical(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    seed: int = 0,
    edits: int = 3,
    n_worst: int = 4,
    max_paths: Optional[int] = 2000,
) -> InvariantResult:
    """After every edit of a randomized pin-compatible swap sequence,
    the incremental session must match a from-scratch rebuild bit for
    bit -- forward arrivals/slews, backward required/suffix bounds, and
    the full N-worst path identity -- on both the scalar and vectorized
    paths.  Mutates and then restores the circuit in place."""
    from repro.core.incremental import IncrementalSTA

    rng = random.Random(seed)
    pools: dict = {}
    for cell in circuit.library:
        pools.setdefault(cell.inputs, []).append(cell)
    sessions = [
        IncrementalSTA(circuit, charlib, vectorize=True),
        IncrementalSTA(circuit, charlib, vectorize=False),
    ]
    inst_names = sorted(circuit.instances)
    original = {name: circuit.instances[name].cell for name in inst_names}
    checked = 0
    try:
        for _ in range(edits):
            inst_name = inst_names[rng.randrange(len(inst_names))]
            inst = circuit.instances[inst_name]
            pool = [c for c in pools.get(inst.cell.inputs, ())
                    if c.name != inst.cell.name]
            if not pool:
                continue
            new_cell = pool[rng.randrange(len(pool))]
            for session in sessions:
                session.replace_cell(inst_name, new_cell)
            scratch = TruePathSTA(circuit, charlib)
            timing = scratch.ec.tgraph.forward_arrivals(scratch.calc)
            want_required = scratch.calc.required_bounds()
            want_suffix = scratch.calc.remaining_bounds()
            want_paths = [
                _path_identity(p)
                for p in scratch.n_worst_paths(n_worst, max_paths=max_paths)
            ]
            for session in sessions:
                mode = ("vectorized" if session.calc.vectorize else "scalar")
                checked += 1
                if (session.arrivals() != timing.arrivals
                        or session.slews() != timing.slews):
                    return InvariantResult(
                        "incremental_identical", False, checked,
                        (f"{mode} forward timing diverged from scratch "
                         f"after swapping {inst_name} to {new_cell.name}"),
                    )
                if (session.required_bounds() != want_required
                        or session.suffix_bounds() != want_suffix):
                    return InvariantResult(
                        "incremental_identical", False, checked,
                        (f"{mode} backward bounds diverged from scratch "
                         f"after swapping {inst_name} to {new_cell.name}"),
                    )
                got = [
                    _path_identity(p)
                    for p in session.n_worst_paths(
                        n_worst, max_paths=max_paths
                    )
                ]
                if got != want_paths:
                    return InvariantResult(
                        "incremental_identical", False, checked,
                        (f"{mode} {n_worst}-worst report diverged from "
                         f"scratch after swapping {inst_name} to "
                         f"{new_cell.name}"),
                    )
    finally:
        for name, cell in original.items():
            if circuit.instances[name].cell is not cell:
                circuit.instances[name].cell = cell
        circuit._topo_cache = None
    return InvariantResult("incremental_identical", True, checked,
                           f"{edits} edits, seed {seed}")


_CHECKS = {
    "gba_bounds": check_gba_bounds,
    "structural_superset": check_structural_superset,
    "parallel_identical": check_parallel_identical,
    "pruning_identical": check_pruning_identical,
    "incremental_identical": check_incremental_identical,
}


def run_metamorphic(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    invariants: Optional[Sequence[str]] = None,
    jobs: int = 2,
    n_worst: int = 5,
    max_paths: Optional[int] = 5000,
) -> List[InvariantResult]:
    """Run the invariant catalog (or a named subset) on one circuit.

    The true-path enumeration is shared across invariants so a full run
    costs roughly one exhaustive search plus one parallel search.
    ``jobs=1`` exercises the shard/merge pipeline in-process (no pool),
    which is cheap enough for per-circuit fuzzing; ``jobs>=2`` also
    covers cross-process determinism.
    """
    selected = list(invariants) if invariants is not None else list(INVARIANTS)
    unknown = [name for name in selected if name not in _CHECKS]
    if unknown:
        raise ValueError(f"unknown invariants {unknown}; have {INVARIANTS}")
    paths = TruePathSTA(circuit, charlib).enumerate_paths(max_paths=max_paths)
    results: List[InvariantResult] = []
    for name in selected:
        if name == "gba_bounds":
            result = check_gba_bounds(circuit, charlib, paths=paths)
        elif name == "structural_superset":
            result = check_structural_superset(circuit, charlib, paths=paths)
        elif name == "parallel_identical":
            result = check_parallel_identical(
                circuit, charlib, jobs=jobs, max_paths=max_paths
            )
        elif name == "incremental_identical":
            result = check_incremental_identical(
                circuit, charlib, n_worst=n_worst, max_paths=max_paths
            )
        else:
            result = check_pruning_identical(
                circuit, charlib, n_worst=n_worst,
                exhaustive=paths if max_paths is None else None,
            )
        results.append(result)
    registry = obs_metrics.REGISTRY
    registry.counter("verify.circuits_checked").inc()
    failures = [r for r in results if not r.ok]
    registry.counter("verify.mismatches").inc(len(failures))
    log = _log.warning if failures else _log.info
    log("metamorphic.done", circuit=circuit.name,
        invariants=",".join(selected), failures=len(failures))
    return results
