"""Fault-injection harness for the resilience layer.

The supervisor's recovery paths (worker-crash retry, shard-timeout
teardown, missing-arc substitution, checkpoint/resume after an
interrupt) only run when something goes wrong, which on a healthy
machine is never.  This module makes them run deterministically:

* :class:`FaultPlan` -- a picklable fault schedule the supervisor ships
  to its workers.  A scheduled *crash* hard-kills the worker process
  with :func:`os._exit` (no unwinding, exactly like an OOM kill); a
  scheduled *hang* sleeps past the shard deadline; ``interrupt_after``
  raises the supervisor's own :class:`KeyboardInterrupt` after N
  completed shards, exercising the SIGINT unwind without a signal.
* :func:`corrupt_charlib` -- a seeded deep copy of a characterized
  library with a sample of timing arcs removed, modeling a truncated or
  mis-characterized library file.
* :func:`run_faults` -- the scenario driver behind
  ``repro verify --faults``: each scenario injects one fault class and
  asserts the recovered output is *identical* to a fault-free run (or,
  for corruption, that the run degrades per policy instead of dying).

Faults are injected only into worker processes (``in_worker=True``);
the serial fallback and ``jobs=1`` runs see the same plan but no
faults, which is precisely the recovery guarantee being tested.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.path import TimedPath
from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.resilience.errors import SearchInterrupted
from repro.verify.metamorphic import _path_identity

_log = get_logger("repro.verify")

#: Scenario names, in execution order.
FAULT_SCENARIOS = (
    "worker_crash",
    "shard_timeout",
    "corrupt_charlib",
    "interrupt_resume",
)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule, shipped to workers via the pool
    initializer (plain data only, so it pickles).

    Attempt numbers are zero-based: ``crash_attempts=(0,)`` crashes the
    first try of each listed origin and lets every retry succeed.
    """

    #: Origins whose worker dies hard (``os._exit``) on the listed
    #: attempts.
    crash_origins: Tuple[str, ...] = ()
    crash_attempts: Tuple[int, ...] = (0,)
    crash_exit_code: int = 17
    #: Origins whose worker sleeps ``hang_seconds`` on the listed
    #: attempts -- long enough to trip the supervisor's shard deadline.
    hang_origins: Tuple[str, ...] = ()
    hang_attempts: Tuple[int, ...] = (0,)
    hang_seconds: float = 30.0
    #: Raise KeyboardInterrupt in the *supervisor* once this many
    #: shards have completed (None = never) -- a deterministic SIGINT.
    interrupt_after: Optional[int] = None

    def before_shard(self, origin: str, attempt: int,
                     in_worker: bool) -> None:
        """Supervisor/worker hook: called immediately before a shard's
        search starts.  Faults fire only inside pool workers; the
        in-process paths (serial mode, serial fallback) are fault-free
        by construction."""
        if not in_worker:
            return
        if origin in self.crash_origins and attempt in self.crash_attempts:
            # Hard death: skips every finally/atexit, like a kill -9.
            os._exit(self.crash_exit_code)
        if origin in self.hang_origins and attempt in self.hang_attempts:
            time.sleep(self.hang_seconds)


def corrupt_charlib(
    charlib: CharacterizedLibrary,
    circuit: Optional[Circuit] = None,
    seed: int = 0,
    drop_fraction: float = 0.25,
    max_drops: int = 64,
) -> Tuple[CharacterizedLibrary, List[str]]:
    """A deep copy of ``charlib`` with a seeded sample of timing arcs
    removed.  When ``circuit`` is given, only arcs of cells the circuit
    instantiates are candidates (so the corruption is guaranteed to be
    in the analysis's way), and never the last arc of a cell (so the
    ``warn-substitute`` policy always has a donor arc).

    Returns the corrupted library and the sorted list of dropped arc
    keys.
    """
    data = charlib.to_dict()
    used = ({inst.cell.name for inst in circuit.instances.values()}
            if circuit is not None else None)
    by_cell: Dict[str, int] = {}
    for arc in data["arcs"]:
        by_cell[arc["cell"]] = by_cell.get(arc["cell"], 0) + 1
    candidates = [
        i for i, arc in enumerate(data["arcs"])
        if (used is None or arc["cell"] in used) and by_cell[arc["cell"]] > 1
    ]
    rng = random.Random(seed)
    count = min(len(candidates), max_drops,
                max(1, int(len(candidates) * drop_fraction)))
    # Re-check the donor guarantee as we draw: dropping several arcs of
    # one small cell could otherwise empty it.
    dropped_idx: List[int] = []
    for i in rng.sample(candidates, len(candidates)):
        if len(dropped_idx) >= count:
            break
        cell = data["arcs"][i]["cell"]
        if by_cell[cell] > 1:
            by_cell[cell] -= 1
            dropped_idx.append(i)
    dropped = sorted(
        "|".join((data["arcs"][i]["cell"], data["arcs"][i]["pin"],
                  data["arcs"][i]["vector_id"],
                  "r" if data["arcs"][i]["input_rising"] else "f",
                  "R" if data["arcs"][i]["output_rising"] else "F"))
        for i in dropped_idx
    )
    keep = set(range(len(data["arcs"]))) - set(dropped_idx)
    data["arcs"] = [arc for i, arc in enumerate(data["arcs"]) if i in keep]
    return CharacterizedLibrary.from_dict(data), dropped


@dataclass
class FaultScenarioResult:
    """Outcome of one injected-fault scenario."""

    name: str
    ok: bool
    detail: str = ""
    #: Recovery counters observed during the scenario (registry deltas).
    recovery: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        status = "recovered" if self.ok else "FAILED"
        tail = f" -- {self.detail}" if self.detail else ""
        events = ", ".join(f"{k}={v:g}" for k, v in sorted(
            self.recovery.items()) if v)
        if events:
            tail += f" [{events}]"
        return f"{self.name}: {status}{tail}"


@dataclass
class FaultReport:
    """All scenarios of one :func:`run_faults` invocation."""

    circuit: str
    seed: int
    scenarios: List[FaultScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)

    def describe(self) -> str:
        lines = [
            f"fault injection on {self.circuit} (seed {self.seed}): "
            + ("all scenarios recovered" if self.ok else "FAILURES")
        ]
        lines.extend("  " + s.describe() for s in self.scenarios)
        return "\n".join(lines)


#: Registry counters snapshotted around each scenario.
_RECOVERY_COUNTERS = (
    "resilience.worker_crashes",
    "resilience.shard_timeouts",
    "resilience.shard_retries",
    "resilience.serial_fallbacks",
    "resilience.degraded_origins",
    "resilience.resumed_shards",
    "delaycalc.arc_substitutions",
    "service.worker_crashes",
    "service.request_retries",
    "service.worker_timeouts",
    "service.preemptions",
    "service.queued",
    "service.overloaded",
    "service.deadline_drops",
    "service.snapshots_written",
    "service.snapshot_restores",
    "service.snapshot_discarded",
)


def _counter_values() -> Dict[str, float]:
    return {name: obs_metrics.REGISTRY.counter(name).as_value()
            for name in _RECOVERY_COUNTERS}


def _delta(before: Dict[str, float]) -> Dict[str, float]:
    after = _counter_values()
    return {name: after[name] - before[name] for name in before}


def run_faults(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    seed: int = 0,
    jobs: int = 2,
    max_paths: Optional[int] = None,
    scenarios: Optional[Sequence[str]] = None,
    shard_timeout: Optional[float] = None,
) -> FaultReport:
    """Run the fault-scenario catalog (or a named subset) on one
    circuit and certify every recovery.

    Each scenario's recovered output is compared path-by-path
    (bit-exact arrivals) against a fault-free reference run, so a
    recovery that silently dropped or re-ordered work fails the
    scenario even though no exception escaped.
    """
    from repro.perf import supervised_find_paths

    selected = list(scenarios) if scenarios is not None \
        else list(FAULT_SCENARIOS)
    unknown = [name for name in selected if name not in FAULT_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown fault scenarios {unknown}; have {FAULT_SCENARIOS}")
    jobs = max(jobs, 2)  # faults live in workers; a pool is required
    origins = list(circuit.inputs)
    report = FaultReport(circuit=circuit.name, seed=seed)
    rng = random.Random(seed)

    started = time.perf_counter()
    reference = supervised_find_paths(
        circuit, charlib, jobs=jobs, max_paths=max_paths)
    baseline_elapsed = time.perf_counter() - started
    reference_ids = [_path_identity(p) for p in reference.paths]
    if shard_timeout is None:
        # Generous headroom over the whole fault-free run, so only the
        # injected hang can ever trip the deadline.
        shard_timeout = max(5.0, 10.0 * baseline_elapsed)

    def compare(name: str, result, recovery: Dict[str, float],
                expect: Dict[str, str]) -> FaultScenarioResult:
        got = [_path_identity(p) for p in result.paths]
        if got != reference_ids:
            return FaultScenarioResult(
                name, False,
                f"recovered run differs from fault-free reference "
                f"({len(got)} vs {len(reference_ids)} paths)", recovery)
        for counter, why in expect.items():
            if not recovery.get(counter):
                return FaultScenarioResult(
                    name, False, f"no {counter} recorded ({why})", recovery)
        return FaultScenarioResult(
            name, True, f"{len(got)} paths identical", recovery)

    for name in selected:
        before = _counter_values()
        try:
            if name == "worker_crash":
                victims = tuple(rng.sample(origins,
                                           min(2, len(origins))))
                result = supervised_find_paths(
                    circuit, charlib, jobs=jobs, max_paths=max_paths,
                    fault_plan=FaultPlan(crash_origins=victims),
                )
                outcome = compare(name, result, _delta(before), {
                    "resilience.worker_crashes": "no crash detected",
                    "resilience.shard_retries": "no retry happened",
                })
            elif name == "shard_timeout":
                victim = (rng.choice(origins),)
                result = supervised_find_paths(
                    circuit, charlib, jobs=jobs, max_paths=max_paths,
                    shard_timeout=shard_timeout,
                    fault_plan=FaultPlan(
                        hang_origins=victim,
                        hang_seconds=4.0 * shard_timeout,
                    ),
                )
                outcome = compare(name, result, _delta(before), {
                    "resilience.shard_timeouts": "no deadline tripped",
                })
            elif name == "corrupt_charlib":
                outcome = _run_corrupt_charlib(
                    circuit, charlib, seed, jobs, max_paths, before)
            else:  # interrupt_resume
                outcome = _run_interrupt_resume(
                    circuit, charlib, jobs, max_paths, reference_ids,
                    before)
        except Exception as exc:  # a scenario must never abort the run
            outcome = FaultScenarioResult(
                name, False, f"escaped {type(exc).__name__}: {exc}",
                _delta(before))
        report.scenarios.append(outcome)
        _log.info("verify.fault_scenario", scenario=name, ok=outcome.ok,
                  detail=outcome.detail)

    registry = obs_metrics.REGISTRY
    registry.counter("verify.fault_scenarios").inc(len(report.scenarios))
    failures = sum(1 for s in report.scenarios if not s.ok)
    registry.counter("verify.fault_failures").inc(failures)
    registry.counter("verify.fault_recoveries").inc(
        len(report.scenarios) - failures)
    return report


#: Served-request scenario names, in execution order (the harness
#: behind ``repro verify --server-faults`` and
#: ``tests/test_service_faults.py``).
SERVER_FAULT_SCENARIOS = (
    "server_worker_crash",
    "server_degraded_bounds",
    "server_fleet_kill",
    "server_restart_mid_request",
    "server_snapshot_corruption",
    "server_queue_overflow",
)


def run_server_faults(
    circuit_spec: str = "iscas:c432@0.1",
    seed: int = 0,
    jobs: int = 2,
    max_paths: Optional[int] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> FaultReport:
    """Fault-inject the *analysis server's* request path.

    Boots an in-thread :class:`~repro.service.server.AnalysisServer`
    with fault injection enabled and certifies the served recovery
    story end to end:

    ``server_worker_crash``
        A request whose pool workers are hard-killed on their first
        attempt for two sampled origins must still return a report
        byte-identical to the fault-free served request, with the
        supervisor's crash/retry counters raised.

    ``server_degraded_bounds``
        A request whose worker dies on *every* attempt for one origin
        (serial fallback disabled) must complete degraded: a ``partial``
        frame precedes the result, the failed origin carries a GBA
        bound, and that bound soundly dominates every fault-free
        arrival from the origin.

    ``server_fleet_kill``
        On a ``fleet=2`` server, a request whose *fleet worker* is
        OOM-killed (``os._exit`` before any compute) on its first
        attempt must be retried onto a respawned worker and return a
        report byte-identical to the threaded reference, with the
        fleet's crash/retry counters raised.

    ``server_restart_mid_request``
        The daemon is hard-killed (no exit snapshot) while a request is
        in flight.  The client's retry loop must recover identical
        bytes from a restarted daemon on the same port, and the restart
        must re-warm the result memo from the last periodic snapshot
        (a deterministic repeat answers ``cached``).

    ``server_snapshot_corruption``
        A warm-state snapshot tampered with on disk (valid JSON, wrong
        digest) must be *discarded* on boot -- never trusted -- and the
        cold recompute must still be byte-identical.

    ``server_queue_overflow``
        With one inflight slot and a one-deep queue, a third concurrent
        request must be shed with a structured ``overloaded`` error
        carrying a positive ``retry_after_s``; the client's backoff
        retry must then complete, and no request may hang or be dropped
        without an error.
    """
    from repro.service import ServiceClient, ServiceConfig, start_in_thread
    from repro.service.requests import build_context, AnalysisRequest

    selected = list(scenarios) if scenarios is not None \
        else list(SERVER_FAULT_SCENARIOS)
    unknown = [name for name in selected
               if name not in SERVER_FAULT_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown server fault scenarios {unknown}; "
                         f"have {SERVER_FAULT_SCENARIOS}")
    jobs = max(jobs, 2)  # faults live in pool workers
    base_params = {"netlist": circuit_spec, "jobs": jobs,
                   "max_paths": max_paths}
    report = FaultReport(circuit=circuit_spec, seed=seed)
    handle = start_in_thread(ServiceConfig(
        allow_fault_injection=True, heartbeat_interval=0.25))
    try:
        with ServiceClient(handle.host, handle.port) as client:
            reference = client.call("analyze", dict(base_params))
            context = build_context(AnalysisRequest(netlist=circuit_spec))
            origins = list(context.circuit.inputs)
            rng = random.Random(seed)
            for name in selected:
                before = _counter_values()
                try:
                    if name == "server_worker_crash":
                        outcome = _server_worker_crash(
                            client, base_params, reference, rng, origins,
                            before)
                    elif name == "server_degraded_bounds":
                        outcome = _server_degraded_bounds(
                            client, base_params, context, rng, origins,
                            before)
                    elif name == "server_fleet_kill":
                        outcome = _server_fleet_kill(
                            base_params, reference, before)
                    elif name == "server_restart_mid_request":
                        outcome = _server_restart_mid_request(
                            base_params, reference, seed, before)
                    elif name == "server_snapshot_corruption":
                        outcome = _server_snapshot_corruption(
                            base_params, reference, before)
                    else:  # server_queue_overflow
                        outcome = _server_queue_overflow(
                            base_params, reference, origins, seed, before)
                except Exception as exc:  # a scenario must never abort
                    outcome = FaultScenarioResult(
                        name, False,
                        f"escaped {type(exc).__name__}: {exc}",
                        _delta(before))
                report.scenarios.append(outcome)
                _log.info("verify.server_fault_scenario", scenario=name,
                          ok=outcome.ok, detail=outcome.detail)
    finally:
        handle.stop()
    registry = obs_metrics.REGISTRY
    registry.counter("verify.fault_scenarios").inc(len(report.scenarios))
    failures = sum(1 for s in report.scenarios if not s.ok)
    registry.counter("verify.fault_failures").inc(failures)
    registry.counter("verify.fault_recoveries").inc(
        len(report.scenarios) - failures)
    return report


def _server_worker_crash(client, base_params, reference, rng, origins,
                         before) -> FaultScenarioResult:
    victims = rng.sample(origins, min(2, len(origins)))
    result = client.call("analyze", dict(
        base_params, fault={"crash_origins": victims,
                            "crash_attempts": [0]}))
    recovery = _delta(before)
    if result.get("cached"):
        return FaultScenarioResult(
            "server_worker_crash", False,
            "fault-injected request was served from the result memo",
            recovery)
    if result["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_worker_crash", False,
            "recovered served report differs from fault-free reference",
            recovery)
    for counter, why in (
        ("resilience.worker_crashes", "no crash detected"),
        ("resilience.shard_retries", "no retry happened"),
    ):
        if not recovery.get(counter):
            return FaultScenarioResult(
                "server_worker_crash", False,
                f"no {counter} recorded ({why})", recovery)
    return FaultScenarioResult(
        "server_worker_crash", True,
        f"report identical after {len(victims)} worker kills", recovery)


def _server_degraded_bounds(client, base_params, context, rng, origins,
                            before) -> FaultScenarioResult:
    from repro.perf import supervised_find_paths

    # Reference run first, so the victim can be drawn from origins that
    # actually produce paths -- otherwise the bound-dominance check
    # below would be vacuous (max over an empty set).
    fault_free = supervised_find_paths(
        context.circuit, context.charlib, jobs=1,
        max_paths=base_params.get("max_paths"))
    productive = sorted({p.nets[0] for p in fault_free.paths})
    victim = rng.choice(productive or origins)
    retries = int(base_params.get("shard_retries", 2))
    partials = []
    result = client.call(
        "analyze",
        dict(base_params, serial_fallback=False,
             fault={"crash_origins": [victim],
                    "crash_attempts": list(range(retries + 2))}),
        on_partial=partials.append,
    )
    recovery = _delta(before)
    if not result.get("degraded"):
        return FaultScenarioResult(
            "server_degraded_bounds", False,
            f"request did not degrade (origin {victim} should have "
            "failed every attempt)", recovery)
    if not partials:
        return FaultScenarioResult(
            "server_degraded_bounds", False,
            "no partial frame preceded the degraded result", recovery)
    failed = [o for o in result.get("completeness", ())
              if o["origin"] == victim and o["status"] != "complete"]
    if not failed:
        return FaultScenarioResult(
            "server_degraded_bounds", False,
            f"origin {victim} missing from the degraded completeness "
            "report", recovery)
    bound = failed[0].get("gba_bound")
    if bound is None:
        return FaultScenarioResult(
            "server_degraded_bounds", False,
            f"failed origin {victim} carries no GBA bound", recovery)
    # Soundness: the bound must dominate every arrival the fault-free
    # search finds from the failed origin.
    reachable = [p.worst_arrival for p in fault_free.paths
                 if p.nets[0] == victim]
    ceiling = max(reachable) if reachable else 0.0
    if bound < ceiling:
        return FaultScenarioResult(
            "server_degraded_bounds", False,
            f"GBA bound {bound * 1e12:.1f} ps below true arrival "
            f"{ceiling * 1e12:.1f} ps from {victim} (unsound)", recovery)
    return FaultScenarioResult(
        "server_degraded_bounds", True,
        f"origin {victim} degraded with sound bound "
        f"{bound * 1e12:.1f} ps >= {ceiling * 1e12:.1f} ps", recovery)


def _server_fleet_kill(base_params, reference, before) -> FaultScenarioResult:
    """A fleet worker OOM-killed mid-request must cost one attempt, not
    the daemon: the retry lands on a respawned worker and the served
    bytes match the threaded reference."""
    from repro.service import ServiceClient, ServiceConfig, start_in_thread

    handle = start_in_thread(ServiceConfig(
        allow_fault_injection=True, heartbeat_interval=0.25, fleet=2))
    try:
        with ServiceClient(handle.host, handle.port) as client:
            result = client.call("analyze", dict(
                base_params, fleet_fault={"crash_attempts": [0]}))
    finally:
        handle.stop()
    recovery = _delta(before)
    if result.get("cached"):
        return FaultScenarioResult(
            "server_fleet_kill", False,
            "fault-injected request was served from the result memo",
            recovery)
    if result["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_fleet_kill", False,
            "fleet-recovered report differs from the threaded reference",
            recovery)
    for counter, why in (
        ("service.worker_crashes", "no worker death detected"),
        ("service.request_retries", "no fleet retry happened"),
    ):
        if not recovery.get(counter):
            return FaultScenarioResult(
                "server_fleet_kill", False,
                f"no {counter} recorded ({why})", recovery)
    return FaultScenarioResult(
        "server_fleet_kill", True,
        "report identical after the fleet worker was hard-killed",
        recovery)


def _server_restart_mid_request(base_params, reference, seed,
                                before) -> FaultScenarioResult:
    """Hard-kill the daemon under an in-flight request, restart it on
    the same port from the last snapshot: the client's retry loop must
    recover identical bytes, and the restarted memo must answer a
    deterministic repeat ``cached``."""
    from repro.service import ServiceClient, ServiceConfig, start_in_thread

    shared = dict(allow_fault_injection=True, heartbeat_interval=0.25,
                  fleet=1, snapshot_interval_s=3600.0)
    with tempfile.TemporaryDirectory(prefix="repro-server-faults-") as tmp:
        snapshot = os.path.join(tmp, "warm.json")
        first = start_in_thread(ServiceConfig(snapshot_path=snapshot,
                                              **shared))
        try:
            with ServiceClient(first.host, first.port) as client:
                warm = client.call("analyze", dict(base_params))
            first.server.snapshot_now()
            if warm["report"] != reference["report"]:
                return FaultScenarioResult(
                    "server_restart_mid_request", False,
                    "fleet warm-up report differs from the reference",
                    _delta(before))
            host, port = first.host, first.port
            box = {}

            def _retrying_call():
                retry_client = ServiceClient(host, port, timeout=120.0)
                try:
                    # The hang keeps attempt 0 in flight long enough for
                    # the kill to land mid-request; the fault also makes
                    # the request non-memoizable, so the restarted
                    # server must actually recompute it.
                    box["result"] = retry_client.call_with_retry(
                        "analyze",
                        dict(base_params,
                             fleet_fault={"hang_attempts": [0],
                                          "hang_s": 4.0}),
                        retries=8, backoff_s=0.25,
                        rng=random.Random(seed))
                except Exception as exc:
                    box["error"] = exc
                finally:
                    retry_client.close()

            caller = threading.Thread(target=_retrying_call, daemon=True)
            caller.start()
            time.sleep(1.0)  # let the request reach the hung worker
        finally:
            first.kill()  # simulated crash: no exit snapshot
        second = start_in_thread(ServiceConfig(
            snapshot_path=snapshot, host=host, port=port, **shared))
        try:
            caller.join(90.0)
            with ServiceClient(second.host, second.port) as client:
                again = client.call("analyze", dict(base_params))
        finally:
            second.stop()
    recovery = _delta(before)
    if caller.is_alive():
        return FaultScenarioResult(
            "server_restart_mid_request", False,
            "client retry never completed (hung across the restart)",
            recovery)
    if "error" in box:
        exc = box["error"]
        return FaultScenarioResult(
            "server_restart_mid_request", False,
            f"client retry failed: {type(exc).__name__}: {exc}", recovery)
    if box["result"]["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_restart_mid_request", False,
            "retried report differs from the pre-crash reference",
            recovery)
    if not again.get("cached") or again["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_restart_mid_request", False,
            "restart did not answer the deterministic repeat from the "
            "re-warmed memo", recovery)
    if not recovery.get("service.snapshot_restores"):
        return FaultScenarioResult(
            "server_restart_mid_request", False,
            "restart restored no warm-state snapshot", recovery)
    return FaultScenarioResult(
        "server_restart_mid_request", True,
        "retry recovered identical bytes across a crash+restart; memo "
        "re-warmed from the snapshot", recovery)


def _server_snapshot_corruption(base_params, reference,
                                before) -> FaultScenarioResult:
    """A tampered snapshot (well-formed JSON, wrong digest) must be
    discarded on boot, never trusted, and the cold recompute must stay
    byte-identical."""
    from repro.service import ServiceClient, ServiceConfig, start_in_thread

    shared = dict(heartbeat_interval=0.25, snapshot_interval_s=3600.0)
    with tempfile.TemporaryDirectory(prefix="repro-server-faults-") as tmp:
        snapshot = os.path.join(tmp, "warm.json")
        first = start_in_thread(ServiceConfig(snapshot_path=snapshot,
                                              **shared))
        try:
            with ServiceClient(first.host, first.port) as client:
                client.call("analyze", dict(base_params))
        finally:
            first.drain()  # graceful exit writes the snapshot
        if not os.path.exists(snapshot):
            return FaultScenarioResult(
                "server_snapshot_corruption", False,
                "drain wrote no warm-state snapshot", _delta(before))
        # Tamper *inside* an otherwise well-formed document: the digest
        # guard, not the JSON parser, must catch this.
        with open(snapshot) as fh:
            document = json.load(fh)
        document["payload"]["memo"] = []
        with open(snapshot, "w") as fh:
            json.dump(document, fh)
        second = start_in_thread(ServiceConfig(snapshot_path=snapshot,
                                               **shared))
        try:
            with ServiceClient(second.host, second.port) as client:
                result = client.call("analyze", dict(base_params))
        finally:
            second.stop()
    recovery = _delta(before)
    if not recovery.get("service.snapshot_discarded"):
        return FaultScenarioResult(
            "server_snapshot_corruption", False,
            "tampered snapshot was not discarded", recovery)
    if recovery.get("service.snapshot_restores"):
        return FaultScenarioResult(
            "server_snapshot_corruption", False,
            "tampered snapshot was restored (trusted!)", recovery)
    if result.get("cached"):
        return FaultScenarioResult(
            "server_snapshot_corruption", False,
            "cold server served a memo hit after discarding its "
            "snapshot", recovery)
    if result["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_snapshot_corruption", False,
            "cold recompute differs from the reference", recovery)
    return FaultScenarioResult(
        "server_snapshot_corruption", True,
        "tampered snapshot discarded; cold recompute byte-identical",
        recovery)


def _await_admission(client, predicate, timeout: float = 10.0) -> bool:
    """Poll the stats op until the admission payload satisfies
    ``predicate`` (stats bypasses admission, so this never queues)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.call("stats")
        if predicate(stats.get("admission") or {}):
            return True
        time.sleep(0.05)
    return False


def _server_queue_overflow(base_params, reference, origins, seed,
                           before) -> FaultScenarioResult:
    """With one slot and a one-deep queue, the third concurrent request
    must be shed with ``overloaded`` + ``retry_after_s``; the backoff
    retry completes, and nothing hangs or vanishes without an error."""
    from repro.service import (
        ServiceClient,
        ServiceConfig,
        ServiceError,
        start_in_thread,
    )

    handle = start_in_thread(ServiceConfig(
        allow_fault_injection=True, heartbeat_interval=0.25,
        max_concurrent=1, max_inflight=1, max_queue=1))
    slow_box, queued_box = {}, {}
    threads = []

    def _call_into(box, params):
        client = ServiceClient(handle.host, handle.port, timeout=120.0)
        try:
            box["result"] = client.call("analyze", params)
        except Exception as exc:
            box["error"] = exc
        finally:
            client.close()

    slow_params = dict(base_params, fault={
        "hang_origins": [origins[0]], "hang_attempts": [0],
        "hang_seconds": 3.0})
    try:
        with ServiceClient(handle.host, handle.port) as probe:
            threads.append(threading.Thread(
                target=_call_into, args=(slow_box, slow_params),
                daemon=True))
            threads[-1].start()
            if not _await_admission(probe, lambda a: a.get("inflight")):
                return FaultScenarioResult(
                    "server_queue_overflow", False,
                    "slow request never occupied the inflight slot",
                    _delta(before))
            threads.append(threading.Thread(
                target=_call_into, args=(queued_box, dict(base_params)),
                daemon=True))
            threads[-1].start()
            if not _await_admission(probe, lambda a: a.get("queued")):
                return FaultScenarioResult(
                    "server_queue_overflow", False,
                    "second request never queued", _delta(before))
            try:
                probe.call("analyze", dict(base_params))
            except ServiceError as exc:
                shed = exc
            else:
                return FaultScenarioResult(
                    "server_queue_overflow", False,
                    "third concurrent request was not shed",
                    _delta(before))
            if shed.code != "overloaded":
                return FaultScenarioResult(
                    "server_queue_overflow", False,
                    f"shed with code {shed.code!r}, not 'overloaded'",
                    _delta(before))
            if not shed.retry_after_s or shed.retry_after_s <= 0:
                return FaultScenarioResult(
                    "server_queue_overflow", False,
                    "overloaded error carries no positive retry_after_s",
                    _delta(before))
            retried = probe.call_with_retry(
                "analyze", dict(base_params), retries=8, backoff_s=0.25,
                rng=random.Random(seed))
            for thread in threads:
                thread.join(60.0)
    finally:
        handle.stop()
    recovery = _delta(before)
    if any(thread.is_alive() for thread in threads):
        return FaultScenarioResult(
            "server_queue_overflow", False,
            "a concurrent request hung past the load burst", recovery)
    for box, label in ((slow_box, "slow"), (queued_box, "queued")):
        if "error" in box:
            exc = box["error"]
            return FaultScenarioResult(
                "server_queue_overflow", False,
                f"{label} request failed: {type(exc).__name__}: {exc}",
                recovery)
        if box["result"]["report"] != reference["report"]:
            return FaultScenarioResult(
                "server_queue_overflow", False,
                f"{label} request's report differs from the reference",
                recovery)
    if retried["report"] != reference["report"]:
        return FaultScenarioResult(
            "server_queue_overflow", False,
            "shed request's retry returned a different report", recovery)
    for counter, why in (
        ("service.overloaded", "no shed recorded"),
        ("service.queued", "nothing ever waited in the queue"),
    ):
        if not recovery.get(counter):
            return FaultScenarioResult(
                "server_queue_overflow", False,
                f"no {counter} recorded ({why})", recovery)
    return FaultScenarioResult(
        "server_queue_overflow", True,
        f"third request shed with retry_after_s={shed.retry_after_s:g}s; "
        "backoff retry completed identically", recovery)


def _run_corrupt_charlib(circuit, charlib, seed, jobs, max_paths,
                         before) -> FaultScenarioResult:
    """Corruption is a *data* fault, not an infrastructure one: under
    the default ``error`` policy the run must abort with the taxonomy
    error; under ``warn-substitute`` it must complete with the
    substitution counter raised, identically in serial and parallel."""
    from repro.core.delaycalc import MissingArcsError
    from repro.perf import supervised_find_paths

    corrupted, dropped = corrupt_charlib(charlib, circuit, seed=seed)
    if not dropped:
        return FaultScenarioResult(
            "corrupt_charlib", True, "no droppable arcs; skipped")
    try:
        supervised_find_paths(circuit, corrupted, jobs=1,
                              max_paths=max_paths)
    except MissingArcsError:
        pass  # the policy decision the `error` default promises
    else:
        return FaultScenarioResult(
            "corrupt_charlib", False,
            f"{len(dropped)} arcs dropped but policy `error` "
            "did not raise", _delta(before))
    serial = supervised_find_paths(
        circuit, corrupted, jobs=1, max_paths=max_paths,
        missing_arc_policy="warn-substitute")
    parallel = supervised_find_paths(
        circuit, corrupted, jobs=jobs, max_paths=max_paths,
        missing_arc_policy="warn-substitute")
    recovery = _delta(before)
    serial_ids = [_path_identity(p) for p in serial.paths]
    parallel_ids = [_path_identity(p) for p in parallel.paths]
    if serial_ids != parallel_ids:
        return FaultScenarioResult(
            "corrupt_charlib", False,
            "warn-substitute serial and parallel runs differ", recovery)
    if not recovery.get("delaycalc.arc_substitutions"):
        return FaultScenarioResult(
            "corrupt_charlib", False,
            f"{len(dropped)} arcs dropped but no substitution recorded",
            recovery)
    return FaultScenarioResult(
        "corrupt_charlib", True,
        f"{len(dropped)} arcs dropped, run degraded per policy", recovery)


def _run_interrupt_resume(circuit, charlib, jobs, max_paths,
                          reference_ids, before) -> FaultScenarioResult:
    """Interrupt a checkpointed run mid-flight, then resume from the
    snapshot: the union must be the exact fault-free path set and the
    resumed run must adopt at least one shard without re-searching."""
    from repro.perf import supervised_find_paths

    interrupt_after = max(1, len(circuit.inputs) // 2)
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        checkpoint = os.path.join(tmp, "search.ckpt.json")
        try:
            supervised_find_paths(
                circuit, charlib, jobs=jobs, max_paths=max_paths,
                checkpoint=checkpoint,
                fault_plan=FaultPlan(interrupt_after=interrupt_after),
            )
        except SearchInterrupted as exc:
            partial = exc.partial
        else:
            return FaultScenarioResult(
                "interrupt_resume", False,
                "interrupt did not fire", _delta(before))
        if not os.path.exists(checkpoint):
            return FaultScenarioResult(
                "interrupt_resume", False,
                "no checkpoint written before interrupt", _delta(before))
        resumed = supervised_find_paths(
            circuit, charlib, jobs=jobs, max_paths=max_paths,
            resume=checkpoint,
        )
    recovery = _delta(before)
    got = [_path_identity(p) for p in resumed.paths]
    if got != reference_ids:
        return FaultScenarioResult(
            "interrupt_resume", False,
            f"resumed run differs from fault-free reference "
            f"({len(got)} vs {len(reference_ids)} paths)", recovery)
    if resumed.resumed_shards < 1:
        return FaultScenarioResult(
            "interrupt_resume", False,
            "resume adopted no checkpointed shard", recovery)
    return FaultScenarioResult(
        "interrupt_resume", True,
        f"interrupted after {len(partial.paths)} partial paths, resume "
        f"adopted {resumed.resumed_shards} shard(s), "
        f"{len(got)} paths identical", recovery)
