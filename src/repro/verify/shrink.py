"""Counterexample minimization for failing verification circuits.

Fuzzing finds failures on circuits of tens of gates; debugging wants
the two-gate core.  :func:`shrink_circuit` greedily applies two
structure-preserving reductions while a caller-supplied predicate keeps
reporting failure:

* **cone extraction** -- restrict the circuit to a single output's
  transitive fanin (tried smallest cone first);
* **gate bypass** -- delete one gate by rewiring everything that read
  its output to read one of its input nets instead, then drop whatever
  logic that leaves dead.

Both reductions only remove or reconnect existing structure, so the
shrunk circuit is always a sub-network of the original built from the
same library cells -- exactly what a pinned regression seed should be.
The predicate re-runs after every candidate reduction, which keeps the
shrinker correct for *any* failure mode (oracle mismatch, invariant
violation, crash) at the cost of one verification run per attempt;
fine at fuzz sizes.  Accepted reductions increment the
``verify.shrink_steps`` counter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger

_log = get_logger("repro.verify")

#: Predicate deciding whether a candidate still exhibits the failure.
FailingPredicate = Callable[[Circuit], bool]


def _resolve(net: str, substitution: Dict[str, str]) -> str:
    """Follow gate-bypass substitutions to the surviving source net.

    Substitutions always map a gate's output net to one of its input
    nets, which is strictly upstream in the DAG, so chains terminate.
    """
    while net in substitution:
        net = substitution[net]
    return net


def _rebuild(
    circuit: Circuit,
    outputs: Sequence[str],
    bypassed: Dict[str, str],
) -> Optional[Circuit]:
    """A copy of ``circuit`` restricted to ``outputs`` with the given
    gates bypassed (instance name -> replacement input net), dead logic
    removed.  Returns None when the reduction degenerates (an output
    collapses onto a primary input, or no input remains live)."""
    substitution = {
        circuit.instances[g].output_net: net for g, net in bypassed.items()
    }
    resolved = []
    for out in outputs:
        target = _resolve(out, substitution)
        if target not in resolved:
            resolved.append(target)
    if any(circuit.nets[net].driver is None for net in resolved):
        return None  # output collapsed onto a primary input
    live_nets = set()
    live_gates = set()
    stack = list(resolved)
    while stack:
        net = stack.pop()
        if net in live_nets:
            continue
        live_nets.add(net)
        driver = circuit.nets[net].driver
        if driver is None:
            continue
        live_gates.add(driver.name)
        for pin_net in driver.pins.values():
            stack.append(_resolve(pin_net, substitution))
    new = Circuit(circuit.name, library=circuit.library)
    kept_inputs = [n for n in circuit.inputs if n in live_nets]
    if not kept_inputs:
        return None
    for name in kept_inputs:
        new.add_input(name)
    for inst in circuit.topological():
        if inst.name not in live_gates:
            continue
        new.add_gate(
            inst.cell,
            inst.output_net,
            {p: _resolve(n, substitution) for p, n in inst.pins.items()},
            name=inst.name,
        )
    for net in resolved:
        new.add_output(net)
    new.check()
    return new


def _cone_sizes(circuit: Circuit) -> Dict[str, int]:
    """Output net -> number of gates in its transitive fanin."""
    sizes: Dict[str, int] = {}
    for out in circuit.outputs:
        seen = set()
        gates = 0
        stack = [out]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            driver = circuit.nets[net].driver
            if driver is None:
                continue
            gates += 1
            stack.extend(driver.pins.values())
        sizes[out] = gates
    return sizes


def shrink_circuit(
    circuit: Circuit,
    failing: FailingPredicate,
    max_attempts: int = 2000,
) -> Tuple[Circuit, int]:
    """Minimize ``circuit`` while ``failing`` stays true.

    Returns ``(shrunk, accepted_steps)``.  ``failing(circuit)`` must be
    true on entry (raises ValueError otherwise); it is then re-evaluated
    on every candidate, so a flaky predicate yields a larger -- never an
    invalid -- counterexample.  ``max_attempts`` bounds total predicate
    evaluations as a runaway stop, not a tuning knob.
    """
    if not failing(circuit):
        raise ValueError(
            f"shrink_circuit: {circuit.name} does not fail the predicate"
        )
    counter = obs_metrics.REGISTRY.counter("verify.shrink_steps")
    current = circuit
    steps = 0
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        # Cone extraction: smallest single-output cone that still fails.
        if len(current.outputs) > 1:
            sizes = _cone_sizes(current)
            for out in sorted(current.outputs, key=lambda o: sizes[o]):
                attempts += 1
                candidate = _rebuild(current, [out], {})
                if candidate is not None and failing(candidate):
                    current = candidate
                    steps += 1
                    counter.inc()
                    progress = True
                    break
        # Gate bypass: drop one gate, restart the scan on success (the
        # instance set changed under us).
        bypassed_one = True
        while bypassed_one and attempts < max_attempts:
            bypassed_one = False
            for inst in current.topological():
                for pin in inst.cell.inputs:
                    attempts += 1
                    candidate = _rebuild(
                        current, current.outputs, {inst.name: inst.pins[pin]}
                    )
                    if candidate is not None and failing(candidate):
                        current = candidate
                        steps += 1
                        counter.inc()
                        progress = True
                        bypassed_one = True
                        break
                    if attempts >= max_attempts:
                        break
                if bypassed_one or attempts >= max_attempts:
                    break
    if steps:
        _log.info(
            "shrink.done", circuit=circuit.name, steps=steps,
            gates_before=circuit.num_gates, gates_after=current.num_gates,
            inputs_before=len(circuit.inputs), inputs_after=len(current.inputs),
        )
    return current, steps
