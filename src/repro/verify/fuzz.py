"""Seeded random-netlist fuzzing of the verification checks.

Each iteration draws a fresh mapped DAG from
:func:`repro.netlist.generate.random_dag` + :func:`techmap` (sizes kept
in the exhaustive-oracle range so every circuit gets the strongest
check), runs the oracle and the metamorphic invariant catalog, and on
any failure shrinks the circuit to a minimal counterexample via
:func:`repro.verify.shrink.shrink_circuit`.

Everything derives from one integer seed: the i-th iteration of
``run_fuzz(n=100, seed=S)`` builds the same circuit on every machine,
so a failure report is reproducible from ``(S, i)`` alone -- and the
shrunk counterexample ships as structural Verilog ready to pin under
``tests/seeds/`` (see docs/TESTING.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, TextIO, Tuple, Union

from repro.charlib.store import CharacterizedLibrary
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_dag
from repro.netlist.techmap import techmap
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.verify.metamorphic import run_metamorphic
from repro.verify.oracle import run_oracle
from repro.verify.shrink import shrink_circuit

_log = get_logger("repro.verify")

#: Default generator size ranges (inclusive).  Inputs stay small enough
#: that every fuzzed circuit is exhaustively sweepable.
INPUT_RANGE = (4, 8)
GATE_RANGE = (10, 40)


@dataclass
class FuzzFailure:
    """One fuzz iteration that failed a check, with its shrunk core."""

    index: int
    seed: int
    kind: str  # "oracle" | "metamorphic" | "crash"
    detail: str
    circuit: Circuit  # the shrunk counterexample
    original_gates: int
    shrunk_gates: int
    shrink_steps: int

    @property
    def verilog(self) -> str:
        """Pinnable structural-Verilog form of the counterexample."""
        return write_verilog(self.circuit)

    def describe(self) -> str:
        return (
            f"#{self.index} [{self.kind}] {self.circuit.name}: {self.detail} "
            f"(shrunk {self.original_gates} -> {self.shrunk_gates} gates "
            f"in {self.shrink_steps} steps)"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzz batch."""

    seed: int
    requested: int
    checked: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return f"fuzz seed={self.seed}: {status} ({self.checked} circuits)"


def check_circuit(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    metamorphic: bool = True,
    jobs: int = 1,
    max_oracle_inputs: int = 12,
) -> Optional[Tuple[str, str]]:
    """Run every applicable check; return ``(kind, detail)`` on the
    first failure, None when the circuit passes.  Crashes inside a
    check are themselves failures (kind ``crash``) -- the fuzzer's job
    is to find them, not to die on them."""
    try:
        if len(circuit.inputs) <= max_oracle_inputs:
            report = run_oracle(circuit, charlib, max_inputs=max_oracle_inputs)
            if not report.ok:
                return (
                    "oracle",
                    "; ".join(m.describe() for m in report.mismatches[:3]),
                )
        if metamorphic:
            results = run_metamorphic(circuit, charlib, jobs=jobs)
            bad = [r for r in results if not r.ok]
            if bad:
                return ("metamorphic", "; ".join(r.describe() for r in bad))
    except Exception as exc:  # noqa: BLE001 -- crashes are findings
        return ("crash", f"{type(exc).__name__}: {exc}")
    return None


def generate_case(
    seed: int,
    index: int,
    input_range: Tuple[int, int] = INPUT_RANGE,
    gate_range: Tuple[int, int] = GATE_RANGE,
) -> Circuit:
    """The deterministic circuit for fuzz iteration ``(seed, index)``.

    A private RNG keyed on both numbers picks the size and the DAG
    sub-seed, so iterations are independent and any single one can be
    regenerated without replaying the batch.
    """
    rng = random.Random(seed * 1_000_003 + index)
    n_inputs = rng.randint(*input_range)
    n_gates = rng.randint(*gate_range)
    raw = random_dag(
        f"fuzz_s{seed}_i{index}",
        n_inputs=n_inputs,
        n_gates=n_gates,
        seed=rng.randrange(1 << 32),
    )
    return techmap(raw)


def run_fuzz(
    charlib: CharacterizedLibrary,
    n: int,
    seed: int = 0,
    metamorphic: bool = True,
    jobs: int = 1,
    shrink: bool = True,
    input_range: Tuple[int, int] = INPUT_RANGE,
    gate_range: Tuple[int, int] = GATE_RANGE,
) -> FuzzReport:
    """Fuzz ``n`` random mapped circuits; shrink and record failures.

    ``jobs`` feeds the metamorphic ``parallel_identical`` invariant:
    the default 1 exercises the shard/merge pipeline in-process (cheap
    enough per circuit); pass >= 2 to also cover the process pool.
    """
    report = FuzzReport(seed=seed, requested=n)
    registry = obs_metrics.REGISTRY
    for index in range(n):
        circuit = generate_case(
            seed, index, input_range=input_range, gate_range=gate_range
        )
        failure = check_circuit(
            circuit, charlib, metamorphic=metamorphic, jobs=jobs
        )
        report.checked += 1
        if failure is None:
            continue
        kind, detail = failure
        registry.counter("verify.fuzz_failures").inc()
        _log.warning("fuzz.failure", index=index, seed=seed,
                     circuit=circuit.name, kind=kind, detail=detail)
        shrunk, steps = circuit, 0
        if shrink:
            shrunk, steps = shrink_circuit(
                circuit,
                lambda c: check_circuit(
                    c, charlib, metamorphic=metamorphic, jobs=jobs
                ) is not None,
            )
            refreshed = check_circuit(
                shrunk, charlib, metamorphic=metamorphic, jobs=jobs
            )
            if refreshed is not None:
                kind, detail = refreshed
        report.failures.append(FuzzFailure(
            index=index,
            seed=seed,
            kind=kind,
            detail=detail,
            circuit=shrunk,
            original_gates=circuit.num_gates,
            shrunk_gates=shrunk.num_gates,
            shrink_steps=steps,
        ))
    log = _log.warning if report.failures else _log.info
    log("fuzz.done", seed=seed, checked=report.checked,
        failures=len(report.failures))
    return report


def load_seed(source: Union[str, TextIO], charlib=None) -> Circuit:
    """Load a pinned counterexample (structural Verilog, as written by
    :attr:`FuzzFailure.verilog`) for regression replay."""
    return parse_verilog(source)
