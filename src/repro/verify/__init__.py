"""Differential verification of the true-path engines.

Three certification tiers, each independent of the machinery it checks
(the correctness analogue of the SPICE-golden evaluation flow):

* :mod:`repro.verify.oracle` -- an **exhaustive differential oracle**
  for circuits small enough to sweep: every input vector x toggled
  input x direction goes through :mod:`repro.netlist.timingsim` event
  simulation, and the derived per-endpoint ground truth (worst settle
  time, sensitized course, stimulus vector) is cross-checked against
  the :class:`~repro.core.pathfinder.PathFinder` results.
* :mod:`repro.verify.metamorphic` -- **cross-engine invariants** that
  hold on arbitrary circuits where exhaustion is infeasible: GBA
  arrivals bound every true path, structural paths are a superset of
  sensitizable paths, parallel sharding is output-identical to serial,
  and N-worst pruning is output-identical to exhaustive search.
* :mod:`repro.verify.fuzz` -- a **seeded random-netlist fuzz driver**
  that generates mapped DAGs, runs the above checks, shrinks any
  failing circuit to a minimal counterexample
  (:mod:`repro.verify.shrink`) and serializes it for pinning under
  ``tests/seeds/``.
* :mod:`repro.verify.faults` -- a **fault-injection harness** for the
  resilience layer: deterministic worker crashes, shard hangs,
  corrupted library entries and mid-run interrupts, each asserted to
  recover to output identical to a fault-free run (the CLI front end
  is ``repro.cli verify --faults``).

Progress surfaces through :mod:`repro.obs` as ``verify.*`` metrics:
``verify.circuits_checked``, ``verify.mismatches``,
``verify.shrink_steps``, ``verify.fault_scenarios``,
``verify.fault_failures``.  The CLI front end is ``repro.cli verify``.
"""

from repro.verify.faults import (
    FAULT_SCENARIOS,
    SERVER_FAULT_SCENARIOS,
    FaultPlan,
    FaultReport,
    FaultScenarioResult,
    corrupt_charlib,
    run_faults,
    run_server_faults,
)
from repro.verify.fuzz import FuzzFailure, FuzzReport, load_seed, run_fuzz
from repro.verify.metamorphic import (
    INVARIANTS,
    InvariantResult,
    run_metamorphic,
)
from repro.verify.oracle import (
    EndpointTruth,
    OracleMismatch,
    OracleReport,
    run_oracle,
)
from repro.verify.shrink import shrink_circuit

__all__ = [
    "EndpointTruth",
    "FAULT_SCENARIOS",
    "FaultPlan",
    "FaultReport",
    "FaultScenarioResult",
    "FuzzFailure",
    "FuzzReport",
    "INVARIANTS",
    "InvariantResult",
    "OracleMismatch",
    "OracleReport",
    "corrupt_charlib",
    "load_seed",
    "SERVER_FAULT_SCENARIOS",
    "run_faults",
    "run_fuzz",
    "run_server_faults",
    "run_metamorphic",
    "run_oracle",
    "shrink_circuit",
]
