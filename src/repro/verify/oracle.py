"""Exhaustive differential oracle for small circuits.

For a combinational circuit with ``n`` primary inputs the oracle runs
``n * 2**n`` event simulations -- every full input vector, every toggled
input, both directions -- and derives per primary output the *true*
worst sensitized delay, the stimulus that achieves it, and (when the
propagation is glitch-free) the exact gate sequence it took.  That
ground truth comes from :class:`repro.netlist.timingsim.TimingSimulator`
-- the same characterized arcs as the path search, but a completely
different mechanism (event propagation vs backtracking path search) --
so agreement certifies the optimized pathfinder end to end: slew-domain
pruning bounds, arc caches, justify-skip, backward required-time
pruning and all.

Soundness of the comparison requires one distinction.  A *clean*
transition propagates through exactly one gate sequence with every
side input silent: such a traversal is statically sensitized by the
settled side values, so the pathfinder **must** report its course and
at least its delay.  A *glitchy* transition (reconvergent multi-input
switching inside the cone) can settle an endpoint through the joint
action of several paths, which single-path static sensitization --
the paper's criterion, shared by every engine here -- makes no claim
about; those transitions inform the report but cannot hard-fail it.

Cross-checks per circuit:

``endpoint``
    Every endpoint with a clean settled transition has at least one
    pathfinder true path; every endpoint the pathfinder reports is
    dynamically settled by some stimulus.
``delay``
    Per endpoint, the pathfinder's worst arrival is at least the worst
    *clean* settle time (within the cross-mechanism tolerance); the
    opposite direction is enforced by the vector replay below.
``vector``
    Replaying the worst reported path's sensitization vector makes the
    endpoint toggle at (close to) the reported arrival -- so the
    reported delay also *materializes* and cannot exceed ground truth.
``course``
    The worst clean transition's causal gate sequence appears among
    the pathfinder's true-path courses for that endpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.charlib.store import CharacterizedLibrary
from repro.core.path import TimedPath
from repro.core.sta import TruePathSTA
from repro.netlist.circuit import Circuit
from repro.netlist.timingsim import SimulationResult, TimingSimulator
from repro.obs import metrics as obs_metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span

_log = get_logger("repro.verify")

#: Cross-mechanism tolerance on delay comparisons; matches the
#: STA-vs-simulation tolerance the timing-simulator tests pin.
DEFAULT_REL_TOL = 0.15

#: Refuse to sweep circuits beyond this many primary inputs (the sweep
#: is n * 2**n simulations).
DEFAULT_MAX_INPUTS = 18


@dataclass
class EndpointTruth:
    """Ground truth for one primary output, from the exhaustive sweep."""

    endpoint: str
    #: Worst settle time over every settled transition (clean or not).
    delay: float
    #: Toggled primary input / direction / full post-transition input
    #: vector of that worst transition.
    origin: str
    rising: bool
    vector: Dict[str, int]
    #: Worst settle time over *clean* transitions only (None when every
    #: settled transition was glitchy).
    clean_delay: Optional[float] = None
    #: Causal net sequence of the worst clean transition.
    course: Optional[Tuple[str, ...]] = None
    #: How many transitions settled this endpoint at all.
    sensitizing_transitions: int = 0


@dataclass
class OracleMismatch:
    """One disagreement between the oracle and the pathfinder."""

    kind: str  # "endpoint" | "delay" | "vector" | "course"
    endpoint: str
    detail: str
    oracle_delay: Optional[float] = None
    finder_delay: Optional[float] = None

    def describe(self) -> str:
        parts = [f"[{self.kind}] {self.endpoint}: {self.detail}"]
        if self.oracle_delay is not None:
            parts.append(f"oracle={self.oracle_delay * 1e12:.1f}ps")
        if self.finder_delay is not None:
            parts.append(f"finder={self.finder_delay * 1e12:.1f}ps")
        return " ".join(parts)


@dataclass
class OracleReport:
    """Outcome of one exhaustive differential run."""

    circuit: str
    inputs: int
    transitions: int
    paths: int
    truths: Dict[str, EndpointTruth] = field(default_factory=dict)
    finder_worst: Dict[str, TimedPath] = field(default_factory=dict)
    mismatches: List[OracleMismatch] = field(default_factory=list)
    #: Endpoints whose clean-course cross-check actually fired.
    courses_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"
        return (
            f"oracle {self.circuit}: {status} "
            f"({self.inputs} inputs, {self.transitions} transitions, "
            f"{self.paths} true paths, {len(self.truths)} live endpoints, "
            f"{self.courses_checked} course checks)"
        )


def clean_course(
    circuit: Circuit, result: SimulationResult, endpoint: str
) -> Optional[Tuple[str, ...]]:
    """Causal net course of the endpoint's final event, or None unless
    the propagation was provably a single statically-sensitized
    traversal: every chain net changed exactly once, each chain net
    feeds exactly one pin of the gate it propagates through, and every
    side input of every chain gate never changed (so each gate
    evaluated its arc against settled side values)."""
    chain = result.causal_chain(endpoint)
    if len(chain) < 2:
        return None
    names = [name for name, _event in chain]
    for name in names:
        if len(result.events.get(name, ())) != 1:
            return None
    for hop in range(1, len(names)):
        driver = circuit.nets[names[hop]].driver
        if driver is None:
            return None
        # The causing net must feed exactly one pin: techmap can tie one
        # net to several pins of a cell (AO21 A=x, C=x), and toggling it
        # then switches multiple pins at once -- dynamically valid, but
        # outside the single-input-switching model static sensitization
        # reasons about, so no claim on the pathfinder follows.
        if sum(1 for n in driver.pins.values() if n == names[hop - 1]) != 1:
            return None
        for net_name in driver.pins.values():
            if net_name != names[hop - 1] and result.events.get(net_name):
                return None
    return tuple(names)


def _settled(result: SimulationResult, net: str) -> bool:
    """Whether the net's final value differs from its pre-transition
    value (every recorded event is a real change, so an odd count means
    a settled change rather than a glitch)."""
    return len(result.events.get(net, ())) % 2 == 1


def run_oracle(
    circuit: Circuit,
    charlib: CharacterizedLibrary,
    max_inputs: int = DEFAULT_MAX_INPUTS,
    rel_tol: float = DEFAULT_REL_TOL,
    complete: bool = True,
    horizon: float = 1e-7,
) -> OracleReport:
    """Exhaustively certify the pathfinder against event simulation.

    ``complete=True`` (default) runs the pathfinder's provably-complete
    justification mode, so an endpoint/course disagreement is a genuine
    bug on one side rather than the paper-mode's documented
    early-commitment optimism.  Raises :class:`ValueError` when the
    circuit has more than ``max_inputs`` primary inputs.
    """
    n = len(circuit.inputs)
    if n > max_inputs:
        raise ValueError(
            f"{circuit.name}: {n} primary inputs exceeds the oracle sweep "
            f"limit of {max_inputs} ({n} * 2**{n} simulations)"
        )
    registry = obs_metrics.REGISTRY
    report = OracleReport(
        circuit=circuit.name, inputs=n, transitions=n * (1 << n), paths=0
    )

    sim = TimingSimulator(circuit, charlib)
    truths: Dict[str, EndpointTruth] = {}
    with span("verify.oracle_sweep"):
        for bits in itertools.product((0, 1), repeat=n):
            vector = dict(zip(circuit.inputs, bits))
            for origin in circuit.inputs:
                rising = vector[origin] == 1
                result = sim.simulate_transition(
                    vector, origin, rising, horizon=horizon
                )
                for endpoint in circuit.outputs:
                    if not _settled(result, endpoint):
                        continue
                    settle = result.settled_time(endpoint)
                    truth = truths.get(endpoint)
                    if truth is None:
                        truth = truths[endpoint] = EndpointTruth(
                            endpoint=endpoint, delay=settle, origin=origin,
                            rising=rising, vector=dict(vector),
                        )
                    truth.sensitizing_transitions += 1
                    if settle > truth.delay:
                        truth.delay = settle
                        truth.origin = origin
                        truth.rising = rising
                        truth.vector = dict(vector)
                    if truth.clean_delay is None or settle > truth.clean_delay:
                        course = clean_course(circuit, result, endpoint)
                        if course is not None:
                            truth.clean_delay = settle
                            truth.course = course
    report.truths = truths

    with span("verify.oracle_finder"):
        sta = TruePathSTA(circuit, charlib)
        paths = sta.enumerate_paths(complete=complete)
    report.paths = len(paths)
    finder_courses: Dict[str, Set[Tuple[str, ...]]] = {}
    for path in paths:
        endpoint = path.nets[-1]
        finder_courses.setdefault(endpoint, set()).add(path.course)
        best = report.finder_worst.get(endpoint)
        if best is None or path.worst_arrival > best.worst_arrival:
            report.finder_worst[endpoint] = path

    _cross_check(report, finder_courses, sim, circuit, rel_tol)

    registry.counter("verify.circuits_checked").inc()
    registry.counter("verify.mismatches").inc(len(report.mismatches))
    log = _log.warning if report.mismatches else _log.info
    log("oracle.done", circuit=circuit.name, inputs=n,
        transitions=report.transitions, paths=report.paths,
        mismatches=len(report.mismatches))
    return report


def _cross_check(
    report: OracleReport,
    finder_courses: Dict[str, Set[Tuple[str, ...]]],
    sim: TimingSimulator,
    circuit: Circuit,
    rel_tol: float,
) -> None:
    finder_live = set(report.finder_worst)
    for endpoint, truth in sorted(report.truths.items()):
        if truth.clean_delay is not None and endpoint not in finder_live:
            report.mismatches.append(OracleMismatch(
                kind="endpoint", endpoint=endpoint,
                detail=(f"cleanly sensitizable (toggle {truth.origin} "
                        f"{'rise' if truth.rising else 'fall'}, course "
                        f"{' -> '.join(truth.course or ())}) but the "
                        "pathfinder reports no true path"),
                oracle_delay=truth.clean_delay,
            ))
    for endpoint in sorted(finder_live - set(report.truths)):
        path = report.finder_worst[endpoint]
        report.mismatches.append(OracleMismatch(
            kind="endpoint", endpoint=endpoint,
            detail=("pathfinder reports a true path but no exhaustive "
                    f"stimulus ever settles it ({path.describe()})"),
            finder_delay=path.worst_arrival,
        ))

    for endpoint in sorted(finder_live & set(report.truths)):
        truth = report.truths[endpoint]
        path = report.finder_worst[endpoint]
        finder_delay = path.worst_arrival

        if truth.clean_delay is not None:
            if finder_delay < truth.clean_delay * (1.0 - rel_tol):
                report.mismatches.append(OracleMismatch(
                    kind="delay", endpoint=endpoint,
                    detail=(f"pathfinder misses delay: worst clean stimulus "
                            f"(toggle {truth.origin} "
                            f"{'rise' if truth.rising else 'fall'}) settles "
                            f"later than any reported path"),
                    oracle_delay=truth.clean_delay,
                    finder_delay=finder_delay,
                ))
            report.courses_checked += 1
            if truth.course not in finder_courses.get(endpoint, set()):
                report.mismatches.append(OracleMismatch(
                    kind="course", endpoint=endpoint,
                    detail=(f"clean dynamic worst course "
                            f"{' -> '.join(truth.course)} is not among the "
                            f"pathfinder's true-path courses"),
                    oracle_delay=truth.clean_delay,
                ))

        # Vector replay: the reported sensitization vector must make the
        # endpoint toggle, arriving near the reported arrival -- which
        # also proves the reported delay is not an over-estimate.
        polarity = max(path.polarities(), key=lambda p: p.arrival)
        concrete = {
            k: (v if v in (0, 1) else 0)
            for k, v in polarity.input_vector.items()
        }
        replay = sim.simulate_transition(
            concrete, path.nets[0], polarity.input_rising
        )
        if not replay.toggled(endpoint):
            report.mismatches.append(OracleMismatch(
                kind="vector", endpoint=endpoint,
                detail=(f"reported vector {concrete} (toggle {path.nets[0]}) "
                        "does not toggle the endpoint in simulation"),
                finder_delay=polarity.arrival,
            ))
        elif clean_course(circuit, replay, endpoint) is not None:
            # Only a clean replay pins the settle time to this one
            # path; glitchy replays (the vector also wiggles other
            # paths into the endpoint) prove sensitization but not the
            # exact delay.
            measured = replay.settled_time(endpoint)
            if abs(measured - polarity.arrival) > rel_tol * max(
                measured, polarity.arrival
            ):
                report.mismatches.append(OracleMismatch(
                    kind="vector", endpoint=endpoint,
                    detail=(f"replayed vector settles at "
                            f"{measured * 1e12:.1f}ps, beyond "
                            f"rel_tol={rel_tol} of the reported arrival"),
                    finder_delay=polarity.arrival,
                ))
