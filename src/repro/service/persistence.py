"""Crash-safe warm-state persistence for the analysis daemon.

A restarted daemon used to cold-start: every characterized library,
compiled session, and memoized result was gone, so the first request
per configuration paid the full build (~500x a memo hit).  This module
snapshots the daemon's warm state -- the :class:`ResultMemo` entries
and the hot-context key list -- to disk periodically and on graceful
drain, and re-warms a booting server from the last good snapshot.

Trust model (the :mod:`repro.resilience.checkpoint` idiom):

* **Atomic writes.**  Snapshot bytes land in ``<path>.tmp<pid>`` and
  are ``rename``\\ d over the target, so a crash mid-write leaves the
  previous good snapshot intact, never a torn file.
* **Fingerprint guard.**  The file carries a blake2b digest of its
  canonical payload JSON plus a schema version.  On load, *anything*
  unexpected -- unreadable file, bad JSON, version skew, digest
  mismatch, malformed entries -- discards the snapshot and cold-starts
  (counter ``service.snapshot_discarded``).  A snapshot is a cache of
  recomputable state: it is never trusted, only verified.
* **Staleness.**  ``max_age_s`` (optional) rejects snapshots older
  than the given horizon; memoized reports are deterministic, but an
  operator rolling new library data wants a bounded re-warm window.

Counters: ``service.snapshots_written``, ``service.snapshot_restores``,
``service.snapshot_restored_entries``, ``service.snapshot_discarded``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.service.protocol import encode_payload

_log = obs.get_logger("repro.service")

#: Schema version; bumped on incompatible snapshot layout changes.
SNAPSHOT_VERSION = 1


def _digest(payload: Dict[str, Any]) -> str:
    """blake2b over the canonical payload JSON (sorted keys), so the
    digest is independent of dict ordering and whitespace."""
    return hashlib.blake2b(encode_payload(payload),
                           digest_size=16).hexdigest()


class WarmStateStore:
    """Reads and writes warm-state snapshots for one daemon.

    ``save`` takes plain data: a list of ``(fingerprint, result_frame)``
    memo items (oldest -> newest, so restoring in order preserves LRU
    recency) and a list of context-key tuples.  ``load`` returns the
    same shapes, or ``None`` when no trustworthy snapshot exists.
    """

    def __init__(self, path: Union[str, Path],
                 max_age_s: Optional[float] = None):
        self.path = Path(path)
        self.max_age_s = max_age_s

    # -- write -------------------------------------------------------------

    def save(self, memo_items: List[Tuple[str, Dict[str, Any]]],
             context_keys: List[Tuple]) -> None:
        payload = {
            "memo": [[fingerprint, value]
                     for fingerprint, value in memo_items],
            "contexts": [list(key) for key in context_keys],
            "saved_at": time.time(),
        }
        document = {
            "version": SNAPSHOT_VERSION,
            "digest": _digest(payload),
            "payload": payload,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_suffix(
            self.path.suffix + f".tmp{os.getpid()}")
        temporary.write_text(json.dumps(document))
        temporary.replace(self.path)
        obs.counter("service.snapshots_written").inc()
        _log.info("persistence.snapshot_written", path=str(self.path),
                  memo_entries=len(payload["memo"]),
                  context_keys=len(payload["contexts"]))

    # -- read --------------------------------------------------------------

    def _discard(self, reason: str) -> None:
        obs.counter("service.snapshot_discarded").inc()
        _log.warning("persistence.snapshot_discarded",
                     path=str(self.path), reason=reason)

    def load(self) -> Optional[Dict[str, Any]]:
        """Validated snapshot payload (``memo`` as ``(fingerprint,
        value)`` pairs, ``contexts`` as key tuples, ``saved_at``), or
        ``None`` when there is nothing trustworthy to restore."""
        if not self.path.exists():
            return None
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._discard(f"unreadable: {exc}")
            return None
        if not isinstance(document, dict):
            self._discard("not a JSON object")
            return None
        if document.get("version") != SNAPSHOT_VERSION:
            self._discard(
                f"version {document.get('version')!r} != "
                f"{SNAPSHOT_VERSION}")
            return None
        payload = document.get("payload")
        if not isinstance(payload, dict):
            self._discard("payload is not an object")
            return None
        if document.get("digest") != _digest(payload):
            self._discard("digest mismatch (corrupt or tampered)")
            return None
        memo = payload.get("memo")
        contexts = payload.get("contexts")
        saved_at = payload.get("saved_at")
        if (not isinstance(memo, list) or not isinstance(contexts, list)
                or not isinstance(saved_at, (int, float))):
            self._discard("payload shape is wrong")
            return None
        if any(not (isinstance(item, list) and len(item) == 2
                    and isinstance(item[0], str)
                    and isinstance(item[1], dict))
               for item in memo):
            self._discard("memo entries are malformed")
            return None
        if self.max_age_s is not None and \
                time.time() - saved_at > self.max_age_s:
            self._discard(
                f"stale: {time.time() - saved_at:.0f}s old, horizon "
                f"{self.max_age_s:g}s")
            return None
        obs.counter("service.snapshot_restores").inc()
        obs.counter("service.snapshot_restored_entries").inc(len(memo))
        _log.info("persistence.snapshot_restored", path=str(self.path),
                  memo_entries=len(memo), context_keys=len(contexts),
                  age_s=round(time.time() - saved_at, 1))
        return {
            "memo": [(item[0], item[1]) for item in memo],
            "contexts": [tuple(key) for key in contexts],
            "saved_at": saved_at,
        }
