"""Blocking socket client for the analysis service.

Deliberately synchronous: callers (the ``repro client`` CLI, tests,
benchmarks, CI smoke scripts) want a plain function call that returns
the result dict or raises :class:`ServiceError`.  Heartbeat and partial
frames arriving before the terminal frame are surfaced through optional
callbacks and otherwise skipped.

    with ServiceClient(host, port) as client:
        result = client.call("analyze", {"netlist": "iscas:c432",
                                         "n_worst": 5})
        print(result["report"])
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Callable, Dict, Optional

from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    TruncatedFrame,
    FrameTooLarge,
    decode_payload,
    encode_frame,
    request_frame,
)


class ServiceError(Exception):
    """A terminal ``error`` frame from the server."""

    def __init__(self, code: str, message: str, request_id: Any = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.request_id = request_id


class ServiceClient:
    """One connection to a running :class:`AnalysisServer`."""

    def __init__(self, host: str, port: int, timeout: float = 600.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing -----------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise TruncatedFrame(
                    f"server closed the connection {n - remaining}/{n} "
                    "bytes into a frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> Dict[str, Any]:
        header = self._recv_exactly(HEADER.size)
        (length,) = HEADER.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLarge(
                f"server announced a {length}-byte frame beyond the "
                f"client limit {self.max_frame_bytes}")
        return decode_payload(self._recv_exactly(length))

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (protocol tests forge broken frames with
        this)."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)

    def read_frame(self) -> Dict[str, Any]:
        """Read one raw response frame (protocol tests)."""
        self.connect()
        return self._read_frame()

    # -- requests ----------------------------------------------------------

    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        effort: Optional[str] = None,
        on_heartbeat: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_partial: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Issue one request; block until its terminal frame.

        Returns the ``result`` frame as a dict; raises
        :class:`ServiceError` for an ``error`` frame.
        """
        self.connect()
        assert self._sock is not None
        request_id = f"r{next(self._ids)}"
        frame = request_frame(request_id, op, params=params,
                              deadline_s=deadline_s, effort=effort)
        self._sock.sendall(encode_frame(frame, self.max_frame_bytes))
        while True:
            response = self._read_frame()
            kind = response.get("kind")
            if kind == "heartbeat":
                if on_heartbeat is not None:
                    on_heartbeat(response)
                continue
            if kind == "partial":
                if on_partial is not None:
                    on_partial(response)
                continue
            if kind == "error":
                raise ServiceError(response.get("code", "internal"),
                                   response.get("message", ""),
                                   request_id=response.get("id"))
            if kind == "result":
                return response
            raise ServiceError(
                "internal", f"unexpected frame kind {kind!r}")
