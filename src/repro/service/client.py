"""Blocking socket client for the analysis service.

Deliberately synchronous: callers (the ``repro client`` CLI, tests,
benchmarks, CI smoke scripts) want a plain function call that returns
the result dict or raises :class:`ServiceError`.  Heartbeat and partial
frames arriving before the terminal frame are surfaced through optional
callbacks and otherwise skipped.

    with ServiceClient(host, port) as client:
        result = client.call("analyze", {"netlist": "iscas:c432",
                                         "n_worst": 5})
        print(result["report"])

Failure taxonomy: a structured ``error`` frame raises
:class:`ServiceError` with its stable ``code``; a *transport* failure
(server died mid-stream, connection reset, timeout) raises
:class:`ServiceUnavailable` -- never a raw socket traceback -- so the
CLI maps both connect-refused and died-mid-request to
``EX_UNAVAILABLE``.  :meth:`ServiceClient.call_with_retry` layers
jittered-exponential-backoff retries over ``call`` for ``overloaded``
shedding (honoring the server's ``retry_after_s`` hint), transient
``unavailable`` refusals, and transport failures; re-sends are
idempotent because a request's identity is its parameter fingerprint
(the server memo), not its connection.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    TruncatedFrame,
    FrameTooLarge,
    decode_payload,
    encode_frame,
    request_frame,
)

#: Error codes a retry can cure: shedding and drain-window refusals.
RETRYABLE_CODES = ("overloaded", "unavailable")


class ServiceError(Exception):
    """A terminal ``error`` frame from the server.

    ``retry_after_s`` carries the server's backoff hint when the frame
    had one (``overloaded`` shedding), else ``None``.
    """

    def __init__(self, code: str, message: str, request_id: Any = None,
                 retry_after_s: Optional[float] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.request_id = request_id
        self.retry_after_s = retry_after_s


class ServiceUnavailable(ServiceError):
    """The server cannot be reached or vanished mid-request (connect
    refused, reset, timeout, EOF mid-frame).  Maps to
    ``EX_UNAVAILABLE`` (69) in the CLI, exactly like connect-refused."""

    def __init__(self, message: str, request_id: Any = None):
        super().__init__("unavailable", message, request_id=request_id)


class ServiceClient:
    """One connection to a running :class:`AnalysisServer`."""

    def __init__(self, host: str, port: int, timeout: float = 600.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._ids = itertools.count(1)

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
            except OSError as exc:
                raise ServiceUnavailable(
                    f"cannot connect to {self.host}:{self.port}: {exc}")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing -----------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise TruncatedFrame(
                    f"server closed the connection {n - remaining}/{n} "
                    "bytes into a frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> Dict[str, Any]:
        header = self._recv_exactly(HEADER.size)
        (length,) = HEADER.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLarge(
                f"server announced a {length}-byte frame beyond the "
                f"client limit {self.max_frame_bytes}")
        return decode_payload(self._recv_exactly(length))

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (protocol tests forge broken frames with
        this)."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)

    def read_frame(self) -> Dict[str, Any]:
        """Read one raw response frame (protocol tests)."""
        self.connect()
        return self._read_frame()

    # -- requests ----------------------------------------------------------

    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        effort: Optional[str] = None,
        on_heartbeat: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_partial: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Issue one request; block until its terminal frame.

        Returns the ``result`` frame as a dict; raises
        :class:`ServiceError` for an ``error`` frame and
        :class:`ServiceUnavailable` when the server vanishes
        mid-stream (the connection is closed either way).
        """
        request_id = f"r{next(self._ids)}"
        try:
            self.connect()
            assert self._sock is not None
            frame = request_frame(request_id, op, params=params,
                                  deadline_s=deadline_s, effort=effort)
            self._sock.sendall(encode_frame(frame, self.max_frame_bytes))
            while True:
                response = self._read_frame()
                kind = response.get("kind")
                if kind == "heartbeat":
                    if on_heartbeat is not None:
                        on_heartbeat(response)
                    continue
                if kind == "partial":
                    if on_partial is not None:
                        on_partial(response)
                    continue
                if kind == "error":
                    raise ServiceError(response.get("code", "internal"),
                                       response.get("message", ""),
                                       request_id=response.get("id"),
                                       retry_after_s=response.get(
                                           "retry_after_s"))
                if kind == "result":
                    return response
                raise ServiceError(
                    "internal", f"unexpected frame kind {kind!r}")
        except TruncatedFrame as exc:
            # The server died after the stream began (heartbeats may
            # already have arrived): taxonomy, not a raw traceback.
            self.close()
            raise ServiceUnavailable(
                f"server closed the connection mid-request: {exc}",
                request_id=request_id)
        except (ConnectionError, socket.timeout, TimeoutError,
                OSError) as exc:
            self.close()
            raise ServiceUnavailable(
                f"server unreachable: {exc}", request_id=request_id)

    def call_with_retry(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        deadline_s: Optional[float] = None,
        effort: Optional[str] = None,
        on_heartbeat: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_partial: Optional[Callable[[Dict[str, Any]], None]] = None,
        retries: int = 4,
        backoff_s: float = 0.2,
        max_backoff_s: float = 10.0,
        rng: Optional[random.Random] = None,
    ) -> Dict[str, Any]:
        """:meth:`call` with jittered exponential backoff on transient
        failures: ``overloaded`` shedding (sleeping at least the
        server's ``retry_after_s`` hint), ``unavailable`` refusals, and
        transport failures (reconnecting first).  Re-sending is safe:
        the request's identity is its parameter fingerprint, so a
        repeat either replays the memo or recomputes the identical
        deterministic answer.  Other error codes raise immediately.
        """
        rng = rng if rng is not None else random.Random()
        last: Optional[ServiceError] = None
        for attempt in range(retries + 1):
            try:
                return self.call(op, params, deadline_s=deadline_s,
                                 effort=effort, on_heartbeat=on_heartbeat,
                                 on_partial=on_partial)
            except ServiceError as exc:
                if exc.code not in RETRYABLE_CODES or attempt >= retries:
                    raise
                last = exc
            delay = min(backoff_s * (2 ** attempt), max_backoff_s)
            delay *= 0.5 + rng.random()  # full jitter in [0.5x, 1.5x)
            if last.retry_after_s is not None:
                delay = max(delay, last.retry_after_s)
            time.sleep(delay)
        raise last  # pragma: no cover - loop always returns or raises
