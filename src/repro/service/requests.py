"""Shared request-execution layer behind the CLI and the service.

The byte-identity contract of ``repro serve`` -- a served report equals
the one-shot CLI's output for the same configuration, byte for byte --
is enforced structurally: both front ends call the same
:func:`execute_analysis` / :func:`execute_verify` / :func:`execute_size`
functions here, which build the *complete* stdout text (report, degraded
completeness block, slack table) instead of printing as they go.  The
CLI prints the returned string; the server ships it in a result frame.

The expensive inputs of a request -- the parsed/indexed circuit, the
characterized library, the :class:`~repro.core.sta.TruePathSTA` session
with its compiled SoA tables -- are bundled into an
:class:`AnalysisContext`, built once per *context fingerprint* and held
hot by the server's LRU cache (:mod:`repro.service.cache`).  A request
names everything that affects its results; the context key is the
subset that selects the heavy state.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.charlib.characterize import (
    CharacterizationGrid,
    FAST_GRID,
    characterize_library,
)
from repro.charlib.store import CharacterizedLibrary
from repro.core.report import format_slack_report, slack_report
from repro.gates.library import default_library
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.techmap import techmap
from repro.netlist.verilog import parse_verilog
from repro.resilience.budgets import CompletenessReport, SearchBudgets
from repro.resilience.errors import ConfigError
from repro.service.protocol import BadRequest
from repro.tech.presets import TECHNOLOGIES

_log = obs.get_logger("repro.service")

#: In-process characterization memo: repeat invocations (or several
#: requests against one server) skip even the JSON load of the on-disk
#: cache.  Keyed on everything that selects a library.
_CharlibKey = Tuple[str, str, CharacterizationGrid, str, str]
_CHARLIB_MEMO: Dict[_CharlibKey, CharacterizedLibrary] = {}


def load_circuit(path: str, map_to_complex: bool = True) -> Circuit:
    """Load a ``.bench`` or ``.v`` netlist, or build an evaluation-suite
    circuit from an ``iscas:<name>[@scale]`` spec (e.g. ``iscas:c432``,
    ``iscas:c6288@0.25``)."""
    if path.startswith("iscas:"):
        from repro.eval.iscas import build_circuit

        spec = path[len("iscas:"):]
        name, _, scale = spec.partition("@")
        return build_circuit(name, scale=float(scale) if scale else 1.0)
    file_path = Path(path)
    text = file_path.read_text()
    if file_path.suffix == ".v":
        return parse_verilog(text)
    circuit = parse_bench(text, name=file_path.stem)
    return techmap(circuit) if map_to_complex else circuit


def cached_charlib(
    library,
    tech,
    grid: CharacterizationGrid = FAST_GRID,
    model: str = "polynomial",
    vector_mode: str = "all",
) -> CharacterizedLibrary:
    """Memoized :func:`characterize_library` for driver invocations."""
    key = (library.name, tech.name, grid, model, vector_mode)
    cached = _CHARLIB_MEMO.get(key)
    if cached is not None:
        obs.counter("cli.charlib_memo_hits").inc()
        _log.info("charlib_memo.hit", library=library.name, tech=tech.name,
                  model=model, vector_mode=vector_mode)
        return cached
    obs.counter("cli.charlib_memo_misses").inc()
    _log.info("charlib_memo.miss", library=library.name, tech=tech.name,
              model=model, vector_mode=vector_mode)
    charlib = characterize_library(
        library, tech, grid=grid, model=model, vector_mode=vector_mode
    )
    _CHARLIB_MEMO[key] = charlib
    return charlib


# ---------------------------------------------------------------------------
# Request description


@dataclass(frozen=True)
class AnalysisRequest:
    """Everything that selects an ``analyze`` run's results.

    Field names and defaults mirror the ``repro analyze`` flags; the
    service's ``analyze`` op accepts the same names as JSON params.
    """

    netlist: str
    tech: str = "90nm"
    tool: str = "developed"
    top: int = 10
    n_worst: Optional[int] = None
    compare: bool = False
    max_paths: Optional[int] = 20000
    backtrack_limit: int = 1000
    required_ps: Optional[float] = None
    no_map: bool = False
    jobs: int = 1
    missing_arc_policy: str = "error"
    vectorize: bool = True
    wall_budget: Optional[float] = None
    extension_budget: Optional[int] = None
    backtrack_budget: Optional[int] = None
    shard_timeout: Optional[float] = None
    shard_retries: int = 2
    checkpoint: Optional[str] = None
    resume: Optional[str] = None
    progress: bool = False
    heartbeat_timeout: Optional[float] = None
    #: Service-only knob (no CLI flag): disable the supervisor's
    #: in-process serial fallback, so exhausted shards degrade to
    #: ``failed`` origins with GBA bounds instead of completing.
    serial_fallback: bool = True

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "AnalysisRequest":
        """Build from JSON params, rejecting unknown fields (a typo'd
        field silently ignored would break the byte-identity promise)."""
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(params) - known)
        if unknown:
            raise BadRequest(
                f"unknown analyze params: {', '.join(unknown)}")
        if "netlist" not in params:
            raise BadRequest("analyze requires a 'netlist' param")
        try:
            return cls(**params)
        except TypeError as exc:
            raise BadRequest(f"bad analyze params: {exc}")

    def context_key(self) -> Tuple:
        """The subset of fields selecting the heavy cached state
        (circuit + characterized library + compiled analysis session)."""
        return ("analyze", self.netlist, self.no_map, self.tech, self.tool,
                self.missing_arc_policy, self.vectorize)

    def fingerprint(self) -> str:
        """Stable digest of the *full* request -- the result-memo key."""
        body = json.dumps(asdict(self), sort_keys=True)
        return hashlib.blake2b(body.encode(), digest_size=16).hexdigest()

    def deterministic(self) -> bool:
        """Whether an identical request must produce identical output
        (no wall-clock budget, no external checkpoint state) -- the
        precondition for memoizing its rendered result."""
        return (self.wall_budget is None
                and self.checkpoint is None
                and self.resume is None)

    def budgets(self) -> Optional[SearchBudgets]:
        budgets = SearchBudgets(
            wall_seconds=self.wall_budget,
            max_extensions=self.extension_budget,
            max_backtracks=self.backtrack_budget,
        )
        return budgets if budgets.bounded() else None

    def wants_supervision(self) -> bool:
        """Whether any resilience feature was requested -- the plain
        serial search stays on its historical in-process path
        otherwise."""
        return (self.budgets() is not None
                or self.jobs > 1
                or self.checkpoint is not None
                or self.resume is not None
                or self.shard_timeout is not None
                or self.heartbeat_timeout is not None
                or self.progress
                or not self.serial_fallback
                or self.missing_arc_policy != "error")


# ---------------------------------------------------------------------------
# Hot context


@dataclass
class AnalysisContext:
    """The expensive, reusable state behind one context key.

    ``lock`` serializes requests sharing one context: the underlying
    :class:`TruePathSTA`/:class:`DelayCalculator` session is not
    thread-safe, and serializing per context (not globally) still lets
    requests for *different* configurations run concurrently.
    """

    circuit: Circuit
    charlib: CharacterizedLibrary
    sta: Any = None          # TruePathSTA for the developed tool
    gba_result: Any = None   # memoized GraphSTA run for the gba tool
    lock: threading.Lock = field(default_factory=threading.Lock)


def build_context(request: AnalysisRequest) -> AnalysisContext:
    """Pay the startup cost once: parse/index the circuit, characterize
    (or load) the library, and compile the analysis session."""
    with obs.span("service.context_build"):
        circuit = load_circuit(request.netlist,
                               map_to_complex=not request.no_map)
        tech = TECHNOLOGIES[request.tech]
        library = default_library()
        if request.tool == "baseline":
            charlib = cached_charlib(library, tech, model="lut",
                                     vector_mode="default")
            return AnalysisContext(circuit=circuit, charlib=charlib)
        charlib = cached_charlib(library, tech)
        context = AnalysisContext(circuit=circuit, charlib=charlib)
        if request.tool == "developed":
            from repro.core.sta import TruePathSTA

            context.sta = TruePathSTA(
                circuit, charlib,
                missing_arc_policy=request.missing_arc_policy,
                vectorize=request.vectorize,
            )
        return context


# ---------------------------------------------------------------------------
# Execution


@dataclass
class AnalysisOutcome:
    """Everything ``analyze`` produces: the full stdout text plus the
    structured pieces the service ships alongside it."""

    report: str
    paths: List[Any] = field(default_factory=list)
    degraded: bool = False
    completeness: Optional[CompletenessReport] = None


def execute_analysis(
    request: AnalysisRequest,
    context: Optional[AnalysisContext] = None,
    fault_plan: object = None,
) -> AnalysisOutcome:
    """Run one ``analyze`` request and render its complete report text.

    ``context`` supplies pre-built hot state (server path); ``None``
    builds it inline (one-shot CLI path).  Either way the text is
    produced by the same code, so a served result is byte-identical to
    the CLI's stdout for the same configuration.
    """
    if request.jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {request.jobs}")
    if request.tool not in ("developed", "gba", "baseline"):
        raise ConfigError(
            f"unknown tool {request.tool!r}; have developed, gba, baseline")
    if context is None:
        context = build_context(request)
    circuit, charlib = context.circuit, context.charlib
    lines: List[str] = []
    outcome = AnalysisOutcome(report="")

    if request.tool == "developed":
        sta = context.sta
        if sta is None:
            from repro.core.sta import TruePathSTA

            sta = TruePathSTA(circuit, charlib,
                              missing_arc_policy=request.missing_arc_policy,
                              vectorize=request.vectorize)
            context.sta = sta
        budgets = request.budgets()
        if request.wants_supervision() or fault_plan is not None:
            analysis = sta.analyze(
                jobs=request.jobs,
                budgets=budgets,
                max_paths=request.max_paths,
                n_worst=request.n_worst,
                shard_timeout=request.shard_timeout,
                shard_retries=request.shard_retries,
                checkpoint=request.checkpoint,
                resume=request.resume,
                progress=request.progress,
                heartbeat_timeout=request.heartbeat_timeout,
                serial_fallback=request.serial_fallback,
                fault_plan=fault_plan,
            )
            paths = analysis.paths
            if request.n_worst is not None:
                paths = sorted(paths, key=lambda p: p.worst_arrival,
                               reverse=True)[:request.n_worst]
            lines.append(sta.report(paths, limit=request.top))
            if analysis.degraded:
                lines.append("")
                lines.append(analysis.describe_completeness())
                lines.append("(GBA bound = sound upper limit on any arrival "
                             "the budgeted search did not reach)")
            outcome.degraded = analysis.degraded
            outcome.completeness = analysis.completeness
        elif request.n_worst is not None:
            paths = sta.n_worst_paths(
                request.n_worst, max_paths=request.max_paths,
                jobs=request.jobs,
            )
            lines.append(sta.report(paths, limit=request.top))
        else:
            paths = sta.enumerate_paths(
                max_paths=request.max_paths, jobs=request.jobs
            )
            lines.append(sta.report(paths, limit=request.top))
    elif request.tool == "gba":
        from repro.core.graphsta import GraphSTA, gba_pessimism
        from repro.core.sta import TruePathSTA

        gba = context.gba_result
        if gba is None:
            gba = GraphSTA(circuit, charlib,
                           vectorize=request.vectorize).run()
            context.gba_result = gba
        lines.append(f"GBA endpoint arrivals for {circuit.name} "
                     f"({charlib.tech_name}, one topological pass)")
        for endpoint in circuit.outputs:
            rise, fall = gba.arrivals.get(endpoint, (None, None))
            cells = " ".join(
                f"{pol}={arr * 1e12:8.1f} ps" if arr is not None
                else f"{pol}=    n/a"
                for pol, arr in (("rise", rise), ("fall", fall))
            )
            lines.append(f"  {endpoint:<12s} {cells}")
        paths = []
        if request.compare:
            sta = TruePathSTA(circuit, charlib, vectorize=request.vectorize)
            paths = sta.enumerate_paths(max_paths=request.max_paths,
                                        jobs=request.jobs)
            comparison = gba_pessimism(gba, paths)
            lines.append("")
            lines.append(f"gba_pessimism vs {len(paths)} true paths "
                         "(GBA/true - 1; >= 0 up to model noise):")
            for endpoint, row in sorted(comparison.items()):
                lines.append(
                    f"  {endpoint:<12s} gba={row['gba'] * 1e12:8.1f} ps  "
                    f"true={row['true'] * 1e12:8.1f} ps  "
                    f"pessimism={row['pessimism'] * 100:+6.2f}%")
    else:
        from repro.baseline.sta2step import TwoStepSTA

        tool = TwoStepSTA(circuit, charlib,
                          backtrack_limit=request.backtrack_limit)
        report = tool.run(max_structural_paths=request.max_paths or 1000)
        paths = tool.true_paths(report)
        lines.append(f"two-step baseline: {report.as_row()}")
        for k, p in enumerate(
            sorted(paths, key=lambda q: -q.worst_arrival)[: request.top], 1
        ):
            lines.append(
                f"{k:3d}. {p.worst_arrival * 1e12:8.1f} ps  {p.describe()}")

    if request.required_ps is not None:
        entries = slack_report(paths, request.required_ps * 1e-12)
        lines.append("")
        lines.append(format_slack_report(entries[: request.top]))
    outcome.report = "\n".join(lines)
    outcome.paths = paths
    return outcome


# ---------------------------------------------------------------------------
# verify / size ops


@dataclass
class VerifyOutcome:
    report: str
    ok: bool


def execute_verify(
    circuits: List[str],
    oracle: bool = False,
    metamorphic: bool = False,
    max_inputs: int = 18,
    jobs: int = 1,
    tech: str = "90nm",
) -> VerifyOutcome:
    """The oracle/metamorphic slice of ``repro verify``, rendered to the
    same text the CLI prints (fuzz and fault batteries stay CLI-only:
    they spawn pools and temp state that don't belong in a request)."""
    library = default_library()
    charlib = cached_charlib(library, TECHNOLOGIES[tech])
    lines: List[str] = []
    failed = False
    for spec in circuits:
        circuit = load_circuit(spec)
        if oracle:
            from repro.verify import run_oracle

            report = run_oracle(circuit, charlib, max_inputs=max_inputs)
            lines.append(report.summary())
            for mismatch in report.mismatches:
                lines.append(f"  {mismatch.describe()}")
            failed = failed or not report.ok
        if metamorphic:
            from repro.verify import run_metamorphic

            results = run_metamorphic(circuit, charlib, jobs=jobs)
            lines.append(f"metamorphic {circuit.name}:")
            for result in results:
                lines.append(f"  {result.describe()}")
            failed = failed or any(not r.ok for r in results)
    return VerifyOutcome(report="\n".join(lines), ok=not failed)


@dataclass
class SizeOutcome:
    report: str
    payload: Dict[str, Any]


def execute_size(
    netlist: str,
    required_ps: float,
    tech: str = "90nm",
    strategy: str = "greedy",
    seed: int = 0,
    max_moves: int = 20,
    variant_suffix: str = "_X2",
    max_paths: int = 5000,
    no_map: bool = False,
    vectorize: bool = True,
    scratch: bool = False,
    wall_budget: Optional[float] = None,
    extension_budget: Optional[int] = None,
    backtrack_budget: Optional[int] = None,
) -> SizeOutcome:
    """One ``repro size`` run.  Sizing *mutates* its circuit, so this
    always builds fresh state -- the hot cache only amortizes the
    characterized sized library (via the charlib disk cache/memo)."""
    from repro.gates.library import sized_library
    from repro.opt.sizer import TimingDrivenSizer

    circuit = load_circuit(netlist, map_to_complex=not no_map)
    tech_obj = TECHNOLOGIES[tech]
    library = sized_library()
    circuit.library = library
    used = sorted({inst.cell.name for inst in circuit.instances.values()})
    cells = set(used)
    for name in used:
        variant = f"{name}{variant_suffix}"
        if variant in library:
            cells.add(variant)
        if name.endswith(variant_suffix):
            base = name[: -len(variant_suffix)]
            if base in library:
                cells.add(base)
    charlib = characterize_library(
        library, tech_obj, grid=FAST_GRID, cells=sorted(cells)
    )
    budgets = SearchBudgets(
        wall_seconds=wall_budget,
        max_extensions=extension_budget,
        max_backtracks=backtrack_budget,
    )
    sizer = TimingDrivenSizer(
        circuit, charlib, required_ps * 1e-12,
        strategy=strategy,
        seed=seed,
        max_moves=max_moves,
        variant_suffix=variant_suffix,
        max_paths=max_paths,
        vectorize=vectorize,
        budgets=budgets if budgets.bounded() else None,
        scratch=scratch,
    )
    result = sizer.run()
    payload = {
        "circuit": circuit.name,
        "strategy": result.strategy,
        "stop_reason": result.stop_reason,
        "met": result.met,
        "required_ps": result.required_time * 1e12,
        "initial_ps": result.initial_arrival * 1e12,
        "final_ps": result.final_arrival * 1e12,
        "moves": [
            {
                "gate": m.gate_name,
                "from": m.from_cell,
                "to": m.to_cell,
                "before_ps": m.arrival_before * 1e12,
                "after_ps": m.arrival_after * 1e12,
                "accepted": m.accepted,
            }
            for m in result.moves
        ],
    }
    return SizeOutcome(report=result.describe(), payload=payload)
