"""LRU-bounded hot state for the analysis server.

Two caches with different keys and lifetimes:

:class:`HotCache`
    Maps a *context key* (netlist spec, mapping, tech, tool,
    missing-arc policy, vectorize flag) to a built
    :class:`~repro.service.requests.AnalysisContext` -- the indexed
    circuit, characterized library, and compiled analysis session.
    This is the expensive state whose rebuild the service exists to
    amortize; eviction drops the least-recently-used context.  A
    per-key build lock ensures concurrent first requests for one
    configuration build it once, not N times.

:class:`ResultMemo`
    Maps a *request fingerprint* (digest of every result-affecting
    field) to the fully rendered outcome.  Only deterministic requests
    participate (no wall-clock budget, no checkpoint/resume, no fault
    injection) -- for those, the byte-identity contract guarantees the
    memoized text is exactly what a fresh run would print.

Counters (``service.cache_*``, ``service.result_*``) feed the ``stats``
endpoint and the warm-cache assertions in the test suite.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs


class HotCache:
    """Thread-safe LRU of built analysis contexts."""

    def __init__(self, max_entries: int = 8, name: str = "cache"):
        if max_entries < 1:
            raise ValueError(f"cache needs >= 1 entry, got {max_entries}")
        self.max_entries = max_entries
        self._name = name
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        #: Per-key build locks so one slow build does not serialize
        #: unrelated requests (the entry lands in ``_entries`` only
        #: once built).
        self._building: Dict[Tuple, threading.Lock] = {}

    def get_or_build(self, key: Tuple, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it (once, even
        under concurrency) on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                obs.counter(f"service.{self._name}_hits").inc()
                return self._entries[key]
            gate = self._building.setdefault(key, threading.Lock())
        with gate:
            # Double-check: another thread may have finished the build
            # while this one waited on the gate.
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    obs.counter(f"service.{self._name}_hits").inc()
                    return self._entries[key]
            obs.counter(f"service.{self._name}_misses").inc()
            value = build()
            with self._lock:
                self._entries[key] = value
                self._entries.move_to_end(key)
                self._building.pop(key, None)
                while len(self._entries) > self.max_entries:
                    evicted, _ = self._entries.popitem(last=False)
                    obs.counter(f"service.{self._name}_evictions").inc()
                    obs.get_logger("repro.service").info(
                        "cache.evict", name=self._name, key=repr(evicted))
            return value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self):
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": obs.counter(f"service.{self._name}_hits").value,
            "misses": obs.counter(f"service.{self._name}_misses").value,
            "evictions": obs.counter(f"service.{self._name}_evictions").value,
        }


class ResultMemo:
    """Thread-safe LRU of rendered outcomes keyed by request digest."""

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, fingerprint: str) -> Optional[Any]:
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                obs.counter("service.result_hits").inc()
                return self._entries[fingerprint]
        obs.counter("service.result_misses").inc()
        return None

    def put(self, fingerprint: str, value: Any) -> None:
        with self._lock:
            self._entries[fingerprint] = value
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def items(self):
        """Snapshot of the entries, oldest -> newest (LRU order), for
        warm-state persistence.  Touches no recency state."""
        with self._lock:
            return list(self._entries.items())

    def restore(self, items) -> int:
        """Re-warm from persisted ``(fingerprint, value)`` pairs in
        oldest -> newest order; returns how many were kept.  Existing
        entries win (a live result is never clobbered by a snapshot),
        and capacity still applies."""
        restored = 0
        with self._lock:
            for fingerprint, value in items:
                if fingerprint in self._entries:
                    continue
                self._entries[fingerprint] = value
                restored += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return restored

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": obs.counter("service.result_hits").value,
            "misses": obs.counter("service.result_misses").value,
        }
