"""STA-as-a-service: a long-running analysis daemon with hot caches.

The CLI pays library characterization, circuit indexing, and SoA/tgraph
compilation on every invocation.  ``repro serve`` pays them once and
holds the results hot behind a length-prefixed JSON socket protocol:

* :mod:`repro.service.protocol` -- framing, schema, error taxonomy;
* :mod:`repro.service.requests` -- the execution layer shared with the
  one-shot CLI (the byte-identity contract lives here);
* :mod:`repro.service.qos` -- ``deadline_s``/``effort`` onto
  :class:`~repro.resilience.budgets.SearchBudgets`;
* :mod:`repro.service.cache` -- LRU context cache + result memo;
* :mod:`repro.service.fleet` -- supervised worker processes (and the
  in-process fallback) behind one spec-execution function;
* :mod:`repro.service.admission` -- bounded priority queue, load
  shedding, preemption policy;
* :mod:`repro.service.persistence` -- crash-safe warm-state snapshots;
* :mod:`repro.service.server` -- the asyncio acceptor;
* :mod:`repro.service.client` -- the blocking client with retry.

See ``docs/SERVICE.md`` for the wire contract and ops guidance.
"""

from repro.service.admission import AdmissionController, Overloaded
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.fleet import ThreadedExecutor, WorkerFleet, run_work
from repro.service.persistence import WarmStateStore
from repro.service.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION
from repro.service.requests import (
    AnalysisRequest,
    build_context,
    execute_analysis,
    execute_size,
    execute_verify,
)
from repro.service.server import (
    AnalysisServer,
    ServerHandle,
    ServiceConfig,
    start_in_thread,
)

__all__ = [
    "AdmissionController",
    "AnalysisRequest",
    "AnalysisServer",
    "MAX_FRAME_BYTES",
    "Overloaded",
    "PROTOCOL_VERSION",
    "ServerHandle",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "ThreadedExecutor",
    "WarmStateStore",
    "WorkerFleet",
    "build_context",
    "execute_analysis",
    "execute_size",
    "execute_verify",
    "run_work",
    "start_in_thread",
]
