"""Admission control for the analysis daemon: bounded priority queue,
load shedding, and preemption policy.

PR 9's server had no backpressure: every accepted connection got a
thread-pool slot eventually, and a burst of heavy requests simply piled
unbounded futures onto the executor.  This module makes admission an
explicit, *bounded* decision in the acceptor:

* **Priority.** Tickets order by earliest-deadline-first, then by QoS
  effort class (``low`` before ``exhaustive`` -- cheap capped probes
  should not starve behind uncapped searches), then FIFO.  A request
  with a deadline always outranks one without: it is the one that can
  still be saved.
* **Shedding.** When ``max_inflight`` slots are busy *and* the queue
  holds ``max_queue`` waiting tickets, new arrivals are refused
  immediately with a structured ``overloaded`` error carrying a
  ``retry_after_s`` hint (queue depth x the EWMA service time over the
  inflight width), instead of being accepted into a wait the server
  already knows it cannot honor.  Counter: ``service.overloaded``.
* **Expiry.** A ticket whose deadline passes while it waits is dropped
  *before* dispatch (``deadline-exceeded``), so dead requests never
  consume a worker.  Counter: ``service.deadline_drops``.
* **Preemption hints.** :meth:`AdmissionController.should_preempt`
  reports when a deadline-bearing ticket is waiting behind a fleet
  full of uncapped ``exhaustive`` hogs; the server then asks the
  worker fleet to reclaim one worker (the preempted request is
  re-queued, not lost -- see :class:`repro.service.fleet.WorkerFleet`).

The controller is **loop-confined**: every method is called from the
server's asyncio loop thread only, so there are no locks -- just a heap
and counters.  Tickets expose an :class:`asyncio.Event` the per-request
coroutine awaits (with a timeout, so it can interleave queued-state
heartbeats).
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.service.protocol import ProtocolError

_log = obs.get_logger("repro.service")

#: Dispatch rank of QoS effort classes for tickets *without* a
#: deadline: capped-cheap first, uncapped-open-ended last.  ``None``
#: (no effort stated) sits between ``high`` and ``exhaustive``.
EFFORT_RANK = {"low": 0, "medium": 1, "high": 2, None: 3, "exhaustive": 4}

#: Fallback EWMA seed for the retry hint before any request completes.
_DEFAULT_SERVICE_S = 0.5


class Overloaded(ProtocolError):
    """Admission refused: queue and inflight limits are both at
    capacity.  ``retry_after_s`` is the server's backoff hint."""

    code = "overloaded"
    fatal = False

    def __init__(self, message: str, retry_after_s: float,
                 request_id: Any = None):
        super().__init__(message, request_id=request_id)
        self.retry_after_s = retry_after_s


class Ticket:
    """One admitted request waiting for (or holding) a compute slot."""

    __slots__ = ("request_id", "effort", "deadline_at", "hog", "seq",
                 "granted", "expired", "event", "arrived_at")

    def __init__(self, request_id: Any, effort: Optional[str],
                 deadline_at: Optional[float], hog: bool, seq: int):
        self.request_id = request_id
        self.effort = effort
        self.deadline_at = deadline_at
        self.hog = hog
        self.seq = seq
        self.granted = False
        self.expired = False
        self.event = asyncio.Event()
        self.arrived_at = time.monotonic()

    def priority(self) -> Tuple:
        if self.deadline_at is not None:
            return (0, self.deadline_at, self.seq)
        return (1, EFFORT_RANK.get(self.effort, 3), self.seq)

    async def wait(self, timeout: float) -> bool:
        """Await grant/expiry for up to ``timeout`` seconds; returns
        whether the ticket was resolved (granted or expired)."""
        try:
            await asyncio.wait_for(self.event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class AdmissionController:
    """Bounded EDF/effort priority queue over a fixed inflight width.

    Loop-confined: construct and call only from the server's asyncio
    loop thread.
    """

    def __init__(self, max_inflight: int, max_queue: int):
        if max_inflight < 1:
            raise ValueError(
                f"admission needs >= 1 inflight slot, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue cannot be negative: {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._inflight = 0
        self._waiting = 0
        self._seq = itertools.count()
        self._heap: List[Tuple[Tuple, Ticket]] = []
        self._service_ewma = _DEFAULT_SERVICE_S
        self._idle = asyncio.Event()
        self._idle.set()

    # -- admission ---------------------------------------------------------

    def submit(self, request_id: Any, effort: Optional[str] = None,
               deadline_at: Optional[float] = None,
               hog: bool = False) -> Ticket:
        """Admit a request or raise :class:`Overloaded`.

        The returned ticket is either granted immediately (a free slot)
        or queued; the caller awaits :meth:`Ticket.wait` and must call
        :meth:`release` exactly once after a granted ticket finishes
        (or :meth:`abandon` for a queued ticket it walks away from).
        """
        if self._inflight >= self.max_inflight and \
                self._waiting >= self.max_queue:
            retry_after = self.retry_after_s()
            obs.counter("service.overloaded").inc()
            _log.warning("admission.shed", request_id=request_id,
                         inflight=self._inflight, queued=self._waiting,
                         retry_after_s=retry_after)
            raise Overloaded(
                f"server at capacity ({self._inflight} inflight, "
                f"{self._waiting} queued); retry in ~{retry_after:g}s",
                retry_after_s=retry_after, request_id=request_id)
        ticket = Ticket(request_id, effort, deadline_at, hog,
                        next(self._seq))
        self._idle.clear()
        if self._inflight < self.max_inflight:
            self._grant(ticket)
        else:
            self._waiting += 1
            heapq.heappush(self._heap, (ticket.priority(), ticket))
            obs.counter("service.queued").inc()
        return ticket

    def _grant(self, ticket: Ticket) -> None:
        ticket.granted = True
        self._inflight += 1
        ticket.event.set()

    def release(self, ticket: Ticket, service_s: Optional[float] = None) \
            -> None:
        """Return a granted ticket's slot and dispatch the next waiter."""
        assert ticket.granted, "release() of a never-granted ticket"
        self._inflight -= 1
        if service_s is not None and service_s >= 0:
            self._service_ewma = 0.8 * self._service_ewma + 0.2 * service_s
        self._pump()
        self._maybe_idle()

    def abandon(self, ticket: Ticket) -> None:
        """Remove a still-queued ticket (client vanished mid-wait)."""
        if ticket.granted or ticket.expired:
            return
        ticket.expired = True  # lazy-deleted from the heap by _pump
        ticket.event.set()
        self._waiting -= 1
        self._maybe_idle()

    def expire(self, ticket: Ticket) -> None:
        """Drop a queued ticket whose deadline passed mid-wait (the
        per-request coroutine checks between heartbeats; :meth:`_pump`
        catches the rest at dispatch time)."""
        if ticket.granted or ticket.expired:
            return
        ticket.expired = True
        ticket.event.set()
        self._waiting -= 1
        obs.counter("service.deadline_drops").inc()
        _log.info("admission.deadline_drop", request_id=ticket.request_id,
                  waited_s=round(time.monotonic() - ticket.arrived_at, 3))
        self._maybe_idle()

    def _pump(self) -> None:
        """Dispatch waiters into free slots, dropping expired tickets."""
        now = time.monotonic()
        while self._heap and self._inflight < self.max_inflight:
            _, ticket = heapq.heappop(self._heap)
            if ticket.expired:
                continue  # abandoned; already uncounted
            if ticket.deadline_at is not None and now >= ticket.deadline_at:
                ticket.expired = True
                self._waiting -= 1
                obs.counter("service.deadline_drops").inc()
                _log.info("admission.deadline_drop",
                          request_id=ticket.request_id,
                          waited_s=round(now - ticket.arrived_at, 3))
                ticket.event.set()
                continue
            self._waiting -= 1
            self._grant(ticket)

    def _maybe_idle(self) -> None:
        if self._inflight == 0 and self._waiting == 0:
            self._idle.set()

    # -- introspection -----------------------------------------------------

    def position(self, ticket: Ticket) -> int:
        """1-based dispatch position of a queued ticket (heap order)."""
        if ticket.granted or ticket.expired:
            return 0
        live = sorted(t.priority() for _, t in self._heap
                      if not t.expired and not t.granted)
        try:
            return live.index(ticket.priority()) + 1
        except ValueError:  # pragma: no cover - racing a concurrent pump
            return len(live) or 1

    def retry_after_s(self) -> float:
        """Backoff hint: expected queue drain time given the EWMA
        service rate, floored at a useful minimum."""
        depth = self._waiting + 1
        estimate = depth * self._service_ewma / self.max_inflight
        return round(max(0.1, min(estimate, 60.0)), 3)

    def should_preempt(self) -> bool:
        """True when a deadline-bearing ticket waits while every slot
        is busy -- the server decides whether a hog is actually
        running (fleet mode) and preempts at most one."""
        if self._inflight < self.max_inflight:
            return False
        return any(t.deadline_at is not None
                   for _, t in self._heap
                   if not t.expired and not t.granted)

    async def quiesce(self, timeout: Optional[float] = None) -> bool:
        """Await drain (no inflight, no queued); returns success."""
        if timeout is None:
            await self._idle.wait()
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def stats(self) -> Dict[str, Any]:
        return {
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "queued": self._waiting,
            "max_queue": self.max_queue,
            "service_ewma_s": round(self._service_ewma, 4),
            "shed": obs.counter("service.overloaded").value,
            "deadline_drops": obs.counter("service.deadline_drops").value,
        }
